package etap_test

import (
	"context"
	"testing"

	"etap"
)

// TestFacadeEndToEnd drives the whole pipeline through the public API
// only, the way a downstream user would.
func TestFacadeEndToEnd(t *testing.T) {
	gen := etap.NewWorldGenerator(etap.WorldConfig{
		Seed: 99, RelevantPerDriver: 40, BackgroundDocs: 120,
		HardNegativePerDriver: 10, FamousEventDocs: 4,
	})
	w := etap.BuildWeb(gen.World())
	sys := etap.NewSystem(w, etap.Config{Seed: 99, TopK: 60, NegativeCount: 600})

	var cim etap.SalesDriver
	for _, d := range etap.DefaultDrivers() {
		if d.ID == string(etap.ChangeInManagement) {
			cim = d
		}
	}
	var pure []string
	for _, p := range gen.PurePositives(etap.ChangeInManagement, 20) {
		pure = append(pure, p.Text)
	}
	stats, err := sys.AddDriver(cim, pure)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NoisyPositives == 0 {
		t.Fatal("no noisy positives")
	}

	pages := w.Search(`"new ceo"`, 50)
	if len(pages) == 0 {
		t.Fatal("search returned nothing")
	}
	events, err := sys.ExtractEvents(string(etap.ChangeInManagement), pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events extracted")
	}
	ranked := etap.RankByScore(events)
	if ranked[0].Rank != 1 {
		t.Fatal("ranking broken")
	}
	companies := etap.CompanyMRR(ranked)
	if len(companies) == 0 {
		t.Fatal("no company scores")
	}
	if companies[0].MRR <= 0 || companies[0].MRR > 1 {
		t.Fatalf("MRR out of range: %+v", companies[0])
	}
}

func TestFacadeCrawl(t *testing.T) {
	docs := etap.GenerateWorld(etap.WorldConfig{
		Seed: 5, RelevantPerDriver: 10, BackgroundDocs: 30,
		HardNegativePerDriver: 5, FamousEventDocs: 2,
	})
	w := etap.BuildWeb(docs)
	res := etap.Crawl(context.Background(), w, etap.CrawlConfig{
		Seeds:    []string{docs[0].URL},
		Topic:    []string{"merger", "acquisition"},
		MaxPages: 25,
	})
	if len(res.Pages) == 0 {
		t.Fatal("crawl fetched nothing")
	}
	if len(res.Pages) > 25 {
		t.Fatalf("crawl exceeded MaxPages: %d", len(res.Pages))
	}
}

func TestFacadeProfilesAndSuggestions(t *testing.T) {
	gen := etap.NewWorldGenerator(etap.WorldConfig{
		Seed: 7, RelevantPerDriver: 30, BackgroundDocs: 80,
		HardNegativePerDriver: 8, FamousEventDocs: 3,
	})
	w := etap.BuildWeb(gen.World())
	sys := etap.NewSystem(w, etap.Config{Seed: 7, TopK: 50, NegativeCount: 500})
	var ma etap.SalesDriver
	for _, d := range etap.DefaultDrivers() {
		if d.ID == string(etap.MergersAcquisitions) {
			ma = d
		}
	}
	if _, err := sys.AddDriver(ma, nil); err != nil {
		t.Fatal(err)
	}
	pages := w.Search("merger", 60)
	events, err := sys.ExtractEvents(ma.ID, pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	profiles := etap.BuildCompanyProfiles(etap.RankByScore(events), 2005, 6)
	if len(profiles) == 0 {
		t.Fatal("no profiles")
	}
	if profiles[0].Events == 0 || profiles[0].MRR <= 0 {
		t.Fatalf("profile malformed: %+v", profiles[0])
	}

	var pure, bg []string
	for _, p := range gen.PurePositives(etap.MergersAcquisitions, 30) {
		pure = append(pure, p.Text)
	}
	for _, b := range gen.BackgroundSnippets(80) {
		bg = append(bg, b.Text)
	}
	if qs := etap.SuggestQueries(pure, bg, 5); len(qs) == 0 {
		t.Fatal("no suggested queries")
	}
}

func TestFacadeOrientation(t *testing.T) {
	lx := etap.DefaultRevenueLexicon()
	pos := lx.Score("The firm posted significant growth and a solid quarter.")
	neg := lx.Score("The firm suffered severe losses and a sharp decline.")
	if pos <= 0 || neg >= 0 {
		t.Fatalf("orientation scores: pos=%v neg=%v", pos, neg)
	}
}
