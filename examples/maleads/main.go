// M&A leads: the B2B scenario from the paper's introduction.
//
// Mergers & acquisitions is a sales driver for the IT industry: "mergers
// and acquisitions of companies could lead to the integration of IT
// systems of the companies thereby generating demand for new IT
// products". This example runs the full proactive pipeline:
//
//  1. data gathering — a focused crawl of the synthetic web, steered
//     toward M&A vocabulary, assembles the document collection D;
//  2. event identification — a classifier trained with pure positives
//     plus auto-generated noisy positives extracts M&A trigger events;
//  3. ranking — events are ranked by confidence, then aggregated per
//     company with the Equation 2 MRR score, producing the prioritized
//     call list a sales representative would work through.
//
// Run with:
//
//	go run ./examples/maleads
package main

import (
	"context"
	"fmt"
	"log"

	"etap"
)

func main() {
	gen := etap.NewWorldGenerator(etap.WorldConfig{Seed: 7})
	docs := gen.World()
	w := etap.BuildWeb(docs)

	// --- 1. data gathering: focused crawl seeded from a page on each
	// host. The topic profile prioritizes M&A-heavy pages in the
	// frontier without pruning connectivity (MinRelevance 0).
	var seeds []string
	seen := map[string]bool{}
	for _, d := range docs {
		if !seen[d.Host] {
			seen[d.Host] = true
			seeds = append(seeds, d.URL)
		}
	}
	crawl := etap.Crawl(context.Background(), w, etap.CrawlConfig{
		Seeds:    seeds,
		Topic:    []string{"merger", "acquisition", "acquire", "takeover", "deal"},
		MaxPages: 600,
		MaxDepth: 12,
	})
	fmt.Printf("focused crawl: %d pages (%d duplicates skipped)\n",
		len(crawl.Pages), crawl.Duplicates)

	// --- 2. event identification.
	sys := etap.NewSystem(w, etap.Config{Seed: 7})
	var driver etap.SalesDriver
	for _, d := range etap.DefaultDrivers() {
		if d.ID == string(etap.MergersAcquisitions) {
			driver = d
		}
	}
	// A small hand-labeled set sharpens the classifier; the paper
	// oversamples it by 3 internally.
	var pure []string
	for _, p := range gen.PurePositives(etap.MergersAcquisitions, 40) {
		pure = append(pure, p.Text)
	}
	stats, err := sys.AddDriver(driver, pure)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training: %s; noise elimination kept %d/%d noisy positives\n",
		stats.Generation,
		stats.NoiseHistory[len(stats.NoiseHistory)-1].NoisyKept,
		stats.NoisyPositives)

	events, err := sys.ExtractEvents(driver.ID, crawl.Pages, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	ranked := etap.RankByScore(events)
	fmt.Printf("\n%d M&A trigger events; top 8:\n", len(events))
	for _, ev := range ranked {
		if ev.Rank > 8 {
			break
		}
		text := ev.Text
		if len(text) > 95 {
			text = text[:95] + "..."
		}
		fmt.Printf("%2d. [%.3f] %-22s %s\n", ev.Rank, ev.Score, ev.Company, text)
	}

	// --- 3. company ranking (Equation 2).
	fmt.Println("\nprioritized companies (mean reciprocal rank):")
	for i, c := range etap.CompanyMRR(ranked) {
		if i >= 8 {
			break
		}
		fmt.Printf("%2d. MRR %.3f over %d events  %s\n", i+1, c.MRR, c.Events, c.Company)
	}
}
