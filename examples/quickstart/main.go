// Quickstart: the minimal end-to-end ETAP run.
//
// It generates a small synthetic web, trains the change-in-management
// sales driver from smart queries alone (no manually labeled data), and
// prints the top trigger events — prospective sales leads — ranked by
// classifier confidence.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"etap"
)

func main() {
	// 1. A web to mine. On the real system this is a focused crawl of
	// news sites; here it is the deterministic synthetic web.
	docs := etap.GenerateWorld(etap.WorldConfig{Seed: 42})
	w := etap.BuildWeb(docs)
	fmt.Printf("web: %d pages\n", w.Len())

	// 2. An ETAP system and one sales driver. DefaultDrivers carries the
	// paper's smart queries and entity filters; passing nil pure
	// positives means training data is generated entirely automatically.
	sys := etap.NewSystem(w, etap.Config{Seed: 42})
	var driver etap.SalesDriver
	for _, d := range etap.DefaultDrivers() {
		if d.ID == string(etap.ChangeInManagement) {
			driver = d
		}
	}
	stats, err := sys.AddDriver(driver, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained from %d noisy-positive snippets (%s)\n",
		stats.NoisyPositives, stats.Generation)

	// 3. Extract and rank trigger events over fresh pages.
	pages := w.Search(`"new ceo"`, 40)
	events, err := sys.ExtractEvents(driver.ID, pages, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop sales leads (%d trigger events):\n", len(events))
	for _, ev := range etap.RankByScore(events) {
		if ev.Rank > 10 {
			break
		}
		text := ev.Text
		if len(text) > 100 {
			text = text[:100] + "..."
		}
		fmt.Printf("%2d. [%.3f] %-22s %s\n", ev.Rank, ev.Score, ev.Company, text)
	}
}
