// Lead monitor: continuous operation.
//
// ETAP is meant to run continuously — the data-gathering component
// (modelled on eShopMonitor) re-visits sources, detects new or changed
// pages, and only those flow into event identification, so the sales
// team sees fresh leads instead of a re-ranked archive.
//
// This example simulates two crawl epochs: an initial web, then the same
// web after a news cycle adds pages. The change monitor isolates the new
// material and the trained classifier extracts only the incremental
// trigger events.
//
// Run with:
//
//	go run ./examples/leadmonitor
package main

import (
	"fmt"
	"log"

	"etap"
	"etap/internal/gather"
)

func main() {
	// Epoch 1: the initial world.
	gen := etap.NewWorldGenerator(etap.WorldConfig{Seed: 13})
	docs := gen.World()
	w1 := etap.BuildWeb(docs)

	sys := etap.NewSystem(w1, etap.Config{Seed: 13})
	var driver etap.SalesDriver
	for _, d := range etap.DefaultDrivers() {
		if d.ID == string(etap.MergersAcquisitions) {
			driver = d
		}
	}
	if _, err := sys.AddDriver(driver, nil); err != nil {
		log.Fatal(err)
	}

	monitor := gather.NewMonitor()
	pages1 := allPages(w1)
	fresh := monitor.Changed(pages1)
	fmt.Printf("epoch 1: %d pages, %d new to the monitor\n", len(pages1), len(fresh))
	events1, err := sys.ExtractEvents(driver.ID, fresh, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch 1: %d trigger events\n", len(events1))

	// Epoch 2: a news cycle later — fresh pages appear. (The generator
	// keeps its stream, so the new documents are new stories.)
	var newPages []*etap.Page
	w2 := etap.NewWeb()
	for _, p := range pages1 {
		w2.AddPage(*p)
	}
	for i := 0; i < 25; i++ {
		d := gen.RelevantDoc(etap.MergersAcquisitions)
		page := etap.Page{URL: d.URL, Host: d.Host, Title: d.Title, Text: d.Text(), Links: d.Links}
		w2.AddPage(page)
		if p, ok := w2.Page(d.URL); ok {
			newPages = append(newPages, p)
		}
	}
	w2.Freeze()

	fresh2 := monitor.Changed(allPages(w2))
	fmt.Printf("\nepoch 2: %d pages, %d new/changed since epoch 1\n", w2.Len(), len(fresh2))

	events2, err := sys.ExtractEvents(driver.ID, fresh2, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch 2: %d fresh trigger events; top 8:\n", len(events2))
	for _, ev := range etap.RankByScore(events2) {
		if ev.Rank > 8 {
			break
		}
		text := ev.Text
		if len(text) > 95 {
			text = text[:95] + "..."
		}
		fmt.Printf("%2d. [%.3f] %-22s %s\n", ev.Rank, ev.Score, ev.Company, text)
	}
}

func allPages(w *etap.Web) []*etap.Page {
	var out []*etap.Page
	for _, u := range w.URLs() {
		if p, ok := w.Page(u); ok {
			out = append(out, p)
		}
	}
	return out
}
