// Revenue growth with semantic orientation: the Figure 8 scenario.
//
// For the revenue-growth sales driver, the classifier score alone does
// not capture business value: a snippet reporting "significant growth" is
// a stronger buying signal than a mild gain, and "severe losses" matter
// too. ETAP scores snippets with a semantic-orientation lexicon and ranks
// by signal strength. This example uses the built-in manual lexicon, then
// shows the automated alternative the paper cites [14]: inducing a
// lexicon from seed words with PMI-IR over the search index.
//
// Run with:
//
//	go run ./examples/revenuegrowth
package main

import (
	"fmt"
	"log"

	"etap"
)

func main() {
	gen := etap.NewWorldGenerator(etap.WorldConfig{Seed: 11})
	w := etap.BuildWeb(gen.World())

	sys := etap.NewSystem(w, etap.Config{Seed: 11})
	var driver etap.SalesDriver
	for _, d := range etap.DefaultDrivers() {
		if d.ID == string(etap.RevenueGrowth) {
			driver = d
		}
	}
	var pure []string
	for _, p := range gen.PurePositives(etap.RevenueGrowth, 30) {
		pure = append(pure, p.Text)
	}
	if _, err := sys.AddDriver(driver, pure); err != nil {
		log.Fatal(err)
	}

	pages := w.Search(`"revenue growth"`, 60)
	pages = append(pages, w.Search(`"record revenue"`, 60)...)
	events, err := sys.ExtractEvents(driver.ID, pages, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d revenue-growth trigger events, ranked by orientation strength:\n", len(events))
	for _, ev := range etap.RankByOrientation(events) {
		if ev.Rank > 10 {
			break
		}
		text := ev.Text
		if len(text) > 90 {
			text = text[:90] + "..."
		}
		fmt.Printf("%2d. [orient %+5.1f, score %.3f] %s\n", ev.Rank, ev.Orientation, ev.Score, text)
	}

	// The driver-specific alternative: extract the exact percentage
	// change from each snippet and rank by its magnitude.
	fmt.Println("\nranked by extracted growth figure:")
	for _, ev := range etap.RankByGrowthFigure(events) {
		if ev.Rank > 5 {
			break
		}
		text := ev.Text
		if len(text) > 80 {
			text = text[:80] + "..."
		}
		fmt.Printf("%2d. [figure %+5.1f%%] %s\n", ev.Rank, ev.Orientation, text)
	}

	// Automated lexicon induction (Turney's PMI-IR) from seed words:
	// candidates get a positive weight when they co-occur with positive
	// seeds more than with negative ones across the whole web.
	// Seeds are direction words that appear near orientation phrases in
	// revenue sentences ("posted solid quarter with revenue up 12%").
	induced := etap.InduceLexicon(w,
		[]string{"up", "rose", "grew", "increased"},
		[]string{"down", "fell", "declined", "losses"},
		[]string{"record", "solid", "robust", "impressive", "severe",
			"sharp", "steep", "disappointing", "healthy", "painful"},
	)
	fmt.Println("\nPMI-IR induced lexicon (word: weight):")
	for _, word := range induced.Entries() {
		fmt.Printf("  %-15s %+.2f\n", word, induced[word])
	}
}
