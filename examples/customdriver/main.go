// Custom driver: registering a brand-new sales driver.
//
// The paper stresses that "one may want to introduce new categories of
// sales drivers quite frequently and hand-labeling to produce training
// data for new categories can be very tedious". ETAP's answer is that a
// new driver needs only (a) a handful of smart queries and (b) a
// snippet-level entity filter — training data is generated automatically.
//
// This example invents a "product launch" sales driver (companies that
// ship new products may need marketing, logistics and support services),
// defines it from scratch against the public API, and trains it with zero
// manually labeled snippets.
//
// Run with:
//
//	go run ./examples/customdriver
package main

import (
	"fmt"
	"log"

	"etap"
	"etap/internal/ner"
	"etap/internal/train"
)

func main() {
	w := etap.BuildWeb(etap.GenerateWorld(etap.WorldConfig{Seed: 3}))
	sys := etap.NewSystem(w, etap.Config{Seed: 3})

	// A new driver from first principles. The smart queries aim at pages
	// announcing product shipments; the filter keeps snippets that name
	// an organization together with a product.
	launch := etap.SalesDriver{
		ID:    "product-launch",
		Title: "Product launch",
		SmartQueries: []string{
			`"shipped" product`, `"user group"`, "presented paper",
		},
		Filter: train.And(train.Has(ner.ORG), train.Has(ner.PROD)),
	}

	stats, err := sys.AddDriver(launch, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %q with no hand-labeled data: %s\n", launch.ID, stats.Generation)

	var pages []*etap.Page
	for _, u := range w.URLs() {
		if p, ok := w.Page(u); ok {
			pages = append(pages, p)
		}
	}
	events, err := sys.ExtractEvents(launch.ID, pages, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d product-launch trigger events; top 10:\n", len(events))
	for _, ev := range etap.RankByScore(events) {
		if ev.Rank > 10 {
			break
		}
		text := ev.Text
		if len(text) > 100 {
			text = text[:100] + "..."
		}
		fmt.Printf("%2d. [%.3f] %-22s %s\n", ev.Rank, ev.Score, ev.Company, text)
	}

	// When a handful of example snippets IS available, the smart queries
	// themselves can be mined automatically ("the smart queries for a
	// sales driver could be obtained by analyzing the pure positive data
	// set", Section 3.3.1).
	gen := etap.NewWorldGenerator(etap.WorldConfig{Seed: 4})
	var pure, bg []string
	for _, p := range gen.PurePositives(etap.RevenueGrowth, 40) {
		pure = append(pure, p.Text)
	}
	for _, b := range gen.BackgroundSnippets(150) {
		bg = append(bg, b.Text)
	}
	fmt.Println("\nqueries mined from 40 revenue-growth snippets:")
	for _, q := range etap.SuggestQueries(pure, bg, 5) {
		fmt.Println("  ", q)
	}
}
