package etap_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark runs
// the corresponding experiment end to end on a medium-size world and
// reports the measured quality as custom benchmark metrics (F1 etc.), so
// `go test -bench=.` regenerates both the numbers and the cost of
// producing them.
//
// The full-size runs (paper-scale test sets) live in cmd/experiments;
// benchmark sizes are reduced to keep -bench=. tractable while preserving
// the shapes (who wins, by roughly what factor).

import (
	"testing"

	"etap"
	"etap/internal/corpus"
	"etap/internal/experiments"
)

// benchSetup is the medium configuration shared by the benchmarks.
func benchSetup(seed int64) experiments.Setup {
	return experiments.Setup{
		Seed:                  seed,
		RelevantPerDriver:     60,
		BackgroundDocs:        250,
		HardNegativePerDriver: 20,
		FamousEventDocs:       6,
		TopK:                  100,
		TrainNegatives:        1500,
		PurePosTrain:          40,
		TestPositivesMA:       72,
		TestPositivesCIM:      56,
		TestBackground:        1000,
	}
}

func reportPRF(b *testing.B, m etap.Metrics) {
	b.ReportMetric(m.Precision(), "P")
	b.ReportMetric(m.Recall(), "R")
	b.ReportMetric(m.F1(), "F1")
}

// BenchmarkTable1MergersAcquisitions regenerates the M&A row of Table 1
// (paper: P=0.744 R=0.806 F1=0.773) at the paper-scale protocol — the
// ordering between the two drivers is a full-scale property, so these
// two benchmarks use the full default setup rather than benchSetup.
func BenchmarkTable1MergersAcquisitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(experiments.Setup{Seed: 7})
		res := experiments.Table1(env)
		for _, row := range res.Rows {
			if row.Driver == corpus.MergersAcquisitions {
				reportPRF(b, row.Measured)
			}
		}
	}
}

// BenchmarkTable1ChangeInManagement regenerates the CiM row of Table 1
// (paper: P=0.656 R=0.786 F1=0.715) at the paper-scale protocol.
func BenchmarkTable1ChangeInManagement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(experiments.Setup{Seed: 7})
		res := experiments.Table1(env)
		for _, row := range res.Rows {
			if row.Driver == corpus.ChangeInManagement {
				reportPRF(b, row.Measured)
			}
		}
	}
}

// BenchmarkFigure3RIGMergers regenerates the Figure 3 series: relative
// information gain of PA vs IV per abstraction category for M&A. The
// reported metrics summarize the paper's two observations.
func BenchmarkFigure3RIGMergers(b *testing.B) {
	benchFigureRIG(b, corpus.MergersAcquisitions)
}

// BenchmarkFigure4RIGManagement regenerates Figure 4 (change in
// management).
func BenchmarkFigure4RIGManagement(b *testing.B) {
	benchFigureRIG(b, corpus.ChangeInManagement)
}

func benchFigureRIG(b *testing.B, d corpus.Driver) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(3))
		res := experiments.FigureRIG(env, d)
		var orgPA, orgIV, vbPA, vbIV float64
		for _, c := range res.Comparisons {
			switch c.Category.String() {
			case "ORG":
				orgPA, orgIV = c.PA, c.IV
			case "vb":
				vbPA, vbIV = c.PA, c.IV
			}
		}
		// Paper shape: ORG prefers PA (PA > IV), vb prefers IV (IV > PA,
		// with PA near zero because verbs occur in every snippet).
		b.ReportMetric(orgPA, "ORG_PA")
		b.ReportMetric(orgIV, "ORG_IV")
		b.ReportMetric(vbPA, "vb_PA")
		b.ReportMetric(vbIV, "vb_IV")
	}
}

// BenchmarkFigures56QueryDemo regenerates the "new ceo" smart-query demo:
// positive snippets (Figure 5) and filter-rejected noise (Figure 6) on
// the top hit.
func BenchmarkFigures56QueryDemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(4))
		demo := experiments.Figures56(env)
		b.ReportMetric(float64(len(demo.Positive)), "positive")
		b.ReportMetric(float64(len(demo.Noise)), "noise")
	}
}

// BenchmarkFigure7RankByScore regenerates the classification-score
// ranking of change-in-management trigger events.
func BenchmarkFigure7RankByScore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(5))
		demo := experiments.Figure7(env, 0)
		b.ReportMetric(float64(len(demo.Events)), "events")
	}
}

// BenchmarkFigure8RankByOrientation regenerates the semantic-orientation
// ranking of revenue-growth trigger events.
func BenchmarkFigure8RankByOrientation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(6))
		demo := experiments.Figure8(env, 0)
		oriented := 0
		for _, e := range demo.Events {
			if e.Orientation != 0 {
				oriented++
			}
		}
		b.ReportMetric(float64(len(demo.Events)), "events")
		b.ReportMetric(float64(oriented), "oriented")
	}
}

// BenchmarkCompanyMRR exercises the Equation 2 aggregate over a full
// extraction run.
func BenchmarkCompanyMRR(b *testing.B) {
	env := experiments.Build(benchSetup(8))
	demo := experiments.Figure7(env, 0)
	var ranked []etap.Ranked
	ranked = append(ranked, demo.Events...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores := etap.CompanyMRR(ranked)
		if i == 0 {
			b.ReportMetric(float64(len(scores)), "companies")
		}
	}
}

// BenchmarkRankingQuality measures the ranked-list quality of the
// Figure 7 artifact against ground truth (P@10, average precision, AUC).
func BenchmarkRankingQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(61))
		res := experiments.RankingQuality(env, corpus.ChangeInManagement)
		b.ReportMetric(res.PAt10, "P@10")
		b.ReportMetric(res.AvgPrec, "AP")
		b.ReportMetric(res.AUC, "AUC")
	}
}

// --- ablations ---------------------------------------------------------

// BenchmarkAblationNoAbstraction measures the bag-of-words baseline
// against the paper's feature abstraction.
func BenchmarkAblationNoAbstraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(21))
		res := experiments.AblationAbstraction(env, corpus.ChangeInManagement)
		for _, row := range res.Rows {
			switch row.Name {
			case "abstraction (paper)":
				b.ReportMetric(row.Measured.F1(), "F1_abstr")
			case "bag-of-words (no abstr.)":
				b.ReportMetric(row.Measured.F1(), "F1_bow")
			}
		}
	}
}

// BenchmarkAblationNoiseIterations measures 1 vs 2 vs 4 noise-elimination
// rounds (the paper reports after two).
func BenchmarkAblationNoiseIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(22))
		res := experiments.AblationNoiseIterations(env, corpus.MergersAcquisitions)
		for _, row := range res.Rows {
			b.ReportMetric(row.Measured.F1(), "F1_"+row.Name[:1]+"iter")
		}
	}
}

// BenchmarkAblationClassifiers compares naïve Bayes against the cited
// alternatives (linear SVM, weighted logistic regression).
func BenchmarkAblationClassifiers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(23))
		res := experiments.AblationClassifiers(env, corpus.ChangeInManagement)
		names := []string{"F1_nb", "F1_svm", "F1_logreg"}
		for j, row := range res.Rows {
			b.ReportMetric(row.Measured.F1(), names[j])
		}
	}
}

// BenchmarkAblationSnippetSize varies n (the paper uses 3).
func BenchmarkAblationSnippetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(24))
		res := experiments.AblationSnippetSize(env, corpus.ChangeInManagement)
		names := []string{"F1_n1", "F1_n3", "F1_n5"}
		for j, row := range res.Rows {
			b.ReportMetric(row.Measured.F1(), names[j])
		}
	}
}

// BenchmarkAblationNERMissRate quantifies the dependence on recognizer
// accuracy via company-attribution quality.
func BenchmarkAblationNERMissRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Build(benchSetup(25))
		res := experiments.AblationNERMissRate(env, corpus.ChangeInManagement)
		names := []string{"attr_0", "attr_20", "attr_40"}
		for j, row := range res.Rows {
			b.ReportMetric(row.Attributed, names[j])
		}
	}
}

// BenchmarkScalingWorldSize sweeps the world size, reporting end-to-end
// training+extraction wall time per configuration — the cost model for
// scaling the deployment to larger crawls.
func BenchmarkScalingWorldSize(b *testing.B) {
	for _, docs := range []int{200, 500, 1000} {
		docs := docs
		b.Run(sizeName(docs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gen := etap.NewWorldGenerator(etap.WorldConfig{
					Seed:              int64(docs),
					RelevantPerDriver: docs / 10,
					BackgroundDocs:    docs / 2,
				})
				w := etap.BuildWeb(gen.World())
				sys := etap.NewSystem(w, etap.Config{Seed: 1, TopK: 100, NegativeCount: docs})
				var driver etap.SalesDriver
				for _, d := range etap.DefaultDrivers() {
					if d.ID == string(etap.MergersAcquisitions) {
						driver = d
					}
				}
				if _, err := sys.AddDriver(driver, nil); err != nil {
					b.Fatal(err)
				}
				var pages []*etap.Page
				for _, u := range w.URLs() {
					p, _ := w.Page(u)
					pages = append(pages, p)
				}
				events, err := sys.ExtractEventsParallel(driver.ID, pages, 0.5, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(w.Len()), "pages")
				b.ReportMetric(float64(len(events)), "events")
			}
		})
	}
}

func sizeName(docs int) string {
	switch docs {
	case 200:
		return "small"
	case 500:
		return "medium"
	default:
		return "large"
	}
}

// BenchmarkPipelineEndToEnd measures the throughput of the trained
// event-identification component (snippets scored per second), the
// operational cost that matters when ETAP monitors a live crawl.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	gen := etap.NewWorldGenerator(etap.WorldConfig{
		Seed: 9, RelevantPerDriver: 40, BackgroundDocs: 150,
		HardNegativePerDriver: 10, FamousEventDocs: 4,
	})
	w := etap.BuildWeb(gen.World())
	sys := etap.NewSystem(w, etap.Config{Seed: 9, TopK: 80, NegativeCount: 800})
	var driver etap.SalesDriver
	for _, d := range etap.DefaultDrivers() {
		if d.ID == string(etap.ChangeInManagement) {
			driver = d
		}
	}
	if _, err := sys.AddDriver(driver, nil); err != nil {
		b.Fatal(err)
	}
	var pages []*etap.Page
	for _, u := range w.URLs() {
		p, _ := w.Page(u)
		pages = append(pages, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ExtractEvents(driver.ID, pages, 0.5); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pages))*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
}

// BenchmarkExtractObservability measures the cost of the obs metrics
// layer on the extraction hot path: the same trained system and page
// set run through ExtractEventsParallel with instrumentation enabled
// (the default) and disabled (Config.DisableMetrics). Compare the two
// sub-benchmarks' ns/op — the instrumented arm should be within 5% of
// the disabled arm.
func BenchmarkExtractObservability(b *testing.B) {
	for _, bc := range []struct {
		name    string
		disable bool
	}{
		{"instrumented", false},
		{"disabled", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			gen := etap.NewWorldGenerator(etap.WorldConfig{
				Seed: 11, RelevantPerDriver: 40, BackgroundDocs: 150,
				HardNegativePerDriver: 10, FamousEventDocs: 4,
			})
			w := etap.BuildWeb(gen.World())
			sys := etap.NewSystem(w, etap.Config{
				Seed: 11, TopK: 80, NegativeCount: 800,
				DisableMetrics: bc.disable,
			})
			var driver etap.SalesDriver
			for _, d := range etap.DefaultDrivers() {
				if d.ID == string(etap.ChangeInManagement) {
					driver = d
				}
			}
			if _, err := sys.AddDriver(driver, nil); err != nil {
				b.Fatal(err)
			}
			var pages []*etap.Page
			for _, u := range w.URLs() {
				p, _ := w.Page(u)
				pages = append(pages, p)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.ExtractEventsParallel(driver.ID, pages, 0.5, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(pages))*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
		})
	}
}
