# CI entry points. The GitHub Actions workflow runs `make ci` (vet +
# build + lint + race-enabled tests, so the race detector and the
# repo's own static analysis gate every PR) followed by
# `make doccheck`, `make examples` and `make fmt-check`.

GO ?= go

.PHONY: ci vet build lint lint-bench test race race-alert race-trace race-index race-tenant bench bench-index bench-alert bench-trace doccheck examples fmt-check

ci: vet build lint race

# go vet covers the generic checks (including copylocks, which catches
# mutexes copied by value in any position); etaplint layers the
# repo-specific invariants on top — see LINTING.md for the catalog.
vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Repo-aware static analysis: the six syntactic rules plus the
# flow-aware concurrency rules (goroutine-lifecycle, lock-order,
# channel-discipline). The committed baseline makes the gate "no new
# findings": anything recorded in .etaplint-baseline.json is tolerated,
# anything fresh fails. Regenerate after paying down baselined debt
# with `go run ./cmd/etaplint -baseline .etaplint-baseline.json
# -write-baseline ./...`.
lint:
	$(GO) run ./cmd/etaplint -baseline .etaplint-baseline.json ./...

# Lint wall-clock budget: the flow-aware rules type-check and analyze
# the whole repo, so a full run must stay under 30 seconds. Always
# writes the machine-readable findings to lint-findings.json, which CI
# attaches as an artifact when the job fails.
lint-bench:
	@start=$$(date +%s); \
	$(GO) run ./cmd/etaplint -json ./... > lint-findings.json; code=$$?; \
	end=$$(date +%s); dur=$$((end - start)); \
	echo "lint-bench: etaplint ./... took $${dur}s (budget 30s), exit $$code"; \
	if [ $$code -ge 2 ]; then exit $$code; fi; \
	if [ $$dur -gt 30 ]; then echo "lint-bench: exceeded 30s wall-clock budget"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The streaming subsystem is the most concurrency-dense code in the
# repo (worker pool, per-subscriber delivery lanes, SSE fan-out,
# SIGTERM drain); CI runs its tests race-enabled as a dedicated step so
# a regression there is named in the job log, not buried in `race`.
race-alert:
	$(GO) test -race -count=1 ./internal/alert ./internal/serve ./cmd/etapd

# The tracing path touches every concurrent layer at once (ingest
# workers, subscriber lanes, the tracer's ring store, histogram
# read/write interleavings, SSE fan-out); this runs those tests
# race-enabled, including the end-to-end acceptance trace.
race-trace:
	$(GO) test -race -count=1 -run 'Trace|DTrace|Lag|Histogram|SSE|Broadcast|Disconnect|Cancel' ./internal/obs ./internal/alert ./internal/serve ./cmd/etapd

# The persistent segment index juggles concurrent writer lanes, a flush
# goroutine, a background merger and in-flight searches over retiring
# segments; this runs its concurrency, crash-recovery and golden tests
# race-enabled as a dedicated CI step.
race-index:
	$(GO) test -race -count=1 -run 'Segment|Crash|Concurrent|Postings' ./internal/index

# The multi-tenant path interleaves tenant CRUD, ICP-scoped /leads
# reads, the tenant result cache, and alert fan-out with tenant-
# filtered subscriptions; this runs the KB, tenant, serve, and alert
# suites race-enabled as a dedicated CI step.
race-tenant:
	$(GO) test -race -count=1 ./internal/tenant ./internal/kb ./internal/serve ./internal/alert

# One pass over every benchmark (quality numbers + observability overhead).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Index scaling harness: measures the segment engine against the
# in-RAM baseline over a 50k-doc synthetic corpus — concurrent bulk add
# at 1/2/4/8 writers, cold start (manifest re-open vs rebuild), and
# mmap-served vs cached search — and writes the machine-readable report
# to BENCH_index.json. Doubles as the perf regression gate: the run
# fails if concurrent bulk add loses to sequential at any writer count
# or segment-served rankings diverge from the in-RAM engine's.
bench-index:
	ETAP_BENCH_INDEX=$(CURDIR)/BENCH_index.json $(GO) test ./internal/index -count=1 -run TestIndexBenchHarness -v

# Ingest-throughput harness: pushes a trigger-dense synthetic document
# stream through the alert manager at one worker and at GOMAXPROCS
# workers, and writes the machine-readable report to BENCH_alert.json.
bench-alert:
	ETAP_BENCH_ALERT=$(CURDIR)/BENCH_alert.json $(GO) test ./internal/alert -run TestAlertBenchHarness -v

# Tracing-overhead harness: runs the same ingest stream with tracing
# off and on (tail sampling at 0.25), fails if the median per-round
# slowdown exceeds 5%, and writes the report to BENCH_trace.json.
bench-trace:
	ETAP_BENCH_TRACE=$(CURDIR)/BENCH_trace.json $(GO) test ./internal/alert -count=1 -run TestTraceBenchHarness -v

# Doc-comment lint: every exported symbol must carry a godoc comment.
# Now served by etaplint's doc-comments rule over the whole repository
# (cmd/doclint remains as a deprecated forwarding shim).
doccheck:
	$(GO) run ./cmd/etaplint -rules doc-comments ./...

# The examples are documentation too — keep them compiling.
examples:
	$(GO) build ./examples/...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
