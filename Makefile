# CI entry points. The GitHub Actions workflow runs `make ci` (vet +
# build + race-enabled tests, so the race detector gates every PR)
# followed by `make doccheck`, `make examples` and `make fmt-check`.

GO ?= go

.PHONY: ci vet build test race bench bench-index doccheck examples fmt-check

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark (quality numbers + observability overhead).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Index scaling harness: measures sequential vs sharded bulk add and
# single-shard vs sharded vs cached search over a 50k-doc synthetic
# corpus, and writes the machine-readable report to BENCH_index.json.
bench-index:
	ETAP_BENCH_INDEX=$(CURDIR)/BENCH_index.json $(GO) test ./internal/index -run TestIndexBenchHarness -v

# Doc-comment lint: every exported symbol in the documented packages
# must carry a godoc comment.
doccheck:
	$(GO) run ./cmd/doclint ./internal/index ./internal/web ./internal/gather

# The examples are documentation too — keep them compiling.
examples:
	$(GO) build ./examples/...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
