# CI entry points. `make ci` is what the GitHub Actions workflow runs:
# vet + build + race-enabled tests, so the race detector gates every PR.

GO ?= go

.PHONY: ci vet build test race bench fmt-check

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark (quality numbers + observability overhead).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
