module etap

go 1.22
