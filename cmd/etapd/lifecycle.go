// Lifecycle hardening for etapd: signal-driven graceful shutdown with
// a drain timeout, and revision-gated checkpointing (periodic and
// on-shutdown) for every durable store the daemon owns — the lead
// store, the tenant registry, and, with the alert subsystem enabled,
// the subscription set. A SIGTERM never loses a review, a
// subscription, or an ICP profile.
package main

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"etap/internal/alert"
	"etap/internal/obs"
	"etap/internal/serve"
)

// checkpointer persists one named store through a revision/save pair,
// skipping writes when the revision hasn't moved since the last
// successful save. Safe for concurrent use: the periodic loop and the
// shutdown path share one mutex. Checkpoint activity reports into the
// process-wide registry labeled by store name, so leads and
// subscriptions chart separately.
type checkpointer struct {
	name string
	path string
	log  *slog.Logger
	rev  func() uint64
	dump func(path string) (uint64, error)

	saves *obs.Counter
	fails *obs.Counter
	skips *obs.Counter

	mu       sync.Mutex
	saved    bool
	savedRev uint64
	lastSave atomic.Int64 // unix nanos of the last successful save (start time before any)
}

// newCheckpointer wires a checkpointer for one store: rev reports the
// mutation count, dump writes a snapshot and returns the revision it
// captured. The checkpoint-age gauge is registered per store name.
func newCheckpointer(name, path string, rev func() uint64, dump func(string) (uint64, error), log *slog.Logger) *checkpointer {
	c := &checkpointer{
		name: name, path: path, log: log, rev: rev, dump: dump,
		saves: obs.Default.Counter("etap_store_checkpoints_total",
			"Checkpoints written (periodic and on shutdown), by store.", "store", name),
		fails: obs.Default.Counter("etap_store_checkpoint_errors_total",
			"Checkpoints that failed, by store.", "store", name),
		skips: obs.Default.Counter("etap_store_checkpoint_skips_total",
			"Checkpoint ticks skipped because the store had not changed, by store.", "store", name),
	}
	c.lastSave.Store(time.Now().UnixNano())
	obs.Default.GaugeFunc("etap_store_checkpoint_age_seconds",
		"Seconds since the store was last checkpointed (process start before the first).",
		func() float64 { return time.Since(time.Unix(0, c.lastSave.Load())).Seconds() },
		"store", name)
	return c
}

// leadsCheckpointer checkpoints the lead store behind the serve layer.
func leadsCheckpointer(srv *serve.Server, path string, log *slog.Logger) *checkpointer {
	return newCheckpointer("leads", path, srv.Revision, srv.SaveLeads, log)
}

// subsCheckpointer checkpoints the alert subscription set.
func subsCheckpointer(subs *alert.Subscriptions, path string, log *slog.Logger) *checkpointer {
	return newCheckpointer("subscriptions", path, subs.Revision, subs.SaveFile, log)
}

// save writes a checkpoint unless the store is unchanged since the
// last successful one. reason tags the log line and lets operators
// tell periodic saves from shutdown saves.
func (c *checkpointer) save(reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.saved && c.rev() == c.savedRev {
		c.skips.Inc()
		return nil
	}
	start := time.Now()
	rev, err := c.dump(c.path)
	if err != nil {
		c.fails.Inc()
		c.log.Error("checkpoint failed", "store", c.name, "path", c.path, "reason", reason, "err", err)
		return err
	}
	c.saved, c.savedRev = true, rev
	c.lastSave.Store(time.Now().UnixNano())
	c.saves.Inc()
	c.log.Info("store checkpointed",
		"store", c.name, "path", c.path, "reason", reason, "revision", rev, "elapsed", time.Since(start))
	return nil
}

// run checkpoints every interval until ctx is canceled. The final
// shutdown checkpoint is the server lifecycle's job, not run's: it
// must happen after the listener drains.
func (c *checkpointer) run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = c.save("periodic")
		}
	}
}

// serveUntilShutdown runs srv on ln until ctx is canceled (SIGTERM or
// SIGINT in production), then drains in-flight requests for at most
// drain, winds down the alert manager (queued documents finish
// processing, delivery lanes drain), and writes a final checkpoint per
// store — the zero-loss path the kill tests exercise. A nil manager
// means the streaming subsystem is disabled; cps may be empty when no
// durable stores are configured.
func serveUntilShutdown(ctx context.Context, log *slog.Logger, srv *http.Server, ln net.Listener, drain time.Duration, m *alert.Manager, cps ...*checkpointer) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}
	log.Info("shutdown: signal received, draining", "timeout", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Warn("shutdown: drain incomplete, closing", "err", err)
		_ = srv.Close()
	}
	// The listener is quiet: no new documents can arrive, so closing
	// the manager drains accepted documents into the lead store before
	// the checkpoints below snapshot it.
	if m != nil {
		m.Close()
		log.Info("shutdown: alert manager drained")
	}
	// Checkpoint after the drain so mutations accepted during it land
	// on disk too.
	var firstErr error
	for _, cp := range cps {
		if cp == nil {
			continue
		}
		if err := cp.save("shutdown"); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	log.Info("shutdown complete")
	return nil
}
