// Lifecycle hardening for etapd: signal-driven graceful shutdown with
// a drain timeout, and lead-store checkpointing (periodic and
// on-shutdown) so a SIGTERM never loses a review. Before this layer
// the daemon ended in a bare ListenAndServe and the store was only
// written once at startup — every POST /leads/review since then died
// with the process.
package main

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"etap/internal/obs"
	"etap/internal/serve"
)

// Checkpoint activity reports into the process-wide registry; the age
// gauge is registered per checkpointer so it can close over the last
// save time.
var (
	mCheckpoints = obs.Default.Counter("etap_store_checkpoints_total",
		"Lead-store checkpoints written (periodic and on shutdown).")
	mCheckpointErrors = obs.Default.Counter("etap_store_checkpoint_errors_total",
		"Lead-store checkpoints that failed.")
	mCheckpointSkips = obs.Default.Counter("etap_store_checkpoint_skips_total",
		"Checkpoint ticks skipped because the store had not changed.")
)

// checkpointer persists the lead store through the serve layer,
// skipping writes when the store revision hasn't moved since the last
// successful save. Safe for concurrent use: the periodic loop and the
// shutdown path share one mutex.
type checkpointer struct {
	srv  *serve.Server
	path string
	log  *slog.Logger

	mu       sync.Mutex
	saved    bool
	savedRev uint64
	lastSave atomic.Int64 // unix nanos of the last successful save (start time before any)
}

// newCheckpointer wires a checkpointer for the store behind srv and
// registers the checkpoint-age gauge.
func newCheckpointer(srv *serve.Server, path string, log *slog.Logger) *checkpointer {
	c := &checkpointer{srv: srv, path: path, log: log}
	c.lastSave.Store(time.Now().UnixNano())
	obs.Default.GaugeFunc("etap_store_checkpoint_age_seconds",
		"Seconds since the lead store was last checkpointed (process start before the first).",
		func() float64 { return time.Since(time.Unix(0, c.lastSave.Load())).Seconds() })
	return c
}

// save writes a checkpoint unless the store is unchanged since the
// last successful one. reason tags the log line and lets operators
// tell periodic saves from shutdown saves.
func (c *checkpointer) save(reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.saved && c.srv.Revision() == c.savedRev {
		mCheckpointSkips.Inc()
		return nil
	}
	start := time.Now()
	rev, err := c.srv.SaveLeads(c.path)
	if err != nil {
		mCheckpointErrors.Inc()
		c.log.Error("lead-store checkpoint failed", "path", c.path, "reason", reason, "err", err)
		return err
	}
	c.saved, c.savedRev = true, rev
	c.lastSave.Store(time.Now().UnixNano())
	mCheckpoints.Inc()
	c.log.Info("lead store checkpointed",
		"path", c.path, "reason", reason, "revision", rev, "elapsed", time.Since(start))
	return nil
}

// run checkpoints every interval until ctx is canceled. The final
// shutdown checkpoint is the server lifecycle's job, not run's: it
// must happen after the listener drains.
func (c *checkpointer) run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = c.save("periodic")
		}
	}
}

// serveUntilShutdown runs srv on ln until ctx is canceled (SIGTERM or
// SIGINT in production), then drains in-flight requests for at most
// drain and writes a final lead-store checkpoint — the zero-lead-loss
// path the kill test exercises. A nil cp means no durable store is
// configured.
func serveUntilShutdown(ctx context.Context, log *slog.Logger, srv *http.Server, ln net.Listener, drain time.Duration, cp *checkpointer) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}
	log.Info("shutdown: signal received, draining", "timeout", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Warn("shutdown: drain incomplete, closing", "err", err)
		_ = srv.Close()
	}
	// Checkpoint after the drain so reviews accepted during it land on
	// disk too.
	if cp != nil {
		if err := cp.save("shutdown"); err != nil {
			return err
		}
	}
	log.Info("shutdown complete")
	return nil
}
