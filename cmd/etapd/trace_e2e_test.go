package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"etap/internal/alert"
	"etap/internal/gather"
	"etap/internal/obs"
	"etap/internal/serve"
	"etap/internal/store"
	"etap/internal/web"
)

var traceparentRE = regexp.MustCompile(`^00-([0-9a-f]{32})-([0-9a-f]{16})-01$`)

// tracingWebhook is a real HTTP endpoint recording each attempt's
// traceparent header, failing the first `fail` attempts with 500.
type tracingWebhook struct {
	mu           sync.Mutex
	fail         int
	attempts     int
	traceparents []string
	delivered    []alert.Alert
	done         chan struct{}
}

func (f *tracingWebhook) handler(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts++
	f.traceparents = append(f.traceparents, r.Header.Get("traceparent"))
	if f.attempts <= f.fail {
		http.Error(w, "outage", http.StatusInternalServerError)
		return
	}
	var a alert.Alert
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.delivered = append(f.delivered, a)
	if len(f.delivered) == 1 {
		close(f.done)
	}
	w.WriteHeader(http.StatusOK)
}

func (f *tracingWebhook) snapshot() (parents []string, delivered []alert.Alert) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.traceparents...), append([]alert.Alert(nil), f.delivered...)
}

// TestTraceEndToEnd is the acceptance path: one document followable
// end to end. POST /ingest answers with a trace ID; the eventual
// webhook (after two forced 500s) carries a matching W3C traceparent
// with a fresh span ID per attempt; GET /debug/traces/{id} shows the
// full span tree; the delivery-lag histogram is populated; and an
// absurdly tight -lag-slo degrades /healthz with the documented reason.
// Run with -race (make race-trace / CI's tracing step).
func TestTraceEndToEnd(t *testing.T) {
	hook := &tracingWebhook{fail: 2, done: make(chan struct{})}
	webhookSrv := httptest.NewServer(http.HandlerFunc(hook.handler))
	defer webhookSrv.Close()

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 1, Registry: reg})
	api := serve.NewWithRegistry(nil, store.New(), reg)
	api.AttachTracer(tracer)
	w := web.New()
	w.Freeze()
	m := alert.NewManager(triggerPipeline{}, api, w, alert.Config{
		Registry: reg,
		Tracer:   tracer,
		LagSLO:   time.Nanosecond, // any real delivery lag exceeds this
		Retry: gather.RetryConfig{
			MaxAttempts:    4,
			Sleep:          func(time.Duration) {},
			AttemptTimeout: -1,
		},
		Log: quietLog(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	defer m.Close()
	api.AttachAlerts(m)
	apiSrv := httptest.NewServer(api)
	defer apiSrv.Close()

	// Subscribe, delivery to the traceparent-recording hook.
	resp, err := http.Post(apiSrv.URL+"/subscriptions", "application/json",
		strings.NewReader(`{"company":"Globex","webhook":"`+webhookSrv.URL+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscription create: %d", resp.StatusCode)
	}

	// Ingest: the 202 must name the trace.
	resp, err = http.Post(apiSrv.URL+"/ingest", "application/json",
		strings.NewReader(`{"url":"https://news.example/globex","text":"Globex will acquire Initech."}`))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	traceID := accepted["trace_id"]
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(traceID) {
		t.Fatalf("202 trace_id = %q, want 32 hex digits", traceID)
	}

	select {
	case <-hook.done:
	case <-time.After(10 * time.Second):
		t.Fatal("webhook never delivered")
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer fcancel()
	if err := m.Flush(fctx); err != nil {
		t.Fatal(err)
	}

	// Every attempt carried a traceparent joined to OUR trace, each with
	// its own span ID.
	parents, delivered := hook.snapshot()
	if len(parents) != 3 {
		t.Fatalf("webhook saw %d attempts, want 3", len(parents))
	}
	spanIDs := map[string]bool{}
	for i, tp := range parents {
		mm := traceparentRE.FindStringSubmatch(tp)
		if mm == nil {
			t.Fatalf("attempt %d traceparent %q is not W3C-formed", i, tp)
		}
		if mm[1] != traceID {
			t.Fatalf("attempt %d trace ID %s, want %s", i, mm[1], traceID)
		}
		spanIDs[mm[2]] = true
	}
	if len(spanIDs) != 3 {
		t.Fatalf("attempts shared span IDs: %v", spanIDs)
	}
	if len(delivered) != 1 || delivered[0].TraceID != traceID {
		t.Fatalf("delivered = %+v, want one alert carrying trace %s", delivered, traceID)
	}

	// The span tree is browsable and complete.
	resp, err = http.Get(apiSrv.URL + "/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	var tv obs.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/{id}: %d", resp.StatusCode)
	}
	counts := map[string]int{}
	for _, sp := range tv.Spans {
		counts[sp.Name]++
	}
	for _, want := range []string{"ingest", "index", "extract", "dedup", "store", "dispatch"} {
		if counts[want] == 0 {
			t.Errorf("trace missing %q span; have %v", want, counts)
		}
	}
	if counts["webhook"] != 3 {
		t.Errorf("trace has %d webhook spans, want one per attempt (3); %v", counts["webhook"], counts)
	}

	// The lag histogram is populated and the 1ns SLO degrades /healthz.
	resp, err = http.Get(apiSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "etap_alert_delivery_lag_seconds_count 1") {
		t.Error("/metrics missing etap_alert_delivery_lag_seconds_count 1")
	}
	if !strings.Contains(string(metrics), "etap_alert_subscriber_queue_wait_seconds_count") {
		t.Error("/metrics missing the subscriber queue-wait histogram")
	}

	resp, err = http.Get(apiSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d, want 503 with the lag SLO blown", resp.StatusCode)
	}
	found := false
	for _, r := range health.Degraded {
		if r == alert.DegradedDeliveryLag {
			found = true
		}
	}
	if !found {
		t.Fatalf("degradation reasons %v missing %q", health.Degraded, alert.DegradedDeliveryLag)
	}
	if health.Alerts == nil || health.Alerts.DeliveryLagP99 <= 0 {
		t.Fatalf("health alerts block = %+v, want a positive p99 lag", health.Alerts)
	}
}
