package main

// The WAL crash test backs the ingest-durability contract with a real
// SIGKILL: a child daemon 202s documents over HTTP while its pipeline
// is stalled — so nothing past the WAL has happened when the parent
// kills it -9 — and a second life must replay every accepted document
// into exactly one alert each, with no redelivery of events the first
// life already alerted and checkpointed.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"etap/internal/alert"
	"etap/internal/gather"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/serve"
	"etap/internal/store"
	"etap/internal/web"
)

const (
	walCrashEnvDir      = "ETAP_WAL_CRASH_DIR"
	walCrashEnvAddrFile = "ETAP_WAL_CRASH_ADDRFILE"
)

// walCrashPipeline is triggerPipeline with per-document snippets: each
// "acquire" page yields one Globex event whose text — and therefore
// alert fingerprint — is unique to the page.
type walCrashPipeline struct{}

func (walCrashPipeline) ExtractAllEvents(pages []*web.Page, _ float64) []rank.Event {
	var events []rank.Event
	for _, p := range pages {
		if strings.Contains(p.Text, "acquire") {
			events = append(events, rank.Event{
				SnippetID: p.URL + "#0",
				Driver:    "mergers-acquisitions",
				Company:   "Globex",
				Score:     0.93,
				Text:      p.Text,
			})
		}
	}
	return events
}

// stalledPipeline never returns: every consumed document parks its
// partition consumer forever, freezing the child between the 202 (WAL
// appended, fsynced) and any processing. That makes the parent's
// SIGKILL land in exactly the window the WAL exists for.
type stalledPipeline struct{}

func (stalledPipeline) ExtractAllEvents([]*web.Page, float64) []rank.Event {
	select {}
}

// crashManagerConfig is the alert configuration shared by every life
// of the crashed daemon — partition count must match or committed
// offsets would be collapsed.
func crashManagerConfig(wal *alert.WAL, subs *alert.Subscriptions) alert.Config {
	return alert.Config{
		Workers:       2,
		Partitions:    2,
		WAL:           wal,
		Subscriptions: subs,
		Registry:      obs.NewRegistry(),
		Retry: gather.RetryConfig{
			MaxAttempts:    3,
			Sleep:          func(time.Duration) {},
			AttemptTimeout: -1,
		},
		Log: quietLog(),
	}
}

// TestWALCrashChildProcess is the re-exec helper, not a test: it only
// runs when the parent sets the crash-dir environment variable. It
// serves POST /ingest with a stalled pipeline until SIGKILL reaps it.
func TestWALCrashChildProcess(t *testing.T) {
	dir := os.Getenv(walCrashEnvDir)
	if dir == "" {
		t.Skip("crash-test helper; runs only under TestWALCrashRecoverySIGKILL")
	}
	addrFile := os.Getenv(walCrashEnvAddrFile)
	wal, err := alert.OpenWAL(alert.WALConfig{Dir: dir, Log: quietLog()})
	if err != nil {
		t.Fatalf("child open wal: %v", err)
	}
	api := serve.New(nil, store.New())
	w := web.New()
	w.Freeze()
	m := alert.NewManager(stalledPipeline{}, api, w, crashManagerConfig(wal, nil))
	m.Start(context.Background())
	api.AttachAlerts(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("child listen: %v", err)
	}
	go func() {
		srv := &http.Server{Handler: api, ReadHeaderTimeout: 5 * time.Second}
		_ = srv.Serve(ln)
	}()
	// Publish the address atomically so the parent never reads a
	// half-written file.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatalf("child addr rename: %v", err)
	}
	select {} // hold everything in the stalled state until SIGKILL
}

// crashHook records webhook deliveries across all lives of the daemon.
type crashHook struct {
	mu        sync.Mutex
	delivered []alert.Alert
}

func (h *crashHook) handler(w http.ResponseWriter, r *http.Request) {
	var a alert.Alert
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h.mu.Lock()
	h.delivered = append(h.delivered, a)
	h.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// fingerprints returns the sorted snippet IDs delivered so far — one
// unique ID per source document under walCrashPipeline.
func (h *crashHook) fingerprints() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.delivered))
	for _, a := range h.delivered {
		out = append(out, a.Event.SnippetID)
	}
	sort.Strings(out)
	return out
}

func crashDoc(round, i int) alert.Document {
	return alert.Document{
		URL:   fmt.Sprintf("https://news.example/round%d-%d", round, i),
		Title: fmt.Sprintf("Round %d story %d", round, i),
		Text:  fmt.Sprintf("Round %d story %d: Globex will acquire Initech.", round, i),
	}
}

func crashSubs(t *testing.T, webhook string) *alert.Subscriptions {
	t.Helper()
	subs := alert.NewSubscriptions()
	if _, err := subs.Add(alert.Subscription{
		ID: "crm", Company: "Globex", MinScore: 0.5, WebhookURL: webhook,
	}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	return subs
}

func TestWALCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs a child process")
	}
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	leadsPath := filepath.Join(dir, "leads.jsonl")
	const perRound = 4

	hook := &crashHook{}
	webhookSrv := httptest.NewServer(http.HandlerFunc(hook.handler))
	defer webhookSrv.Close()

	// Life 1 (in-process): round 1 is ingested, alerted, and its leads
	// checkpointed — the WAL commits every offset on Close.
	wal1, err := alert.OpenWAL(alert.WALConfig{Dir: walDir, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	st1 := store.New()
	api1 := serve.New(nil, st1)
	w := web.New()
	w.Freeze()
	m1 := alert.NewManager(walCrashPipeline{}, api1, w, crashManagerConfig(wal1, crashSubs(t, webhookSrv.URL)))
	m1.Start(context.Background())
	for i := 0; i < perRound; i++ {
		if err := m1.Enqueue(crashDoc(1, i)); err != nil {
			t.Fatalf("round-1 enqueue %d: %v", i, err)
		}
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := m1.Flush(fctx); err != nil {
		t.Fatalf("round-1 flush: %v", err)
	}
	fcancel()
	m1.Close()
	if err := st1.SaveFile(leadsPath); err != nil {
		t.Fatalf("checkpoint leads: %v", err)
	}
	if got := hook.fingerprints(); len(got) != perRound {
		t.Fatalf("life 1 delivered %d alerts, want %d", len(got), perRound)
	}

	// Life 2 (child process, pipeline stalled): round 2 is 202'd over
	// real HTTP — each document fsynced into the WAL before its response
	// — and then the daemon dies to SIGKILL with nothing processed.
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestWALCrashChildProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		walCrashEnvDir+"="+walDir,
		walCrashEnvAddrFile+"="+addrFile,
	)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	var base string
	deadline := time.Now().Add(15 * time.Second)
	for base == "" {
		select {
		case err := <-exited:
			t.Fatalf("child exited before serving: %v", err)
		default:
		}
		if b, err := os.ReadFile(addrFile); err == nil {
			base = "http://" + string(b)
		} else if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("child never published its address")
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	accepted := make([]string, 0, perRound)
	for i := 0; i < perRound; i++ {
		doc := crashDoc(2, i)
		body, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/ingest", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("round-2 ingest %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round-2 ingest %d: status %d, want 202", i, resp.StatusCode)
		}
		accepted = append(accepted, doc.URL+"#0")
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill child: %v", err)
	}
	<-exited // reaps; exit error "signal: killed" is the point

	// Life 3 (in-process): reload the checkpointed leads, seed dedup
	// from them, and let Start replay the killed child's WAL tail.
	st3, err := store.LoadFile(leadsPath)
	if err != nil {
		t.Fatal(err)
	}
	var seen []rank.Event
	for _, l := range st3.Find(store.Query{}) {
		seen = append(seen, l.Event)
	}
	if len(seen) != perRound {
		t.Fatalf("checkpoint carried %d leads, want %d", len(seen), perRound)
	}
	wal3, err := alert.OpenWAL(alert.WALConfig{Dir: walDir, Log: quietLog()})
	if err != nil {
		t.Fatalf("recovery open failed (torn wal?): %v", err)
	}
	api3 := serve.NewWithRegistry(nil, st3, obs.NewRegistry())
	m3 := alert.NewManager(walCrashPipeline{}, api3, w, crashManagerConfig(wal3, crashSubs(t, webhookSrv.URL)))
	m3.SeedEvents(seen)
	m3.Start(context.Background())
	fctx, fcancel = context.WithTimeout(context.Background(), 15*time.Second)
	defer fcancel()
	if err := m3.Flush(fctx); err != nil {
		t.Fatalf("replay flush: %v", err)
	}
	m3.Close()

	// Every 202'd document alerted at least once; round-1 documents
	// exactly once across all lives; no fingerprint delivered twice.
	got := hook.fingerprints()
	want := make([]string, 0, 2*perRound)
	for i := 0; i < perRound; i++ {
		want = append(want, crashDoc(1, i).URL+"#0")
	}
	want = append(want, accepted...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("deliveries across lives = %v, want exactly %v", got, want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("fingerprint %q delivered more than once", got[i])
		}
	}
	// And the replayed documents landed in the lead store alongside the
	// reloaded checkpoint.
	if leads := st3.Find(store.Query{}); len(leads) != 2*perRound {
		t.Fatalf("recovered lead store holds %d leads, want %d", len(leads), 2*perRound)
	}
}
