package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"etap/internal/alert"
	"etap/internal/gather"
	"etap/internal/rank"
	"etap/internal/serve"
	"etap/internal/store"
	"etap/internal/web"
)

// triggerPipeline is a deterministic stand-in for a trained system:
// any page mentioning "acquire" yields one merger event for Globex.
// The snippet ID derives from the URL so the lead store sees a stable
// identity, while the alert fingerprint (driver+company+text) decides
// novelty.
type triggerPipeline struct{}

func (triggerPipeline) ExtractAllEvents(pages []*web.Page, _ float64) []rank.Event {
	var events []rank.Event
	for _, p := range pages {
		if strings.Contains(p.Text, "acquire") {
			events = append(events, rank.Event{
				SnippetID: p.URL + "#0",
				Driver:    "mergers-acquisitions",
				Company:   "Globex",
				Score:     0.93,
				Text:      "Globex will acquire Initech for $12M.",
			})
		}
	}
	return events
}

// flakyWebhook is a real HTTP endpoint that rejects the first fail
// requests with 500 before accepting, so delivery exercises the retry
// path over the wire.
type flakyWebhook struct {
	mu        sync.Mutex
	fail      int
	attempts  int
	delivered []alert.Alert
	done      chan struct{} // closed on first successful delivery
}

func (f *flakyWebhook) handler(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts++
	if f.attempts <= f.fail {
		http.Error(w, "outage", http.StatusInternalServerError)
		return
	}
	var a alert.Alert
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.delivered = append(f.delivered, a)
	if len(f.delivered) == 1 {
		close(f.done)
	}
	w.WriteHeader(http.StatusOK)
}

func (f *flakyWebhook) stats() (attempts, delivered int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts, len(f.delivered)
}

func e2eManager(t *testing.T, api *serve.Server, subs *alert.Subscriptions) *alert.Manager {
	t.Helper()
	w := web.New()
	w.Freeze()
	return alert.NewManager(triggerPipeline{}, api, w, alert.Config{
		Subscriptions: subs,
		Retry: gather.RetryConfig{
			MaxAttempts:    4,
			Sleep:          func(time.Duration) {},
			AttemptTimeout: -1,
		},
		Log: quietLog(),
	})
}

// TestAlertPipelineSurvivesSIGTERM is the streaming kill test: a live
// daemon takes a subscription and a document over HTTP, delivers the
// resulting alert to a webhook (after transient failures force
// retries) and to an SSE client, then dies to a real SIGTERM. A second
// life reloads the checkpointed subscription set and lead store, seeds
// dedup from the leads, and replaying the same document must not alert
// again.
func TestAlertPipelineSurvivesSIGTERM(t *testing.T) {
	dir := t.TempDir()
	leadsPath := filepath.Join(dir, "leads.jsonl")
	subsPath := filepath.Join(dir, "subs.jsonl")

	hook := &flakyWebhook{fail: 2, done: make(chan struct{})}
	webhookSrv := httptest.NewServer(http.HandlerFunc(hook.handler))
	defer webhookSrv.Close()

	log := quietLog()
	st := store.New()
	api := serve.New(nil, st)
	subs := alert.NewSubscriptions()
	m := e2eManager(t, api, subs)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	m.Start(ctx)
	api.AttachAlerts(m)
	leadsCP := leadsCheckpointer(api, leadsPath, log)
	subsCP := subsCheckpointer(subs, subsPath, log)
	srv := &http.Server{Handler: api, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- serveUntilShutdown(ctx, log, srv, ln, 5*time.Second, m, leadsCP, subsCP) }()

	base := "http://" + ln.Addr().String()

	// Subscribe to Globex merger events, delivered to the flaky hook.
	body := strings.NewReader(`{"company":"Globex","driver":"mergers-acquisitions","minScore":0.5,"webhook":"` + webhookSrv.URL + `"}`)
	resp, err := http.Post(base+"/subscriptions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var created alert.Subscription
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("subscription create: status %d, id %q", resp.StatusCode, created.ID)
	}

	// Attach a live SSE client before ingesting.
	sseCtx, sseCancel := context.WithCancel(context.Background())
	defer sseCancel()
	sseReq, err := http.NewRequestWithContext(sseCtx, http.MethodGet, base+"/alerts/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sseFrames := make(chan string, 4)
	go func() {
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				sseFrames <- strings.TrimPrefix(line, "data: ")
			}
		}
	}()

	// Ingest a document carrying a trigger-event sentence.
	doc := `{"url":"https://news.example/globex","title":"Globex to buy Initech","text":"Globex announced it will acquire Initech for $12M."}`
	resp, err = http.Post(base+"/ingest", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	// The webhook must see the alert after riding out two 500s.
	select {
	case <-hook.done:
	case <-time.After(10 * time.Second):
		t.Fatal("webhook never delivered")
	}
	attempts, delivered := hook.stats()
	if attempts != 3 || delivered != 1 {
		t.Fatalf("webhook attempts=%d delivered=%d, want 3 and 1", attempts, delivered)
	}
	if hook.delivered[0].Subscription != created.ID || hook.delivered[0].Event.Company != "Globex" {
		t.Fatalf("webhook alert = %+v", hook.delivered[0])
	}

	// The SSE client sees the same alert.
	select {
	case frame := <-sseFrames:
		var a alert.Alert
		if err := json.Unmarshal([]byte(frame), &a); err != nil {
			t.Fatalf("bad SSE frame %q: %v", frame, err)
		}
		if a.Event.Company != "Globex" || a.Event.Driver != "mergers-acquisitions" {
			t.Fatalf("SSE alert = %+v", a)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no SSE frame")
	}

	// Drop the stream (a live SSE connection would hold the drain open),
	// then kill the daemon for real.
	sseCancel()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}

	// Second life: reload everything the first life checkpointed.
	st2, err := store.LoadFile(leadsPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Find(store.Query{}); len(got) != 1 || got[0].Company != "Globex" {
		t.Fatalf("reloaded leads = %+v", got)
	}
	subs2, err := alert.LoadSubscriptions(subsPath)
	if err != nil {
		t.Fatal(err)
	}
	if subs2.Len() != 1 {
		t.Fatalf("reloaded %d subscriptions", subs2.Len())
	}
	if _, err := subs2.Get(created.ID); err != nil {
		t.Fatalf("subscription %s lost across SIGTERM: %v", created.ID, err)
	}

	api2 := serve.NewWithRegistry(nil, st2, nil)
	m2 := e2eManager(t, api2, subs2)
	var seen []rank.Event
	for _, l := range st2.Find(store.Query{}) {
		seen = append(seen, l.Event)
	}
	m2.SeedEvents(seen)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	m2.Start(ctx2)
	defer m2.Close()

	// Replaying the same document after the restart must not re-alert:
	// the dedup set was rebuilt from the persisted leads.
	if err := m2.Enqueue(alert.Document{
		URL:  "https://news.example/globex",
		Text: "Globex announced it will acquire Initech for $12M.",
	}); err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer fcancel()
	if err := m2.Flush(fctx); err != nil {
		t.Fatal(err)
	}
	if attempts, delivered := hook.stats(); delivered != 1 {
		t.Fatalf("replay re-alerted: attempts=%d delivered=%d", attempts, delivered)
	}
	if got := st2.Find(store.Query{}); len(got) != 1 {
		t.Fatalf("replay duplicated leads: %d", len(got))
	}
}
