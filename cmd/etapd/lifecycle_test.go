package main

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"etap/internal/rank"
	"etap/internal/serve"
	"etap/internal/store"
)

func seedStoreFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "leads.jsonl")
	s := store.New()
	s.Add([]rank.Event{
		{SnippetID: "k#0", Driver: "ma", Company: "Acme", Score: 0.9, Text: "Acme buys Widget."},
		{SnippetID: "k#1", Driver: "ma", Company: "Widget", Score: 0.5, Text: "Widget sold."},
	}, time.Unix(1_120_000_000, 0))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestShutdownCheckpointSurvivesSIGTERM is the kill test: a daemon with
// a loaded lead store accepts a review over live HTTP, receives a real
// SIGTERM, exits cleanly, and the review is present when the store is
// reloaded — the data-loss bug this PR fixes.
func TestShutdownCheckpointSurvivesSIGTERM(t *testing.T) {
	path := seedStoreFile(t)
	st, err := store.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	log := quietLog()
	api := serve.New(nil, st)
	cp := leadsCheckpointer(api, path, log)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Handler: api, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- serveUntilShutdown(ctx, log, srv, ln, 5*time.Second, nil, cp) }()

	base := "http://" + ln.Addr().String()
	// Review a lead through the live API: an unsaved store mutation.
	resp, err := http.Post(base+"/leads/review?id=k%230", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("review status %d", resp.StatusCode)
	}

	// The test binary is its own process; a real SIGTERM exercises the
	// production signal path end to end.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}

	// Restart: the review must have survived.
	reloaded, err := store.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := reloaded.Find(store.Query{})
	if len(got) != 2 {
		t.Fatalf("reloaded %d leads", len(got))
	}
	seen := false
	for _, l := range got {
		if l.SnippetID == "k#0" {
			seen = true
			if !l.Reviewed {
				t.Fatal("review lost across SIGTERM")
			}
		}
	}
	if !seen {
		t.Fatal("lead k#0 missing after restart")
	}
}

// TestCheckpointerSkipsWhenUnchanged verifies the revision gate: ticks
// with no store mutations don't rewrite the file.
func TestCheckpointerSkipsWhenUnchanged(t *testing.T) {
	path := seedStoreFile(t)
	st, err := store.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	api := serve.New(nil, st)
	cp := leadsCheckpointer(api, path, quietLog())

	skips0 := cp.skips.Value()
	saves0 := cp.saves.Value()
	if err := cp.save("test"); err != nil {
		t.Fatal(err)
	}
	if cp.saves.Value() != saves0+1 {
		t.Fatal("first save did not write")
	}
	// Unchanged store: the next two saves are skips.
	if err := cp.save("test"); err != nil {
		t.Fatal(err)
	}
	if err := cp.save("test"); err != nil {
		t.Fatal(err)
	}
	if got := cp.skips.Value() - skips0; got != 2 {
		t.Fatalf("skips = %d, want 2", got)
	}
	if cp.saves.Value() != saves0+1 {
		t.Fatal("no-op save rewrote the file")
	}
	// A mutation re-arms the checkpointer.
	req := httptest.NewRequest(http.MethodPost, "/leads/review?id=k%231", nil)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("review status %d", rec.Code)
	}
	if err := cp.save("test"); err != nil {
		t.Fatal(err)
	}
	if cp.saves.Value() != saves0+2 {
		t.Fatal("post-mutation save skipped")
	}
}

// TestServeUntilShutdownPropagatesServeError covers the non-signal exit
// path: a listener error surfaces instead of hanging.
func TestServeUntilShutdownPropagatesServeError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve on a closed listener fails immediately.
	srv := &http.Server{Handler: http.NotFoundHandler()}
	if err := serveUntilShutdown(context.Background(), quietLog(), srv, ln, time.Second, nil); err == nil {
		t.Fatal("closed-listener error swallowed")
	}
}
