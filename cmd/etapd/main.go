// Command etapd serves a trained ETAP system over HTTP: the lead-store
// browsing/review API plus on-demand snippet scoring. It trains the
// built-in drivers at startup (or loads previously saved models) and can
// pre-populate the lead store from a full extraction pass.
//
// Usage:
//
//	etapd [-addr :8080] [-seed N] [-load-models dir] [-leads leads.jsonl]
//	      [-extract] [-log-level info] [-pprof]
//	      [-index-shards N] [-query-cache N] [-index-seed N]
//	      [-index-dir dir] [-segment-flush-docs N] [-merge-factor N]
//	      [-shutdown-timeout 10s] [-checkpoint-interval 30s]
//	      [-alerts] [-subscriptions subs.jsonl]
//	      [-ingest-workers N] [-ingest-queue N] [-ingest-partitions N]
//	      [-wal-dir dir] [-wal-fsync-batch N]
//	      [-trace-sample 0.1] [-trace-store 256] [-lag-slo 0]
//	      [-kb kb.jsonl] [-tenants tenants.jsonl]
//
// Streaming (default on, -alerts=false disables): POST /ingest feeds
// documents through the extraction pipeline incrementally, deduped
// trigger events land in the lead store, and matching subscribers
// (CRUD under /subscriptions, persisted to -subscriptions) get webhook
// and GET /alerts/stream SSE alerts. A full ingest queue answers 429.
//
// Ingest durability: with -wal-dir, every accepted document is
// appended to a write-ahead log (length+CRC framed, group-commit
// fsynced; -wal-fsync-batch caps appends acknowledged per fsync)
// BEFORE the 202 is returned, documents are routed by URL hash to
// -ingest-partitions ordered consumer lanes (default: the worker
// count) that advance committed offsets only after processing, and
// startup replays the uncommitted tail — a crash, even SIGKILL, loses
// no accepted document (fingerprint dedup keeps the replay from
// re-alerting). The on-disk format is specified in STORAGE.md §9 and
// the recovery runbook lives in OPERATIONS.md. Without -wal-dir,
// ingest is memory-only (the pre-WAL behaviour).
//
// Tracing (with -alerts): every accepted document gets a trace ID
// (echoed by the 202) following it through extraction, matching, and
// each webhook attempt (outgoing W3C traceparent header). Completed
// traces are tail-sampled — errors and the slow tail always retained,
// healthy traces at -trace-sample — into a -trace-store-entry ring
// served at GET /debug/traces (and /debug/traces/{id}); -trace-store 0
// disables tracing. Log lines carry trace_id/span_id when in scope.
// -lag-slo sets a p99 budget on delivery lag (ingest accept → webhook
// 2xx); exceeding it degrades /healthz.
//
// Multi-tenant ICP serving: the daemon always carries a company
// knowledge base (industry, size, HQ, keywords, relationships) and a
// tenant registry. -kb names the KB file — loaded when it exists,
// otherwise generated from -seed and saved there; without the flag the
// KB lives in RAM only (same bytes either way: generation is seed-
// deterministic). Tenants CRUD under /tenants defines per-tenant
// ideal-customer profiles; GET /leads?tenant={id} filters and re-ranks
// against that tenant's ICP, and tenant-scoped alert subscriptions
// apply the same ICP at fan-out time. -tenants names the profile store
// (JSONL), checkpointed alongside leads and subscriptions.
//
// Index persistence: by default the search index is rebuilt in RAM at
// startup. With -index-dir it is backed by immutable on-disk segments
// under that directory (format specified in STORAGE.md): a restart
// re-opens committed segments instead of re-indexing the corpus,
// -segment-flush-docs sets the per-writer memtable size sealed into
// each segment, and -merge-factor the tiered background-merge fan-in.
// Graceful shutdown flushes all in-memory batches before exit.
//
// Lifecycle: SIGTERM or SIGINT triggers a graceful shutdown — the
// listener stops accepting, in-flight requests drain for up to
// -shutdown-timeout, queued documents finish processing, and the lead
// store, subscription set, and tenant registry are checkpointed so
// reviews, streamed leads, subscriptions, and ICP profiles survive the
// restart. While running, the stores are also checkpointed every
// -checkpoint-interval (skipped when nothing changed).
//
// Observability:
//
//	GET /metrics           Prometheus text exposition (pipeline + HTTP metrics)
//	GET /debug/vars        JSON snapshot of the same registry
//	GET /healthz           readiness: drivers, store size, uptime, runtime stats
//	GET /debug/build       build identity (version, go, VCS revision)
//	GET /debug/traces      recent per-document traces (with -alerts)
//	GET /debug/traces/{id} one trace's full span tree (with -alerts)
//	GET /debug/pprof/      Go profiler endpoints (only with -pprof)
//
// Logs are structured (log/slog, text to stderr); -log-level selects
// debug|info|warn|error. Per-request access logs are emitted at debug.
//
// Try it:
//
//	etapd -extract &
//	curl 'localhost:8080/leads?min=0.9&top=5'
//	curl 'localhost:8080/metrics'
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"etap"
	"etap/internal/alert"
	"etap/internal/kb"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/serve"
	"etap/internal/store"
	"etap/internal/tenant"
)

// options collects the parsed command-line flags.
type options struct {
	addr       string
	seed       int64
	loadDir    string
	leadsPath  string
	extract    bool
	pprofOn    bool
	shards     int
	cacheSize  int
	routeSeed  uint64
	indexDir   string
	flushDocs  int
	mergeFac   int
	drain      time.Duration
	checkpoint time.Duration

	kbPath      string
	tenantsPath string

	alerts        bool
	subsPath      string
	ingestWorkers int
	ingestQueue   int
	ingestParts   int
	walDir        string
	walFsyncBatch int
	traceSample   float64
	traceStore    int
	lagSLO        time.Duration
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		seed       = flag.Int64("seed", 1, "world and training seed")
		loadDir    = flag.String("load-models", "", "load driver models instead of training")
		leadsPath  = flag.String("leads", "", "JSONL lead store to load (and keep updating via the API)")
		extract    = flag.Bool("extract", false, "run a full extraction pass at startup to populate the store")
		logLevel   = flag.String("log-level", "info", "log level: debug|info|warn|error")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		shards     = flag.Int("index-shards", 0, "search-index shard count (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("query-cache", 0, "query-result cache entries (0 = default, negative = disabled)")
		routeSeed  = flag.Uint64("index-seed", 0, "deterministic shard-routing seed (0 = random per process)")
		indexDir   = flag.String("index-dir", "", "persistent segment-index directory (empty = in-RAM index; see STORAGE.md)")
		flushDocs  = flag.Int("segment-flush-docs", 0, "per-writer memtable docs before a segment flush (0 = default; with -index-dir)")
		mergeFac   = flag.Int("merge-factor", 0, "tiered segment-merge fan-in (0 = default; with -index-dir)")
		drain      = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGTERM/SIGINT")
		checkpoint = flag.Duration("checkpoint-interval", 30*time.Second, "how often to checkpoint the lead store to -leads (0 disables periodic saves)")

		kbPath      = flag.String("kb", "", "company knowledge-base JSONL: loaded when present, else generated from -seed and saved (empty = in-RAM KB)")
		tenantsPath = flag.String("tenants", "", "JSONL tenant-profile store to load (and keep checkpointing)")

		alerts        = flag.Bool("alerts", true, "enable the streaming subsystem (/ingest, /subscriptions, /alerts/stream)")
		subsPath      = flag.String("subscriptions", "", "JSONL subscription store to load (and keep checkpointing)")
		ingestWorkers = flag.Int("ingest-workers", 0, "ingest worker-pool size (0 = default 2)")
		ingestQueue   = flag.Int("ingest-queue", 0, "per-partition ingest queue capacity before 429s (0 = default 64)")
		ingestParts   = flag.Int("ingest-partitions", 0, "ingest partition count, one ordered consumer lane each (0 = worker count)")
		walDir        = flag.String("wal-dir", "", "ingest write-ahead-log directory; accepted documents are durable before the 202 (empty = no WAL)")
		walFsyncBatch = flag.Int("wal-fsync-batch", 0, "max WAL appends acknowledged per fsync; 1 = fsync every append (0 = default 64; with -wal-dir)")
		traceSample   = flag.Float64("trace-sample", 0.1, "fraction of healthy traces retained (errors and the slow tail always kept)")
		traceStore    = flag.Int("trace-store", 256, "retained-trace ring capacity (0 disables per-document tracing)")
		lagSLO        = flag.Duration("lag-slo", 0, "p99 delivery-lag budget, ingest accept to webhook 2xx (0 disables the /healthz check)")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etapd:", err)
		os.Exit(2)
	}
	log := slog.New(obs.NewTraceHandler(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
	slog.SetDefault(log)

	opts := options{
		addr:       *addr,
		seed:       *seed,
		loadDir:    *loadDir,
		leadsPath:  *leadsPath,
		extract:    *extract,
		pprofOn:    *pprofOn,
		shards:     *shards,
		cacheSize:  *cacheSize,
		routeSeed:  *routeSeed,
		indexDir:   *indexDir,
		flushDocs:  *flushDocs,
		mergeFac:   *mergeFac,
		drain:      *drain,
		checkpoint: *checkpoint,

		kbPath:      *kbPath,
		tenantsPath: *tenantsPath,

		alerts:        *alerts,
		subsPath:      *subsPath,
		ingestWorkers: *ingestWorkers,
		ingestQueue:   *ingestQueue,
		ingestParts:   *ingestParts,
		walDir:        *walDir,
		walFsyncBatch: *walFsyncBatch,
		traceSample:   *traceSample,
		traceStore:    *traceStore,
		lagSLO:        *lagSLO,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// Once the first signal starts the graceful path, restore the
		// default disposition so a second signal kills immediately.
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, log, opts); err != nil {
		log.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, log *slog.Logger, opts options) error {
	start := time.Now()
	seed := opts.seed
	gen := etap.NewWorldGenerator(etap.WorldConfig{Seed: seed})
	cfg := etap.Config{
		Seed: seed, Shards: opts.shards, CacheSize: opts.cacheSize, RouteSeed: opts.routeSeed,
		IndexDir: opts.indexDir, SegmentFlushDocs: opts.flushDocs, MergeFactor: opts.mergeFac,
	}
	w, err := etap.BuildWebEngine(gen.World(), cfg)
	if err != nil {
		return fmt.Errorf("opening index: %w", err)
	}
	// Closing the web flushes the persistent index's memtables and
	// commits its manifest, so everything indexed this run re-opens
	// instead of re-indexing next run; a no-op for the in-RAM engine.
	defer func() {
		if cerr := w.Close(); cerr != nil {
			log.Error("index close", "err", cerr)
		}
	}()
	sys := etap.NewSystem(w, cfg)
	st0 := w.Index().IndexStats()
	log.Info("world built", "pages", w.Len(), "seed", seed,
		"index_shards", st0.Shards, "index_postings", st0.Postings,
		"index_segments", st0.Segments, "index_dir", opts.indexDir,
		"elapsed", time.Since(start))

	for _, d := range etap.DefaultDrivers() {
		t0 := time.Now()
		if opts.loadDir != "" {
			data, err := os.ReadFile(filepath.Join(opts.loadDir, d.ID+".json"))
			if err != nil {
				return fmt.Errorf("loading %s: %w", d.ID, err)
			}
			if err := sys.UnmarshalDriver(data, d.Filter); err != nil {
				return err
			}
			log.Info("driver loaded", "driver", d.ID, "elapsed", time.Since(t0))
			continue
		}
		stats, err := sys.AddDriver(d, purePositives(gen, d.ID))
		if err != nil {
			return fmt.Errorf("training %s: %w", d.ID, err)
		}
		log.Info("driver trained", "driver", d.ID,
			"noisy_positives", stats.NoisyPositives,
			"negatives", stats.Negatives,
			"vocabulary", stats.VocabularySize,
			"noise_rounds", len(stats.NoiseHistory),
			"elapsed", time.Since(t0))
	}

	var st *store.Store
	if opts.leadsPath != "" {
		st, err = store.LoadFile(opts.leadsPath)
		if err != nil {
			return err
		}
		log.Info("lead store loaded", "path", opts.leadsPath, "leads", st.Len())
	} else {
		st = store.New()
	}

	if opts.extract {
		if err := extractAll(log, sys, w, st); err != nil {
			return err
		}
		if opts.leadsPath != "" {
			if err := st.SaveFile(opts.leadsPath); err != nil {
				return err
			}
		}
	}

	api := serve.New(sys, st)

	// Knowledge base: load the persisted file when it exists, otherwise
	// generate from the world seed (byte-deterministic, so a later load
	// sees the same records) and persist it when a path was given.
	kbase, err := loadOrGenerateKB(log, opts.kbPath, seed)
	if err != nil {
		return err
	}
	api.AttachKB(kbase)

	// Tenant registry: ICP profiles behind /tenants, checkpointed like
	// the lead store. Attached even without -tenants so the multi-tenant
	// API works (profiles are just not durable then).
	tenants := tenant.NewRegistry(tenant.Config{})
	if opts.tenantsPath != "" {
		tenants, err = tenant.LoadFile(opts.tenantsPath, tenant.Config{})
		if err != nil {
			return fmt.Errorf("loading tenants: %w", err)
		}
		log.Info("tenant registry loaded", "path", opts.tenantsPath, "tenants", tenants.Len())
	}
	api.AttachTenants(tenants)
	var tenantsCP *checkpointer
	if opts.tenantsPath != "" {
		tenantsCP = newCheckpointer("tenants", opts.tenantsPath, tenants.Revision, tenants.SaveFile, log)
		if opts.checkpoint > 0 {
			go tenantsCP.run(ctx, opts.checkpoint)
		}
	}

	// Streaming subsystem: incremental ingestion, subscriptions, and
	// alert delivery over the same system, web, and lead store.
	var manager *alert.Manager
	var subsCP *checkpointer
	if opts.alerts {
		subs := alert.NewSubscriptions()
		if opts.subsPath != "" {
			subs, err = alert.LoadSubscriptions(opts.subsPath)
			if err != nil {
				return fmt.Errorf("loading subscriptions: %w", err)
			}
			log.Info("subscriptions loaded", "path", opts.subsPath, "subscriptions", subs.Len())
		}
		var tracer *obs.Tracer
		if opts.traceStore > 0 {
			tracer = obs.NewTracer(obs.TracerConfig{
				Capacity:   opts.traceStore,
				SampleRate: opts.traceSample,
			})
			api.AttachTracer(tracer)
		}
		var wal *alert.WAL
		if opts.walDir != "" {
			wal, err = alert.OpenWAL(alert.WALConfig{
				Dir:        opts.walDir,
				FsyncBatch: opts.walFsyncBatch,
				Log:        log,
			})
			if err != nil {
				return fmt.Errorf("opening ingest wal: %w", err)
			}
			log.Info("ingest wal open", "dir", opts.walDir,
				"fsync_batch", opts.walFsyncBatch, "stats", wal.Stats())
		}
		manager = alert.NewManager(sys, api, w, alert.Config{
			Workers:       opts.ingestWorkers,
			Partitions:    opts.ingestParts,
			QueueSize:     opts.ingestQueue,
			WAL:           wal,
			Subscriptions: subs,
			Tenants:       tenants,
			KB:            kbase,
			Log:           log,
			Tracer:        tracer,
			LagSLO:        opts.lagSLO,
		})
		// Everything already in the lead store has been alerted (or
		// predates alerting): seed the dedup set so a restart — or a
		// re-crawl replayed through /ingest — never re-alerts it.
		var seen []rank.Event
		for _, l := range st.Find(store.Query{}) {
			seen = append(seen, l.Event)
		}
		manager.SeedEvents(seen)
		manager.Start(ctx)
		api.AttachAlerts(manager)
		log.Info("alert subsystem enabled",
			"subscriptions", subs.Len(), "seeded_events", len(seen))
		if opts.subsPath != "" {
			subsCP = subsCheckpointer(subs, opts.subsPath, log)
			if opts.checkpoint > 0 {
				go subsCP.run(ctx, opts.checkpoint)
			}
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", api)
	if opts.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}

	var cp *checkpointer
	if opts.leadsPath != "" {
		cp = leadsCheckpointer(api, opts.leadsPath, log)
		if opts.checkpoint > 0 {
			go cp.run(ctx, opts.checkpoint)
		}
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           accessLog(log, mux),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Info("serving", "addr", ln.Addr().String(), "startup", time.Since(start))
	return serveUntilShutdown(ctx, log, srv, ln, opts.drain, manager, cp, subsCP, tenantsCP)
}

// loadOrGenerateKB resolves the company knowledge base: the persisted
// file when path names one, otherwise a fresh seed-deterministic
// generation — saved to path (when given) so the next start loads the
// identical bytes instead of regenerating.
func loadOrGenerateKB(log *slog.Logger, path string, seed int64) (*kb.KB, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			k, err := kb.LoadFile(path)
			if err != nil {
				return nil, fmt.Errorf("loading knowledge base: %w", err)
			}
			log.Info("knowledge base loaded", "path", path, "companies", k.Len())
			return k, nil
		}
	}
	k := kb.Generate(kb.Config{Seed: seed})
	if path != "" {
		if err := k.SaveFile(path); err != nil {
			return nil, fmt.Errorf("saving knowledge base: %w", err)
		}
	}
	log.Info("knowledge base generated", "seed", seed, "companies", k.Len(), "path", path)
	return k, nil
}

// purePositives samples the per-driver labeled snippets used alongside
// the automatically generated training data.
func purePositives(gen *etap.WorldGenerator, driverID string) []string {
	var pure []string
	for _, p := range gen.PurePositives(etap.Driver(driverID), 40) {
		pure = append(pure, p.Text)
	}
	return pure
}

// extractAll runs the startup extraction pass under an obs trace so the
// per-stage cost of populating the store lands in the log and /metrics.
func extractAll(log *slog.Logger, sys *etap.System, w *etap.Web, st *store.Store) error {
	var pages []*etap.Page
	for _, u := range w.URLs() {
		if p, ok := w.Page(u); ok {
			pages = append(pages, p)
		}
	}
	tr := obs.NewTrace("startup-extract", nil)
	ctx := obs.WithTrace(context.Background(), tr)
	for _, d := range etap.DefaultDrivers() {
		sp := obs.StartSpan(ctx, "extract")
		events, err := sys.ExtractEventsParallel(d.ID, pages, 0.5, 0)
		if err != nil {
			return err
		}
		sp.AddItems(len(events))
		sp.End()
		added := st.Add(events, time.Now())
		log.Info("extracted", "driver", d.ID, "events", len(events), "new", added)
	}
	log.Info("extraction pass done", "trace", tr.String(), "elapsed", tr.Elapsed())
	return nil
}

// accessLog wraps the handler with a structured per-request log line at
// debug level (method, path, status, duration).
func accessLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := serve.NewStatusWriter(w)
		next.ServeHTTP(sw, r)
		log.Debug("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.Status(),
			"duration", time.Since(start))
	})
}
