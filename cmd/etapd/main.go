// Command etapd serves a trained ETAP system over HTTP: the lead-store
// browsing/review API plus on-demand snippet scoring. It trains the
// built-in drivers at startup (or loads previously saved models) and can
// pre-populate the lead store from a full extraction pass.
//
// Usage:
//
//	etapd [-addr :8080] [-seed N] [-load-models dir] [-leads leads.jsonl]
//	      [-extract]
//
// Try it:
//
//	etapd -extract &
//	curl 'localhost:8080/leads?min=0.9&top=5'
//	curl 'localhost:8080/score?driver=change-in-management&text=Acme+named+a+new+CEO'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"etap"
	"etap/internal/serve"
	"etap/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Int64("seed", 1, "world and training seed")
		loadDir   = flag.String("load-models", "", "load driver models instead of training")
		leadsPath = flag.String("leads", "", "JSONL lead store to load (and keep updating via the API)")
		extract   = flag.Bool("extract", false, "run a full extraction pass at startup to populate the store")
	)
	flag.Parse()

	if err := run(*addr, *seed, *loadDir, *leadsPath, *extract); err != nil {
		fmt.Fprintln(os.Stderr, "etapd:", err)
		os.Exit(1)
	}
}

func run(addr string, seed int64, loadDir, leadsPath string, extract bool) error {
	gen := etap.NewWorldGenerator(etap.WorldConfig{Seed: seed})
	w := etap.BuildWeb(gen.World())
	sys := etap.NewSystem(w, etap.Config{Seed: seed})

	for _, d := range etap.DefaultDrivers() {
		if loadDir != "" {
			data, err := os.ReadFile(filepath.Join(loadDir, d.ID+".json"))
			if err != nil {
				return fmt.Errorf("loading %s: %w", d.ID, err)
			}
			if err := sys.UnmarshalDriver(data, d.Filter); err != nil {
				return err
			}
			fmt.Println("loaded", d.ID)
			continue
		}
		var pure []string
		for _, p := range gen.PurePositives(etap.Driver(d.ID), 40) {
			pure = append(pure, p.Text)
		}
		if _, err := sys.AddDriver(d, pure); err != nil {
			return fmt.Errorf("training %s: %w", d.ID, err)
		}
		fmt.Println("trained", d.ID)
	}

	var st *store.Store
	var err error
	if leadsPath != "" {
		st, err = store.LoadFile(leadsPath)
		if err != nil {
			return err
		}
		fmt.Printf("lead store %s: %d leads\n", leadsPath, st.Len())
	} else {
		st = store.New()
	}

	if extract {
		var pages []*etap.Page
		for _, u := range w.URLs() {
			if p, ok := w.Page(u); ok {
				pages = append(pages, p)
			}
		}
		for _, d := range etap.DefaultDrivers() {
			events, err := sys.ExtractEventsParallel(d.ID, pages, 0.5, 0)
			if err != nil {
				return err
			}
			added := st.Add(events, time.Now())
			fmt.Printf("extracted %s: %d events (%d new)\n", d.ID, len(events), added)
		}
		if leadsPath != "" {
			if err := st.SaveFile(leadsPath); err != nil {
				return err
			}
		}
	}

	fmt.Println("serving on", addr)
	return http.ListenAndServe(addr, serve.New(sys, st))
}
