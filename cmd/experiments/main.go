// Command experiments regenerates the paper's evaluation artifacts on the
// synthetic web: Table 1 and Figures 3-8, plus the ablations documented
// in DESIGN.md.
//
// Usage:
//
//	experiments [-seed N] [-exp table1|fig3|fig4|fig5|fig6|fig7|fig8|ablations|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"etap/internal/corpus"
	"etap/internal/experiments"
)

func main() {
	var (
		seed   = flag.Int64("seed", 7, "experiment seed")
		exp    = flag.String("exp", "all", "experiment to run")
		mdPath = flag.String("md", "", "write a full markdown report to this file and exit")
	)
	flag.Parse()

	env := experiments.Build(experiments.Setup{Seed: *seed})
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(experiments.Report(env)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *mdPath)
		return
	}
	ok := false
	runAll := *exp == "all"

	if runAll || *exp == "table1" {
		ok = true
		fmt.Println("## Table 1 — P/R/F1 after two noise-elimination iterations")
		fmt.Println(experiments.Table1(env))
	}
	if runAll || *exp == "fig3" {
		ok = true
		fmt.Println("## Figure 3 — RIG of PA vs IV, mergers & acquisitions")
		fmt.Println(experiments.FigureRIG(env, corpus.MergersAcquisitions))
	}
	if runAll || *exp == "fig4" {
		ok = true
		fmt.Println("## Figure 4 — RIG of PA vs IV, change in management")
		fmt.Println(experiments.FigureRIG(env, corpus.ChangeInManagement))
	}
	if runAll || *exp == "fig5" || *exp == "fig6" {
		ok = true
		demo := experiments.Figures56(env)
		fmt.Printf("## Figures 5-6 — results for the smart query %s\n", demo.Query)
		if demo.TopHit != nil {
			fmt.Printf("top hit: %s (%s)\n", demo.TopHit.Title, demo.TopHit.URL)
		}
		if *exp != "fig6" {
			fmt.Println("\npositive snippets (Figure 5):")
			for _, s := range demo.Positive {
				fmt.Println("  +", s)
			}
		}
		if *exp != "fig5" {
			fmt.Println("\nnoise snippets rejected by the filter (Figure 6):")
			for _, s := range demo.Noise {
				fmt.Println("  -", s)
			}
		}
		fmt.Println()
	}
	if runAll || *exp == "fig7" {
		ok = true
		fmt.Println("## Figure 7 — trigger events ranked by classification score")
		fmt.Println(experiments.Figure7(env, 15))
	}
	if runAll || *exp == "fig8" {
		ok = true
		fmt.Println("## Figure 8 — trigger events ranked by semantic orientation")
		fmt.Println(experiments.Figure8(env, 15))
	}
	if runAll || *exp == "rankquality" {
		ok = true
		fmt.Println("## Ranking quality (P@k / AP / AUC of the ranked trigger-event list)")
		for _, d := range []corpus.Driver{corpus.MergersAcquisitions, corpus.ChangeInManagement, corpus.RevenueGrowth} {
			fmt.Println(experiments.RankingQuality(env, d))
		}
		fmt.Println()
	}
	if runAll || *exp == "sweep" {
		ok = true
		fmt.Println("## Threshold sweep (precision/recall trade-off)")
		for _, d := range []corpus.Driver{corpus.MergersAcquisitions, corpus.ChangeInManagement} {
			fmt.Println(experiments.ThresholdSweep(env, d))
		}
	}
	if runAll || *exp == "ablations" {
		ok = true
		fmt.Println("## Ablations")
		fmt.Println(experiments.AblationAbstraction(env, corpus.ChangeInManagement))
		fmt.Println(experiments.AblationNoiseIterations(env, corpus.MergersAcquisitions))
		fmt.Println(experiments.AblationNoiseStrategy(env, corpus.ChangeInManagement))
		fmt.Println(experiments.AblationClassifiers(env, corpus.ChangeInManagement))
		fmt.Println(experiments.AblationSnippetSize(env, corpus.ChangeInManagement))
		fmt.Println(experiments.AblationNERMissRate(env, corpus.ChangeInManagement))
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
