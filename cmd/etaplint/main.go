// Command etaplint is ETAP's repo-aware static-analysis gate. It runs
// the internal/lint rule set — determinism, metric-discipline,
// error-swallowing, context-plumbing, mutex-discipline, doc-comments —
// over the given packages and fails when any finding at or above the
// severity threshold survives suppression.
//
// Usage:
//
//	etaplint [-json] [-rules r1,r2] [-severity error|warning|info] [packages]
//
// Packages are directory patterns relative to the working directory;
// "pkg/..." walks recursively (testdata and vendor are pruned, like
// the go tool). The default pattern is ./... from the module root.
//
// Flags:
//
//	-json       emit findings as a JSON array instead of text
//	-rules      comma-separated rule IDs to run (default: all)
//	-severity   minimum severity that causes a non-zero exit
//	            (default: warning; all findings are always printed)
//	-list       print the available rules and exit
//
// Exit status: 0 when no finding meets the threshold, 1 when at least
// one does, 2 on usage or load errors. Suppress an individual finding
// in source with `//etaplint:ignore <rule> -- <reason>`; see
// LINTING.md for the rule catalog.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"etap/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the linter and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("etaplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	rulesSpec := fs.String("rules", "all", "comma-separated rule IDs to run")
	severity := fs.String("severity", "warning", "minimum severity causing a non-zero exit (info, warning, error)")
	list := fs.Bool("list", false, "print the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rules, err := lint.SelectRules(*rulesSpec)
	if err != nil {
		fmt.Fprintln(stderr, "etaplint:", err)
		return 2
	}
	if *list {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-18s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	threshold, err := lint.ParseSeverity(*severity)
	if err != nil {
		fmt.Fprintln(stderr, "etaplint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "etaplint:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "etaplint:", err)
		return 2
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(stderr, "etaplint:", err)
			return 2
		}
		pkgs = append(pkgs, p)
	}

	findings := lint.Run(pkgs, rules)
	if *jsonOut {
		err = lint.WriteJSON(stdout, findings)
	} else {
		err = lint.WriteText(stdout, findings)
	}
	if err != nil {
		fmt.Fprintln(stderr, "etaplint:", err)
		return 2
	}
	failing := 0
	for _, f := range findings {
		if f.Severity >= threshold {
			failing++
		}
	}
	if failing > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "etaplint: %d finding(s) at or above severity %s\n", failing, threshold)
		}
		return 1
	}
	return 0
}
