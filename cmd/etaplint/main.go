// Command etaplint is ETAP's repo-aware static-analysis gate. It runs
// the internal/lint rule set — the syntactic rules (determinism,
// metric-discipline, error-swallowing, context-plumbing,
// mutex-discipline, doc-comments) plus the flow-aware concurrency
// rules (goroutine-lifecycle, lock-order, channel-discipline) built on
// the per-function CFG and intra-package call graph — over the given
// packages and fails when any finding at or above the severity
// threshold survives suppression and the baseline.
//
// Usage:
//
//	etaplint [-json] [-rules r1,r2] [-severity error|warning|info]
//	         [-baseline file [-write-baseline]] [packages]
//
// Packages are directory patterns relative to the working directory;
// "pkg/..." walks recursively (testdata and vendor are pruned, like
// the go tool). The default pattern is ./... from the module root.
//
// Flags:
//
//	-json            emit findings as a JSON array instead of text
//	-rules           comma-separated rule IDs to run (default: all)
//	-severity        minimum severity that causes a non-zero exit
//	                 (default: warning; all findings are always printed)
//	-list            print the available rules and exit
//	-baseline        JSON findings baseline; findings recorded there are
//	                 subtracted, so CI gates on "no new findings"
//	-write-baseline  rewrite the -baseline file from the current
//	                 findings and exit 0
//
// Exit status: 0 when no finding meets the threshold, 1 when at least
// one does, 2 on usage or load errors. Suppress an individual finding
// in source with `//etaplint:ignore <rule> -- <reason>`; see
// LINTING.md for the rule catalog. The actual driver lives in
// internal/lint/cli, shared with the deprecated cmd/doclint shim.
package main

import (
	"io"
	"os"

	"etap/internal/lint/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run forwards to the shared driver (kept as a seam for tests).
func run(args []string, stdout, stderr io.Writer) int {
	return cli.Run("etaplint", args, stdout, stderr)
}
