package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etap/internal/lint"
)

// mutexTestdata is a package with known mutex-discipline violations,
// loaded under its real path (the rule is not path-scoped).
const mutexTestdata = "../../internal/lint/testdata/src/mutex/pkg"

func TestRunReportsViolationsWithPositions(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-rules", "mutex-discipline", mutexTestdata}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	text := out.String()
	if !strings.Contains(text, "mu.go:") {
		t.Errorf("output lacks a positioned finding:\n%s", text)
	}
	if !strings.Contains(text, "[mutex-discipline]") {
		t.Errorf("output lacks the rule ID:\n%s", text)
	}
	if !strings.Contains(errBuf.String(), "finding(s) at or above severity") {
		t.Errorf("stderr lacks the failure summary:\n%s", errBuf.String())
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-rules", "mutex-discipline", "../../internal/snippet"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced output:\n%s", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-json", "-rules", "mutex-discipline", mutexTestdata}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errBuf.String())
	}
	var findings []lint.JSONFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json output decoded to zero findings")
	}
	for _, f := range findings {
		if f.Rule != "mutex-discipline" || f.File == "" || f.Line <= 0 || f.Message == "" {
			t.Errorf("finding fields incomplete: %+v", f)
		}
	}
}

// TestRunBaselineGating pins the "no new findings" contract: writing a
// baseline from a dirty package makes the next run exit 0, while an
// empty baseline still fails it.
func TestRunBaselineGating(t *testing.T) {
	basePath := filepath.Join(t.TempDir(), "baseline.json")

	var out, errBuf bytes.Buffer
	if code := run([]string{"-rules", "mutex-discipline", "-baseline", basePath, "-write-baseline", mutexTestdata}, &out, &errBuf); code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0\nstderr:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "wrote baseline") {
		t.Errorf("write-baseline produced no summary:\n%s", errBuf.String())
	}

	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-rules", "mutex-discipline", "-baseline", basePath, mutexTestdata}, &out, &errBuf); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("baselined run still printed findings:\n%s", out.String())
	}

	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"version":1,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-rules", "mutex-discipline", "-baseline", empty, mutexTestdata}, &out, &errBuf); code != 1 {
		t.Fatalf("empty-baseline run exit = %d, want 1\nstderr:\n%s", code, errBuf.String())
	}

	// -write-baseline without -baseline is a usage error.
	if code := run([]string{"-write-baseline", mutexTestdata}, &out, &errBuf); code != 2 {
		t.Fatalf("-write-baseline without -baseline exit = %d, want 2", code)
	}
}

func TestRunUnknownRule(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-rules", "no-such-rule", "."}, &out, &errBuf); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errBuf.String())
	}
	for _, name := range lint.RuleNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks rule %s:\n%s", name, out.String())
		}
	}
}
