// Command etap runs the full ETAP pipeline end to end: generate (or
// reuse) a synthetic web, train the built-in sales drivers, extract
// trigger events, and print ranked leads — the Figure 7/8 views — plus
// the company-level MRR ranking of Equation 2.
//
// Usage:
//
//	etap [flags]
//
//	-seed      int     world/training seed (default 1)
//	-driver    string  driver to report: mergers-acquisitions,
//	                   change-in-management, revenue-growth, or "all"
//	-top       int     number of ranked events to print (default 15)
//	-threshold float   classifier threshold for trigger events (default 0.5)
//	-orient            rank by semantic orientation instead of score
//	-companies         also print the company MRR ranking
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"etap"
	"etap/internal/store"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "world and training seed")
		driver    = flag.String("driver", "all", "sales driver to report, or 'all'")
		top       = flag.Int("top", 15, "ranked events to print")
		threshold = flag.Float64("threshold", 0.5, "classifier threshold")
		orient    = flag.Bool("orient", false, "rank by semantic orientation")
		companies = flag.Bool("companies", false, "print company MRR ranking")
		saveDir   = flag.String("save-models", "", "directory to save trained driver models into")
		loadDir   = flag.String("load-models", "", "directory to load driver models from instead of training")
		leadsPath = flag.String("leads", "", "JSONL lead store: merge this run's trigger events into it")
	)
	flag.Parse()

	if err := run(*seed, *driver, *top, *threshold, *orient, *companies, *saveDir, *loadDir, *leadsPath); err != nil {
		fmt.Fprintln(os.Stderr, "etap:", err)
		os.Exit(1)
	}
}

func run(seed int64, driver string, top int, threshold float64, orient, companies bool, saveDir, loadDir, leadsPath string) error {
	fmt.Println("generating synthetic web...")
	gen := etap.NewWorldGenerator(etap.WorldConfig{Seed: seed})
	docs := gen.World()
	w := etap.BuildWeb(docs)
	fmt.Printf("  %d pages on %d hosts\n", w.Len(), len(w.Hosts()))

	sys := etap.NewSystem(w, etap.Config{Seed: seed})
	var selected []etap.SalesDriver
	for _, d := range etap.DefaultDrivers() {
		if driver == "all" || driver == d.ID {
			selected = append(selected, d)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown driver %q", driver)
	}

	for _, d := range selected {
		if loadDir != "" {
			data, err := os.ReadFile(filepath.Join(loadDir, d.ID+".json"))
			if err != nil {
				return fmt.Errorf("loading %s: %w", d.ID, err)
			}
			if err := sys.UnmarshalDriver(data, d.Filter); err != nil {
				return fmt.Errorf("loading %s: %w", d.ID, err)
			}
			fmt.Printf("loaded %-24s from %s\n", d.ID, loadDir)
			continue
		}
		var pure []string
		for _, p := range gen.PurePositives(etap.Driver(d.ID), 40) {
			pure = append(pure, p.Text)
		}
		stats, err := sys.AddDriver(d, pure)
		if err != nil {
			return fmt.Errorf("training %s: %w", d.ID, err)
		}
		fmt.Printf("trained %-24s noisy=%d pure=%d negs=%d vocab=%d iterations=%d\n",
			d.ID, stats.NoisyPositives, stats.PurePositives, stats.Negatives,
			stats.VocabularySize, len(stats.NoiseHistory))
	}

	if saveDir != "" {
		if err := os.MkdirAll(saveDir, 0o755); err != nil {
			return err
		}
		for _, d := range selected {
			data, err := sys.MarshalDriver(d.ID)
			if err != nil {
				return fmt.Errorf("saving %s: %w", d.ID, err)
			}
			path := filepath.Join(saveDir, d.ID+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("saved %s (%d bytes)\n", path, len(data))
		}
	}

	var pages []*etap.Page
	for _, u := range w.URLs() {
		if p, ok := w.Page(u); ok {
			pages = append(pages, p)
		}
	}

	var allRanked []etap.Ranked
	for _, d := range selected {
		events, err := sys.ExtractEventsParallel(d.ID, pages, threshold, 0)
		if err != nil {
			return err
		}
		var ranked []etap.Ranked
		if orient && d.Orientation != nil {
			ranked = etap.RankByOrientation(events)
		} else {
			ranked = etap.RankByScore(events)
		}
		allRanked = append(allRanked, ranked...)

		fmt.Printf("\n=== %s: %d trigger events\n", d.Title, len(events))
		n := top
		if n > len(ranked) {
			n = len(ranked)
		}
		for _, ev := range ranked[:n] {
			text := ev.Text
			if len(text) > 110 {
				text = text[:110] + "..."
			}
			fmt.Printf("%3d. [%.3f] %-24s %s\n", ev.Rank, ev.Score, ev.Company, text)
		}
	}

	if leadsPath != "" {
		st, err := store.LoadFile(leadsPath)
		if err != nil {
			return fmt.Errorf("loading lead store: %w", err)
		}
		var events []etap.Event
		for _, r := range allRanked {
			events = append(events, r.Event)
		}
		added := st.Add(events, time.Now())
		if err := st.SaveFile(leadsPath); err != nil {
			return fmt.Errorf("saving lead store: %w", err)
		}
		fmt.Printf("\nlead store %s: %d leads (%d new this run)\n", leadsPath, st.Len(), added)
	}

	if companies {
		fmt.Println("\n=== company profiles (mean reciprocal rank)")
		profiles := etap.BuildCompanyProfiles(allRanked, 2005, 6)
		n := top
		if n > len(profiles) {
			n = len(profiles)
		}
		for i, p := range profiles[:n] {
			fmt.Printf("%3d. %s\n", i+1, p)
		}
	}
	return nil
}
