// Command corpusgen generates the synthetic web and dumps it for
// inspection: page statistics, a sample of documents with their
// ground-truth sentence labels, or the whole corpus as JSON. With
// -index it additionally builds the sharded search index over the
// corpus and reports index statistics plus build time.
//
// With -kb it also generates the seed-deterministic company knowledge
// base over the corpus company inventory and writes it as JSONL —
// the file etapd loads with its own -kb flag.
//
// Usage:
//
//	corpusgen [-seed N] [-sample K] [-json] [-kb kb.jsonl]
//	          [-index] [-index-shards N] [-query-cache N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"etap/internal/core"
	"etap/internal/corpus"
	"etap/internal/kb"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "generation seed")
		sample    = flag.Int("sample", 3, "documents to print per kind")
		asJSON    = flag.Bool("json", false, "dump the whole corpus as JSON to stdout")
		relevant  = flag.Int("relevant", 0, "relevant docs per driver (0 = default)")
		backgrnd  = flag.Int("background", 0, "background docs (0 = default)")
		doIndex   = flag.Bool("index", false, "build the search index and print its statistics")
		shards    = flag.Int("index-shards", 0, "search-index shard count (0 = GOMAXPROCS)")
		cacheSize = flag.Int("query-cache", 0, "query-result cache entries (0 = default, negative = disabled)")
		kbPath    = flag.String("kb", "", "generate the company knowledge base from -seed and write it as JSONL to this path")
	)
	flag.Parse()

	if *kbPath != "" {
		k := kb.Generate(kb.Config{Seed: *seed})
		if err := k.SaveFile(*kbPath); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		fmt.Printf("knowledge base: %d companies (seed %d) -> %s\n", k.Len(), *seed, *kbPath)
		return
	}

	gen := corpus.NewGenerator(corpus.Config{
		Seed:              *seed,
		RelevantPerDriver: *relevant,
		BackgroundDocs:    *backgrnd,
	})
	docs := gen.World()

	if *doIndex {
		start := time.Now()
		w := core.BuildWebWith(docs, core.Config{Shards: *shards, CacheSize: *cacheSize})
		st := w.Index().IndexStats()
		fmt.Printf("indexed %d documents in %v\n", st.Docs, time.Since(start).Round(time.Millisecond))
		fmt.Printf("shards: %d\n", st.Shards)
		fmt.Printf("terms (per-shard entries): %d\n", st.Terms)
		fmt.Printf("postings: %d\n", st.Postings)
		fmt.Printf("query cache entries: %d\n", st.CacheEntries)
		return
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(docs); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		return
	}

	kinds := map[corpus.DocKind]int{}
	triggers := map[corpus.Driver]int{}
	sentences := 0
	for _, d := range docs {
		kinds[d.Kind]++
		sentences += len(d.Sentences)
		for _, drv := range corpus.Drivers {
			triggers[drv] += d.TriggerCount(drv)
		}
	}
	fmt.Printf("documents: %d (relevant %d, hard-negative %d, background %d)\n",
		len(docs), kinds[corpus.KindRelevant], kinds[corpus.KindHardNegative],
		kinds[corpus.KindBackground])
	fmt.Printf("sentences: %d\n", sentences)
	for _, drv := range corpus.Drivers {
		fmt.Printf("trigger sentences, %s: %d\n", drv.Title(), triggers[drv])
	}

	printed := map[corpus.DocKind]int{}
	for _, d := range docs {
		if printed[d.Kind] >= *sample {
			continue
		}
		printed[d.Kind]++
		fmt.Printf("\n--- %s [%s] %s\n", d.ID, kindName(d.Kind), d.URL)
		for _, s := range d.Sentences {
			tag := " "
			switch {
			case s.Driver != "":
				tag = "T" // trigger
			case s.Misleading:
				tag = "M"
			}
			fmt.Printf("  [%s] %s\n", tag, s.Text)
		}
	}
}

func kindName(k corpus.DocKind) string {
	switch k {
	case corpus.KindRelevant:
		return "relevant"
	case corpus.KindHardNegative:
		return "hard-negative"
	default:
		return "background"
	}
}
