package main

import (
	"bytes"
	"testing"

	"etap/internal/lint/cli"
)

// TestForwardingParity pins the deprecation contract: for any package
// set, doclint's exit code and findings output must match
// `etaplint -rules doc-comments` exactly.
func TestForwardingParity(t *testing.T) {
	cases := []struct {
		name string
		dir  string
	}{
		{"violations", "../../internal/lint/testdata/src/doccomments/pkg"},
		{"clean", "../../internal/snippet"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var docOut, docErr, lintOut, lintErr bytes.Buffer
			docCode := run([]string{tc.dir}, &docOut, &docErr)
			lintCode := cli.Run("etaplint", []string{"-rules", "doc-comments", tc.dir}, &lintOut, &lintErr)
			if docCode != lintCode {
				t.Fatalf("exit code: doclint=%d etaplint=%d\ndoclint stderr:\n%s\netaplint stderr:\n%s",
					docCode, lintCode, docErr.String(), lintErr.String())
			}
			if docOut.String() != lintOut.String() {
				t.Errorf("findings output diverges\ndoclint:\n%s\netaplint:\n%s", docOut.String(), lintOut.String())
			}
		})
	}
}

// TestNoArgsUsage pins the historical no-argument behavior: usage
// error, exit 2.
func TestNoArgsUsage(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
