// Command doclint is deprecated: the doc-comment check now lives in
// the etaplint framework as the doc-comments rule, alongside the rest
// of the repository's invariant checks. This shim forwards to the
// shared etaplint driver with the rule set pinned to doc-comments, so
// existing invocations keep working with identical exit codes.
//
// Use instead:
//
//	go run ./cmd/etaplint -rules doc-comments ./...
//
// See LINTING.md for the full rule catalog.
package main

import (
	"fmt"
	"io"
	"os"

	"etap/internal/lint/cli"
)

func main() {
	fmt.Fprintln(os.Stderr, "doclint: deprecated; forwarding to etaplint -rules doc-comments (see LINTING.md)")
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run forwards to the shared driver with the rule set pinned to
// doc-comments, preserving doclint's historical requirement of at
// least one package argument.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: doclint <package-dir> [dir...]")
		return 2
	}
	return cli.Run("doclint", append([]string{"-rules", "doc-comments"}, args...), stdout, stderr)
}
