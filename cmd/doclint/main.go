// Command doclint checks that every exported symbol in the given
// package directories carries a godoc comment. It is the repository's
// dependency-free stand-in for a doc-comment linter and gates CI via
// `make doccheck`.
//
// Usage:
//
//	doclint ./internal/index ./internal/web ./internal/gather
//
// A symbol passes when the declaration itself or its enclosing
// const/var/type block is documented. Test files are ignored. Exit
// status is 1 when any exported symbol is undocumented, with one
// "file:line: symbol" diagnostic per finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [dir...]")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		ps, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d exported symbols without doc comments\n", len(problems))
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and returns one
// diagnostic per undocumented exported symbol.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					lintFunc(d, report)
				case *ast.GenDecl:
					lintGen(d, report)
				}
			}
		}
	}
	return out, nil
}

// lintFunc flags undocumented exported functions and methods. Methods
// on unexported receiver types are skipped — they are not part of the
// package's godoc surface.
func lintFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind, name := "function", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		kind, name = "method", recv+"."+name
	}
	report(d.Pos(), kind, name)
}

// lintGen flags undocumented exported types, constants and variables.
// A doc comment on the enclosing const/var/type block covers every
// spec inside it, matching how godoc renders grouped declarations.
func lintGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || d.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kindOf(d.Tok), n.Name)
				}
			}
		}
	}
}

func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "constant"
	}
	return "variable"
}

// receiverName unwraps a method receiver type expression down to its
// type name (handling pointers and generic instantiations).
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr:
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	}
	return ""
}
