// Command doclint is deprecated: the doc-comment check now lives in
// the etaplint framework as the doc-comments rule, alongside the rest
// of the repository's invariant checks. This shim forwards to it so
// existing invocations keep working.
//
// Use instead:
//
//	go run ./cmd/etaplint -rules doc-comments ./...
//
// See LINTING.md for the full rule catalog.
package main

import (
	"fmt"
	"os"

	"etap/internal/lint"
)

func main() {
	fmt.Fprintln(os.Stderr, "doclint: deprecated; forwarding to etaplint -rules doc-comments (see LINTING.md)")
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [dir...]")
		os.Exit(2)
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	rules, err := lint.SelectRules("doc-comments")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	dirs, err := loader.Expand(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, p)
	}
	findings := lint.Run(pkgs, rules)
	if err := lint.WriteText(os.Stdout, findings); err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
