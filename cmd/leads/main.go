// Command leads queries a JSONL lead store written by `etap -leads`:
// filter by driver, company or minimum score, list unreviewed leads, and
// mark leads reviewed — the domain-specialist workflow of Section 4.
//
// Usage:
//
//	leads -store leads.jsonl [-driver d] [-company c] [-min 0.8]
//	      [-unreviewed] [-review <snippetID>] [-top 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"etap/internal/store"
)

func main() {
	var (
		path       = flag.String("store", "leads.jsonl", "lead store path")
		driver     = flag.String("driver", "", "filter: sales driver id")
		company    = flag.String("company", "", "filter: company (alias-resolved)")
		minScore   = flag.Float64("min", 0, "filter: minimum classifier score")
		unreviewed = flag.Bool("unreviewed", false, "only unreviewed leads")
		review     = flag.String("review", "", "mark this snippet ID reviewed and save")
		top        = flag.Int("top", 20, "max leads to print")
	)
	flag.Parse()

	st, err := store.LoadFile(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leads:", err)
		os.Exit(1)
	}

	if *review != "" {
		if !st.MarkReviewed(*review) {
			fmt.Fprintf(os.Stderr, "leads: no lead %q in %s\n", *review, *path)
			os.Exit(1)
		}
		if err := st.SaveFile(*path); err != nil {
			fmt.Fprintln(os.Stderr, "leads:", err)
			os.Exit(1)
		}
		fmt.Printf("marked %s reviewed\n", *review)
		return
	}

	results := st.Find(store.Query{
		Driver:     *driver,
		Company:    *company,
		MinScore:   *minScore,
		Unreviewed: *unreviewed,
	})
	fmt.Printf("%d/%d leads match\n", len(results), st.Len())
	for i, l := range results {
		if i >= *top {
			fmt.Printf("... and %d more\n", len(results)-*top)
			break
		}
		text := l.Text
		if len(text) > 90 {
			text = text[:90] + "..."
		}
		mark := " "
		if l.Reviewed {
			mark = "R"
		}
		fmt.Printf("[%s] %.3f %-22s %-22s %s (%s)\n",
			mark, l.Score, l.Driver, l.Company, text, l.SnippetID)
	}
}
