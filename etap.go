// Package etap is a from-scratch Go implementation of ETAP (Electronic
// Trigger Alert Program), the automatic sales-lead generation system of
// Ramakrishnan et al., "Automatic Sales Lead Generation from Web Data"
// (ICDE 2006).
//
// ETAP discovers sales leads by extracting trigger events — events of
// corporate relevance indicative of a propensity to purchase — from Web
// data. The pipeline has three components:
//
//   - data gathering: a focused crawl plus other sources assemble a
//     document collection (package internal/gather over a synthetic Web);
//   - event identification: documents are split into 3-sentence snippets,
//     annotated with named entities and parts of speech, abstracted into
//     features (presence-absence for entity categories, instance-valued
//     for content words), and classified per sales driver by a naïve
//     Bayes classifier trained on automatically generated noisy-positive
//     data with iterative noise elimination;
//   - ranking: trigger events are ranked by classifier confidence or by a
//     semantic-orientation lexicon, and aggregated per company with a
//     mean-reciprocal-rank score.
//
// This package is the public facade: it re-exports the pipeline types and
// the synthetic-web substrate that replaces the live 2005 Web the paper
// crawled. See the examples directory for runnable end-to-end programs
// and internal/experiments for the harness regenerating every table and
// figure of the paper's evaluation.
//
// # Quick start
//
//	docs := etap.GenerateWorld(etap.WorldConfig{Seed: 1})
//	web := etap.BuildWeb(docs)
//	sys := etap.NewSystem(web, etap.Config{Seed: 1})
//	for _, d := range etap.DefaultDrivers() {
//		sys.AddDriver(d, nil)
//	}
//	events, _ := sys.ExtractEvents("change-in-management", web.Search(`"new ceo"`, 50), 0.5)
//	for _, ev := range etap.RankByScore(events) {
//		fmt.Println(ev.Rank, ev.Score, ev.Text)
//	}
package etap

import (
	"context"

	"etap/internal/alert"
	"etap/internal/classify"
	"etap/internal/core"
	"etap/internal/corpus"
	"etap/internal/gather"
	"etap/internal/index"
	"etap/internal/kb"
	"etap/internal/ner"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/tenant"
	"etap/internal/train"
	"etap/internal/web"
)

// System is the ETAP pipeline: driver registration, event identification
// and scoring over one web.
type System = core.System

// Config tunes the pipeline (snippet size, smart-query depth, noise
// iterations, classifier family, feature policy, seeds).
type Config = core.Config

// SalesDriver describes one sales driver: smart queries, entity filter
// and optional orientation lexicon.
type SalesDriver = core.SalesDriver

// TrainingStats reports what AddDriver did.
type TrainingStats = core.TrainingStats

// Classifier family selectors for Config.Classifier.
const (
	NaiveBayes     = core.NaiveBayes
	LinearSVM      = core.LinearSVM
	WeightedLogReg = core.WeightedLogReg
)

// NewSystem builds an ETAP system over a web.
func NewSystem(w *Web, cfg Config) *System { return core.New(w, cfg) }

// DefaultDrivers returns the paper's three sales drivers (mergers &
// acquisitions, change in management, revenue growth), fully configured.
func DefaultDrivers() []SalesDriver { return core.DefaultDrivers() }

// Driver identifies a built-in sales driver.
type Driver = corpus.Driver

// The three sales drivers of the paper.
const (
	MergersAcquisitions = corpus.MergersAcquisitions
	ChangeInManagement  = corpus.ChangeInManagement
	RevenueGrowth       = corpus.RevenueGrowth
)

// Document is one page of the synthetic web, with per-sentence ground
// truth.
type Document = corpus.Document

// WorldConfig sizes the synthetic web.
type WorldConfig = corpus.Config

// WorldGenerator emits documents and labeled snippets deterministically.
type WorldGenerator = corpus.Generator

// NewWorldGenerator builds a seeded world generator, for callers that
// need labeled evaluation snippets in addition to the document set.
func NewWorldGenerator(cfg WorldConfig) *WorldGenerator { return corpus.NewGenerator(cfg) }

// GenerateWorld builds the full synthetic web document set.
func GenerateWorld(cfg WorldConfig) []Document { return corpus.NewGenerator(cfg).World() }

// Web is the page store with a search-engine view.
type Web = web.Web

// SearchEngine is the query surface shared by the in-RAM sharded index
// and the persistent segment index backing a Web (see Web.Index).
type SearchEngine = index.Engine

// Page is one web page.
type Page = web.Page

// NewWeb returns an empty web; add pages then Freeze.
func NewWeb() *Web { return web.New() }

// BuildWeb indexes generated documents into a frozen web.
func BuildWeb(docs []Document) *Web { return core.BuildWeb(docs) }

// BuildWebWith is BuildWeb honouring the Config's search-index knobs:
// Shards selects the index shard count (0 = GOMAXPROCS) and CacheSize
// the query-result cache capacity (0 = default, negative = disabled).
// The index bulk-loads concurrently; page order and ranked search
// results are identical to BuildWeb for any shard count.
func BuildWebWith(docs []Document, cfg Config) *Web { return core.BuildWebWith(docs, cfg) }

// BuildWebEngine is BuildWebWith honouring the Config's persistence
// knobs: with IndexDir set, the web is backed by the on-disk segment
// index rooted there — documents committed in a previous run re-open
// instead of re-indexing, and the returned web must be Closed to flush
// and release the index. With IndexDir empty it is exactly BuildWebWith.
// Ranked results are identical for either engine.
func BuildWebEngine(docs []Document, cfg Config) (*Web, error) {
	return core.BuildWebEngine(docs, cfg)
}

// BuildWebFromHTML renders every document to HTML and recovers text,
// title and links through the HTML extractor — the path a real crawl
// takes. Behaviourally equivalent to BuildWeb.
func BuildWebFromHTML(docs []Document) *Web { return core.BuildWebFromHTML(docs) }

// BuildWebFromHTMLWith is BuildWebFromHTML honouring the Config's
// search-index knobs, like BuildWebWith.
func BuildWebFromHTMLWith(docs []Document, cfg Config) *Web {
	return core.BuildWebFromHTMLWith(docs, cfg)
}

// CrawlConfig controls a focused crawl of the data-gathering component.
type CrawlConfig = gather.CrawlConfig

// CrawlResult is the outcome of a focused crawl.
type CrawlResult = gather.CrawlResult

// Crawl runs the focused crawler over a web. The context bounds the
// crawl and propagates into every fetch attempt.
func Crawl(ctx context.Context, w *Web, cfg CrawlConfig) CrawlResult {
	return gather.Crawl(ctx, w, cfg)
}

// Fetcher is the page-retrieval seam the crawler fetches through; the
// web itself implements it, and FaultFetcher wraps any implementation
// with deterministic failures.
type Fetcher = web.Fetcher

// FaultConfig tunes deterministic fault injection for a FaultFetcher.
type FaultConfig = web.FaultConfig

// NewFaultFetcher wraps a fetcher with seeded transient/permanent
// failures and optional latency, for resilience testing.
func NewFaultFetcher(next Fetcher, cfg FaultConfig) Fetcher {
	return web.NewFaultFetcher(next, cfg)
}

// RetryConfig tunes the crawler's retry/backoff and per-host circuit
// breaker.
type RetryConfig = gather.RetryConfig

// FetchError reports one URL the crawler gave up on, with the reason.
type FetchError = gather.FetchError

// FetchOptions bundles the fetch policy a Config threads into
// System.Crawl: retry settings plus optional fault injection.
type FetchOptions = gather.FetchOptions

// Event is one extracted trigger event.
type Event = rank.Event

// Ranked is an event with its assigned rank.
type Ranked = rank.Ranked

// CompanyScore is the Equation 2 company aggregate.
type CompanyScore = rank.CompanyScore

// Lexicon is a semantic-orientation lexicon (phrase -> weight).
type Lexicon = rank.Lexicon

// RankByScore orders events by classifier confidence (Figure 7).
func RankByScore(events []Event) []Ranked { return rank.ByScore(events) }

// RankByOrientation orders events by semantic-orientation strength
// (Figure 8).
func RankByOrientation(events []Event) []Ranked { return rank.ByOrientation(events) }

// CompanyMRR aggregates ranked events per company (Equation 2).
func CompanyMRR(ranked []Ranked) []CompanyScore { return rank.CompanyMRR(ranked) }

// RankByGrowthFigure orders revenue-growth events by the magnitude of
// the exact percentage change extracted from each snippet — the paper's
// driver-specific alternative to lexicon scoring.
func RankByGrowthFigure(events []Event) []Ranked {
	return rank.ByGrowthFigure(events, ner.NewRecognizer())
}

// CompanyProfile is the per-company aggregate view (events per driver,
// MRR, best event, latest resolvable date).
type CompanyProfile = rank.Profile

// BuildCompanyProfiles groups ranked trigger events into company
// profiles with alias resolution and event-date extraction relative to
// the given reference year/month.
func BuildCompanyProfiles(ranked []Ranked, refYear, refMonth int) []CompanyProfile {
	return rank.BuildProfiles(ranked, ner.NewRecognizer(),
		rank.Date{Year: refYear, Month: refMonth})
}

// SuggestQueries mines pure-positive snippets for high-yield smart-query
// phrases against a background sample (Section 3.3.1's "smart queries
// could be obtained by analyzing the pure positive data set").
func SuggestQueries(purePositives, background []string, k int) []string {
	return train.SuggestQueries(purePositives, background, k)
}

// DefaultRevenueLexicon is the manual revenue-growth orientation lexicon.
func DefaultRevenueLexicon() Lexicon { return rank.DefaultRevenueLexicon() }

// InduceLexicon builds an orientation lexicon automatically from seed
// words via PMI-IR co-occurrence statistics over the web's search index
// (Turney's method, the paper's cited alternative to manual lexicons).
func InduceLexicon(w *Web, posSeeds, negSeeds, candidates []string) Lexicon {
	return rank.InduceLexicon(w.Index(), posSeeds, negSeeds, candidates)
}

// AlertManager is the streaming subsystem: incremental document
// ingestion through a bounded worker pool, fingerprint-deduplicated
// trigger events, and at-least-once alert delivery to subscribers.
type AlertManager = alert.Manager

// AlertConfig tunes the streaming subsystem (worker pool, queue
// bounds, delivery retry policy, subscription set).
type AlertConfig = alert.Config

// Subscription is a standing request for alerts matching a company,
// driver and minimum score, delivered to a webhook URL.
type Subscription = alert.Subscription

// Alert is one delivered trigger event, tagged with the subscription
// it matched.
type Alert = alert.Alert

// IngestDocument is one document submitted to the streaming ingest
// path. (The etap.Document name is taken by the synthetic-web corpus
// document.)
type IngestDocument = alert.Document

// NewAlertManager wires the streaming subsystem over a trained system,
// an event sink (internal/serve's server implements it over the lead
// store) and a frozen web that accepts incremental pages.
func NewAlertManager(sys *System, sink alert.Sink, w *Web, cfg AlertConfig) *AlertManager {
	return alert.NewManager(sys, sink, w, cfg)
}

// KnowledgeBase is the deterministic synthetic company knowledge base:
// one firmographic record (industry, size, HQ, keywords, inter-company
// relationships) per canonical company identity in the corpus.
type KnowledgeBase = kb.KB

// KBCompany is one knowledge-base record.
type KBCompany = kb.Company

// KBConfig seeds knowledge-base generation; equal seeds produce
// byte-identical knowledge bases.
type KBConfig = kb.Config

// GenerateKB builds the knowledge base over the corpus company
// inventory from a generation seed.
func GenerateKB(cfg KBConfig) *KnowledgeBase { return kb.Generate(cfg) }

// TenantRegistry holds per-tenant ideal-customer profiles with CRUD,
// JSONL persistence, and a monotonic revision for checkpointing.
type TenantRegistry = tenant.Registry

// TenantProfile is one tenant's ideal-customer profile: the industry,
// size, location, and keyword criteria leads are filtered and
// re-ranked against.
type TenantProfile = tenant.Profile

// TenantConfig wires a tenant registry (clock and metrics registry
// injection).
type TenantConfig = tenant.Config

// NewTenantRegistry builds an empty tenant registry.
func NewTenantRegistry(cfg TenantConfig) *TenantRegistry { return tenant.NewRegistry(cfg) }

// Metrics is a binary confusion matrix with precision/recall/F1.
type Metrics = classify.Metrics

// MetricsRegistry is the observability registry: atomic counters,
// gauges and fixed-bucket histograms, rendered as Prometheus text
// exposition or a JSON snapshot.
type MetricsRegistry = obs.Registry

// DefaultMetrics returns the process-wide registry every pipeline
// package reports into — the one etapd serves at /metrics and
// /debug/vars.
func DefaultMetrics() *MetricsRegistry { return obs.Default }

// Trace accumulates per-stage wall time and item counts for one logical
// run (an extraction pass, a training round).
type Trace = obs.Trace

// Span measures one pipeline-stage invocation within a trace.
type Span = obs.Span

// NewTrace starts a per-run stage trace reporting into the default
// registry.
func NewTrace(name string) *Trace { return obs.NewTrace(name, nil) }

// WithTrace attaches a trace to the context; spans started under it
// contribute to the trace's summary as well as the registry.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return obs.WithTrace(ctx, tr)
}

// StartSpan begins measuring a named pipeline stage; pair with End.
func StartSpan(ctx context.Context, stage string) *Span {
	return obs.StartSpan(ctx, stage)
}

// Tracer mints and retains per-document distributed traces: one span
// tree per ingested document, tail-sampled so errors and the slow tail
// are always kept. Share one tracer between the alert manager (which
// mints traces) and the HTTP server (which browses them at
// /debug/traces).
type Tracer = obs.Tracer

// TracerConfig tunes a Tracer; the zero value selects the documented
// defaults (256 retained traces, wall clock, crypto-seeded IDs).
type TracerConfig = obs.TracerConfig

// NewTracer builds a per-document tracer.
func NewTracer(cfg TracerConfig) *Tracer { return obs.NewTracer(cfg) }
