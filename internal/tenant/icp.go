// ICP matching: how a tenant profile judges a lead. Categorical
// criteria (industry, size bucket, headquarters) are hard filters over
// the company's knowledge-base record; keywords grade fit. The score
// is deterministic — a pure function of (profile, KB record, lead
// text) — so tenant-scoped rankings reproduce exactly across restarts.
package tenant

import (
	"strings"

	"etap/internal/kb"
)

// ICP score weights. Weights sum to 1 so the score stays in [0, 1]; an
// empty criterion contributes its full weight (a tenant that doesn't
// care about size isn't penalized for it).
const (
	weightIndustry = 0.35
	weightSize     = 0.20
	weightLocation = 0.20
	weightKeywords = 0.25
)

// MatchCompany reports whether the company passes the profile's hard
// categorical filters. A nil company (no knowledge-base record) fails
// any profile with at least one categorical criterion: an ICP that
// names industries must not receive leads of unknown industry.
func (p Profile) MatchCompany(c *kb.Company) bool {
	if len(p.Industries) > 0 && (c == nil || !containsLower(p.Industries, c.Industry)) {
		return false
	}
	if len(p.SizeBuckets) > 0 && (c == nil || !containsLower(p.SizeBuckets, c.SizeBucket)) {
		return false
	}
	if len(p.Locations) > 0 && (c == nil || !containsLower(p.Locations, c.HQ)) {
		return false
	}
	return true
}

// Score grades how well a lead fits the profile, in [0, 1]. Each
// categorical criterion contributes its weight when satisfied (or when
// the criterion is empty); the keyword component is the fraction of
// profile keywords found in the lead text or the company's
// knowledge-base keywords.
func (p Profile) Score(c *kb.Company, text string) float64 {
	s := 0.0
	if len(p.Industries) == 0 || (c != nil && containsLower(p.Industries, c.Industry)) {
		s += weightIndustry
	}
	if len(p.SizeBuckets) == 0 || (c != nil && containsLower(p.SizeBuckets, c.SizeBucket)) {
		s += weightSize
	}
	if len(p.Locations) == 0 || (c != nil && containsLower(p.Locations, c.HQ)) {
		s += weightLocation
	}
	if len(p.Keywords) == 0 {
		s += weightKeywords
	} else {
		lower := strings.ToLower(text)
		hit := 0
		for _, kw := range p.Keywords {
			if strings.Contains(lower, kw) || (c != nil && containsLower(c.Keywords, kw)) {
				hit++
			}
		}
		s += weightKeywords * float64(hit) / float64(len(p.Keywords))
	}
	return s
}

// containsLower reports whether the lowercased needle list holds v
// (compared case-insensitively; profile lists are stored lowercased).
func containsLower(list []string, v string) bool {
	v = strings.ToLower(v)
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}
