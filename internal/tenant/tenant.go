// Package tenant turns the single global lead list into "millions of
// users each with their own lens": every tenant registers an ideal
// customer profile (ICP) — industries, size buckets, locations,
// keywords, the organizing principle of production lead-gen pipelines —
// and the serving layer filters and re-ranks leads against it
// (/leads?tenant=), while alert subscriptions carrying a tenant field
// compose the same ICP filter into fan-out.
//
// The package owns three pieces: the Registry (concurrency-safe ICP
// CRUD with JSONL persistence through the same revision-gated
// checkpointer discipline as the lead store), the ICP matcher (Profile
// against knowledge-base records from internal/kb), and a per-tenant,
// generation-invalidated result cache so repeated tenant queries don't
// recompute the blend until either the profile or the lead store moves.
package tenant

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"etap/internal/kb"
	"etap/internal/obs"
)

// Profile is one tenant's ideal customer profile. Empty criterion
// lists are wildcards; a zero profile matches every lead.
type Profile struct {
	// ID is assigned by the registry ("tenant-1", ...) unless the
	// creator supplies one.
	ID string `json:"id"`
	// Name is a display label.
	Name string `json:"name,omitempty"`
	// Industries are acceptable kb industries (matched
	// case-insensitively; stored lowercased).
	Industries []string `json:"industries,omitempty"`
	// SizeBuckets are acceptable kb size buckets (see kb.SizeBuckets).
	SizeBuckets []string `json:"sizeBuckets,omitempty"`
	// Locations are acceptable headquarters locations.
	Locations []string `json:"locations,omitempty"`
	// Keywords grade lead fit: the fraction found in the lead text or
	// the company's KB keywords feeds the ICP score. Never a hard
	// filter.
	Keywords []string `json:"keywords,omitempty"`
	// MinScore is the floor on the blended (rank + ICP) score; leads
	// below it are not served to this tenant.
	MinScore float64 `json:"minScore,omitempty"`
	// Quota caps the leads served per query to this tenant; 0 means no
	// tenant cap (the endpoint's own top cap still applies).
	Quota int `json:"quota,omitempty"`
	// Created is when the profile entered the registry (Unix seconds).
	Created int64 `json:"created"`
}

// Validate rejects profiles the matcher cannot act on.
func (p Profile) Validate() error {
	if p.MinScore < 0 || p.MinScore > 1 {
		return errors.New("tenant: minScore must be in [0, 1]")
	}
	if p.Quota < 0 {
		return errors.New("tenant: quota must be >= 0")
	}
	for _, b := range p.SizeBuckets {
		ok := false
		for _, known := range kb.SizeBuckets {
			if strings.EqualFold(b, known) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("tenant: unknown size bucket %q (want one of %s)",
				b, strings.Join(kb.SizeBuckets, ", "))
		}
	}
	return nil
}

// normalize lowercases, sorts, and dedups the criterion lists so
// matching is case-insensitive and two equivalent profiles serialize
// identically.
func (p Profile) normalize() Profile {
	p.Industries = normList(p.Industries)
	p.SizeBuckets = normList(p.SizeBuckets)
	p.Locations = normList(p.Locations)
	p.Keywords = normList(p.Keywords)
	return p
}

func normList(ss []string) []string {
	if len(ss) == 0 {
		return nil
	}
	seen := map[string]bool{}
	out := make([]string, 0, len(ss))
	for _, s := range ss {
		s = strings.ToLower(strings.TrimSpace(s))
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil
	}
	return out
}

// ErrUnknownTenant reports an ID the registry does not hold.
var ErrUnknownTenant = errors.New("tenant: unknown tenant")

// Config tunes a Registry. The zero value selects the defaults noted
// per field.
type Config struct {
	// Clock supplies Created timestamps; nil means time.Now. Tests
	// inject a fixed clock for determinism.
	Clock func() time.Time
	// Registry receives the etap_tenant_* series; nil means
	// obs.Default.
	Registry *obs.Registry
}

// Registry is the concurrency-safe tenant store: ICP CRUD, per-profile
// revisions for cache invalidation, and JSONL persistence compatible
// with the labeled checkpointer (Revision/SaveFile).
type Registry struct {
	clock func() time.Time

	mu    sync.RWMutex
	byID  map[string]Profile
	revs  map[string]uint64 // per-profile revision (from revSeq)
	order []string          // insertion order, for deterministic listing
	next  int               // next auto-assigned ID suffix
	rev   uint64            // mutation count, for revision-gated checkpoints

	// revSeq feeds per-profile revisions from one monotonic stream, so
	// a deleted-then-recreated tenant never reuses a revision a cache
	// entry might still hold.
	revSeq uint64

	profiles  *obs.Gauge
	mutations *obs.Counter
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg Config) *Registry {
	if cfg.Clock == nil {
		//etaplint:ignore determinism -- wall-clock default for production; tests inject a fixed Clock
		cfg.Clock = time.Now
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	r := &Registry{
		clock: cfg.Clock,
		byID:  make(map[string]Profile),
		revs:  make(map[string]uint64),
		profiles: reg.Gauge("etap_tenant_profiles",
			"Tenant ICP profiles currently registered."),
		mutations: reg.Counter("etap_tenant_mutations_total",
			"Tenant registry mutations (create, update, delete)."),
	}
	return r
}

// insertLocked stores a profile and stamps its revision. Caller holds
// mu and has resolved ID collisions.
func (r *Registry) insertLocked(p Profile) {
	r.byID[p.ID] = p
	r.order = append(r.order, p.ID)
	r.revSeq++
	r.revs[p.ID] = r.revSeq
	r.profiles.Set(int64(len(r.order)))
}

// Add inserts a profile, assigning an ID when none is supplied, and
// returns the stored (normalized) value. A duplicate ID is an error.
func (r *Registry) Add(p Profile) (Profile, error) {
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	p = p.normalize()
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.ID == "" {
		for {
			r.next++
			p.ID = fmt.Sprintf("tenant-%d", r.next)
			if _, taken := r.byID[p.ID]; !taken {
				break
			}
		}
	} else if _, dup := r.byID[p.ID]; dup {
		return Profile{}, fmt.Errorf("tenant: profile %q already exists", p.ID)
	}
	if p.Created == 0 {
		p.Created = r.clock().Unix()
	}
	r.insertLocked(p)
	r.rev++
	r.mutations.Inc()
	return p, nil
}

// Get returns the profile with the given ID and its revision — the
// cache-invalidation generation: any update to the profile bumps it.
func (r *Registry) Get(id string) (Profile, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byID[id]
	if !ok {
		return Profile{}, 0, fmt.Errorf("%s: %w", id, ErrUnknownTenant)
	}
	return p, r.revs[id], nil
}

// Update replaces a profile's ICP in place, preserving its ID and
// Created stamp, and bumps its revision so cached results for the old
// ICP can never be served again.
func (r *Registry) Update(id string, p Profile) (Profile, error) {
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	p = p.normalize()
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.byID[id]
	if !ok {
		return Profile{}, fmt.Errorf("%s: %w", id, ErrUnknownTenant)
	}
	p.ID = old.ID
	p.Created = old.Created
	r.byID[id] = p
	r.revSeq++
	r.revs[id] = r.revSeq
	r.rev++
	r.mutations.Inc()
	return p, nil
}

// Delete removes a profile.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		return fmt.Errorf("%s: %w", id, ErrUnknownTenant)
	}
	delete(r.byID, id)
	delete(r.revs, id)
	for i, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.rev++
	r.mutations.Inc()
	r.profiles.Set(int64(len(r.order)))
	return nil
}

// List returns all profiles in insertion order.
func (r *Registry) List() []Profile {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Profile, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// Len returns the profile count.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}

// Revision returns the mutation count: a checkpointer can skip saves
// when it hasn't moved.
func (r *Registry) Revision() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rev
}

// writeJSONLLocked streams every profile in insertion order. Caller
// holds at least the read lock.
func (r *Registry) writeJSONLLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, id := range r.order {
		if err := enc.Encode(r.byID[id]); err != nil {
			return fmt.Errorf("tenant: encoding profile %s: %w", id, err)
		}
	}
	return bw.Flush()
}

// WriteJSONL streams every profile, in insertion order, one JSON
// object per line.
func (r *Registry) WriteJSONL(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.writeJSONLLocked(w)
}

// ReadRegistry loads a registry from a JSONL stream. Duplicate IDs
// keep the first occurrence; auto-assignment resumes past the highest
// "tenant-N" seen. Profiles are re-normalized on load so checkpoints
// from older builds match like freshly created ones.
func ReadRegistry(rd io.Reader, cfg Config) (*Registry, error) {
	r := NewRegistry(cfg)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var p Profile
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			return nil, fmt.Errorf("tenant: line %d: %w", line, err)
		}
		if p.ID == "" {
			return nil, fmt.Errorf("tenant: line %d: profile without ID", line)
		}
		if _, dup := r.byID[p.ID]; dup {
			continue
		}
		r.insertLocked(p.normalize())
		var n int
		if _, err := fmt.Sscanf(p.ID, "tenant-%d", &n); err == nil && n > r.next {
			r.next = n
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tenant: reading profiles: %w", err)
	}
	return r, nil
}

// SaveFile writes the registry to path atomically (write + rename) and
// returns the revision the snapshot captured — the labeled
// checkpointer's dump signature.
func (r *Registry) SaveFile(path string) (uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rev := r.rev
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	if err := r.writeJSONLLocked(f); err != nil {
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the write error is what the caller needs
		f.Close()
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the write error is what the caller needs
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the close error is what the caller needs
		os.Remove(tmp)
		return 0, err
	}
	return rev, os.Rename(tmp, path)
}

// LoadFile reads a registry previously written with SaveFile. A
// missing file yields an empty registry (first run).
func LoadFile(path string, cfg Config) (*Registry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return NewRegistry(cfg), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRegistry(f, cfg)
}
