// The per-tenant result cache. Entries are generation-invalidated
// rather than TTL-evicted: each entry records the profile revision and
// lead-store revision it was computed under, and a lookup only hits
// when both still match — so an ICP update or a newly ingested lead
// invalidates exactly the results it could have changed, with no
// wall-clock dependence (the determinism lint covers this package).
package tenant

import (
	"sync"

	"etap/internal/obs"
)

// DefaultCacheSize bounds the cache when NewCache is given a
// non-positive max.
const DefaultCacheSize = 256

type cacheEntry struct {
	profileRev uint64
	storeRev   uint64
	val        any
}

// Cache memoizes tenant-scoped query results keyed by (tenant, query),
// invalidated by profile and lead-store generation.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	order   []string // insertion order, for deterministic eviction

	hits     *obs.Counter
	misses   *obs.Counter
	entriesG *obs.Gauge
}

// NewCache returns a cache holding at most max entries (DefaultCacheSize
// when max <= 0), registering its metrics on reg (obs.Default when nil).
func NewCache(max int, reg *obs.Registry) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	if reg == nil {
		reg = obs.Default
	}
	return &Cache{
		max:     max,
		entries: make(map[string]*cacheEntry),
		hits: reg.Counter("etap_tenant_cache_hits_total",
			"Tenant result-cache lookups served from a still-valid entry."),
		misses: reg.Counter("etap_tenant_cache_misses_total",
			"Tenant result-cache lookups that missed or hit a stale generation."),
		entriesG: reg.Gauge("etap_tenant_cache_entries",
			"Tenant result-cache entries currently held."),
	}
}

// key joins tenant and query with a byte neither can contain.
func cacheKey(tenantID, query string) string { return tenantID + "\x00" + query }

// Get returns the cached value for (tenantID, query) if it was computed
// under the same profile and store revisions; a generation mismatch
// counts as a miss and drops the stale entry.
func (c *Cache) Get(tenantID, query string, profileRev, storeRev uint64) (any, bool) {
	k := cacheKey(tenantID, query)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if ok && e.profileRev == profileRev && e.storeRev == storeRev {
		c.hits.Inc()
		return e.val, true
	}
	if ok {
		c.removeLocked(k)
	}
	c.misses.Inc()
	return nil, false
}

// Put stores a value computed under the given revisions, evicting the
// oldest entry when full.
func (c *Cache) Put(tenantID, query string, profileRev, storeRev uint64, val any) {
	k := cacheKey(tenantID, query)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		e.profileRev, e.storeRev, e.val = profileRev, storeRev, val
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		c.removeLocked(c.order[0])
	}
	c.entries[k] = &cacheEntry{profileRev: profileRev, storeRev: storeRev, val: val}
	c.order = append(c.order, k)
	c.entriesG.Set(int64(len(c.entries)))
}

// removeLocked drops one entry; caller holds mu.
func (c *Cache) removeLocked(k string) {
	delete(c.entries, k)
	for i, ok := range c.order {
		if ok == k {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.entriesG.Set(int64(len(c.entries)))
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
