package tenant

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"etap/internal/kb"
	"etap/internal/obs"
)

func fixedClock() time.Time { return time.Unix(1_700_000_000, 0) }

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	return NewRegistry(Config{Clock: fixedClock, Registry: obs.NewRegistry()})
}

func TestRegistryCRUD(t *testing.T) {
	r := testRegistry(t)
	p, err := r.Add(Profile{Name: "Acme Sales", Industries: []string{"Healthcare", "healthcare", " Retail "}})
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != "tenant-1" {
		t.Fatalf("auto ID = %q, want tenant-1", p.ID)
	}
	if p.Created != fixedClock().Unix() {
		t.Fatalf("Created = %d, want the injected clock", p.Created)
	}
	if got := len(p.Industries); got != 2 {
		t.Fatalf("industries not deduped: %v", p.Industries)
	}
	if p.Industries[0] != "healthcare" || p.Industries[1] != "retail" {
		t.Fatalf("industries not normalized: %v", p.Industries)
	}

	got, rev1, err := r.Get("tenant-1")
	if err != nil || got.Name != "Acme Sales" {
		t.Fatalf("Get = %+v, %v", got, err)
	}

	upd, err := r.Update("tenant-1", Profile{Name: "Acme EMEA", Locations: []string{"London"}})
	if err != nil {
		t.Fatal(err)
	}
	if upd.ID != "tenant-1" || upd.Created != p.Created {
		t.Fatalf("update must preserve ID and Created: %+v", upd)
	}
	_, rev2, err := r.Get("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	if rev2 <= rev1 {
		t.Fatalf("update did not bump the profile revision: %d -> %d", rev1, rev2)
	}

	if _, err := r.Add(Profile{ID: "tenant-1"}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := r.Delete("tenant-1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("tenant-1"); err == nil {
		t.Fatal("double delete succeeded")
	}
	if _, _, err := r.Get("tenant-1"); err == nil {
		t.Fatal("Get after delete succeeded")
	}
	// Recreating the ID must not resurrect the old revision stream.
	if _, err := r.Add(Profile{ID: "tenant-1"}); err != nil {
		t.Fatal(err)
	}
	_, rev3, _ := r.Get("tenant-1")
	if rev3 <= rev2 {
		t.Fatalf("recreated tenant reused an old revision: %d <= %d", rev3, rev2)
	}
}

func TestProfileValidate(t *testing.T) {
	r := testRegistry(t)
	if _, err := r.Add(Profile{MinScore: 1.5}); err == nil {
		t.Fatal("minScore > 1 accepted")
	}
	if _, err := r.Add(Profile{Quota: -1}); err == nil {
		t.Fatal("negative quota accepted")
	}
	if _, err := r.Add(Profile{SizeBuckets: []string{"gigantic"}}); err == nil {
		t.Fatal("unknown size bucket accepted")
	}
	if _, err := r.Add(Profile{SizeBuckets: []string{"Enterprise"}}); err != nil {
		t.Fatalf("case-insensitive size bucket rejected: %v", err)
	}
}

func TestRegistryPersistence(t *testing.T) {
	r := testRegistry(t)
	if _, err := r.Add(Profile{Name: "A", Industries: []string{"retail"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(Profile{Name: "B", SizeBuckets: []string{"large"}, Quota: 5}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tenants.jsonl")
	rev, err := r.SaveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rev != r.Revision() {
		t.Fatalf("SaveFile rev %d, registry rev %d", rev, r.Revision())
	}
	loaded, err := LoadFile(path, Config{Clock: fixedClock, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d profiles, want 2", loaded.Len())
	}
	var want, got bytes.Buffer
	if err := r.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", want.String(), got.String())
	}
	// Auto-assignment resumes past the highest persisted ID.
	p, err := loaded.Add(Profile{Name: "C"})
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != "tenant-3" {
		t.Fatalf("resumed auto ID = %q, want tenant-3", p.ID)
	}

	// Missing file is a clean first run.
	empty, err := LoadFile(filepath.Join(t.TempDir(), "absent.jsonl"), Config{Clock: fixedClock, Registry: obs.NewRegistry()})
	if err != nil || empty.Len() != 0 {
		t.Fatalf("missing file: %v, %d profiles", err, empty.Len())
	}
}

func TestMatchCompany(t *testing.T) {
	c := &kb.Company{
		Key: "halcyon", Name: "Halcyon Systems", Industry: "healthcare",
		Employees: 5000, SizeBucket: "large", HQ: "New York",
		Keywords: []string{"clinical", "patients", "cloud"},
	}
	cases := []struct {
		name string
		p    Profile
		want bool
	}{
		{"zero profile matches", Profile{}, true},
		{"industry hit", Profile{Industries: []string{"healthcare"}}, true},
		{"industry miss", Profile{Industries: []string{"retail"}}, false},
		{"size hit", Profile{SizeBuckets: []string{"large", "enterprise"}}, true},
		{"size miss", Profile{SizeBuckets: []string{"micro"}}, false},
		{"location case-insensitive", Profile{Locations: []string{"new york"}}, true},
		{"location miss", Profile{Locations: []string{"Tokyo"}}, false},
		{"all criteria", Profile{Industries: []string{"healthcare"}, SizeBuckets: []string{"large"}, Locations: []string{"new york"}}, true},
		{"one bad criterion fails", Profile{Industries: []string{"healthcare"}, SizeBuckets: []string{"micro"}}, false},
	}
	for _, tc := range cases {
		if got := tc.p.normalize().MatchCompany(c); got != tc.want {
			t.Fatalf("%s: MatchCompany = %v, want %v", tc.name, got, tc.want)
		}
	}
	// No KB record: fails any categorical criterion, passes a zero profile.
	if (Profile{Industries: []string{"retail"}}).normalize().MatchCompany(nil) {
		t.Fatal("nil company passed an industry criterion")
	}
	if !(Profile{}).MatchCompany(nil) {
		t.Fatal("nil company failed a zero profile")
	}
}

func TestScore(t *testing.T) {
	c := &kb.Company{
		Key: "halcyon", Industry: "healthcare", SizeBucket: "large",
		HQ: "New York", Keywords: []string{"clinical", "cloud"},
	}
	// Zero profile: every component contributes its full weight.
	if got := (Profile{}).Score(c, ""); got != 1.0 {
		t.Fatalf("zero profile score = %v, want 1", got)
	}
	// Keywords: one of two found (in KB keywords), categorical empty.
	p := Profile{Keywords: []string{"cloud", "blockchain"}}.normalize()
	want := weightIndustry + weightSize + weightLocation + weightKeywords*0.5
	if got := p.Score(c, "quarterly report"); got != want {
		t.Fatalf("keyword score = %v, want %v", got, want)
	}
	// Keyword found in lead text instead of KB record.
	p = Profile{Keywords: []string{"merger"}}.normalize()
	if got := p.Score(c, "Halcyon announced a MERGER today"); got != 1.0 {
		t.Fatalf("text keyword score = %v, want 1", got)
	}
	// Categorical miss loses exactly that weight.
	p = Profile{Industries: []string{"retail"}}.normalize()
	if got := p.Score(c, ""); got != 1.0-weightIndustry {
		t.Fatalf("industry miss score = %v, want %v", got, 1.0-weightIndustry)
	}
	// Determinism: same inputs, same score.
	p = Profile{Industries: []string{"healthcare"}, Keywords: []string{"clinical", "saas"}}.normalize()
	if a, b := p.Score(c, "text"), p.Score(c, "text"); a != b {
		t.Fatalf("score not deterministic: %v vs %v", a, b)
	}
}

func TestCacheGenerations(t *testing.T) {
	c := NewCache(0, obs.NewRegistry())
	c.Put("tenant-1", "top=50", 1, 10, "v1")
	if v, ok := c.Get("tenant-1", "top=50", 1, 10); !ok || v != "v1" {
		t.Fatalf("fresh entry missed: %v, %v", v, ok)
	}
	// Profile revision moved: stale, dropped.
	if _, ok := c.Get("tenant-1", "top=50", 2, 10); ok {
		t.Fatal("stale profile generation served")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not dropped: %d", c.Len())
	}
	// Store revision moved: stale too.
	c.Put("tenant-1", "top=50", 2, 10, "v2")
	if _, ok := c.Get("tenant-1", "top=50", 2, 11); ok {
		t.Fatal("stale store generation served")
	}
	// Same query for another tenant is a distinct key.
	c.Put("tenant-1", "top=50", 2, 11, "v3")
	if _, ok := c.Get("tenant-2", "top=50", 2, 11); ok {
		t.Fatal("tenant keys collided")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2, obs.NewRegistry())
	c.Put("t1", "q", 1, 1, "a")
	c.Put("t2", "q", 1, 1, "b")
	c.Put("t3", "q", 1, 1, "c") // evicts the oldest (t1)
	if _, ok := c.Get("t1", "q", 1, 1); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.Get("t2", "q", 1, 1); !ok {
		t.Fatal("newer entry evicted")
	}
	if _, ok := c.Get("t3", "q", 1, 1); !ok {
		t.Fatal("newest entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("cache size %d, want 2", c.Len())
	}
}
