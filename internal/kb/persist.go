// JSONL persistence for the knowledge base: one company per line in
// canonical-key order, written through the same atomic write+rename
// discipline as the lead store, so the bytes on disk are a pure
// function of the generation seed and a reloaded KB enriches leads
// identically to the process that generated it.
package kb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// WriteJSONL streams every company, in canonical-key order, one JSON
// object per line. Equal knowledge bases serialize to equal bytes —
// the property the determinism tests pin.
func (k *KB) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, key := range k.keys {
		if err := enc.Encode(k.byKey[key]); err != nil {
			return fmt.Errorf("kb: encoding company %s: %w", key, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a knowledge base from a JSONL stream. Duplicate keys
// keep the first occurrence; records are re-sorted by key so a loaded
// KB serializes identically regardless of input order.
func ReadJSONL(r io.Reader) (*KB, error) {
	k := &KB{byKey: make(map[string]*Company)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var c Company
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			return nil, fmt.Errorf("kb: line %d: %w", line, err)
		}
		if c.Key == "" {
			return nil, fmt.Errorf("kb: line %d: company without key", line)
		}
		if _, dup := k.byKey[c.Key]; dup {
			continue
		}
		cp := c
		k.byKey[c.Key] = &cp
		k.keys = append(k.keys, c.Key)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kb: reading: %w", err)
	}
	sort.Strings(k.keys)
	return k, nil
}

// SaveFile writes the knowledge base to path atomically (write +
// rename).
func (k *KB) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := k.WriteJSONL(f); err != nil {
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the write error is what the caller needs
		f.Close()
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the write error is what the caller needs
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the close error is what the caller needs
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a knowledge base previously written with SaveFile.
func LoadFile(path string) (*KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}
