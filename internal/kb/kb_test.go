package kb

import (
	"bytes"
	"path/filepath"
	"testing"

	"etap/internal/corpus"
)

// TestGenerateDeterministic pins the KB determinism contract: the same
// seed produces a byte-identical knowledge base across two independent
// generations, and a different seed produces a different one.
func TestGenerateDeterministic(t *testing.T) {
	serialize := func(k *KB) []byte {
		var buf bytes.Buffer
		if err := k.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := serialize(Generate(Config{Seed: 7}))
	b := serialize(Generate(Config{Seed: 7}))
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different knowledge bases")
	}
	c := serialize(Generate(Config{Seed: 8}))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical knowledge bases")
	}
}

// TestSaveLoadRoundTrip checks that enrichment is stable across a
// restart: a KB loaded from disk serializes to the same bytes as the
// in-memory original, and lookups resolve identically.
func TestSaveLoadRoundTrip(t *testing.T) {
	k := Generate(Config{Seed: 3})
	path := filepath.Join(t.TempDir(), "kb.jsonl")
	if err := k.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := k.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("loaded KB serializes differently from the in-memory original")
	}
	if loaded.Len() != k.Len() {
		t.Fatalf("loaded %d companies, generated %d", loaded.Len(), k.Len())
	}
	for _, c := range k.Companies() {
		lc, ok := loaded.Lookup(c.Name)
		if !ok {
			t.Fatalf("loaded KB lost %q", c.Name)
		}
		if lc.Industry != c.Industry || lc.SizeBucket != c.SizeBucket || lc.HQ != c.HQ {
			t.Fatalf("loaded record for %q diverged: %+v vs %+v", c.Name, lc, c)
		}
	}
}

// TestLookupCanonicalizes checks that every surface form of a company
// name resolves to the same record.
func TestLookupCanonicalizes(t *testing.T) {
	k := Generate(Config{Seed: 1})
	base, ok := k.Lookup("Halcyon")
	if !ok {
		t.Fatal("Halcyon missing from the KB")
	}
	for _, form := range []string{"Halcyon Systems Inc", "HALCYON", "Halcyon Systems, Ltd.", "halcyon corp"} {
		c, ok := k.Lookup(form)
		if !ok || c.Key != base.Key {
			t.Fatalf("Lookup(%q) = %v, %v; want the Halcyon record", form, c, ok)
		}
	}
	if _, ok := k.Lookup("No Such Company"); ok {
		t.Fatal("unknown company resolved")
	}
}

// TestCoversCorpusInventory checks the KB holds a record for every
// company subject the corpus can emit.
func TestCoversCorpusInventory(t *testing.T) {
	k := Generate(Config{Seed: 1})
	for _, name := range corpus.CompanyInventory() {
		if _, ok := k.Lookup(name); !ok {
			t.Fatalf("corpus company %q has no KB record", name)
		}
	}
}

// TestRecordInvariants checks per-record consistency: size bucket
// matches headcount, industry is in the taxonomy, relations resolve.
func TestRecordInvariants(t *testing.T) {
	k := Generate(Config{Seed: 5})
	industries := map[string]bool{}
	for _, ind := range Industries {
		industries[ind] = true
	}
	partners, parents := 0, 0
	for _, c := range k.Companies() {
		if got := SizeBucketFor(c.Employees); got != c.SizeBucket {
			t.Fatalf("%s: bucket %q for %d employees, want %q", c.Key, c.SizeBucket, c.Employees, got)
		}
		if !industries[c.Industry] {
			t.Fatalf("%s: industry %q not in the taxonomy", c.Key, c.Industry)
		}
		if len(c.Keywords) == 0 {
			t.Fatalf("%s: no keywords", c.Key)
		}
		for _, r := range c.Related {
			other, ok := k.Lookup(r.Company)
			if !ok {
				t.Fatalf("%s: relation to unknown company %q", c.Key, r.Company)
			}
			switch r.Kind {
			case RelationPartner:
				partners++
				if !other.related(RelationPartner, c.Key) {
					t.Fatalf("partnership %s → %s is not symmetric", c.Key, other.Key)
				}
			case RelationParent:
				parents++
				if other.Employees <= c.Employees {
					t.Fatalf("%s: parent %s is not larger", c.Key, other.Key)
				}
				if !other.related(RelationSubsidiary, c.Key) {
					t.Fatalf("parent %s missing subsidiary edge to %s", other.Key, c.Key)
				}
			case RelationSubsidiary:
			default:
				t.Fatalf("%s: unknown relation kind %q", c.Key, r.Kind)
			}
		}
	}
	if partners == 0 || parents == 0 {
		t.Fatalf("relationship pass produced %d partner and %d parent edges; want both > 0", partners, parents)
	}
}

// TestSizeBucketFor pins the bucket boundaries.
func TestSizeBucketFor(t *testing.T) {
	cases := []struct {
		employees int
		want      string
	}{
		{1, "micro"}, {10, "micro"}, {11, "small"}, {100, "small"},
		{101, "medium"}, {1000, "medium"}, {1001, "large"},
		{10000, "large"}, {10001, "enterprise"}, {200000, "enterprise"},
	}
	for _, c := range cases {
		if got := SizeBucketFor(c.employees); got != c.want {
			t.Fatalf("SizeBucketFor(%d) = %q, want %q", c.employees, got, c.want)
		}
	}
}
