// Package kb is the synthetic company knowledge base: a deterministic,
// seeded registry of firmographic attributes — industry, size,
// headquarters, founding year, keywords, inter-company relationships —
// for every company the corpus generator can write about. It plays the
// role DBpedia plays in knowledge-base-enriched B2B lead
// recommendation: ranked trigger events are stamped with their
// subject's attributes, and tenant ideal-customer profiles
// (internal/tenant) filter and re-rank against them.
//
// Generation is bit-deterministic: the same seed produces a
// byte-identical knowledge base (the KB determinism tests serialize two
// generations and compare), and the JSONL persistence round-trips
// exactly, so a restart that reloads the KB from disk enriches leads
// identically to the process that generated it.
package kb

import (
	"math/rand"
	"sort"

	"etap/internal/corpus"
	"etap/internal/gazetteer"
	"etap/internal/rank"
)

// Industries is the seeded industry taxonomy. Every generated company
// belongs to exactly one; tenant ICPs filter against these values
// (matched case-insensitively).
var Industries = []string{
	"enterprise software", "financial services", "telecommunications",
	"healthcare", "retail", "manufacturing", "energy", "logistics",
	"media", "consulting", "semiconductors", "biotechnology",
}

// SizeBuckets are the company-size classes, smallest first. Bucket
// boundaries are applied by SizeBucketFor.
var SizeBuckets = []string{"micro", "small", "medium", "large", "enterprise"}

// sizeBucketCeilings pairs each bucket (by SizeBuckets index) with its
// inclusive employee-count ceiling; the last bucket is unbounded.
var sizeBucketCeilings = []int{10, 100, 1000, 10000}

// SizeBucketFor maps an employee count to its size bucket.
func SizeBucketFor(employees int) string {
	for i, ceil := range sizeBucketCeilings {
		if employees <= ceil {
			return SizeBuckets[i]
		}
	}
	return SizeBuckets[len(SizeBuckets)-1]
}

// Relation kinds: how two companies in the knowledge base relate.
const (
	// RelationPartner marks a commercial partnership (symmetric; each
	// side records its own edge).
	RelationPartner = "partner"
	// RelationParent points from a subsidiary to its parent.
	RelationParent = "parent"
	// RelationSubsidiary points from a parent to one subsidiary.
	RelationSubsidiary = "subsidiary"
)

// Relation is one edge in the inter-company graph.
type Relation struct {
	// Kind is one of RelationPartner, RelationParent, RelationSubsidiary.
	Kind string `json:"kind"`
	// Company is the canonical key of the related company.
	Company string `json:"company"`
}

// Company is one knowledge-base record. Key is the canonical identity
// (rank.Canonical of the display name), so every surface form the
// corpus emits — "Halcyon Systems Inc", "HALCYON" — resolves to the
// same record.
type Company struct {
	// Key is the canonical company identity (rank.Canonical of Name).
	Key string `json:"key"`
	// Name is the display name.
	Name string `json:"name"`
	// Industry is one of Industries.
	Industry string `json:"industry"`
	// Employees is the headcount; SizeBucket classifies it.
	Employees int `json:"employees"`
	// SizeBucket is SizeBucketFor(Employees), stored for direct ICP
	// filtering.
	SizeBucket string `json:"sizeBucket"`
	// HQ is the headquarters location, drawn from the shared gazetteer
	// place inventory.
	HQ string `json:"hq"`
	// Founded is the founding year.
	Founded int `json:"founded"`
	// Keywords describe what the company does; tenant ICP keyword
	// criteria match against them (and against lead text).
	Keywords []string `json:"keywords,omitempty"`
	// Related are the company's edges in the inter-company graph.
	Related []Relation `json:"related,omitempty"`
}

// Config seeds knowledge-base generation.
type Config struct {
	// Seed drives all randomness; equal seeds produce byte-identical
	// knowledge bases.
	Seed int64
}

// KB is an immutable, loaded knowledge base: canonical key → company.
// Safe for concurrent reads; it is never mutated after Generate or
// ReadJSONL return.
type KB struct {
	byKey map[string]*Company
	keys  []string // sorted, for deterministic iteration and output
}

// industryKeywords maps each industry to its fixed keyword stems; every
// company gets its industry's stems plus seeded picks from the shared
// pool below.
var industryKeywords = map[string][]string{
	"enterprise software": {"saas", "platform"},
	"financial services":  {"payments", "banking"},
	"telecommunications":  {"network", "broadband"},
	"healthcare":          {"clinical", "patients"},
	"retail":              {"commerce", "stores"},
	"manufacturing":       {"factory", "supply"},
	"energy":              {"power", "grid"},
	"logistics":           {"freight", "fleet"},
	"media":               {"streaming", "publishing"},
	"consulting":          {"advisory", "strategy"},
	"semiconductors":      {"chips", "fabrication"},
	"biotechnology":       {"genomics", "therapeutics"},
}

// sharedKeywords is the cross-industry pool seeded picks draw from.
var sharedKeywords = []string{
	"cloud", "analytics", "security", "mobile", "automation",
	"outsourcing", "infrastructure", "data", "services", "hardware",
}

// Generate builds the knowledge base over the corpus company inventory:
// one record per canonical identity, attributes drawn from a seeded
// stream in a fixed iteration order, then a deterministic relationship
// pass (partnerships and parent/subsidiary chains).
func Generate(cfg Config) *KB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := &KB{byKey: make(map[string]*Company)}
	for _, name := range corpus.CompanyInventory() {
		key := rank.Canonical(name)
		if key == "" {
			continue
		}
		if _, dup := k.byKey[key]; dup {
			continue
		}
		c := &Company{
			Key:      key,
			Name:     name,
			Industry: Industries[rng.Intn(len(Industries))],
			HQ:       gazetteer.Places[rng.Intn(len(gazetteer.Places))],
			Founded:  1950 + rng.Intn(55),
		}
		// Headcount: pick the bucket first (skewed toward the middle),
		// then a size within it, so every bucket is populated.
		bucket := rng.Intn(len(SizeBuckets))
		lo := 1
		if bucket > 0 {
			lo = sizeBucketCeilings[bucket-1] + 1
		}
		hi := 200000
		if bucket < len(sizeBucketCeilings) {
			hi = sizeBucketCeilings[bucket]
		}
		c.Employees = lo + rng.Intn(hi-lo+1)
		c.SizeBucket = SizeBucketFor(c.Employees)
		c.Keywords = append(c.Keywords, industryKeywords[c.Industry]...)
		for n := 1 + rng.Intn(2); n > 0; n-- {
			kw := sharedKeywords[rng.Intn(len(sharedKeywords))]
			if !contains(c.Keywords, kw) {
				c.Keywords = append(c.Keywords, kw)
			}
		}
		sort.Strings(c.Keywords)
		k.byKey[key] = c
		k.keys = append(k.keys, key)
	}
	sort.Strings(k.keys)
	k.linkCompanies(rng)
	return k
}

// linkCompanies runs the deterministic relationship pass over the
// sorted key order: partnerships (symmetric edges) and
// parent/subsidiary chains (the parent is always the larger company).
func (k *KB) linkCompanies(rng *rand.Rand) {
	for _, key := range k.keys {
		c := k.byKey[key]
		if rng.Float64() < 0.35 {
			for n := 1 + rng.Intn(2); n > 0; n-- {
				other := k.byKey[k.keys[rng.Intn(len(k.keys))]]
				if other.Key == c.Key || c.related(RelationPartner, other.Key) {
					continue
				}
				c.Related = append(c.Related, Relation{Kind: RelationPartner, Company: other.Key})
				other.Related = append(other.Related, Relation{Kind: RelationPartner, Company: c.Key})
			}
		}
		if rng.Float64() < 0.15 {
			parent := k.byKey[k.keys[rng.Intn(len(k.keys))]]
			if parent.Key != c.Key && parent.Employees > c.Employees && !c.related(RelationParent, parent.Key) {
				c.Related = append(c.Related, Relation{Kind: RelationParent, Company: parent.Key})
				parent.Related = append(parent.Related, Relation{Kind: RelationSubsidiary, Company: c.Key})
			}
		}
	}
}

// related reports whether the company already has a (kind, key) edge.
func (c *Company) related(kind, key string) bool {
	for _, r := range c.Related {
		if r.Kind == kind && r.Company == key {
			return true
		}
	}
	return false
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Lookup resolves any surface form of a company name — suffixed,
// cased, punctuated — to its knowledge-base record through canonical
// alias resolution. The returned pointer is shared; callers must not
// mutate it.
func (k *KB) Lookup(company string) (*Company, bool) {
	c, ok := k.byKey[rank.Canonical(company)]
	return c, ok
}

// Len returns the number of companies in the knowledge base.
func (k *KB) Len() int { return len(k.keys) }

// Companies returns every record in canonical-key order (copies, safe
// to hold).
func (k *KB) Companies() []Company {
	out := make([]Company, 0, len(k.keys))
	for _, key := range k.keys {
		out = append(out, *k.byKey[key])
	}
	return out
}
