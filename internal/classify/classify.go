// Package classify provides the text classifiers ETAP builds its event
// identification on: the naïve Bayes classifier used in the paper's
// experiments (via Weka there, from scratch here), plus the alternatives
// the paper cites — a linear SVM [7] trained with Pegasos, and the
// weighted logistic regression of Lee & Liu [8] for learning from
// positive and unlabeled data. A shared evaluation harness computes the
// precision/recall/F1 measures reported in Table 1.
package classify

import "etap/internal/feature"

// Example is one training or test instance: a sparse feature vector and
// its class (true = positive for the sales driver).
type Example struct {
	X     feature.Vector
	Label bool
}

// Classifier scores feature vectors. Score is a monotone confidence for
// the positive class; Prob is calibrated to [0,1] where the decision
// threshold is 0.5.
type Classifier interface {
	// Prob returns the estimated probability that x belongs to the
	// positive class.
	Prob(x feature.Vector) float64
}

// Predict applies the conventional 0.5 threshold.
func Predict(c Classifier, x feature.Vector) bool { return c.Prob(x) >= 0.5 }
