package classify

import (
	"math"
	"math/rand"

	"etap/internal/feature"
)

// SVMConfig configures Pegasos training of the linear SVM.
type SVMConfig struct {
	// Lambda is the regularization strength; 0 means 1e-4.
	Lambda float64
	// Epochs is the number of passes over the data; 0 means 10.
	Epochs int
	// Seed drives the example-sampling order, making training
	// deterministic.
	Seed int64
}

// SVM is a two-class linear support vector machine trained with the
// Pegasos primal sub-gradient method. It is the alternative classifier
// the paper cites via Joachims [7] for cases with sufficient pure
// positive data.
type SVM struct {
	w    map[int]float64
	bias float64
	// Platt-style calibration parameters mapping margins to
	// probabilities: p = sigmoid(a*margin + b).
	a, b float64
}

// TrainSVM fits a linear SVM on examples.
func TrainSVM(examples []Example, cfg SVMConfig) *SVM {
	lambda := cfg.Lambda
	if lambda == 0 {
		lambda = 1e-4
	}
	epochs := cfg.Epochs
	if epochs == 0 {
		epochs = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	s := &SVM{w: make(map[int]float64)}
	if len(examples) == 0 {
		s.a = 1
		return s
	}

	t := 0
	steps := epochs * len(examples)
	for t < steps {
		t++
		ex := examples[rng.Intn(len(examples))]
		y := -1.0
		if ex.Label {
			y = 1.0
		}
		eta := 1 / (lambda * float64(t))
		margin := s.margin(ex.X)
		// Sub-gradient step: shrink w, then add the hinge-loss term.
		scale := 1 - eta*lambda
		if scale < 0 {
			scale = 0
		}
		for id := range s.w {
			s.w[id] *= scale
		}
		s.bias *= scale
		if y*margin < 1 {
			for _, term := range ex.X {
				s.w[term.ID] += eta * y * term.W
			}
			s.bias += eta * y * 0.1 // small bias learning rate
		}
	}

	s.calibrate(examples)
	return s
}

// margin returns w·x + b.
func (s *SVM) margin(x feature.Vector) float64 {
	m := s.bias
	for _, t := range x {
		m += s.w[t.ID] * t.W
	}
	return m
}

// calibrate fits a one-dimensional logistic map from margins to
// probabilities on the training data (a light-weight Platt scaling: fixed
// small number of Newton steps on the two-parameter sigmoid).
func (s *SVM) calibrate(examples []Example) {
	s.a, s.b = 1, 0
	for iter := 0; iter < 50; iter++ {
		var ga, gb, haa, hbb, hab float64
		for _, ex := range examples {
			m := s.margin(ex.X)
			p := sigmoid(s.a*m + s.b)
			y := 0.0
			if ex.Label {
				y = 1.0
			}
			d := p - y
			ga += d * m
			gb += d
			w := p * (1 - p)
			haa += w * m * m
			hbb += w
			hab += w * m
		}
		// Regularize the Hessian lightly for stability.
		haa += 1e-6
		hbb += 1e-6
		det := haa*hbb - hab*hab
		if math.Abs(det) < 1e-12 {
			break
		}
		da := (ga*hbb - gb*hab) / det
		db := (gb*haa - ga*hab) / det
		s.a -= da
		s.b -= db
		if math.Abs(da)+math.Abs(db) < 1e-9 {
			break
		}
	}
	// A degenerate calibration (negative slope) would flip the decision;
	// fall back to the raw margin in that case.
	if s.a <= 0 {
		s.a, s.b = 1, 0
	}
}

// Prob returns the calibrated probability of the positive class.
func (s *SVM) Prob(x feature.Vector) float64 {
	return sigmoid(s.a*s.margin(x) + s.b)
}

// Margin exposes the raw decision value for callers that rank rather than
// threshold.
func (s *SVM) Margin(x feature.Vector) float64 { return s.margin(x) }

func sigmoid(z float64) float64 {
	if z > 700 {
		return 1
	}
	if z < -700 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
