package classify

import (
	"math"

	"etap/internal/feature"
)

// EventModel selects the naïve Bayes event model.
type EventModel uint8

const (
	// Multinomial counts feature occurrences (the standard text model
	// of Nigam et al. [10]).
	Multinomial EventModel = iota
	// Bernoulli models binary feature presence.
	Bernoulli
)

// NaiveBayesConfig configures training.
type NaiveBayesConfig struct {
	// Model selects the event model; default Multinomial.
	Model EventModel
	// Alpha is the Laplace/Lidstone smoothing constant; 0 means 1.0.
	Alpha float64
	// VocabSize fixes the smoothing denominator's vocabulary size. 0
	// means "use the number of distinct features seen in training".
	// Setting it explicitly keeps probabilities comparable when the
	// training set is re-filtered between noise-elimination iterations.
	VocabSize int
	// ClassWeight scales the effective count of positive examples in
	// the prior (the paper oversamples pure positive data by 3; prior
	// balancing is the classifier-side equivalent). 0 means 1.
	ClassWeight float64
}

// NaiveBayes is a two-class naïve Bayes text classifier.
type NaiveBayes struct {
	model     EventModel
	logPrior  [2]float64
	logLik    [2]map[int]float64 // feature id -> log P(f|y)
	logUnseen [2]float64         // log-likelihood of an unseen feature
}

// TrainNaiveBayes fits the model on examples.
func TrainNaiveBayes(examples []Example, cfg NaiveBayesConfig) *NaiveBayes {
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 1.0
	}
	posWeight := cfg.ClassWeight
	if posWeight == 0 {
		posWeight = 1.0
	}

	// Count per-class feature occurrences (or document frequencies for
	// Bernoulli) and document counts.
	counts := [2]map[int]float64{{}, {}}
	var totals [2]float64 // total feature mass per class (multinomial)
	var docs [2]float64
	maxID := -1
	for _, ex := range examples {
		y := b2i(ex.Label)
		docs[y]++
		for _, t := range ex.X {
			if t.ID > maxID {
				maxID = t.ID
			}
			w := t.W
			if cfg.Model == Bernoulli {
				w = 1
			}
			counts[y][t.ID] += w
			totals[y] += w
		}
	}
	vocab := cfg.VocabSize
	if vocab <= 0 {
		vocab = maxID + 1
	}
	if vocab <= 0 {
		vocab = 1
	}

	nb := &NaiveBayes{model: cfg.Model}
	weighted := [2]float64{docs[0], docs[1] * posWeight}
	totalDocs := weighted[0] + weighted[1]
	for y := 0; y < 2; y++ {
		if totalDocs > 0 {
			nb.logPrior[y] = math.Log((weighted[y] + alpha) / (totalDocs + 2*alpha))
		} else {
			nb.logPrior[y] = math.Log(0.5)
		}
		nb.logLik[y] = make(map[int]float64, len(counts[y]))
		switch cfg.Model {
		case Multinomial:
			den := totals[y] + alpha*float64(vocab)
			for id, c := range counts[y] {
				nb.logLik[y][id] = math.Log((c + alpha) / den)
			}
			nb.logUnseen[y] = math.Log(alpha / den)
		case Bernoulli:
			den := docs[y] + 2*alpha
			for id, c := range counts[y] {
				nb.logLik[y][id] = math.Log((c + alpha) / den)
			}
			nb.logUnseen[y] = math.Log(alpha / den)
		}
	}
	return nb
}

// Prob returns P(positive | x) via Bayes' rule in log space.
func (nb *NaiveBayes) Prob(x feature.Vector) float64 {
	var logp [2]float64
	for y := 0; y < 2; y++ {
		lp := nb.logPrior[y]
		for _, t := range x {
			ll, ok := nb.logLik[y][t.ID]
			if !ok {
				ll = nb.logUnseen[y]
			}
			w := t.W
			if nb.model == Bernoulli {
				w = 1
			}
			lp += w * ll
		}
		logp[y] = lp
	}
	// Normalize: p1 = 1 / (1 + exp(logp0 - logp1)).
	d := logp[0] - logp[1]
	if d > 700 {
		return 0
	}
	if d < -700 {
		return 1
	}
	return 1 / (1 + math.Exp(d))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
