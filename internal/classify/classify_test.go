package classify

import (
	"math/rand"
	"testing"

	"etap/internal/feature"
)

// synth generates a linearly separable-ish two-class dataset over a small
// vocabulary: positives draw mostly from features [0,5), negatives from
// [5,10), with `noise` fraction of flipped draws.
func synth(n int, noise float64, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		label := i%2 == 0
		base := 0
		if !label {
			base = 5
		}
		if rng.Float64() < noise {
			base = 5 - base
		}
		var feats []string
		for j := 0; j < 4; j++ {
			feats = append(feats, string(rune('a'+base+rng.Intn(5))))
		}
		out = append(out, Example{Label: label, X: vec(feats...)})
	}
	return out
}

var testVocab = feature.NewVocab()

func vec(feats ...string) feature.Vector {
	return feature.Vectorize(testVocab, feats, true)
}

func TestNaiveBayesSeparable(t *testing.T) {
	train := synth(200, 0, 1)
	test := synth(100, 0, 2)
	nb := TrainNaiveBayes(train, NaiveBayesConfig{})
	m := Evaluate(nb, test)
	if m.F1() < 0.95 {
		t.Fatalf("NB on separable data: %v", m)
	}
}

func TestNaiveBayesNoisy(t *testing.T) {
	train := synth(400, 0.15, 3)
	test := synth(200, 0, 4)
	nb := TrainNaiveBayes(train, NaiveBayesConfig{})
	m := Evaluate(nb, test)
	if m.F1() < 0.9 {
		t.Fatalf("NB with 15%% label noise: %v", m)
	}
}

func TestNaiveBayesBernoulli(t *testing.T) {
	train := synth(200, 0, 5)
	test := synth(100, 0, 6)
	nb := TrainNaiveBayes(train, NaiveBayesConfig{Model: Bernoulli})
	m := Evaluate(nb, test)
	if m.F1() < 0.95 {
		t.Fatalf("Bernoulli NB: %v", m)
	}
}

func TestNaiveBayesProbRange(t *testing.T) {
	train := synth(100, 0.1, 7)
	nb := TrainNaiveBayes(train, NaiveBayesConfig{})
	for _, ex := range train {
		p := nb.Prob(ex.X)
		if p < 0 || p > 1 {
			t.Fatalf("prob out of range: %v", p)
		}
	}
	// Unseen features only.
	p := nb.Prob(vec("zz-unseen-1", "zz-unseen-2"))
	if p < 0 || p > 1 {
		t.Fatalf("unseen-feature prob out of range: %v", p)
	}
}

func TestNaiveBayesEmptyTraining(t *testing.T) {
	nb := TrainNaiveBayes(nil, NaiveBayesConfig{})
	p := nb.Prob(vec("a"))
	if p < 0 || p > 1 {
		t.Fatalf("empty-training prob = %v", p)
	}
}

func TestNaiveBayesClassWeight(t *testing.T) {
	// Heavily imbalanced data; upweighting positives should raise recall.
	var train []Example
	for i := 0; i < 20; i++ {
		train = append(train, Example{Label: true, X: vec("a", "b")})
	}
	for i := 0; i < 400; i++ {
		train = append(train, Example{Label: false, X: vec("x", "y")})
	}
	// Ambiguous test point sharing one feature with each class.
	x := vec("b", "x")
	plain := TrainNaiveBayes(train, NaiveBayesConfig{}).Prob(x)
	boosted := TrainNaiveBayes(train, NaiveBayesConfig{ClassWeight: 3}).Prob(x)
	if boosted <= plain {
		t.Fatalf("class weight had no effect: plain=%v boosted=%v", plain, boosted)
	}
}

func TestSVMSeparable(t *testing.T) {
	train := synth(300, 0, 8)
	test := synth(150, 0, 9)
	svm := TrainSVM(train, SVMConfig{Seed: 1})
	m := Evaluate(svm, test)
	if m.F1() < 0.93 {
		t.Fatalf("SVM on separable data: %v", m)
	}
}

func TestSVMDeterministic(t *testing.T) {
	train := synth(100, 0.1, 10)
	a := TrainSVM(train, SVMConfig{Seed: 7})
	b := TrainSVM(train, SVMConfig{Seed: 7})
	x := train[3].X
	if a.Prob(x) != b.Prob(x) {
		t.Fatal("SVM training is not deterministic for a fixed seed")
	}
}

func TestSVMMarginSign(t *testing.T) {
	train := synth(300, 0, 11)
	svm := TrainSVM(train, SVMConfig{Seed: 2})
	correct := 0
	for _, ex := range train {
		if (svm.Margin(ex.X) > 0) == ex.Label {
			correct++
		}
	}
	if float64(correct)/float64(len(train)) < 0.95 {
		t.Fatalf("margin sign agrees on only %d/%d", correct, len(train))
	}
}

func TestSVMEmptyTraining(t *testing.T) {
	svm := TrainSVM(nil, SVMConfig{})
	if p := svm.Prob(vec("a")); p < 0 || p > 1 {
		t.Fatalf("empty-training prob = %v", p)
	}
}

func TestLogRegSeparable(t *testing.T) {
	train := synth(300, 0, 12)
	test := synth(150, 0, 13)
	lr := TrainLogReg(train, LogRegConfig{Seed: 1})
	m := Evaluate(lr, test)
	if m.F1() < 0.95 {
		t.Fatalf("LogReg on separable data: %v", m)
	}
}

func TestLogRegPosWeightShiftsDecision(t *testing.T) {
	train := synth(200, 0.2, 14)
	x := train[0].X
	low := TrainLogReg(train, LogRegConfig{Seed: 3, PosWeight: 0.2}).Prob(x)
	high := TrainLogReg(train, LogRegConfig{Seed: 3, PosWeight: 3}).Prob(x)
	if high <= low {
		t.Fatalf("PosWeight had no effect: low=%v high=%v", low, high)
	}
}

func TestMetricsDerivedValues(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, TN: 85, FN: 5}
	if got := m.Precision(); got != 0.8 {
		t.Errorf("precision = %v, want 0.8", got)
	}
	if got := m.Recall(); got != 8.0/13.0 {
		t.Errorf("recall = %v", got)
	}
	f1 := 2 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0/13.0)
	if got := m.F1(); got != f1 {
		t.Errorf("f1 = %v, want %v", got, f1)
	}
	if got := m.Accuracy(); got != 0.93 {
		t.Errorf("accuracy = %v, want 0.93", got)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	var m Metrics
	if m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 || m.Accuracy() != 0 {
		t.Errorf("zero metrics should be all-zero: %v", m)
	}
}

func TestEvaluateAtThreshold(t *testing.T) {
	train := synth(200, 0, 15)
	nb := TrainNaiveBayes(train, NaiveBayesConfig{})
	strict := EvaluateAt(nb, train, 0.99)
	loose := EvaluateAt(nb, train, 0.01)
	if strict.TP+strict.FP > loose.TP+loose.FP {
		t.Fatalf("higher threshold predicted more positives: strict=%v loose=%v", strict, loose)
	}
}

func TestKFold(t *testing.T) {
	examples := synth(200, 0.05, 16)
	m := KFold(examples, 5, 99, func(train []Example) Classifier {
		return TrainNaiveBayes(train, NaiveBayesConfig{})
	})
	if total := m.TP + m.FP + m.TN + m.FN; total != 200 {
		t.Fatalf("k-fold covered %d examples, want 200", total)
	}
	if m.F1() < 0.9 {
		t.Fatalf("k-fold F1 = %v", m)
	}
}

func TestKFoldDeterministic(t *testing.T) {
	examples := synth(100, 0.1, 17)
	train := func(tr []Example) Classifier {
		return TrainNaiveBayes(tr, NaiveBayesConfig{})
	}
	a := KFold(examples, 4, 5, train)
	b := KFold(examples, 4, 5, train)
	if a != b {
		t.Fatalf("k-fold not deterministic: %v vs %v", a, b)
	}
}

func BenchmarkTrainNaiveBayes(b *testing.B) {
	train := synth(1000, 0.1, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainNaiveBayes(train, NaiveBayesConfig{})
	}
}

func BenchmarkNaiveBayesProb(b *testing.B) {
	train := synth(1000, 0.1, 21)
	nb := TrainNaiveBayes(train, NaiveBayesConfig{})
	x := train[0].X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Prob(x)
	}
}

func BenchmarkTrainSVM(b *testing.B) {
	train := synth(500, 0.1, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainSVM(train, SVMConfig{Seed: 1})
	}
}
