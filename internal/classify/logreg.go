package classify

import (
	"math/rand"

	"etap/internal/feature"
)

// LogRegConfig configures weighted logistic regression training.
type LogRegConfig struct {
	// LearningRate for SGD; 0 means 0.1.
	LearningRate float64
	// L2 regularization strength; 0 means 1e-4.
	L2 float64
	// Epochs over the data; 0 means 20.
	Epochs int
	// PosWeight and NegWeight re-weight the loss per class — the
	// mechanism of Lee & Liu [8] for learning with positive and
	// unlabeled examples: weight the (noisy) positive class below the
	// negative class to absorb label noise. 0 means 1.
	PosWeight float64
	NegWeight float64
	// Seed drives the shuffling order.
	Seed int64
}

// LogReg is a two-class logistic regression classifier with per-class
// loss weights ("weighted logistic regression", Lee & Liu [8]).
type LogReg struct {
	w    map[int]float64
	bias float64
}

// TrainLogReg fits the model with stochastic gradient descent.
func TrainLogReg(examples []Example, cfg LogRegConfig) *LogReg {
	lr := cfg.LearningRate
	if lr == 0 {
		lr = 0.1
	}
	l2 := cfg.L2
	if l2 == 0 {
		l2 = 1e-4
	}
	epochs := cfg.Epochs
	if epochs == 0 {
		epochs = 20
	}
	pw := cfg.PosWeight
	if pw == 0 {
		pw = 1
	}
	nw := cfg.NegWeight
	if nw == 0 {
		nw = 1
	}

	m := &LogReg{w: make(map[int]float64)}
	if len(examples) == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}

	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		eta := lr / (1 + float64(e))
		for _, idx := range order {
			ex := examples[idx]
			p := m.Prob(ex.X)
			y, cw := 0.0, nw
			if ex.Label {
				y, cw = 1.0, pw
			}
			g := cw * (p - y)
			for _, t := range ex.X {
				m.w[t.ID] -= eta * (g*t.W + l2*m.w[t.ID])
			}
			m.bias -= eta * g
		}
	}
	return m
}

// Prob returns P(positive | x).
func (m *LogReg) Prob(x feature.Vector) float64 {
	z := m.bias
	for _, t := range x {
		z += m.w[t.ID] * t.W
	}
	return sigmoid(z)
}
