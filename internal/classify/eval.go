package classify

import (
	"fmt"
	"math/rand"
)

// Metrics aggregates a binary confusion matrix and the derived measures
// reported in Table 1 of the paper.
type Metrics struct {
	TP, FP, TN, FN int
}

// Add records one prediction.
func (m *Metrics) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		m.TP++
	case predicted && !actual:
		m.FP++
	case !predicted && !actual:
		m.TN++
	default:
		m.FN++
	}
}

// Precision = TP / (TP + FP); 0 when nothing was predicted positive.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall = TP / (TP + FN); 0 when there are no positives.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 is the harmonic mean of precision and recall ("The F1 measure ... is
// computed as the harmonic mean of the precision and recall measures").
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy over all predictions.
func (m Metrics) Accuracy() float64 {
	total := m.TP + m.FP + m.TN + m.FN
	if total == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(total)
}

// String renders the metrics in the paper's table format.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d tn=%d fn=%d)",
		m.Precision(), m.Recall(), m.F1(), m.TP, m.FP, m.TN, m.FN)
}

// Evaluate scores a classifier over test examples at the 0.5 threshold.
func Evaluate(c Classifier, test []Example) Metrics {
	return EvaluateAt(c, test, 0.5)
}

// EvaluateAt scores a classifier over test examples at the given
// probability threshold.
func EvaluateAt(c Classifier, test []Example, threshold float64) Metrics {
	var m Metrics
	for _, ex := range test {
		m.Add(c.Prob(ex.X) >= threshold, ex.Label)
	}
	return m
}

// KFold runs k-fold cross validation, training with train on each fold's
// complement and evaluating on the fold. The fold assignment is a
// deterministic function of seed.
func KFold(examples []Example, k int, seed int64, train func([]Example) Classifier) Metrics {
	if k < 2 {
		k = 2
	}
	if len(examples) < k {
		k = len(examples)
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(examples))

	var total Metrics
	for fold := 0; fold < k; fold++ {
		var trainSet, testSet []Example
		for i, idx := range order {
			if i%k == fold {
				testSet = append(testSet, examples[idx])
			} else {
				trainSet = append(trainSet, examples[idx])
			}
		}
		c := train(trainSet)
		m := EvaluateAt(c, testSet, 0.5)
		total.TP += m.TP
		total.FP += m.FP
		total.TN += m.TN
		total.FN += m.FN
	}
	return total
}
