package classify

import (
	"math"
	"testing"
)

func prItems() []ScoredLabel {
	return []ScoredLabel{
		{0.9, true}, {0.8, true}, {0.7, false}, {0.6, true}, {0.5, false},
	}
}

func TestPRCurvePoints(t *testing.T) {
	curve := PRCurve(prItems())
	if len(curve) != 5 {
		t.Fatalf("points = %d, want 5", len(curve))
	}
	// Highest threshold first: P=1, R=1/3.
	if curve[0].Precision != 1 || math.Abs(curve[0].Recall-1.0/3.0) > 1e-12 {
		t.Errorf("first point: %+v", curve[0])
	}
	// Final point: all predicted positive → P=3/5, R=1.
	last := curve[len(curve)-1]
	if last.Recall != 1 || math.Abs(last.Precision-0.6) > 1e-12 {
		t.Errorf("last point: %+v", last)
	}
	// Recall is non-decreasing as the threshold falls.
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Errorf("recall decreased at %d: %+v", i, curve)
		}
	}
}

func TestPRCurveTiesGrouped(t *testing.T) {
	items := []ScoredLabel{{0.5, true}, {0.5, false}, {0.5, true}}
	curve := PRCurve(items)
	if len(curve) != 1 {
		t.Fatalf("tie group split: %+v", curve)
	}
	if curve[0].Recall != 1 || math.Abs(curve[0].Precision-2.0/3.0) > 1e-12 {
		t.Errorf("point: %+v", curve[0])
	}
}

func TestPRCurveDegenerate(t *testing.T) {
	if got := PRCurve(nil); got != nil {
		t.Errorf("empty: %+v", got)
	}
	if got := PRCurve([]ScoredLabel{{0.5, false}}); got != nil {
		t.Errorf("no positives: %+v", got)
	}
}

func TestBestF1(t *testing.T) {
	curve := PRCurve(prItems())
	point, f1 := BestF1(curve)
	// Candidates: (1, 1/3)->0.5, (1, 2/3)->0.8, (2/3,2/3)->2/3,
	// (3/4, 1)->6/7, (3/5, 1)->0.75. Best is threshold 0.6.
	if math.Abs(f1-6.0/7.0) > 1e-12 || point.Threshold != 0.6 {
		t.Fatalf("best = %+v f1=%v, want threshold 0.6 f1=6/7", point, f1)
	}
	if _, f := BestF1(nil); f != 0 {
		t.Errorf("empty curve f1 = %v", f)
	}
}

func TestInterpolatedPrecisionAt(t *testing.T) {
	curve := PRCurve(prItems())
	if got := InterpolatedPrecisionAt(curve, 0.3); got != 1 {
		t.Errorf("P@R>=0.3 = %v, want 1", got)
	}
	if got := InterpolatedPrecisionAt(curve, 1.0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P@R>=1.0 = %v, want 0.75", got)
	}
	if got := InterpolatedPrecisionAt(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestSortPoints(t *testing.T) {
	curve := sortPoints(PRCurve(prItems()))
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Fatalf("not sorted by recall: %+v", curve)
		}
	}
}

func TestPRCurveOnTrainedClassifier(t *testing.T) {
	train := synth(300, 0.1, 91)
	test := synth(200, 0, 92)
	nb := TrainNaiveBayes(train, NaiveBayesConfig{})
	items := make([]ScoredLabel, len(test))
	for i, ex := range test {
		items[i] = ScoredLabel{Score: nb.Prob(ex.X), Label: ex.Label}
	}
	curve := PRCurve(items)
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	_, f1 := BestF1(curve)
	if f1 < 0.9 {
		t.Fatalf("best F1 along curve = %v", f1)
	}
}
