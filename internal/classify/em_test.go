package classify

import (
	"math/rand"
	"testing"

	"etap/internal/feature"
)

// semiSupervised builds a tiny labeled set plus a large unlabeled pool
// from the same two-cluster distribution.
func semiSupervised(nLabeled, nUnlabeled int, seed int64) (labeled []Example, unlabeled []feature.Vector, test []Example) {
	all := synth(nLabeled+nUnlabeled+200, 0, seed)
	labeled = all[:nLabeled]
	for _, ex := range all[nLabeled : nLabeled+nUnlabeled] {
		unlabeled = append(unlabeled, ex.X)
	}
	test = all[nLabeled+nUnlabeled:]
	return labeled, unlabeled, test
}

func TestEMImprovesOverTinyLabeledSet(t *testing.T) {
	labeled, unlabeled, test := semiSupervised(6, 400, 31)

	base := TrainNaiveBayes(labeled, NaiveBayesConfig{})
	em := TrainNaiveBayesEM(labeled, unlabeled, NaiveBayesConfig{}, 8, 1)

	mBase := Evaluate(base, test)
	mEM := Evaluate(em, test)
	if mEM.F1() < mBase.F1()-0.02 {
		t.Fatalf("EM hurt: base %.3f, EM %.3f", mBase.F1(), mEM.F1())
	}
	if mEM.F1() < 0.9 {
		t.Fatalf("EM F1 = %.3f with 400 unlabeled docs", mEM.F1())
	}
}

func TestEMNoUnlabeledEqualsSupervised(t *testing.T) {
	labeled, _, _ := semiSupervised(50, 0, 32)
	a := TrainNaiveBayes(labeled, NaiveBayesConfig{})
	b := TrainNaiveBayesEM(labeled, nil, NaiveBayesConfig{}, 5, 1)
	x := labeled[0].X
	if a.Prob(x) != b.Prob(x) {
		t.Fatal("EM with no unlabeled data must equal supervised NB")
	}
}

func TestEMUnlabeledWeight(t *testing.T) {
	labeled, unlabeled, test := semiSupervised(10, 300, 33)
	full := TrainNaiveBayesEM(labeled, unlabeled, NaiveBayesConfig{}, 5, 1)
	light := TrainNaiveBayesEM(labeled, unlabeled, NaiveBayesConfig{}, 5, 0.1)
	mFull := Evaluate(full, test)
	mLight := Evaluate(light, test)
	// Both must work; the down-weighted variant stays close to the
	// supervised solution but should not collapse.
	if mFull.F1() < 0.85 || mLight.F1() < 0.85 {
		t.Fatalf("EM variants degraded: full %.3f light %.3f", mFull.F1(), mLight.F1())
	}
}

func TestEMDeterministic(t *testing.T) {
	labeled, unlabeled, _ := semiSupervised(10, 100, 34)
	a := TrainNaiveBayesEM(labeled, unlabeled, NaiveBayesConfig{}, 5, 1)
	b := TrainNaiveBayesEM(labeled, unlabeled, NaiveBayesConfig{}, 5, 1)
	x := unlabeled[0]
	if a.Prob(x) != b.Prob(x) {
		t.Fatal("EM training not deterministic")
	}
}

func TestEMBernoulli(t *testing.T) {
	labeled, unlabeled, test := semiSupervised(10, 200, 35)
	em := TrainNaiveBayesEM(labeled, unlabeled, NaiveBayesConfig{Model: Bernoulli}, 5, 1)
	if m := Evaluate(em, test); m.F1() < 0.85 {
		t.Fatalf("Bernoulli EM F1 = %.3f", m.F1())
	}
}

func TestEMProbBounds(t *testing.T) {
	labeled, unlabeled, _ := semiSupervised(8, 150, 36)
	em := TrainNaiveBayesEM(labeled, unlabeled, NaiveBayesConfig{}, 5, 1)
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 50; i++ {
		var feats []string
		for j := 0; j < 1+rng.Intn(6); j++ {
			feats = append(feats, string(rune('a'+rng.Intn(12))))
		}
		p := em.Prob(vec(feats...))
		if p < 0 || p > 1 {
			t.Fatalf("prob out of bounds: %v", p)
		}
	}
}
