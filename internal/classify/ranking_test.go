package classify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUCPerfect(t *testing.T) {
	items := []ScoredLabel{
		{0.9, true}, {0.8, true}, {0.3, false}, {0.1, false},
	}
	if got := AUC(items); got != 1 {
		t.Errorf("perfect AUC = %v, want 1", got)
	}
}

func TestAUCInverted(t *testing.T) {
	items := []ScoredLabel{
		{0.9, false}, {0.8, false}, {0.3, true}, {0.1, true},
	}
	if got := AUC(items); got != 0 {
		t.Errorf("inverted AUC = %v, want 0", got)
	}
}

func TestAUCTiesCountHalf(t *testing.T) {
	items := []ScoredLabel{{0.5, true}, {0.5, false}}
	if got := AUC(items); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if got := AUC(nil); got != 0.5 {
		t.Errorf("empty AUC = %v", got)
	}
	if got := AUC([]ScoredLabel{{0.4, true}}); got != 0.5 {
		t.Errorf("single-class AUC = %v", got)
	}
}

// Property: AUC is invariant under any strictly monotone transform of the
// scores.
func TestAUCMonotoneInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := make([]ScoredLabel, 30)
		for i := range items {
			items[i] = ScoredLabel{Score: rng.Float64(), Label: rng.Intn(2) == 0}
		}
		transformed := make([]ScoredLabel, len(items))
		for i, it := range items {
			transformed[i] = ScoredLabel{Score: math.Exp(3 * it.Score), Label: it.Label}
		}
		return math.Abs(AUC(items)-AUC(transformed)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	items := []ScoredLabel{
		{0.9, true}, {0.8, false}, {0.7, true}, {0.6, true}, {0.1, false},
	}
	if got := PrecisionAtK(items, 1); got != 1 {
		t.Errorf("P@1 = %v", got)
	}
	if got := PrecisionAtK(items, 2); got != 0.5 {
		t.Errorf("P@2 = %v", got)
	}
	if got := PrecisionAtK(items, 4); got != 0.75 {
		t.Errorf("P@4 = %v", got)
	}
	if got := PrecisionAtK(items, 100); got != 3.0/5.0 {
		t.Errorf("P@overflow = %v", got)
	}
	if got := PrecisionAtK(items, 0); got != 0 {
		t.Errorf("P@0 = %v", got)
	}
	if got := PrecisionAtK(nil, 3); got != 0 {
		t.Errorf("P@k empty = %v", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Positives at ranks 1 and 3: AP = (1/1 + 2/3)/2 = 5/6.
	items := []ScoredLabel{
		{0.9, true}, {0.8, false}, {0.7, true}, {0.6, false},
	}
	if got := AveragePrecision(items); math.Abs(got-5.0/6.0) > 1e-12 {
		t.Errorf("AP = %v, want 5/6", got)
	}
	if got := AveragePrecision([]ScoredLabel{{0.5, false}}); got != 0 {
		t.Errorf("AP no positives = %v", got)
	}
}

// Property: AUC and AP lie in [0,1]; P@k in [0,1].
func TestRankingMeasureBounds(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		items := make([]ScoredLabel, 1+rng.Intn(50))
		for i := range items {
			items[i] = ScoredLabel{Score: rng.NormFloat64(), Label: rng.Intn(3) == 0}
		}
		auc := AUC(items)
		ap := AveragePrecision(items)
		pk := PrecisionAtK(items, int(k))
		return auc >= 0 && auc <= 1 && ap >= 0 && ap <= 1 && pk >= 0 && pk <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
