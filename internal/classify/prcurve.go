package classify

import "sort"

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve sweeps the decision threshold over every distinct score and
// returns the precision/recall trade-off, highest threshold first. It is
// the data a deployment uses to pick the operating point for each sales
// driver (the paper evaluates at 0.5; a sales team that wants fewer,
// surer leads slides right).
func PRCurve(items []ScoredLabel) []PRPoint {
	sorted := sortByScore(items)
	totalPos := 0
	for _, it := range sorted {
		if it.Label {
			totalPos++
		}
	}
	if totalPos == 0 || len(sorted) == 0 {
		return nil
	}
	var out []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(sorted); {
		// Consume the whole tie group so thresholds are well defined.
		score := sorted[i].Score
		for i < len(sorted) && sorted[i].Score == score {
			if sorted[i].Label {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, PRPoint{
			Threshold: score,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(totalPos),
		})
	}
	return out
}

// BestF1 returns the operating point maximizing F1 along the curve.
func BestF1(curve []PRPoint) (PRPoint, float64) {
	best := PRPoint{}
	bestF1 := -1.0
	for _, p := range curve {
		if p.Precision+p.Recall == 0 {
			continue
		}
		f1 := 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
		if f1 > bestF1 {
			bestF1 = f1
			best = p
		}
	}
	if bestF1 < 0 {
		return PRPoint{}, 0
	}
	return best, bestF1
}

// InterpolatedPrecisionAt returns the interpolated precision at the
// given recall level (the maximum precision at any recall >= r), the
// standard TREC-style measure.
func InterpolatedPrecisionAt(curve []PRPoint, r float64) float64 {
	best := 0.0
	for _, p := range curve {
		if p.Recall >= r && p.Precision > best {
			best = p.Precision
		}
	}
	return best
}

// sortPoints orders a curve by ascending recall (for plotting).
func sortPoints(curve []PRPoint) []PRPoint {
	out := append([]PRPoint(nil), curve...)
	sort.Slice(out, func(i, j int) bool { return out[i].Recall < out[j].Recall })
	return out
}
