package classify

import "sort"

// Ranking-quality measures for scored lists. ETAP's output is a ranked
// list of trigger events reviewed top-down by a domain specialist
// (Section 4), so threshold-free measures — AUC, precision@k, average
// precision — describe its usefulness better than a single operating
// point.

// ScoredLabel pairs a score with the ground-truth label.
type ScoredLabel struct {
	Score float64
	Label bool
}

// sortByScore returns the items in descending score order (stable).
func sortByScore(items []ScoredLabel) []ScoredLabel {
	out := append([]ScoredLabel(nil), items...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// AUC computes the area under the ROC curve: the probability that a
// random positive outscores a random negative (ties count half).
// Returns 0.5 for degenerate inputs (no positives or no negatives).
func AUC(items []ScoredLabel) float64 {
	// Rank-sum formulation with midranks for ties.
	sorted := append([]ScoredLabel(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score < sorted[j].Score })
	var nPos, nNeg float64
	var rankSum float64 // sum of positive midranks
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			j++
		}
		midrank := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			if sorted[k].Label {
				nPos++
				rankSum += midrank
			} else {
				nNeg++
			}
		}
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// PrecisionAtK is the fraction of the k highest-scored items that are
// positive. k > len(items) uses the whole list.
func PrecisionAtK(items []ScoredLabel, k int) float64 {
	if k <= 0 {
		return 0
	}
	sorted := sortByScore(items)
	if k > len(sorted) {
		k = len(sorted)
	}
	if k == 0 {
		return 0
	}
	pos := 0
	for _, it := range sorted[:k] {
		if it.Label {
			pos++
		}
	}
	return float64(pos) / float64(k)
}

// AveragePrecision computes AP: the mean of precision@k over the ranks k
// where a positive appears. 0 when there are no positives.
func AveragePrecision(items []ScoredLabel) float64 {
	sorted := sortByScore(items)
	var hits, sum float64
	for i, it := range sorted {
		if it.Label {
			hits++
			sum += hits / float64(i+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / hits
}
