package classify

import (
	"math"

	"etap/internal/feature"
)

// TrainNaiveBayesEM implements the semi-supervised naïve Bayes of Nigam,
// McCallum, Thrun & Mitchell [10], which the paper cites as a usable
// classifier: train on the labeled examples, then alternate
//
//	E-step: probabilistically label the unlabeled vectors with the
//	        current model;
//	M-step: re-estimate the model from labeled counts plus the
//	        fractional unlabeled counts;
//
// until the expected labels stabilize or emIters is exhausted.
// unlabeledWeight (0 < w <= 1, 0 means 1) down-weights the unlabeled
// evidence relative to the labeled data, as in the EM-lambda variant.
func TrainNaiveBayesEM(labeled []Example, unlabeled []feature.Vector, cfg NaiveBayesConfig, emIters int, unlabeledWeight float64) *NaiveBayes {
	if emIters <= 0 {
		emIters = 5
	}
	if unlabeledWeight <= 0 || unlabeledWeight > 1 {
		unlabeledWeight = 1
	}

	nb := TrainNaiveBayes(labeled, cfg)
	if len(unlabeled) == 0 {
		return nb
	}

	prev := make([]float64, len(unlabeled))
	for iter := 0; iter < emIters; iter++ {
		// E-step.
		post := make([]float64, len(unlabeled))
		maxDelta := 0.0
		for i, x := range unlabeled {
			post[i] = nb.Prob(x)
			if d := math.Abs(post[i] - prev[i]); d > maxDelta {
				maxDelta = d
			}
		}
		prev = post

		// M-step with fractional counts.
		nb = trainNBFractional(labeled, unlabeled, post, cfg, unlabeledWeight)

		if iter > 0 && maxDelta < 1e-4 {
			break
		}
	}
	return nb
}

// trainNBFractional re-estimates the model from hard-labeled examples
// plus soft-labeled vectors (post[i] = P(positive | x_i)).
func trainNBFractional(labeled []Example, unlabeled []feature.Vector, post []float64, cfg NaiveBayesConfig, w float64) *NaiveBayes {
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 1.0
	}
	counts := [2]map[int]float64{{}, {}}
	var totals [2]float64
	var docs [2]float64
	maxID := -1

	accumulate := func(x feature.Vector, weight [2]float64) {
		docs[0] += weight[0]
		docs[1] += weight[1]
		for _, t := range x {
			if t.ID > maxID {
				maxID = t.ID
			}
			v := t.W
			if cfg.Model == Bernoulli {
				v = 1
			}
			for y := 0; y < 2; y++ {
				if weight[y] > 0 {
					counts[y][t.ID] += v * weight[y]
					totals[y] += v * weight[y]
				}
			}
		}
	}
	for _, ex := range labeled {
		var weight [2]float64
		weight[b2i(ex.Label)] = 1
		accumulate(ex.X, weight)
	}
	for i, x := range unlabeled {
		accumulate(x, [2]float64{w * (1 - post[i]), w * post[i]})
	}

	vocab := cfg.VocabSize
	if vocab <= 0 {
		vocab = maxID + 1
	}
	if vocab <= 0 {
		vocab = 1
	}

	nb := &NaiveBayes{model: cfg.Model}
	totalDocs := docs[0] + docs[1]
	for y := 0; y < 2; y++ {
		if totalDocs > 0 {
			nb.logPrior[y] = math.Log((docs[y] + alpha) / (totalDocs + 2*alpha))
		} else {
			nb.logPrior[y] = math.Log(0.5)
		}
		nb.logLik[y] = make(map[int]float64, len(counts[y]))
		var den float64
		if cfg.Model == Bernoulli {
			den = docs[y] + 2*alpha
		} else {
			den = totals[y] + alpha*float64(vocab)
		}
		for id, c := range counts[y] {
			nb.logLik[y][id] = math.Log((c + alpha) / den)
		}
		nb.logUnseen[y] = math.Log(alpha / den)
	}
	return nb
}
