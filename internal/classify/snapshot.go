package classify

// Serializable snapshots of the trained classifiers. Training is cheap
// here, but a production deployment trains once and serves many — and a
// reproduction must be able to pin the exact model an experiment used.
// All snapshots round-trip through encoding/json.

// NaiveBayesSnapshot is the serializable form of a NaiveBayes.
type NaiveBayesSnapshot struct {
	Model     EventModel         `json:"model"`
	LogPrior  [2]float64         `json:"logPrior"`
	LogLik    [2]map[int]float64 `json:"logLik"`
	LogUnseen [2]float64         `json:"logUnseen"`
}

// Snapshot exports the trained parameters.
func (nb *NaiveBayes) Snapshot() NaiveBayesSnapshot {
	s := NaiveBayesSnapshot{
		Model:     nb.model,
		LogPrior:  nb.logPrior,
		LogUnseen: nb.logUnseen,
	}
	for y := 0; y < 2; y++ {
		s.LogLik[y] = make(map[int]float64, len(nb.logLik[y]))
		for id, v := range nb.logLik[y] {
			s.LogLik[y][id] = v
		}
	}
	return s
}

// NaiveBayesFromSnapshot rebuilds a classifier from exported parameters.
func NaiveBayesFromSnapshot(s NaiveBayesSnapshot) *NaiveBayes {
	nb := &NaiveBayes{
		model:     s.Model,
		logPrior:  s.LogPrior,
		logUnseen: s.LogUnseen,
	}
	for y := 0; y < 2; y++ {
		nb.logLik[y] = make(map[int]float64, len(s.LogLik[y]))
		for id, v := range s.LogLik[y] {
			nb.logLik[y][id] = v
		}
	}
	return nb
}

// SVMSnapshot is the serializable form of an SVM.
type SVMSnapshot struct {
	W    map[int]float64 `json:"w"`
	Bias float64         `json:"bias"`
	A    float64         `json:"a"`
	B    float64         `json:"b"`
}

// Snapshot exports the trained parameters.
func (s *SVM) Snapshot() SVMSnapshot {
	w := make(map[int]float64, len(s.w))
	for id, v := range s.w {
		w[id] = v
	}
	return SVMSnapshot{W: w, Bias: s.bias, A: s.a, B: s.b}
}

// SVMFromSnapshot rebuilds a classifier from exported parameters.
func SVMFromSnapshot(snap SVMSnapshot) *SVM {
	w := make(map[int]float64, len(snap.W))
	for id, v := range snap.W {
		w[id] = v
	}
	return &SVM{w: w, bias: snap.Bias, a: snap.A, b: snap.B}
}

// LogRegSnapshot is the serializable form of a LogReg.
type LogRegSnapshot struct {
	W    map[int]float64 `json:"w"`
	Bias float64         `json:"bias"`
}

// Snapshot exports the trained parameters.
func (m *LogReg) Snapshot() LogRegSnapshot {
	w := make(map[int]float64, len(m.w))
	for id, v := range m.w {
		w[id] = v
	}
	return LogRegSnapshot{W: w, Bias: m.bias}
}

// LogRegFromSnapshot rebuilds a classifier from exported parameters.
func LogRegFromSnapshot(snap LogRegSnapshot) *LogReg {
	w := make(map[int]float64, len(snap.W))
	for id, v := range snap.W {
		w[id] = v
	}
	return &LogReg{w: w, bias: snap.Bias}
}
