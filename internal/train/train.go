package train

import (
	"fmt"
	"math/rand"
	"strings"

	"etap/internal/annotate"
	"etap/internal/corpus"
	"etap/internal/ner"
	"etap/internal/obs"
	"etap/internal/snippet"
	"etap/internal/web"
)

// Training-data generation reports into the process-wide registry so a
// live etapd shows how much raw material each AddDriver consumed.
// Unlike the extraction hot path, these counters are not scoped by
// core.Config.Metrics/DisableMetrics — they always use obs.Default.
var (
	mQueries = obs.Default.Counter("etap_train_queries_total",
		"Smart queries issued during noisy-positive generation.")
	mPages = obs.Default.Counter("etap_train_pages_fetched_total",
		"Pages fetched by smart queries during noisy-positive generation.")
	mSnippetsSeen = obs.Default.Counter("etap_train_snippets_seen_total",
		"Snippets considered during noisy-positive generation.")
	mSnippetsKept = obs.Default.Counter("etap_train_snippets_kept_total",
		"Snippets surviving the entity filter and de-duplication.")
	mNegatives = obs.Default.Counter("etap_train_negatives_sampled_total",
		"Random negative snippets sampled from the web.")
)

// Spec describes how to generate noisy positive data for one sales
// driver: the smart queries and the snippet-level entity filter.
type Spec struct {
	Driver       corpus.Driver
	SmartQueries []string
	Filter       Filter
}

// DefaultSpecs returns the specs the paper describes for the three
// built-in drivers: five smart queries each, with the quoted filters of
// Sections 3.3.1 and 5.1.
func DefaultSpecs() map[corpus.Driver]Spec {
	maQueries := make([]string, 0, 5)
	for _, p := range corpus.FamousPairs() {
		maQueries = append(maQueries, p[0]+" "+p[1]) // "IBM Daksh" etc.
	}
	return map[corpus.Driver]Spec{
		corpus.MergersAcquisitions: {
			Driver:       corpus.MergersAcquisitions,
			SmartQueries: maQueries,
			// "Discard all snippets not containing two ORG annotations."
			Filter: MinCount(ner.ORG, 2),
		},
		corpus.ChangeInManagement: {
			Driver: corpus.ChangeInManagement,
			SmartQueries: []string{
				`"new ceo"`, `"new cto"`, `"new president"`,
				`"new managing director"`, `"was appointed"`,
			},
			// "Designation AND (Person OR Organization)".
			Filter: And(Has(ner.DESIG), Or(Has(ner.PRSN), Has(ner.ORG))),
		},
		corpus.RevenueGrowth: {
			Driver: corpus.RevenueGrowth,
			SmartQueries: []string{
				`"revenue growth"`, `"quarterly revenue"`, `"record revenue"`,
				`"earnings grew"`, `"revenue fell"`,
			},
			// "Organization AND (Currency OR percent figure)".
			Filter: And(Has(ner.ORG), Or(Has(ner.CURRENCY), Has(ner.PRCNT))),
		},
	}
}

// Config sizes the generation process.
type Config struct {
	// TopK documents fetched per smart query; 0 means 200 ("We gathered
	// the top 200 documents returned by the search engine").
	TopK int
	// SnippetN is the sentences-per-snippet window; 0 means 3.
	SnippetN int
}

func (c Config) withDefaults() Config {
	if c.TopK == 0 {
		c.TopK = 200
	}
	if c.SnippetN == 0 {
		c.SnippetN = snippet.DefaultN
	}
	return c
}

// Snippet is a generated training snippet with provenance.
type Snippet struct {
	Text  string
	URL   string
	Units []annotate.Unit // annotation, reused by feature extraction
}

// Stats reports what the generation step did.
type Stats struct {
	QueriesRun       int
	PagesFetched     int
	SnippetsSeen     int
	SnippetsFiltered int // rejected by the entity filter
	SnippetsKept     int
	Duplicates       int
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("queries=%d pages=%d snippets=%d kept=%d filtered=%d dups=%d",
		s.QueriesRun, s.PagesFetched, s.SnippetsSeen, s.SnippetsKept,
		s.SnippetsFiltered, s.Duplicates)
}

// NoisyPositives runs the two-step procedure of Section 3.3.1: smart
// queries fetch top-k pages, pages are split into snippets, snippets are
// annotated, and the entity filter distills the noisy positive set.
// Duplicate snippet texts (the same page reached by several queries) are
// kept once.
func NoisyPositives(w *web.Web, ann *annotate.Annotator, spec Spec, cfg Config) ([]Snippet, Stats) {
	cfg = cfg.withDefaults()
	gen := snippet.Generator{N: cfg.SnippetN}

	var out []Snippet
	var stats Stats
	seenPage := map[string]bool{}
	seenText := map[string]bool{}
	for _, q := range spec.SmartQueries {
		stats.QueriesRun++
		for _, page := range w.Search(q, cfg.TopK) {
			if seenPage[page.URL] {
				continue
			}
			seenPage[page.URL] = true
			stats.PagesFetched++
			for _, sn := range gen.Split(page.URL, page.Text) {
				stats.SnippetsSeen++
				units := ann.Annotate(sn.Text)
				if spec.Filter != nil && !spec.Filter(units) {
					stats.SnippetsFiltered++
					continue
				}
				key := strings.ToLower(sn.Text)
				if seenText[key] {
					stats.Duplicates++
					continue
				}
				seenText[key] = true
				out = append(out, Snippet{Text: sn.Text, URL: page.URL, Units: units})
			}
		}
	}
	stats.SnippetsKept = len(out)
	mQueries.Add(uint64(stats.QueriesRun))
	mPages.Add(uint64(stats.PagesFetched))
	mSnippetsSeen.Add(uint64(stats.SnippetsSeen))
	mSnippetsKept.Add(uint64(stats.SnippetsKept))
	return out, stats
}

// Negatives draws n random snippets from the whole web — the negative
// class ("we construct the negative class by randomly picking a large
// number of snippets from the Web"). The same set can be reused across
// drivers. Sampling is deterministic in seed.
func Negatives(w *web.Web, ann *annotate.Annotator, n int, snippetN int, seed int64) []Snippet {
	if snippetN <= 0 {
		snippetN = snippet.DefaultN
	}
	gen := snippet.Generator{N: snippetN}
	urls := w.URLs()
	if len(urls) == 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Snippet
	seen := map[string]bool{}
	// Bound the attempts: a tiny web may not have n distinct snippets.
	for attempts := 0; len(out) < n && attempts < n*20; attempts++ {
		page, _ := w.Page(urls[rng.Intn(len(urls))])
		snips := gen.Split(page.URL, page.Text)
		if len(snips) == 0 {
			continue
		}
		sn := snips[rng.Intn(len(snips))]
		key := strings.ToLower(sn.Text)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Snippet{Text: sn.Text, URL: page.URL, Units: ann.Annotate(sn.Text)})
	}
	mNegatives.Add(uint64(len(out)))
	return out
}

// Oversample repeats each snippet k times (the paper's pure-positive
// oversampling "by a factor of 3").
func Oversample(snips []Snippet, k int) []Snippet {
	if k <= 1 {
		return snips
	}
	out := make([]Snippet, 0, len(snips)*k)
	for i := 0; i < k; i++ {
		out = append(out, snips...)
	}
	return out
}
