package train

import (
	"strings"
	"testing"

	"etap/internal/corpus"
	"etap/internal/web"
)

func TestSuggestQueriesFindsDriverPhrases(t *testing.T) {
	gen := corpus.NewGenerator(corpus.Config{Seed: 301})
	var pure []string
	for _, p := range gen.PurePositives(corpus.MergersAcquisitions, 60) {
		pure = append(pure, p.Text)
	}
	var bg []string
	for _, b := range gen.BackgroundSnippets(200) {
		bg = append(bg, b.Text)
	}
	got := SuggestQueries(pure, bg, 8)
	if len(got) != 8 {
		t.Fatalf("suggestions = %v", got)
	}
	// The M&A held-out phrasings must surface: merger/acquisition
	// bigrams dominate the pure positives.
	joined := strings.Join(got, " ")
	hits := 0
	for _, frag := range []string{"merger", "acqui", "purchase", "buy", "part of", "tie"} {
		if strings.Contains(joined, frag) {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("no driver vocabulary among suggestions: %v", got)
	}
	// Every suggestion is a quoted phrase.
	for _, q := range got {
		if !strings.HasPrefix(q, `"`) || !strings.HasSuffix(q, `"`) {
			t.Errorf("suggestion not quoted: %q", q)
		}
	}
}

// The end-to-end property: suggested queries must actually retrieve
// driver-relevant pages from the web at high precision — they are smart
// queries, generated rather than hand-written.
func TestSuggestedQueriesRetrieveRelevantPages(t *testing.T) {
	gen := corpus.NewGenerator(corpus.Config{Seed: 302})
	docs := gen.World()
	w := buildWebFromDocs(docs)
	byURL := map[string]*corpus.Document{}
	for i := range docs {
		byURL[docs[i].URL] = &docs[i]
	}

	var pure []string
	for _, p := range gen.PurePositives(corpus.ChangeInManagement, 60) {
		pure = append(pure, p.Text)
	}
	var bg []string
	for _, b := range gen.BackgroundSnippets(200) {
		bg = append(bg, b.Text)
	}
	queries := SuggestQueries(pure, bg, 5)
	if len(queries) == 0 {
		t.Fatal("no suggestions")
	}

	relevant, total := 0, 0
	for _, q := range queries {
		for _, page := range w.Search(q, 30) {
			total++
			if byURL[page.URL].Kind == corpus.KindRelevant &&
				byURL[page.URL].Driver == corpus.ChangeInManagement {
				relevant++
			}
		}
	}
	if total == 0 {
		t.Fatalf("suggested queries retrieved nothing: %v", queries)
	}
	prec := float64(relevant) / float64(total)
	if prec < 0.5 {
		t.Errorf("suggested queries precision %.2f (%d/%d): %v", prec, relevant, total, queries)
	}
	t.Logf("suggested %v -> %d pages, precision %.2f", queries, total, prec)
}

func TestSuggestQueriesEdgeCases(t *testing.T) {
	if got := SuggestQueries(nil, nil, 5); got != nil {
		t.Errorf("nil input: %v", got)
	}
	// Background-free input still works (lift against epsilon).
	got := SuggestQueries([]string{"alpha beta gamma", "alpha beta delta"}, nil, 3)
	if len(got) == 0 {
		t.Error("no suggestions without background")
	}
	// Phrases occurring once are not suggested.
	got = SuggestQueries([]string{"unique phrase here"}, nil, 3)
	if len(got) != 0 {
		t.Errorf("one-off phrases suggested: %v", got)
	}
}

// buildWebFromDocs indexes generated documents (mirrors core.BuildWeb;
// importing core here would be an inverted dependency).
func buildWebFromDocs(docs []corpus.Document) *web.Web {
	w := web.New()
	for _, d := range docs {
		w.AddPage(web.Page{URL: d.URL, Host: d.Host, Title: d.Title, Text: d.Text(), Links: d.Links})
	}
	w.Freeze()
	return w
}
