package train

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"etap/internal/textproc"
)

// SuggestQueries implements the paper's observation that "the smart
// queries for a sales driver could be obtained by analyzing the pure
// positive data set": it mines the pure positive snippets for the word
// bigrams that are frequent there and rare in the background sample, and
// returns the top k as quoted phrase queries.
//
// Scoring is freq_pos * log((freq_pos/Npos) / (freq_bg/Nbg + ε)) — a
// high-yield phrase must be common in positives (so the query returns
// many pages) and discriminative against the background (so the pages
// are relevant). Bigrams made only of stop words are skipped; matching
// is on stems so inflections pool.
func SuggestQueries(purePositives, background []string, k int) []string {
	type stats struct {
		pos, bg float64
		surface string // most recent surface form, for the query text
	}
	counts := map[string]*stats{}

	collect := func(texts []string, positive bool) float64 {
		total := 0.0
		for _, t := range texts {
			words := textproc.Words(t)
			for i := 0; i+1 < len(words); i++ {
				a, b := words[i], words[i+1]
				if textproc.IsStopword(a) && textproc.IsStopword(b) {
					continue
				}
				key := textproc.Stem(a) + " " + textproc.Stem(b)
				s := counts[key]
				if s == nil {
					s = &stats{}
					counts[key] = s
				}
				if positive {
					s.pos++
					s.surface = a + " " + b
				} else {
					s.bg++
				}
				total++
			}
		}
		return total
	}
	nPos := collect(purePositives, true)
	nBg := collect(background, false)
	if nPos == 0 {
		return nil
	}
	if nBg == 0 {
		nBg = 1
	}

	type scored struct {
		key, surface string
		score        float64
	}
	var ranked []scored
	for key, s := range counts {
		if s.pos < 2 {
			continue // a query must be reusable, not a one-off phrase
		}
		const eps = 1e-9
		lift := (s.pos / nPos) / (s.bg/nBg + eps)
		if lift <= 1 {
			continue
		}
		ranked = append(ranked, scored{key: key, surface: s.surface,
			score: s.pos * math.Log(lift)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].key < ranked[j].key
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]string, 0, k)
	for _, r := range ranked[:k] {
		out = append(out, fmt.Sprintf("%q", strings.ToLower(r.surface)))
	}
	return out
}
