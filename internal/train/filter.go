// Package train implements ETAP's training-data generation (Section
// 3.3.1): smart queries against the search engine fetch driver-relevant
// pages; snippet-level filters over named-entity annotations distill the
// noisy positive set; random sampling of the web yields the negative
// class; pure positives are oversampled.
package train

import (
	"etap/internal/annotate"
	"etap/internal/ner"
	"etap/internal/textproc"
)

// Filter is a predicate over an annotated snippet. The paper's examples:
// "Designation AND (Person OR Organization)" for change in management,
// "Discard all snippets not containing two ORG annotations" for mergers
// & acquisitions.
type Filter func(units []annotate.Unit) bool

// Has matches snippets containing at least one entity of category c.
func Has(c ner.Category) Filter {
	return func(units []annotate.Unit) bool {
		return annotate.CountEntities(units, c) >= 1
	}
}

// MinCount matches snippets containing at least n entities of category c.
func MinCount(c ner.Category, n int) Filter {
	return func(units []annotate.Unit) bool {
		return annotate.CountEntities(units, c) >= n
	}
}

// ContainsAnyStem matches snippets containing any of the given words
// (compared on stems, so "acquire" matches "acquired").
func ContainsAnyStem(words ...string) Filter {
	stems := make(map[string]bool, len(words))
	for _, w := range words {
		for _, t := range textproc.Words(w) {
			stems[textproc.Stem(t)] = true
		}
	}
	return func(units []annotate.Unit) bool {
		for _, u := range units {
			if u.IsEntity() {
				continue
			}
			if stems[textproc.Stem(u.Lower())] {
				return true
			}
		}
		return false
	}
}

// And matches when every sub-filter matches.
func And(fs ...Filter) Filter {
	return func(units []annotate.Unit) bool {
		for _, f := range fs {
			if !f(units) {
				return false
			}
		}
		return true
	}
}

// Or matches when any sub-filter matches.
func Or(fs ...Filter) Filter {
	return func(units []annotate.Unit) bool {
		for _, f := range fs {
			if f(units) {
				return true
			}
		}
		return false
	}
}

// Not inverts a filter.
func Not(f Filter) Filter {
	return func(units []annotate.Unit) bool { return !f(units) }
}
