package train

import (
	"strings"
	"testing"

	"etap/internal/annotate"
	"etap/internal/corpus"
	"etap/internal/ner"
	"etap/internal/web"
)

func buildWeb(t testing.TB, seed int64) (*web.Web, []corpus.Document) {
	t.Helper()
	docs := corpus.NewGenerator(corpus.Config{
		Seed:                  seed,
		RelevantPerDriver:     40,
		BackgroundDocs:        120,
		HardNegativePerDriver: 15,
		FamousEventDocs:       6,
	}).World()
	w := web.New()
	for _, d := range docs {
		w.AddPage(web.Page{URL: d.URL, Host: d.Host, Title: d.Title, Text: d.Text(), Links: d.Links})
	}
	w.Freeze()
	return w, docs
}

func docByURL(docs []corpus.Document, url string) *corpus.Document {
	for i := range docs {
		if docs[i].URL == url {
			return &docs[i]
		}
	}
	return nil
}

func TestFilterCombinators(t *testing.T) {
	ann := annotate.New(nil)
	units := ann.Annotate("Mr. Smith, the new CEO of Halcyon, arrived.")

	if !Has(ner.DESIG)(units) {
		t.Error("Has(DESIG) = false")
	}
	if Has(ner.CURRENCY)(units) {
		t.Error("Has(CURRENCY) = true")
	}
	if !And(Has(ner.DESIG), Or(Has(ner.PRSN), Has(ner.ORG)))(units) {
		t.Error("paper's CiM filter rejected a textbook CiM snippet")
	}
	if !MinCount(ner.ORG, 1)(units) || MinCount(ner.ORG, 2)(units) {
		t.Error("MinCount thresholds wrong")
	}
	if !ContainsAnyStem("arrive")(units) {
		t.Error("ContainsAnyStem missed a stem match")
	}
	if Not(Has(ner.DESIG))(units) {
		t.Error("Not inverted nothing")
	}
}

func TestNoisyPositivesChangeInManagement(t *testing.T) {
	w, docs := buildWeb(t, 11)
	ann := annotate.New(nil)
	spec := DefaultSpecs()[corpus.ChangeInManagement]
	snips, stats := NoisyPositives(w, ann, spec, Config{TopK: 50})

	if len(snips) < 50 {
		t.Fatalf("only %d noisy positives (stats: %s)", len(snips), stats)
	}
	// Measure actual noise: fraction of snippets without a true CiM
	// trigger. It must be present (it is *noisy* data) but a minority.
	noise := 0
	for _, s := range snips {
		doc := docByURL(docs, s.URL)
		if doc == nil {
			t.Fatalf("snippet from unknown URL %s", s.URL)
		}
		if !doc.ContainsTrigger(s.Text, corpus.ChangeInManagement) {
			noise++
		}
	}
	frac := float64(noise) / float64(len(snips))
	if frac > 0.6 {
		t.Errorf("noise fraction %.2f too high — smart queries not working", frac)
	}
	if noise == 0 {
		t.Error("zero noise — the noisy positive set should contain some noise")
	}
	t.Logf("CiM noisy positives: %d snippets, noise fraction %.2f (%s)", len(snips), frac, stats)
}

func TestNoisyPositivesMergersFamousEvents(t *testing.T) {
	w, docs := buildWeb(t, 12)
	ann := annotate.New(nil)
	spec := DefaultSpecs()[corpus.MergersAcquisitions]
	snips, stats := NoisyPositives(w, ann, spec, Config{TopK: 50})
	if len(snips) < 20 {
		t.Fatalf("only %d M&A noisy positives (stats: %s)", len(snips), stats)
	}
	hit := 0
	for _, s := range snips {
		doc := docByURL(docs, s.URL)
		if doc.ContainsTrigger(s.Text, corpus.MergersAcquisitions) {
			hit++
		}
	}
	if float64(hit)/float64(len(snips)) < 0.4 {
		t.Errorf("only %d/%d M&A snippets contain real triggers", hit, len(snips))
	}
}

func TestNoisyPositivesFilterEnforced(t *testing.T) {
	w, _ := buildWeb(t, 13)
	ann := annotate.New(nil)
	spec := DefaultSpecs()[corpus.MergersAcquisitions]
	snips, _ := NoisyPositives(w, ann, spec, Config{TopK: 30})
	for _, s := range snips {
		if annotate.CountEntities(s.Units, ner.ORG) < 2 {
			t.Fatalf("filter leak: snippet with <2 ORG: %q", s.Text)
		}
	}
}

func TestNoisyPositivesDeduplicates(t *testing.T) {
	w, _ := buildWeb(t, 14)
	ann := annotate.New(nil)
	spec := DefaultSpecs()[corpus.ChangeInManagement]
	snips, _ := NoisyPositives(w, ann, spec, Config{TopK: 50})
	seen := map[string]bool{}
	for _, s := range snips {
		key := strings.ToLower(s.Text)
		if seen[key] {
			t.Fatalf("duplicate snippet text: %q", s.Text)
		}
		seen[key] = true
	}
}

func TestNegativesSampled(t *testing.T) {
	w, _ := buildWeb(t, 15)
	ann := annotate.New(nil)
	negs := Negatives(w, ann, 200, 3, 7)
	if len(negs) != 200 {
		t.Fatalf("got %d negatives, want 200", len(negs))
	}
	// Deterministic in seed.
	again := Negatives(w, ann, 200, 3, 7)
	for i := range negs {
		if negs[i].Text != again[i].Text {
			t.Fatal("negative sampling not deterministic")
		}
	}
	other := Negatives(w, ann, 200, 3, 8)
	same := 0
	for i := range negs {
		if negs[i].Text == other[i].Text {
			same++
		}
	}
	if same == len(negs) {
		t.Error("different seeds produced identical samples")
	}
}

func TestNegativesEmptyWeb(t *testing.T) {
	w := web.New()
	ann := annotate.New(nil)
	if negs := Negatives(w, ann, 10, 3, 1); negs != nil {
		t.Fatalf("negatives from empty web: %d", len(negs))
	}
}

func TestOversample(t *testing.T) {
	in := []Snippet{{Text: "a"}, {Text: "b"}}
	out := Oversample(in, 3)
	if len(out) != 6 {
		t.Fatalf("len = %d, want 6", len(out))
	}
	if got := Oversample(in, 1); len(got) != 2 {
		t.Fatalf("k=1 should be identity, got %d", len(got))
	}
	if got := Oversample(in, 0); len(got) != 2 {
		t.Fatalf("k=0 should be identity, got %d", len(got))
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{QueriesRun: 5, PagesFetched: 100, SnippetsSeen: 400, SnippetsKept: 120, SnippetsFiltered: 250, Duplicates: 30}
	if got := s.String(); !strings.Contains(got, "queries=5") || !strings.Contains(got, "kept=120") {
		t.Errorf("stats string = %q", got)
	}
}

func BenchmarkNoisyPositives(b *testing.B) {
	w, _ := buildWeb(b, 16)
	ann := annotate.New(nil)
	spec := DefaultSpecs()[corpus.ChangeInManagement]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NoisyPositives(w, ann, spec, Config{TopK: 50})
	}
}
