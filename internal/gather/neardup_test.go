package gather

import (
	"context"
	"strings"
	"testing"

	"etap/internal/web"
)

const article = "Acme Corp announced that it has acquired Widget Inc for $120 million. " +
	"The deal closed on Friday after regulators approved the transaction. " +
	"Analysts called the acquisition a strategic fit for both companies. " +
	"Shares of Acme rose while Widget investors cheered the premium."

func TestSignatureIdentical(t *testing.T) {
	a := NewSignature(article)
	b := NewSignature(article)
	if got := a.Similarity(b); got != 1 {
		t.Fatalf("self-similarity = %v", got)
	}
}

func TestSignatureSmallEdit(t *testing.T) {
	edited := strings.Replace(article, "cheered the premium", "welcomed the premium", 1)
	sim := NewSignature(article).Similarity(NewSignature(edited))
	if sim < 0.7 {
		t.Fatalf("small edit similarity = %v, want high", sim)
	}
}

func TestSignatureUnrelated(t *testing.T) {
	other := "The weather stayed pleasant across the coastal towns this week. " +
		"Hikers enjoyed clear views from the summit trails. " +
		"Local markets sold the season's first strawberries."
	sim := NewSignature(article).Similarity(NewSignature(other))
	if sim > 0.2 {
		t.Fatalf("unrelated similarity = %v, want low", sim)
	}
}

func TestSignatureShortTexts(t *testing.T) {
	a := NewSignature("one two")
	b := NewSignature("one two")
	c := NewSignature("three four")
	if a.Similarity(b) != 1 {
		t.Error("identical short texts differ")
	}
	if a.Similarity(c) == 1 {
		t.Error("different short texts match")
	}
	_ = NewSignature("") // must not panic
}

func TestNearDupIndex(t *testing.T) {
	ix := NewNearDupIndex(0.7)
	if ix.Seen(article) {
		t.Fatal("first document flagged")
	}
	edited := strings.Replace(article, "Friday", "Monday", 1)
	if !ix.Seen(edited) {
		t.Fatal("near-duplicate not flagged")
	}
	if ix.Seen("Entirely different content about gardening and music festivals across town squares everywhere.") {
		t.Fatal("unrelated document flagged")
	}
	if ix.Len() != 2 {
		t.Fatalf("stored %d, want 2", ix.Len())
	}
}

func TestCrawlNearDupSkipsSyndicatedCopies(t *testing.T) {
	w := web.New()
	w.AddPage(web.Page{URL: "u:orig", Text: article, Links: []string{"u:copy", "u:other"}})
	w.AddPage(web.Page{URL: "u:copy",
		Text: strings.Replace(article, "Friday", "Monday", 1)})
	w.AddPage(web.Page{URL: "u:other",
		Text: "A completely different story about the botanical garden and its orchid catalogue."})

	plain := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:orig"}})
	if len(plain.Pages) != 3 {
		t.Fatalf("exact dedup dropped a near-dup: %v", urls(plain.Pages))
	}
	near := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:orig"}, NearDupThreshold: 0.7})
	if len(near.Pages) != 2 || near.Duplicates != 1 {
		t.Fatalf("near-dup crawl = %v (dups %d)", urls(near.Pages), near.Duplicates)
	}
}

func BenchmarkSignature(b *testing.B) {
	b.SetBytes(int64(len(article)))
	for i := 0; i < b.N; i++ {
		NewSignature(article)
	}
}
