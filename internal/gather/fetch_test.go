package gather

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"etap/internal/web"
)

// scriptFetcher is a hand-scripted web.Fetcher: per-URL remaining
// transient-failure budgets (-1 = fail forever), optional hangs that
// only the context deadline ends, and a call log.
type scriptFetcher struct {
	pages map[string]*web.Page
	fails map[string]int // remaining transient failures; -1 = forever
	hang  map[string]bool
	calls []string
}

func newScriptFetcher() *scriptFetcher {
	return &scriptFetcher{
		pages: map[string]*web.Page{},
		fails: map[string]int{},
		hang:  map[string]bool{},
	}
}

func (f *scriptFetcher) add(url, text string) {
	f.pages[url] = &web.Page{URL: url, Host: web.HostOf(url), Text: text}
}

// Fetch implements web.Fetcher.
func (f *scriptFetcher) Fetch(ctx context.Context, url string) (*web.Page, error) {
	f.calls = append(f.calls, url)
	if f.hang[url] {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if n := f.fails[url]; n != 0 {
		if n > 0 {
			f.fails[url] = n - 1
		}
		return nil, &web.TransientError{URL: url}
	}
	p, ok := f.pages[url]
	if !ok {
		return nil, fmt.Errorf("%s: %w", url, web.ErrNotFound)
	}
	return p, nil
}

func noSleep(time.Duration) {}

func TestRetrierRecoversFromTransientFailures(t *testing.T) {
	f := newScriptFetcher()
	f.add("http://h/a", "alpha")
	f.fails["http://h/a"] = 2
	r := newRetrier(f, RetryConfig{MaxAttempts: 4, Sleep: noSleep})
	page, ferr := r.do(context.Background(), "http://h/a")
	if ferr != nil {
		t.Fatalf("retry did not recover: %+v", ferr)
	}
	if page.Text != "alpha" || len(f.calls) != 3 {
		t.Fatalf("page=%v calls=%v", page, f.calls)
	}
	if r.retries() != 2 {
		t.Fatalf("retries = %d, want 2", r.retries())
	}
}

func TestRetrierExhaustsAndReports(t *testing.T) {
	f := newScriptFetcher()
	f.fails["http://h/a"] = -1
	r := newRetrier(f, RetryConfig{MaxAttempts: 3, Sleep: noSleep})
	before := mFetchFailures.Value()
	_, ferr := r.do(context.Background(), "http://h/a")
	if ferr == nil || ferr.Reason != FailExhausted || ferr.Attempts != 3 {
		t.Fatalf("ferr = %+v", ferr)
	}
	if ferr.Host != "h" || ferr.Err == "" {
		t.Fatalf("ferr = %+v", ferr)
	}
	if mFetchFailures.Value() != before+1 {
		t.Fatal("fetch-failure counter not bumped")
	}
}

func TestRetrierPermanentErrorSkipsRetries(t *testing.T) {
	f := newScriptFetcher() // knows no pages: everything is not-found
	r := newRetrier(f, RetryConfig{MaxAttempts: 4, Sleep: noSleep})
	_, ferr := r.do(context.Background(), "http://h/gone")
	if ferr == nil || ferr.Reason != FailNotFound || ferr.Attempts != 1 {
		t.Fatalf("ferr = %+v", ferr)
	}
	if len(f.calls) != 1 {
		t.Fatalf("permanent error was retried: %v", f.calls)
	}
}

func TestRetrierAttemptTimeout(t *testing.T) {
	f := newScriptFetcher()
	f.hang["http://h/slow"] = true
	r := newRetrier(f, RetryConfig{MaxAttempts: 2, AttemptTimeout: 5 * time.Millisecond, Sleep: noSleep})
	_, ferr := r.do(context.Background(), "http://h/slow")
	if ferr == nil || ferr.Reason != FailExhausted || ferr.Attempts != 2 {
		t.Fatalf("ferr = %+v", ferr)
	}
	if !strings.Contains(ferr.Err, "deadline") {
		t.Fatalf("timeout not surfaced: %q", ferr.Err)
	}
}

func TestBackoffGrowsIsCappedAndDeterministic(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		f := newScriptFetcher()
		f.fails["http://h/a"] = -1
		var sleeps []time.Duration
		r := newRetrier(f, RetryConfig{
			MaxAttempts: 4,
			BaseBackoff: 100 * time.Millisecond,
			MaxBackoff:  300 * time.Millisecond,
			JitterSeed:  seed,
			Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
		})
		r.do(context.Background(), "http://h/a")
		return sleeps
	}
	sleeps := schedule(42)
	if len(sleeps) != 3 {
		t.Fatalf("sleeps = %v", sleeps)
	}
	// Jitter is a factor in [0.5, 1.5) over 100ms, 200ms, then the
	// 300ms cap (everything re-clamped to the cap).
	bounds := []struct{ lo, hi time.Duration }{
		{50 * time.Millisecond, 150 * time.Millisecond},
		{100 * time.Millisecond, 300 * time.Millisecond},
		{150 * time.Millisecond, 300 * time.Millisecond},
	}
	for i, d := range sleeps {
		if d < bounds[i].lo || d > bounds[i].hi {
			t.Errorf("sleep %d = %v outside [%v, %v]", i, d, bounds[i].lo, bounds[i].hi)
		}
	}
	again := schedule(42)
	for i := range sleeps {
		if sleeps[i] != again[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", sleeps, again)
		}
	}
}

func TestBreakerOpensShortCircuitsAndRecovers(t *testing.T) {
	f := newScriptFetcher()
	for i := 1; i <= 9; i++ {
		u := fmt.Sprintf("http://bad.example.com/%d", i)
		f.add(u, "content")
		f.fails[u] = -1
	}
	tripsBefore, openBefore := mBreakerTrips.Value(), mBreakerOpen.Value()
	r := newRetrier(f, RetryConfig{
		MaxAttempts: 2, BreakerThreshold: 2, BreakerCooldown: 3, Sleep: noSleep,
	})
	reason := func(i int) string {
		_, ferr := r.do(context.Background(), fmt.Sprintf("http://bad.example.com/%d", i))
		if ferr == nil {
			return "ok"
		}
		return ferr.Reason
	}
	// Two exhausted URLs trip the host breaker.
	if got := reason(1); got != FailExhausted {
		t.Fatalf("url 1: %s", got)
	}
	if got := reason(2); got != FailExhausted {
		t.Fatalf("url 2: %s", got)
	}
	if mBreakerTrips.Value() != tripsBefore+1 || mBreakerOpen.Value() != openBefore+1 {
		t.Fatal("breaker trip not recorded")
	}
	// The next three fetches to the host are short-circuited with no
	// attempt at all.
	callsBefore := len(f.calls)
	for i := 3; i <= 5; i++ {
		if got := reason(i); got != FailBreakerOpen {
			t.Fatalf("url %d: %s", i, got)
		}
	}
	if len(f.calls) != callsBefore {
		t.Fatalf("open breaker still attempted fetches: %v", f.calls[callsBefore:])
	}
	// Cooldown spent: the half-open probe goes through, fails, and
	// re-opens a full cooldown.
	if got := reason(6); got != FailExhausted {
		t.Fatalf("half-open probe: %s", got)
	}
	if got := reason(7); got != FailBreakerOpen {
		t.Fatalf("after failed probe: %s", got)
	}
	// Heal the host, drain the cooldown, and let the probe succeed.
	for u := range f.fails {
		f.fails[u] = 0
	}
	reason(8)
	reason(9) // cooldown now spent
	if got := reason(1); got != "ok" {
		t.Fatalf("successful probe: %s", got)
	}
	if mBreakerOpen.Value() != openBefore {
		t.Fatal("breaker-open gauge not released on recovery")
	}
	// Closed again: the host serves normally.
	if got := reason(2); got != "ok" {
		t.Fatalf("after recovery: %s", got)
	}
}

func TestBreakerDisabled(t *testing.T) {
	f := newScriptFetcher()
	for i := 1; i <= 8; i++ {
		f.fails[fmt.Sprintf("http://bad.example.com/%d", i)] = -1
	}
	r := newRetrier(f, RetryConfig{MaxAttempts: 1, BreakerThreshold: -1, Sleep: noSleep})
	for i := 1; i <= 8; i++ {
		_, ferr := r.do(context.Background(), fmt.Sprintf("http://bad.example.com/%d", i))
		if ferr == nil || ferr.Reason == FailBreakerOpen {
			t.Fatalf("url %d: breaker engaged while disabled: %+v", i, ferr)
		}
	}
}

func TestRetrierFinishReleasesOpenBreakers(t *testing.T) {
	f := newScriptFetcher()
	f.fails["http://bad.example.com/1"] = -1
	f.fails["http://bad.example.com/2"] = -1
	before := mBreakerOpen.Value()
	r := newRetrier(f, RetryConfig{MaxAttempts: 1, BreakerThreshold: 2, Sleep: noSleep})
	r.do(context.Background(), "http://bad.example.com/1")
	r.do(context.Background(), "http://bad.example.com/2")
	if mBreakerOpen.Value() != before+1 {
		t.Fatal("breaker did not open")
	}
	r.finish()
	if mBreakerOpen.Value() != before {
		t.Fatal("finish did not release the open breaker")
	}
}

func TestRetryConfigIsZero(t *testing.T) {
	if !(RetryConfig{}).IsZero() {
		t.Fatal("zero value not recognized")
	}
	if (RetryConfig{MaxAttempts: 1}).IsZero() || (RetryConfig{Sleep: noSleep}).IsZero() {
		t.Fatal("non-zero config reported as zero")
	}
}
