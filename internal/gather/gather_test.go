package gather

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"etap/internal/corpus"
	"etap/internal/index"
	"etap/internal/web"
)

// chainWeb builds a small hand-wired web: seed -> biz pages -> noise.
func chainWeb() *web.Web {
	w := web.New()
	w.AddPage(web.Page{URL: "u:seed", Text: "business news portal with merger coverage",
		Links: []string{"u:biz1", "u:noise1"}})
	w.AddPage(web.Page{URL: "u:biz1", Text: "Acme merger with Widget announced in a large deal",
		Links: []string{"u:biz2"}})
	w.AddPage(web.Page{URL: "u:biz2", Text: "The acquisition deal closed and the merger completed",
		Links: []string{"u:deep"}})
	w.AddPage(web.Page{URL: "u:noise1", Text: "The weather was pleasant and the park opened",
		Links: []string{"u:noise2"}})
	w.AddPage(web.Page{URL: "u:noise2", Text: "A recipe for summer salads with fresh herbs",
		Links: []string{}})
	w.AddPage(web.Page{URL: "u:deep", Text: "merger merger merger analysis in depth", Links: nil})
	return w
}

func urls(pages []*web.Page) []string {
	out := make([]string, len(pages))
	for i, p := range pages {
		out[i] = p.URL
	}
	return out
}

func TestCrawlVisitsReachablePages(t *testing.T) {
	w := chainWeb()
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:seed"}})
	if len(res.Pages) != 6 {
		t.Fatalf("visited %v, want all 6", urls(res.Pages))
	}
}

func TestCrawlMaxPages(t *testing.T) {
	w := chainWeb()
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:seed"}, MaxPages: 3})
	if len(res.Pages) != 3 {
		t.Fatalf("got %d pages, want 3", len(res.Pages))
	}
}

func TestCrawlMaxDepth(t *testing.T) {
	w := chainWeb()
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:seed"}, MaxDepth: 1})
	// Depth 0 = seed, depth 1 = biz1, noise1. deep pages unreachable.
	if len(res.Pages) != 3 {
		t.Fatalf("depth-1 crawl got %v", urls(res.Pages))
	}
}

func TestFocusedCrawlPrioritizesTopic(t *testing.T) {
	w := chainWeb()
	res := Crawl(context.Background(), w, CrawlConfig{
		Seeds: []string{"u:seed"},
		Topic: []string{"merger", "acquisition", "deal"},
	})
	// The merger chain should be fetched before the noise chain.
	pos := map[string]int{}
	for i, u := range urls(res.Pages) {
		pos[u] = i
	}
	if pos["u:biz1"] > pos["u:noise2"] {
		t.Fatalf("focused crawl order wrong: %v", urls(res.Pages))
	}
}

func TestFocusedCrawlPrunesIrrelevant(t *testing.T) {
	w := chainWeb()
	res := Crawl(context.Background(), w, CrawlConfig{
		Seeds:        []string{"u:seed"},
		Topic:        []string{"merger", "acquisition", "deal"},
		MinRelevance: 0.3,
	})
	for _, u := range urls(res.Pages) {
		if u == "u:noise2" {
			t.Fatalf("crawl expanded an irrelevant page: %v", urls(res.Pages))
		}
	}
}

func TestCrawlDeduplicatesContent(t *testing.T) {
	w := web.New()
	w.AddPage(web.Page{URL: "u:a", Text: "identical content here", Links: []string{"u:b"}})
	w.AddPage(web.Page{URL: "u:b", Text: "Identical   CONTENT here", Links: nil})
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:a"}})
	if len(res.Pages) != 1 || res.Duplicates != 1 {
		t.Fatalf("dedup failed: pages=%v dups=%d", urls(res.Pages), res.Duplicates)
	}
}

func TestCrawlDeterministic(t *testing.T) {
	docs := corpus.NewGenerator(corpus.Config{Seed: 3, RelevantPerDriver: 10, BackgroundDocs: 30, HardNegativePerDriver: 3}).World()
	w := web.New()
	for _, d := range docs {
		w.AddPage(web.Page{URL: d.URL, Host: d.Host, Title: d.Title, Text: d.Text(), Links: d.Links})
	}
	cfg := CrawlConfig{Seeds: []string{docs[0].URL}, Topic: []string{"merger", "revenue", "ceo"}}
	a := Crawl(context.Background(), w, cfg)
	b := Crawl(context.Background(), w, cfg)
	if fmt.Sprint(urls(a.Pages)) != fmt.Sprint(urls(b.Pages)) {
		t.Fatal("crawl order not deterministic")
	}
}

func TestCrawlBadSeed(t *testing.T) {
	w := chainWeb()
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:missing"}})
	if len(res.Pages) != 0 {
		t.Fatalf("pages from missing seed: %v", urls(res.Pages))
	}
}

func TestCrawlHandlesCycles(t *testing.T) {
	w := web.New()
	w.AddPage(web.Page{URL: "u:a", Text: "alpha page", Links: []string{"u:b", "u:a"}})
	w.AddPage(web.Page{URL: "u:b", Text: "beta page", Links: []string{"u:a", "u:c"}})
	w.AddPage(web.Page{URL: "u:c", Text: "gamma page", Links: []string{"u:b"}})
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:a"}})
	if len(res.Pages) != 3 {
		t.Fatalf("cyclic graph crawl = %v", urls(res.Pages))
	}
}

func TestCrawlBrokenLinks(t *testing.T) {
	w := web.New()
	w.AddPage(web.Page{URL: "u:a", Text: "alpha page", Links: []string{"u:missing", "u:b"}})
	w.AddPage(web.Page{URL: "u:b", Text: "beta page"})
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:a"}})
	if len(res.Pages) != 2 {
		t.Fatalf("broken link crawl = %v", urls(res.Pages))
	}
}

func TestCrawlMultipleSeedsNoDoubleVisit(t *testing.T) {
	w := chainWeb()
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:seed", "u:biz1", "u:seed"}})
	seen := map[string]bool{}
	for _, u := range urls(res.Pages) {
		if seen[u] {
			t.Fatalf("page visited twice: %s", u)
		}
		seen[u] = true
	}
}

func TestCollectMergesAndDedups(t *testing.T) {
	p1 := &web.Page{URL: "u:1", Text: "alpha"}
	p2 := &web.Page{URL: "u:2", Text: "beta"}
	p2b := &web.Page{URL: "u:2", Text: "beta changed"}
	p3 := &web.Page{URL: "u:3", Text: "ALPHA"} // content dup of p1
	got := Collect(
		StaticSource{SourceName: "db", Pages: []*web.Page{p1, p2}},
		StaticSource{SourceName: "crawl", Pages: []*web.Page{p2b, p3}},
	)
	if len(got) != 2 || got[0].URL != "u:1" || got[1].URL != "u:2" {
		t.Fatalf("collect = %v", urls(got))
	}
}

func TestCrawlSourceAdapter(t *testing.T) {
	w := chainWeb()
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:seed"}, MaxPages: 2})
	src := CrawlSource{SourceName: "focused", Result: res}
	if src.Name() != "focused" || len(src.Documents()) != 2 {
		t.Fatalf("adapter broken: %s %d", src.Name(), len(src.Documents()))
	}
}

func TestMonitorDetectsChanges(t *testing.T) {
	m := NewMonitor()
	p := &web.Page{URL: "u:x", Text: "version one"}
	if !m.Observe(p) {
		t.Fatal("first observation must report new")
	}
	if m.Observe(p) {
		t.Fatal("unchanged page reported as changed")
	}
	p2 := &web.Page{URL: "u:x", Text: "version two"}
	if !m.Observe(p2) {
		t.Fatal("changed page not detected")
	}
}

func TestMonitorChangedFilter(t *testing.T) {
	m := NewMonitor()
	pages := []*web.Page{
		{URL: "u:b", Text: "one"},
		{URL: "u:a", Text: "two"},
	}
	first := m.Changed(pages)
	if len(first) != 2 || first[0].URL != "u:a" {
		t.Fatalf("first pass = %v", urls(first))
	}
	second := m.Changed(pages)
	if len(second) != 0 {
		t.Fatalf("second pass = %v", urls(second))
	}
}

func TestCrawlFrontierGaugeZeroedOnReturn(t *testing.T) {
	// A crawl cut off by MaxPages exits with items still queued; the
	// frontier gauge must read 0 afterwards, not the size sampled at
	// the last pop.
	w := chainWeb()
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:seed"}, MaxPages: 2})
	if len(res.Pages) != 2 {
		t.Fatalf("pages = %v", urls(res.Pages))
	}
	if v := mFrontier.Value(); v != 0 {
		t.Fatalf("frontier gauge stale after crawl: %d", v)
	}
}

func TestCrawlRediscoveryRaisesQueuedPriority(t *testing.T) {
	// t is first discovered via the irrelevant parent a (score 0) and
	// rediscovered via the highly relevant parent b (score 1) while
	// still queued: the crawl must fetch t before a's other child c.
	w := web.New()
	w.AddPage(web.Page{URL: "u:seed", Text: "merger news hub",
		Links: []string{"u:a", "u:b"}})
	w.AddPage(web.Page{URL: "u:a", Text: "sports daily roundup",
		Links: []string{"u:c", "u:t"}})
	w.AddPage(web.Page{URL: "u:b", Text: "merger coverage desk",
		Links: []string{"u:t"}})
	w.AddPage(web.Page{URL: "u:t", Text: "the merger target report"})
	w.AddPage(web.Page{URL: "u:c", Text: "boring filler column"})
	res := Crawl(context.Background(), w, CrawlConfig{Seeds: []string{"u:seed"}, Topic: []string{"merger"}})
	pos := map[string]int{}
	for i, u := range urls(res.Pages) {
		pos[u] = i
	}
	if pos["u:t"] > pos["u:c"] {
		t.Fatalf("low-relevance discovery locked in t's priority: %v", urls(res.Pages))
	}
	if len(res.Pages) != 5 {
		t.Fatalf("rediscovery lost pages: %v", urls(res.Pages))
	}
}

func TestCrawlWithInjectedFaultsMatchesFaultFree(t *testing.T) {
	// Acceptance: with 30% seeded transient fetch failures, retrying
	// reaches exactly the fault-free page set, deterministically.
	docs := corpus.NewGenerator(corpus.Config{Seed: 5, RelevantPerDriver: 12, BackgroundDocs: 40, HardNegativePerDriver: 4}).World()
	w := web.New()
	for _, d := range docs {
		w.AddPage(web.Page{URL: d.URL, Host: d.Host, Title: d.Title, Text: d.Text(), Links: d.Links})
	}
	cfg := CrawlConfig{Seeds: []string{docs[0].URL}, Topic: []string{"merger", "revenue", "ceo"}}
	base := Crawl(context.Background(), w, cfg)

	faulty := cfg
	faulty.Fetcher = web.NewFaultFetcher(w, web.FaultConfig{Seed: 9, TransientRate: 0.3, MaxTransient: 3})
	faulty.Retry = RetryConfig{MaxAttempts: 5, Sleep: func(time.Duration) {}}
	retriesBefore := mRetries.Value()
	got := Crawl(context.Background(), w, faulty)
	if fmt.Sprint(urls(got.Pages)) != fmt.Sprint(urls(base.Pages)) {
		t.Fatalf("faulty crawl diverged:\nbase  %v\nfaulty %v", urls(base.Pages), urls(got.Pages))
	}
	if len(got.Failed) != 0 {
		t.Fatalf("transient faults leaked into Failed: %+v", got.Failed)
	}
	if got.Retries == 0 {
		t.Fatal("30%% fault rate produced no retries")
	}
	if mRetries.Value() != retriesBefore+uint64(got.Retries) {
		t.Fatalf("retry metric off: counter moved %d, result says %d",
			mRetries.Value()-retriesBefore, got.Retries)
	}
	// Determinism: a fresh injector with the same seed reproduces the
	// same retry count.
	faulty.Fetcher = web.NewFaultFetcher(w, web.FaultConfig{Seed: 9, TransientRate: 0.3, MaxTransient: 3})
	rerun := Crawl(context.Background(), w, faulty)
	if rerun.Retries != got.Retries {
		t.Fatalf("retries not deterministic: %d vs %d", got.Retries, rerun.Retries)
	}
}

func TestCrawlDegradesGracefullyAndReportsFailures(t *testing.T) {
	// A permanently dead link and an always-failing URL both land in
	// Failed with their reasons while the rest of the crawl proceeds.
	f := newScriptFetcher()
	f.add("u:seed", "business news portal")
	f.add("u:ok", "a merger story")
	f.add("u:flaky", "unreachable forever")
	f.pages["u:seed"].Links = []string{"u:ok", "u:flaky", "u:gone"}
	f.fails["u:flaky"] = -1
	w := web.New()
	res := Crawl(context.Background(), w, CrawlConfig{
		Seeds:   []string{"u:seed"},
		Fetcher: f,
		Retry:   RetryConfig{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	})
	if len(res.Pages) != 2 {
		t.Fatalf("pages = %v", urls(res.Pages))
	}
	reasons := map[string]string{}
	for _, fe := range res.Failed {
		reasons[fe.URL] = fe.Reason
	}
	if reasons["u:flaky"] != FailExhausted || reasons["u:gone"] != FailNotFound {
		t.Fatalf("failure report wrong: %+v", res.Failed)
	}
	if len(res.Failed) != 2 {
		t.Fatalf("failure report wrong: %+v", res.Failed)
	}
}

func BenchmarkCrawl(b *testing.B) {
	docs := corpus.NewGenerator(corpus.Config{Seed: 4, RelevantPerDriver: 30, BackgroundDocs: 100, HardNegativePerDriver: 10}).World()
	w := web.New()
	for _, d := range docs {
		w.AddPage(web.Page{URL: d.URL, Host: d.Host, Title: d.Title, Text: d.Text(), Links: d.Links})
	}
	cfg := CrawlConfig{Seeds: []string{docs[0].URL}, Topic: []string{"merger", "revenue", "ceo"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Crawl(context.Background(), w, cfg)
	}
}

func TestCollectParallelHashingKeepsOrderAndDedup(t *testing.T) {
	// Many pages, including exact-content duplicates across sources —
	// the concurrent fingerprinting must not change which page wins.
	// Content hashing ignores non-word tokens, so vary the word count,
	// not digits, to make each page's content genuinely unique.
	var a, b []*web.Page
	for i := 0; i < 50; i++ {
		text := "a merger story" + strings.Repeat(" indeed", i)
		a = append(a, &web.Page{
			URL:  fmt.Sprintf("http://s1.example.com/%d", i),
			Text: text,
		})
		b = append(b, &web.Page{
			URL:  fmt.Sprintf("http://s2.example.com/%d", i),
			Text: text, // dup content
		})
	}
	got := Collect(StaticSource{SourceName: "a", Pages: a}, StaticSource{SourceName: "b", Pages: b})
	if len(got) != len(a) {
		t.Fatalf("kept %d pages, want %d (source b is all duplicates)", len(got), len(a))
	}
	for i, p := range got {
		if p.URL != a[i].URL {
			t.Fatalf("order changed at %d: %s", i, p.URL)
		}
	}
}

func TestIndexCollection(t *testing.T) {
	var pages []*web.Page
	for i := 0; i < 40; i++ {
		pages = append(pages, &web.Page{
			URL:   fmt.Sprintf("http://c.example.com/%d", i),
			Title: "Business update",
			Text:  fmt.Sprintf("Company %d appointed a new ceo in round %d", i%5, i),
		})
	}
	ix := IndexCollection(pages, index.Options{Shards: 4})
	if ix.Len() != len(pages) {
		t.Fatalf("indexed %d docs, want %d", ix.Len(), len(pages))
	}
	hits := ix.Search(`"new ceo"`, 0)
	if len(hits) != len(pages) {
		t.Fatalf("phrase search found %d docs, want %d", len(hits), len(pages))
	}
}
