package gather

import (
	"hash/fnv"

	"etap/internal/textproc"
)

// Near-duplicate detection for the crawler: syndicated news appears on
// many hosts with tiny edits (different boilerplate, reordered bylines),
// so exact content hashing misses most duplication. MinHash signatures
// over word shingles estimate Jaccard similarity cheaply.

// minhashSize is the signature length; 64 hashes bound the estimation
// error of Jaccard similarity to about 1/sqrt(64) ≈ 0.125.
const minhashSize = 64

// shingleSize is the words-per-shingle window.
const shingleSize = 4

// Signature is a MinHash sketch of a document's shingle set.
type Signature [minhashSize]uint64

// NewSignature sketches the text. Texts shorter than one shingle get a
// degenerate signature that only matches identical text.
func NewSignature(text string) Signature {
	words := textproc.Words(text)
	var sig Signature
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	if len(words) == 0 {
		return sig
	}
	n := len(words) - shingleSize + 1
	if n < 1 {
		n = 1
	}
	for s := 0; s < n; s++ {
		end := s + shingleSize
		if end > len(words) {
			end = len(words)
		}
		h := fnv.New64a()
		for _, w := range words[s:end] {
			h.Write([]byte(w))
			h.Write([]byte{0})
		}
		base := h.Sum64()
		// Derive minhashSize hash values from one base hash via
		// multiply-shift mixing (cheap universal-ish family).
		for i := range sig {
			v := base ^ (0x9E3779B97F4A7C15 * uint64(i+1))
			v *= 0xBF58476D1CE4E5B9
			v ^= v >> 31
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// Similarity estimates the Jaccard similarity of the underlying shingle
// sets (fraction of agreeing signature slots).
func (a Signature) Similarity(b Signature) float64 {
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(minhashSize)
}

// NearDupIndex accumulates signatures and answers "have I seen something
// this similar before?". Lookup is linear in stored documents — fine at
// crawl scale here; an LSH bucketing layer would drop in behind the same
// interface.
type NearDupIndex struct {
	threshold float64
	sigs      []Signature
}

// NewNearDupIndex builds an index flagging documents whose estimated
// Jaccard similarity to any previously added document is >= threshold
// (0 < threshold <= 1; values around 0.9 catch syndication edits).
func NewNearDupIndex(threshold float64) *NearDupIndex {
	if threshold <= 0 || threshold > 1 {
		threshold = 0.9
	}
	return &NearDupIndex{threshold: threshold}
}

// Seen reports whether text near-duplicates an earlier document, and
// records it otherwise.
func (ix *NearDupIndex) Seen(text string) bool {
	sig := NewSignature(text)
	for _, s := range ix.sigs {
		if sig.Similarity(s) >= ix.threshold {
			return true
		}
	}
	ix.sigs = append(ix.sigs, sig)
	return false
}

// Len returns the number of distinct documents recorded.
func (ix *NearDupIndex) Len() int { return len(ix.sigs) }
