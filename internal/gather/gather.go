// Package gather implements ETAP's data-gathering component, modelled on
// the eShopMonitor tool the paper cites [2]: a focused crawler over the
// hyperlink graph with a relevance-prioritized frontier, content
// de-duplication, a source registry mixing crawl output with other
// collections, and a change monitor for re-visits.
package gather

import (
	"container/heap"
	"context"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"

	"etap/internal/index"
	"etap/internal/obs"
	"etap/internal/textproc"
	"etap/internal/web"
)

// Crawl progress reports into the process-wide registry: fetch volume,
// de-duplication hits, and the live frontier size (updated on every
// push and pop, and zeroed when the crawl returns, so a scrape
// mid-crawl shows how much work remains queued).
var (
	mPagesFetched = obs.Default.Counter("etap_gather_pages_fetched_total",
		"Pages fetched by the focused crawler.")
	mDuplicates = obs.Default.Counter("etap_gather_duplicates_total",
		"Pages skipped by exact or near-duplicate detection.")
	mFrontier = obs.Default.Gauge("etap_gather_frontier_size",
		"Prioritized URLs waiting in the crawl frontier.")
)

// CrawlConfig controls a focused crawl.
type CrawlConfig struct {
	// Seeds are the starting URLs.
	Seeds []string
	// Topic is a bag of words steering the frontier: pages whose text
	// shares more (stemmed) vocabulary with the topic are expanded
	// first. Empty means breadth-first.
	Topic []string
	// MaxPages bounds the number of fetched pages; 0 means 1000.
	MaxPages int
	// MaxDepth bounds link depth from the seeds; 0 means 6.
	MaxDepth int
	// MinRelevance prunes frontier entries scoring below it (only
	// meaningful with a Topic).
	MinRelevance float64
	// NearDupThreshold, when > 0, additionally skips pages whose
	// estimated Jaccard similarity to an already-fetched page is at or
	// above it (syndicated copies with small edits). Exact-content
	// de-duplication always applies.
	NearDupThreshold float64
	// Fetcher overrides the page source; nil fetches directly from the
	// web passed to Crawl. Wrap with web.NewFaultFetcher to exercise
	// the failure paths deterministically.
	Fetcher web.Fetcher
	// Retry tunes fetch retry/backoff and the per-host circuit
	// breaker; the zero value applies the library defaults.
	Retry RetryConfig
}

// CrawlResult is the outcome of a crawl.
type CrawlResult struct {
	// Pages are the fetched pages in fetch order.
	Pages []*web.Page
	// Duplicates counts pages skipped by content de-duplication.
	Duplicates int
	// Visited counts successful fetches (including duplicates).
	Visited int
	// Failed reports the frontier URLs the crawl abandoned — after
	// exhausting retries, on a permanent error, or because a host's
	// circuit breaker was open — instead of silently skipping them.
	Failed []FetchError
	// Retries counts fetch retries performed across the crawl.
	Retries int
}

// frontierItem is one prioritized URL.
type frontierItem struct {
	url   string
	depth int
	score float64
	seq   int // FIFO tie-break for determinism
	index int // heap position, maintained for heap.Fix re-prioritization
}

type frontier []*frontierItem

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	if f[i].score != f[j].score {
		return f[i].score > f[j].score
	}
	return f[i].seq < f[j].seq
}
func (f frontier) Swap(i, j int) {
	f[i], f[j] = f[j], f[i]
	f[i].index = i
	f[j].index = j
}
func (f *frontier) Push(x any) {
	it := x.(*frontierItem)
	it.index = len(*f)
	*f = append(*f, it)
}
func (f *frontier) Pop() any {
	old := *f
	n := len(old)
	it := old[n-1]
	it.index = -1
	*f = old[:n-1]
	return it
}

// Crawl runs a focused crawl over w. The context bounds the whole
// crawl: cancellation or deadline expiry propagates into every fetch
// attempt, and the crawl stops expanding the frontier once ctx is done,
// returning the pages gathered so far.
func Crawl(ctx context.Context, w *web.Web, cfg CrawlConfig) CrawlResult {
	maxPages := cfg.MaxPages
	if maxPages <= 0 {
		maxPages = 1000
	}
	maxDepth := cfg.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 6
	}
	topic := stemSet(cfg.Topic)

	fetcher := cfg.Fetcher
	if fetcher == nil {
		fetcher = w
	}
	rt := newRetrier(fetcher, cfg.Retry)
	defer rt.finish()
	// The frontier gauge tracks the live queue on every push and pop,
	// and is zeroed on return: a crawl that exits with items still
	// queued abandons them, so leaving the last sampled size up would
	// go stale.
	defer mFrontier.Set(0)

	var res CrawlResult
	seen := map[string]bool{}
	queued := map[string]*frontierItem{}
	contentSeen := map[uint64]bool{}
	var nearDup *NearDupIndex
	if cfg.NearDupThreshold > 0 {
		nearDup = NewNearDupIndex(cfg.NearDupThreshold)
	}
	var fr frontier
	seq := 0
	push := func(url string, depth int, score float64) {
		if it, ok := queued[url]; ok {
			// Rediscovered via a better parent while still queued:
			// raise the item's priority (and take the shallower
			// depth) so the first discovery's low score doesn't lock
			// in a late fetch.
			if score > it.score {
				it.score = score
				if depth < it.depth {
					it.depth = depth
				}
				heap.Fix(&fr, it.index)
			}
			return
		}
		if seen[url] {
			return
		}
		seen[url] = true
		seq++
		it := &frontierItem{url: url, depth: depth, score: score, seq: seq}
		heap.Push(&fr, it)
		queued[url] = it
		mFrontier.Set(int64(fr.Len()))
	}
	for _, s := range cfg.Seeds {
		push(s, 0, 1)
	}

	for fr.Len() > 0 && len(res.Pages) < maxPages && ctx.Err() == nil {
		it := heap.Pop(&fr).(*frontierItem)
		delete(queued, it.url)
		mFrontier.Set(int64(fr.Len()))
		page, ferr := rt.do(ctx, it.url)
		if ferr != nil {
			res.Failed = append(res.Failed, *ferr)
			continue
		}
		res.Visited++
		mPagesFetched.Inc()
		h := contentHash(page.Text)
		if contentSeen[h] {
			res.Duplicates++
			mDuplicates.Inc()
			continue
		}
		contentSeen[h] = true
		if nearDup != nil && nearDup.Seen(page.Text) {
			res.Duplicates++
			mDuplicates.Inc()
			continue
		}
		res.Pages = append(res.Pages, page)

		if it.depth >= maxDepth {
			continue
		}
		score := relevance(page, topic)
		if len(topic) > 0 && score < cfg.MinRelevance {
			continue // do not expand irrelevant pages
		}
		for _, l := range page.Links {
			push(l, it.depth+1, score)
		}
	}
	res.Retries = rt.retries()
	return res
}

// relevance scores a page against the topic: fraction of topic stems
// present in the page.
func relevance(p *web.Page, topic map[string]bool) float64 {
	if len(topic) == 0 {
		return 0
	}
	words := textproc.Words(p.Title + " " + p.Text)
	found := map[string]bool{}
	for _, w := range words {
		s := textproc.Stem(w)
		if topic[s] {
			found[s] = true
		}
	}
	return float64(len(found)) / float64(len(topic))
}

func stemSet(words []string) map[string]bool {
	out := map[string]bool{}
	for _, w := range words {
		for _, t := range textproc.Words(w) {
			out[textproc.Stem(t)] = true
		}
	}
	return out
}

// contentHash fingerprints page text for de-duplication, ignoring case
// and whitespace differences.
func contentHash(text string) uint64 {
	h := fnv.New64a()
	for _, w := range textproc.Words(text) {
		h.Write([]byte(w))
		h.Write([]byte{' '})
	}
	return h.Sum64()
}

// --- source registry -----------------------------------------------------

// Source yields documents for the collection D of Section 2 ("gathers a
// collection of documents D from various sources such as proprietary
// databases and corpora as well as from a focused crawl of the Web").
type Source interface {
	// Name identifies the source.
	Name() string
	// Documents returns the source's pages.
	Documents() []*web.Page
}

// CrawlSource adapts a crawl result into a Source.
type CrawlSource struct {
	SourceName string
	Result     CrawlResult
}

// Name implements Source.
func (s CrawlSource) Name() string { return s.SourceName }

// Documents implements Source.
func (s CrawlSource) Documents() []*web.Page { return s.Result.Pages }

// StaticSource is a fixed page list (a proprietary database or corpus).
type StaticSource struct {
	SourceName string
	Pages      []*web.Page
}

// Name implements Source.
func (s StaticSource) Name() string { return s.SourceName }

// Documents implements Source.
func (s StaticSource) Documents() []*web.Page { return s.Pages }

// Collect merges sources into one de-duplicated collection, stable in
// (source, page) order. Content fingerprinting — the expensive,
// tokenize-every-page part of de-duplication — runs concurrently across
// a worker pool; the merge itself stays sequential so the kept-page
// order is deterministic.
func Collect(sources ...Source) []*web.Page {
	var all []*web.Page
	for _, s := range sources {
		all = append(all, s.Documents()...)
	}
	hashes := contentHashAll(all)

	var out []*web.Page
	seenURL := map[string]bool{}
	seenContent := map[uint64]bool{}
	for i, p := range all {
		if seenURL[p.URL] || seenContent[hashes[i]] {
			continue
		}
		seenURL[p.URL] = true
		seenContent[hashes[i]] = true
		out = append(out, p)
	}
	return out
}

// contentHashAll fingerprints every page across a GOMAXPROCS worker
// pool, preserving order.
func contentHashAll(pages []*web.Page) []uint64 {
	out := make([]uint64, len(pages))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pages) {
		workers = len(pages)
	}
	if workers <= 1 {
		for i, p := range pages {
			out[i] = contentHash(p.Text)
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = contentHash(pages[i].Text)
			}
		}()
	}
	for i := range pages {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// IndexCollection bulk-loads a gathered collection into a fresh search
// index, tokenizing pages concurrently — the bridge from the
// data-gathering component's collection D to a queryable substrate.
// Page title and text are indexed together, like web.AddPage does.
func IndexCollection(pages []*web.Page, opts index.Options) *index.Index {
	ix := index.NewWithOptions(opts)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pages) {
		workers = len(pages)
	}
	if workers <= 1 {
		for _, p := range pages {
			ix.Add(p.URL, p.Title+" "+p.Text)
		}
		return ix
	}
	jobs := make(chan *web.Page)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				ix.Add(p.URL, p.Title+" "+p.Text)
			}
		}()
	}
	for _, p := range pages {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	return ix
}

// --- change monitor --------------------------------------------------------

// Monitor tracks page content across visits and reports changes —
// the eShopMonitor behaviour that keeps the collection fresh.
type Monitor struct {
	hashes map[string]uint64
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor { return &Monitor{hashes: make(map[string]uint64)} }

// Observe records the page's current content and reports whether it
// changed since the last observation. First observations report true
// (everything is new).
func (m *Monitor) Observe(p *web.Page) bool {
	h := contentHash(p.Text)
	old, seen := m.hashes[p.URL]
	m.hashes[p.URL] = h
	return !seen || old != h
}

// Changed filters the pages that are new or modified since their last
// observation, sorted by URL for determinism.
func (m *Monitor) Changed(pages []*web.Page) []*web.Page {
	var out []*web.Page
	for _, p := range pages {
		if m.Observe(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return strings.Compare(out[i].URL, out[j].URL) < 0 })
	return out
}
