// Fetch robustness for the focused crawler: retry with exponential
// backoff and seeded jitter, a per-attempt timeout, and a per-host
// circuit breaker — the failure-handling skeleton production
// business-news pipelines treat as first-class. Everything is
// deterministic given the configuration seeds: the breaker is
// attempt-indexed rather than wall-clock-timed and the jitter stream is
// seeded, so a crawl against a seeded fault injector reproduces
// exactly.
//
// The policy itself is operation-agnostic: RetryPolicy applies the same
// retry/backoff/breaker machinery to any keyed operation, which is how
// the alert subsystem's webhook delivery (internal/alert) shares this
// exact failure-handling stack with the crawler.
package gather

import (
	"context"
	"math/rand"
	"time"

	"etap/internal/obs"
	"etap/internal/web"
)

// Fetch-robustness series: retries, backoff pauses, abandoned fetches,
// and circuit-breaker activity all report into the process-wide
// registry alongside the crawl-volume metrics above.
var (
	mRetries = obs.Default.Counter("etap_gather_retries_total",
		"Fetch retries after a transient failure or attempt timeout.")
	mBackoffSleeps = obs.Default.Counter("etap_gather_backoff_sleeps_total",
		"Backoff pauses taken between fetch retries.")
	mBackoff = obs.Default.Histogram("etap_gather_backoff_seconds",
		"Backoff pause duration before a fetch retry.", nil)
	mFetchFailures = obs.Default.Counter("etap_gather_fetch_failures_total",
		"Fetches abandoned after exhausting retries or hitting a permanent error.")
	mBreakerTrips = obs.Default.Counter("etap_gather_breaker_trips_total",
		"Per-host circuit breakers tripped open.")
	mBreakerOpen = obs.Default.Gauge("etap_gather_breaker_open",
		"Per-host circuit breakers currently open.")
	mBreakerShortCircuits = obs.Default.Counter("etap_gather_breaker_short_circuits_total",
		"Fetches skipped without an attempt because the host's breaker was open.")
)

// gatherPolicyMetrics wires the crawl's retry policy into the
// etap_gather_* series above.
func gatherPolicyMetrics() PolicyMetrics {
	return PolicyMetrics{
		Retries:              mRetries,
		BackoffSleeps:        mBackoffSleeps,
		Backoff:              mBackoff,
		Failures:             mFetchFailures,
		BreakerTrips:         mBreakerTrips,
		BreakerOpen:          mBreakerOpen,
		BreakerShortCircuits: mBreakerShortCircuits,
	}
}

// RetryConfig tunes retry, backoff, and the per-key circuit breaker of
// a RetryPolicy (Crawl applies it per fetch, keyed by host; the alert
// dispatcher per webhook delivery, keyed by endpoint host). The zero
// value selects the defaults noted per field.
type RetryConfig struct {
	// MaxAttempts is the attempts per operation including the first;
	// 0 means 4, negative means a single attempt (no retries).
	MaxAttempts int
	// BaseBackoff is the pause after the first failure, doubling each
	// retry; 0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the pause; 0 means 2s.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each attempt via a context deadline;
	// 0 means 1s, negative disables the per-attempt deadline.
	AttemptTimeout time.Duration
	// JitterSeed seeds the deterministic backoff jitter (a factor in
	// [0.5, 1.5) per pause); the same seed reproduces the same sleep
	// schedule.
	JitterSeed int64
	// BreakerThreshold is the consecutive failure count that opens a
	// key's breaker; 0 means 5, negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how many operations on an open key are skipped
	// before a single half-open probe is allowed through; 0 means 8.
	BreakerCooldown int
	// Sleep replaces time.Sleep for backoff pauses (tests inject a
	// recorder); nil means time.Sleep.
	Sleep func(time.Duration)
}

// IsZero reports whether every field is unset, i.e. the config would
// apply pure library defaults. Used when threading a system-level
// default under an explicit per-crawl override.
func (c RetryConfig) IsZero() bool {
	return c.MaxAttempts == 0 && c.BaseBackoff == 0 && c.MaxBackoff == 0 &&
		c.AttemptTimeout == 0 && c.JitterSeed == 0 &&
		c.BreakerThreshold == 0 && c.BreakerCooldown == 0 && c.Sleep == nil
}

// withDefaults resolves the zero fields to the documented defaults.
func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 1
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 8
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Failure reasons recorded in FetchError.Reason and Outcome.Reason.
const (
	// FailNotFound marks a permanent failure (dead link or gone host).
	FailNotFound = "not-found"
	// FailExhausted marks an operation abandoned after MaxAttempts
	// transient failures.
	FailExhausted = "transient-exhausted"
	// FailBreakerOpen marks an operation skipped without an attempt
	// because its key's circuit breaker was open.
	FailBreakerOpen = "breaker-open"
)

// FetchError reports one frontier URL the crawl abandoned and why —
// the graceful-degradation half of CrawlResult: the crawl returns the
// pages it could fetch plus this report instead of silently skipping.
type FetchError struct {
	// URL is the abandoned frontier entry.
	URL string
	// Host is the URL's host — the circuit-breaker scope.
	Host string
	// Attempts is how many fetch attempts were made (0 when the
	// breaker short-circuited the URL).
	Attempts int
	// Reason classifies the failure: FailNotFound, FailExhausted, or
	// FailBreakerOpen.
	Reason string
	// Err is the last underlying error's message.
	Err string
}

// hostBreaker tracks one key's health. State is attempt-indexed, not
// timed: an open breaker skips the next cooldown operations on the key,
// then admits a single half-open probe — success closes it, failure
// re-opens a full cooldown. Deterministic by construction.
type hostBreaker struct {
	fails    int // consecutive failures while closed
	open     bool
	cooldown int // skips remaining before the half-open probe
}

// PolicyMetrics names the obs series a RetryPolicy reports into. Any
// nil field disables that series, so callers wire only what they
// catalog (the crawl reports etap_gather_*, webhook delivery
// etap_alert_*).
type PolicyMetrics struct {
	// Retries counts attempts beyond the first.
	Retries *obs.Counter
	// BackoffSleeps counts backoff pauses taken.
	BackoffSleeps *obs.Counter
	// Backoff observes the pause durations in seconds.
	Backoff *obs.Histogram
	// Failures counts operations abandoned (permanent, exhausted, or
	// breaker-open).
	Failures *obs.Counter
	// BreakerTrips counts breaker open transitions.
	BreakerTrips *obs.Counter
	// BreakerOpen gauges breakers currently open.
	BreakerOpen *obs.Gauge
	// BreakerShortCircuits counts operations skipped on an open breaker.
	BreakerShortCircuits *obs.Counter
}

// Outcome reports how one RetryPolicy.Execute ended.
type Outcome struct {
	// Attempts is how many attempts ran (0 when the breaker
	// short-circuited the operation).
	Attempts int
	// Reason classifies a failure (FailNotFound, FailExhausted,
	// FailBreakerOpen); empty on success.
	Reason string
	// Err is the terminal error; nil on success.
	Err error
}

// RetryPolicy applies retry with exponential backoff and seeded
// jitter, a per-attempt timeout, and a per-key circuit breaker to
// arbitrary operations. It is the policy engine behind the crawler's
// fetch path and the alert dispatcher's webhook delivery. Not safe for
// concurrent use: each sequential loop (a crawl, a per-subscriber
// delivery worker) owns its own policy.
type RetryPolicy struct {
	cfg       RetryConfig
	met       PolicyMetrics
	transient func(error) bool
	breakers  map[string]*hostBreaker
	jitter    *rand.Rand
	retries   int
}

// NewRetryPolicy builds a policy from cfg reporting into met.
// transient classifies retryable errors; nil means web.IsTransient.
func NewRetryPolicy(cfg RetryConfig, met PolicyMetrics, transient func(error) bool) *RetryPolicy {
	cfg = cfg.withDefaults()
	if transient == nil {
		transient = web.IsTransient
	}
	return &RetryPolicy{
		cfg:       cfg,
		met:       met,
		transient: transient,
		breakers:  make(map[string]*hostBreaker),
		jitter:    rand.New(rand.NewSource(cfg.JitterSeed)),
	}
}

// Retries returns the total attempts beyond the first across all
// Execute calls.
func (p *RetryPolicy) Retries() int { return p.retries }

// Execute runs op under key's circuit breaker with retry, backoff and
// the per-attempt timeout, deriving each attempt's deadline from ctx.
// A permanent error (one transient reports false for) aborts
// immediately with FailNotFound; transient errors retry up to
// MaxAttempts and then fail with FailExhausted.
func (p *RetryPolicy) Execute(ctx context.Context, key string, op func(context.Context) error) Outcome {
	br := p.breakers[key]
	if br == nil {
		br = &hostBreaker{}
		p.breakers[key] = br
	}
	if br.open {
		if br.cooldown > 0 {
			br.cooldown--
			incCounter(p.met.BreakerShortCircuits)
			return Outcome{Reason: FailBreakerOpen,
				Err: errBreakerOpen{key: key}}
		}
		// Cooldown spent: fall through as the half-open probe.
	}
	var lastErr error
	for attempt := 1; attempt <= p.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			p.retries++
			incCounter(p.met.Retries)
			p.pause(attempt)
		}
		err := p.attempt(ctx, op)
		if err == nil {
			p.onSuccess(br)
			return Outcome{Attempts: attempt}
		}
		lastErr = err
		if !p.transient(err) {
			// Permanent: the peer answered, the target is gone. No
			// breaker impact and no point retrying.
			incCounter(p.met.Failures)
			return Outcome{Attempts: attempt, Reason: FailNotFound, Err: err}
		}
	}
	p.onFailure(br)
	incCounter(p.met.Failures)
	return Outcome{Attempts: p.cfg.MaxAttempts, Reason: FailExhausted, Err: lastErr}
}

// errBreakerOpen is the terminal error of a short-circuited operation.
type errBreakerOpen struct{ key string }

func (e errBreakerOpen) Error() string {
	return "circuit breaker open for " + e.key
}

// attempt runs one operation under the per-attempt deadline, derived
// from the caller's context so crawl- or delivery-level cancellation
// propagates into in-flight attempts.
func (p *RetryPolicy) attempt(ctx context.Context, op func(context.Context) error) error {
	if p.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.AttemptTimeout)
		defer cancel()
	}
	return op(ctx)
}

// pause sleeps the exponential backoff for the given attempt (2 is the
// first retry), jittered by a seeded factor in [0.5, 1.5) and capped
// at MaxBackoff.
func (p *RetryPolicy) pause(attempt int) {
	d := p.cfg.BaseBackoff
	for i := 2; i < attempt; i++ {
		d *= 2
		if d >= p.cfg.MaxBackoff {
			break
		}
	}
	if d > p.cfg.MaxBackoff {
		d = p.cfg.MaxBackoff
	}
	d = time.Duration(float64(d) * (0.5 + p.jitter.Float64()))
	if d > p.cfg.MaxBackoff {
		d = p.cfg.MaxBackoff
	}
	incCounter(p.met.BackoffSleeps)
	if p.met.Backoff != nil {
		p.met.Backoff.Observe(d.Seconds())
	}
	p.cfg.Sleep(d)
}

// onSuccess resets the key's failure streak and closes an open
// breaker (a successful half-open probe).
func (p *RetryPolicy) onSuccess(br *hostBreaker) {
	br.fails = 0
	if br.open {
		br.open = false
		addGauge(p.met.BreakerOpen, -1)
	}
}

// onFailure advances the key's breaker: a failed half-open probe
// re-opens a full cooldown; enough consecutive failures while closed
// trip it open.
func (p *RetryPolicy) onFailure(br *hostBreaker) {
	if p.cfg.BreakerThreshold < 0 {
		return
	}
	if br.open {
		br.cooldown = p.cfg.BreakerCooldown
		incCounter(p.met.BreakerTrips)
		return
	}
	br.fails++
	if br.fails >= p.cfg.BreakerThreshold {
		br.open = true
		br.cooldown = p.cfg.BreakerCooldown
		incCounter(p.met.BreakerTrips)
		addGauge(p.met.BreakerOpen, 1)
	}
}

// Close releases the policy's breaker state: breakers die with their
// owner (a crawl, a delivery worker), so open ones stop counting
// toward the process-wide gauge.
func (p *RetryPolicy) Close() {
	for _, br := range p.breakers {
		if br.open {
			br.open = false
			addGauge(p.met.BreakerOpen, -1)
		}
	}
}

func incCounter(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func addGauge(g *obs.Gauge, delta int64) {
	if g != nil {
		g.Add(delta)
	}
}

// retrier wraps a Fetcher with the full robustness stack for one
// crawl. Not safe for concurrent use (the crawl loop is sequential).
type retrier struct {
	fetch  web.Fetcher
	policy *RetryPolicy
}

func newRetrier(fetch web.Fetcher, cfg RetryConfig) *retrier {
	return &retrier{
		fetch:  fetch,
		policy: NewRetryPolicy(cfg, gatherPolicyMetrics(), nil),
	}
}

// do fetches url with retries, backoff, the per-attempt timeout, and
// the host breaker, deriving each attempt's deadline from the crawl's
// context. It returns the page or a FetchError describing why the URL
// was abandoned.
func (r *retrier) do(ctx context.Context, url string) (*web.Page, *FetchError) {
	host := web.HostOf(url)
	var page *web.Page
	out := r.policy.Execute(ctx, host, func(ctx context.Context) error {
		p, err := r.fetch.Fetch(ctx, url)
		if err == nil {
			page = p
		}
		return err
	})
	if out.Err == nil {
		return page, nil
	}
	return nil, &FetchError{URL: url, Host: host, Attempts: out.Attempts,
		Reason: out.Reason, Err: out.Err.Error()}
}

// retries reports the fetch attempts beyond the first this crawl made.
func (r *retrier) retries() int { return r.policy.Retries() }

// finish releases the crawl's breaker state.
func (r *retrier) finish() { r.policy.Close() }

// FetchOptions bundles the crawl-time fetch robustness knobs a System
// threads into each crawl (core.Config.Fetch): retry/backoff/breaker
// tuning plus optional deterministic fault injection for failure-path
// testing and chaos runs.
type FetchOptions struct {
	// Retry tunes retry, backoff, and the circuit breaker.
	Retry RetryConfig
	// Fault, when non-nil, wraps the web in a web.FaultFetcher with
	// this configuration.
	Fault *web.FaultConfig
}
