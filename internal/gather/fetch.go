// Fetch robustness for the focused crawler: retry with exponential
// backoff and seeded jitter, a per-attempt timeout, and a per-host
// circuit breaker — the failure-handling skeleton production
// business-news pipelines treat as first-class. Everything is
// deterministic given the configuration seeds: the breaker is
// fetch-indexed rather than wall-clock-timed and the jitter stream is
// seeded, so a crawl against a seeded fault injector reproduces
// exactly.
package gather

import (
	"context"
	"math/rand"
	"time"

	"etap/internal/obs"
	"etap/internal/web"
)

// Fetch-robustness series: retries, backoff pauses, abandoned fetches,
// and circuit-breaker activity all report into the process-wide
// registry alongside the crawl-volume metrics above.
var (
	mRetries = obs.Default.Counter("etap_gather_retries_total",
		"Fetch retries after a transient failure or attempt timeout.")
	mBackoffSleeps = obs.Default.Counter("etap_gather_backoff_sleeps_total",
		"Backoff pauses taken between fetch retries.")
	mBackoff = obs.Default.Histogram("etap_gather_backoff_seconds",
		"Backoff pause duration before a fetch retry.", nil)
	mFetchFailures = obs.Default.Counter("etap_gather_fetch_failures_total",
		"Fetches abandoned after exhausting retries or hitting a permanent error.")
	mBreakerTrips = obs.Default.Counter("etap_gather_breaker_trips_total",
		"Per-host circuit breakers tripped open.")
	mBreakerOpen = obs.Default.Gauge("etap_gather_breaker_open",
		"Per-host circuit breakers currently open.")
	mBreakerShortCircuits = obs.Default.Counter("etap_gather_breaker_short_circuits_total",
		"Fetches skipped without an attempt because the host's breaker was open.")
)

// RetryConfig tunes fetch retry, backoff, and the per-host circuit
// breaker used by Crawl. The zero value selects the defaults noted per
// field.
type RetryConfig struct {
	// MaxAttempts is the fetch attempts per URL including the first;
	// 0 means 4, negative means a single attempt (no retries).
	MaxAttempts int
	// BaseBackoff is the pause after the first failure, doubling each
	// retry; 0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the pause; 0 means 2s.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each fetch attempt via a context deadline;
	// 0 means 1s, negative disables the per-attempt deadline.
	AttemptTimeout time.Duration
	// JitterSeed seeds the deterministic backoff jitter (a factor in
	// [0.5, 1.5) per pause); the same seed reproduces the same sleep
	// schedule.
	JitterSeed int64
	// BreakerThreshold is the consecutive failure count that opens a
	// host's breaker; 0 means 5, negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how many fetches to an open host are skipped
	// before a single half-open probe is allowed through; 0 means 8.
	BreakerCooldown int
	// Sleep replaces time.Sleep for backoff pauses (tests inject a
	// recorder); nil means time.Sleep.
	Sleep func(time.Duration)
}

// IsZero reports whether every field is unset, i.e. the config would
// apply pure library defaults. Used when threading a system-level
// default under an explicit per-crawl override.
func (c RetryConfig) IsZero() bool {
	return c.MaxAttempts == 0 && c.BaseBackoff == 0 && c.MaxBackoff == 0 &&
		c.AttemptTimeout == 0 && c.JitterSeed == 0 &&
		c.BreakerThreshold == 0 && c.BreakerCooldown == 0 && c.Sleep == nil
}

// withDefaults resolves the zero fields to the documented defaults.
func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 1
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 8
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Failure reasons recorded in FetchError.Reason.
const (
	// FailNotFound marks a permanent failure (dead link or gone host).
	FailNotFound = "not-found"
	// FailExhausted marks a URL abandoned after MaxAttempts transient
	// failures.
	FailExhausted = "transient-exhausted"
	// FailBreakerOpen marks a URL skipped without an attempt because
	// its host's circuit breaker was open.
	FailBreakerOpen = "breaker-open"
)

// FetchError reports one frontier URL the crawl abandoned and why —
// the graceful-degradation half of CrawlResult: the crawl returns the
// pages it could fetch plus this report instead of silently skipping.
type FetchError struct {
	// URL is the abandoned frontier entry.
	URL string
	// Host is the URL's host — the circuit-breaker scope.
	Host string
	// Attempts is how many fetch attempts were made (0 when the
	// breaker short-circuited the URL).
	Attempts int
	// Reason classifies the failure: FailNotFound, FailExhausted, or
	// FailBreakerOpen.
	Reason string
	// Err is the last underlying error's message.
	Err string
}

// hostBreaker tracks one host's health. State is fetch-indexed, not
// timed: an open breaker skips the next cooldown fetches to the host,
// then admits a single half-open probe — success closes it, failure
// re-opens a full cooldown. Deterministic by construction.
type hostBreaker struct {
	fails    int // consecutive failures while closed
	open     bool
	cooldown int // skips remaining before the half-open probe
}

// retrier wraps a Fetcher with the full robustness stack for one
// crawl. Not safe for concurrent use (the crawl loop is sequential).
type retrier struct {
	fetch    web.Fetcher
	cfg      RetryConfig
	breakers map[string]*hostBreaker
	jitter   *rand.Rand
	retries  int
}

func newRetrier(fetch web.Fetcher, cfg RetryConfig) *retrier {
	cfg = cfg.withDefaults()
	return &retrier{
		fetch:    fetch,
		cfg:      cfg,
		breakers: make(map[string]*hostBreaker),
		jitter:   rand.New(rand.NewSource(cfg.JitterSeed)),
	}
}

// do fetches url with retries, backoff, the per-attempt timeout, and
// the host breaker, deriving each attempt's deadline from the crawl's
// context. It returns the page or a FetchError describing why the URL
// was abandoned.
func (r *retrier) do(ctx context.Context, url string) (*web.Page, *FetchError) {
	host := web.HostOf(url)
	br := r.breakers[host]
	if br == nil {
		br = &hostBreaker{}
		r.breakers[host] = br
	}
	if br.open {
		if br.cooldown > 0 {
			br.cooldown--
			mBreakerShortCircuits.Inc()
			return nil, &FetchError{URL: url, Host: host, Reason: FailBreakerOpen,
				Err: "circuit breaker open for host " + host}
		}
		// Cooldown spent: fall through as the half-open probe.
	}
	var lastErr error
	for attempt := 1; attempt <= r.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			r.retries++
			mRetries.Inc()
			r.pause(attempt)
		}
		page, err := r.attempt(ctx, url)
		if err == nil {
			r.onSuccess(br)
			return page, nil
		}
		lastErr = err
		if !web.IsTransient(err) {
			// Permanent: the host answered, the page is gone. No
			// breaker impact and no point retrying.
			mFetchFailures.Inc()
			return nil, &FetchError{URL: url, Host: host, Attempts: attempt,
				Reason: FailNotFound, Err: err.Error()}
		}
	}
	r.onFailure(br)
	mFetchFailures.Inc()
	return nil, &FetchError{URL: url, Host: host, Attempts: r.cfg.MaxAttempts,
		Reason: FailExhausted, Err: lastErr.Error()}
}

// attempt runs one fetch under the per-attempt deadline, derived from
// the caller's context so crawl-level cancellation propagates into
// in-flight fetches.
func (r *retrier) attempt(ctx context.Context, url string) (*web.Page, error) {
	if r.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		defer cancel()
	}
	return r.fetch.Fetch(ctx, url)
}

// pause sleeps the exponential backoff for the given attempt (2 is the
// first retry), jittered by a seeded factor in [0.5, 1.5) and capped
// at MaxBackoff.
func (r *retrier) pause(attempt int) {
	d := r.cfg.BaseBackoff
	for i := 2; i < attempt; i++ {
		d *= 2
		if d >= r.cfg.MaxBackoff {
			break
		}
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	d = time.Duration(float64(d) * (0.5 + r.jitter.Float64()))
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	mBackoffSleeps.Inc()
	mBackoff.Observe(d.Seconds())
	r.cfg.Sleep(d)
}

// onSuccess resets the host's failure streak and closes an open
// breaker (a successful half-open probe).
func (r *retrier) onSuccess(br *hostBreaker) {
	br.fails = 0
	if br.open {
		br.open = false
		mBreakerOpen.Dec()
	}
}

// onFailure advances the host's breaker: a failed half-open probe
// re-opens a full cooldown; enough consecutive failures while closed
// trip it open.
func (r *retrier) onFailure(br *hostBreaker) {
	if r.cfg.BreakerThreshold < 0 {
		return
	}
	if br.open {
		br.cooldown = r.cfg.BreakerCooldown
		mBreakerTrips.Inc()
		return
	}
	br.fails++
	if br.fails >= r.cfg.BreakerThreshold {
		br.open = true
		br.cooldown = r.cfg.BreakerCooldown
		mBreakerTrips.Inc()
		mBreakerOpen.Inc()
	}
}

// finish releases the crawl's breaker state: breakers die with the
// crawl, so open ones stop counting toward the process-wide gauge.
func (r *retrier) finish() {
	for _, br := range r.breakers {
		if br.open {
			mBreakerOpen.Dec()
		}
	}
}

// FetchOptions bundles the crawl-time fetch robustness knobs a System
// threads into each crawl (core.Config.Fetch): retry/backoff/breaker
// tuning plus optional deterministic fault injection for failure-path
// testing and chaos runs.
type FetchOptions struct {
	// Retry tunes retry, backoff, and the circuit breaker.
	Retry RetryConfig
	// Fault, when non-nil, wraps the web in a web.FaultFetcher with
	// this configuration.
	Fault *web.FaultConfig
}
