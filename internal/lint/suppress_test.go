package lint

import (
	"strings"
	"testing"
)

// TestSuppressionDirectives loads the suppress testdata package and
// checks the full directive surface: a named ignore and an "all"
// ignore silence their findings, a doc-group directive covers the
// declaration after the group, an unsuppressed violation survives, and
// a directive without a reason is itself reported.
func TestSuppressionDirectives(t *testing.T) {
	p := loadGolden(t, "testdata/src/suppress/pkg", "etap/internal/goldensup")
	rules, err := SelectRules("error-swallowing,context-plumbing")
	if err != nil {
		t.Fatalf("SelectRules: %v", err)
	}
	findings := Run([]*Package{p}, rules)

	byRule := map[string][]Finding{}
	for _, f := range findings {
		byRule[f.Rule] = append(byRule[f.Rule], f)
	}

	// The suppressed Cleanup/CleanupAll discards and the doc-group
	// suppressed Fetch must not appear; Unsuppressed and the discard
	// under the malformed directive must.
	if got := len(byRule["error-swallowing"]); got != 2 {
		t.Errorf("error-swallowing findings = %d, want 2 (Unsuppressed and Malformed):\n%s", got, dump(findings))
	}
	if got := len(byRule["context-plumbing"]); got != 0 {
		t.Errorf("context-plumbing findings = %d, want 0 (Fetch is doc-group suppressed):\n%s", got, dump(findings))
	}
	if got := len(byRule["suppression"]); got != 1 {
		t.Errorf("suppression findings = %d, want 1 (the reason-less directive):\n%s", got, dump(findings))
	}
	for _, f := range byRule["suppression"] {
		if !strings.Contains(f.Message, "malformed suppression") {
			t.Errorf("suppression finding message = %q, want a malformed-suppression report", f.Message)
		}
		if f.Severity != SeverityError {
			t.Errorf("suppression finding severity = %s, want error", f.Severity)
		}
	}
}

// dump renders findings for failure messages.
func dump(findings []Finding) string {
	var b strings.Builder
	if err := WriteText(&b, findings); err != nil {
		return err.Error()
	}
	return b.String()
}
