// The control-flow layer: a per-function CFG built from go/ast alone,
// giving flow-aware rules (goroutine-lifecycle, lock-order,
// channel-discipline) something better than source order to reason
// over. Each function body becomes a graph of basic blocks with edges
// for branches, loop back-edges, switch/select dispatch, labeled
// break/continue/goto, explicit panic, and return. Deferred calls are
// collected on the CFG (they run at every exit) rather than modeled as
// edges. Nested function literals are NOT descended into — a literal's
// body is its own CFG — and `go` statements keep only the spawn point;
// the spawned body likewise gets its own graph.
//
// The builder is purely syntactic: it never consults go/types, so a
// shadowed `panic` identifier would be misread as terminal. That
// trade keeps construction allocation-light and dependency-free; the
// rules that need symbol resolution layer it on top.

package lint

import (
	"go/ast"
)

// CFG is the control-flow graph of one function body. Blocks[0] is
// always Entry; Exit is a distinct empty block every return, panic,
// and fall-off-the-end path reaches.
type CFG struct {
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the single synthetic exit block; deferred calls
	// conceptually run here.
	Exit *Block
	// Blocks lists every block in creation order (Entry first).
	Blocks []*Block
	// Defers are the defer statements collected anywhere in the body,
	// in source order. They execute at Exit on every path.
	Defers []*ast.DeferStmt
}

// Block is one straight-line run of statements: control enters at the
// top and leaves through one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes holds the block's statements and control expressions in
	// execution order. Control statements contribute their guard
	// expression or themselves (e.g. an *ast.IfStmt's Cond, an
	// *ast.RangeStmt for its per-iteration receive).
	Nodes []ast.Node
	// Succs are the blocks control may transfer to next.
	Succs []*Block
	// Preds are the blocks that may transfer control here.
	Preds []*Block
}

// addSucc links b -> s exactly once.
func (b *Block) addSucc(s *Block) {
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

// cfgBuilder carries the under-construction graph plus the branch
// targets currently in scope.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block new statements append to; nil after a terminal
	// statement (return, panic, break, ...) until a join block opens.
	cur *Block
	// breakTargets / continueTargets stack the innermost-last targets
	// for unlabeled break and continue.
	breakTargets    []*Block
	continueTargets []*Block
	// labels maps label names to their targets for labeled
	// break/continue/goto.
	labels map[string]*labelTarget
	// gotos are forward gotos waiting for their label block.
	gotos []pendingGoto
	// pendingLabel is the label of the LabeledStmt currently being
	// built, consumed by the next loop/switch/select statement.
	pendingLabel string
}

// labelTarget is the set of blocks a label can transfer control to.
type labelTarget struct {
	// start is the goto target (the labeled statement itself).
	start *Block
	// brk / cont are the labeled break/continue targets; nil when the
	// labeled statement is not a loop/switch/select.
	brk, cont *Block
}

// pendingGoto is a goto seen before (or after) its label declaration.
type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of one function body.
// body may be any block statement (rules also build graphs for
// function-literal bodies).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelTarget{},
	}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.cfg.Exit = b.newBlock()
	b.stmtList(body.List)
	// Falling off the end of the body reaches Exit.
	if b.cur != nil {
		b.cur.addSucc(b.cfg.Exit)
	}
	// Resolve gotos now that every label has a block.
	for _, g := range b.gotos {
		if t := b.labels[g.label]; t != nil && g.from != nil {
			g.from.addSucc(t.start)
		}
	}
	return b.cfg
}

// newBlock appends a fresh empty block to the graph.
func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// current returns the append target, opening an (unreachable) block if
// the previous statement was terminal — code after return/break still
// gets a graph, it just has no predecessors.
func (b *cfgBuilder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// takeLabel consumes the pending label for the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// stmtList builds each statement in order.
func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt dispatches one statement into the graph.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		// The labeled statement starts its own block so goto can target
		// it; loop builders consume the label for break/continue.
		start := b.newBlock()
		b.current().addSucc(start)
		b.cur = start
		b.labels[s.Label.Name] = &labelTarget{start: start}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.current().Nodes = append(b.current().Nodes, s)
		b.current().addSucc(b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.current().Nodes = append(b.current().Nodes, s)
	case *ast.ExprStmt:
		b.current().Nodes = append(b.current().Nodes, s)
		if isPanicCall(s.X) {
			b.current().addSucc(b.cfg.Exit)
			b.cur = nil
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case nil:
		// skip
	default:
		// Assignments, sends, declarations, go statements, inc/dec,
		// empty statements: straight-line.
		b.current().Nodes = append(b.current().Nodes, s)
	}
}

// branch routes break/continue/goto/fallthrough. Fallthrough is
// handled by the switch builder (the next case body directly follows),
// so here it is a no-op.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	cur := b.current()
	cur.Nodes = append(cur.Nodes, s)
	switch s.Tok.String() {
	case "break":
		var t *Block
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil {
				t = lt.brk
			}
		} else if n := len(b.breakTargets); n > 0 {
			t = b.breakTargets[n-1]
		}
		if t != nil {
			cur.addSucc(t)
		}
		b.cur = nil
	case "continue":
		var t *Block
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil {
				t = lt.cont
			}
		} else {
			// Switch/select scopes push a nil continue target; an
			// unlabeled continue belongs to the nearest enclosing loop.
			for i := len(b.continueTargets) - 1; i >= 0; i-- {
				if b.continueTargets[i] != nil {
					t = b.continueTargets[i]
					break
				}
			}
		}
		if t != nil {
			cur.addSucc(t)
		}
		b.cur = nil
	case "goto":
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
		}
		b.cur = nil
	case "fallthrough":
		// The switch builder wires the edge; keep building.
	}
}

// ifStmt builds cond -> then / else -> join.
func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	cond := b.current()
	if s.Cond != nil {
		cond.Nodes = append(cond.Nodes, s.Cond)
	}
	join := b.newBlock()

	then := b.newBlock()
	cond.addSucc(then)
	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.cur.addSucc(join)
	}

	if s.Else != nil {
		els := b.newBlock()
		cond.addSucc(els)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.cur.addSucc(join)
		}
	} else {
		cond.addSucc(join)
	}
	b.cur = join
}

// forStmt builds init -> cond -> body -> post -> cond, with the
// loop-exit edge from cond (or none for `for {}`).
func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	cond := b.newBlock()
	b.current().addSucc(cond)
	after := b.newBlock()
	if s.Cond != nil {
		cond.Nodes = append(cond.Nodes, s.Cond)
		cond.addSucc(after)
	}

	// continue goes to the post statement when there is one.
	contTarget := cond
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		b.cur = post
		b.stmt(s.Post)
		post.addSucc(cond)
		contTarget = post
	}

	body := b.newBlock()
	cond.addSucc(body)
	b.pushLoop(label, after, contTarget)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.cur.addSucc(contTarget)
	}
	b.popLoop()
	b.cur = after
}

// rangeStmt builds head -> body -> head with the exit edge from head.
// The RangeStmt node itself sits in the head block, standing for the
// per-iteration element receive.
func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.current().addSucc(head)
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock()
	head.addSucc(after)

	body := b.newBlock()
	head.addSucc(body)
	b.pushLoop(label, after, head)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.cur.addSucc(head)
	}
	b.popLoop()
	b.cur = after
}

// switchStmt builds tag -> each case -> join, including fallthrough
// edges and the implicit no-default edge to join. Shared by value and
// type switches (tag / assign: exactly one is non-nil).
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	head := b.current()
	if tag != nil {
		head.Nodes = append(head.Nodes, tag)
	}
	if assign != nil {
		head.Nodes = append(head.Nodes, assign)
	}
	after := b.newBlock()

	// Create every case block first so fallthrough can target the next.
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		caseBlocks[i] = b.newBlock()
		head.addSucc(caseBlocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.addSucc(after)
	}

	b.pushSwitch(label, after)
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			caseBlocks[i].Nodes = append(caseBlocks[i].Nodes, e)
		}
		fallsThrough := false
		for _, cs := range cc.Body {
			if br, ok := cs.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
			}
			b.stmt(cs)
		}
		if b.cur != nil {
			if fallsThrough && i+1 < len(caseBlocks) {
				b.cur.addSucc(caseBlocks[i+1])
			} else {
				b.cur.addSucc(after)
			}
		}
	}
	b.popLoopOnlyBreak()
	b.cur = after
}

// selectStmt builds head -> each comm clause -> join. A select without
// a default has no edge skipping the cases: control cannot pass until
// some comm fires — exactly the property the channel rule checks.
func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.current()
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock()

	hasDefault := false
	b.pushSwitch(label, after)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.addSucc(blk)
		b.cur = blk
		if cc.Comm != nil {
			// The comm op (send or receive) executes when the case is
			// chosen; it lives in the case block.
			b.stmt(cc.Comm)
		} else {
			hasDefault = true
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.cur.addSucc(after)
		}
	}
	_ = hasDefault // blocking semantics are the absence of other edges
	b.popLoopOnlyBreak()
	b.cur = after
}

// pushLoop enters a loop scope: break and continue targets, plus the
// label's targets when the loop is labeled.
func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	if label != "" {
		if lt := b.labels[label]; lt != nil {
			lt.brk, lt.cont = brk, cont
		}
	}
}

// popLoop leaves a loop scope.
func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

// pushSwitch enters a switch/select scope: break applies, continue
// does not.
func (b *cfgBuilder) pushSwitch(label string, brk *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, nil)
	if label != "" {
		if lt := b.labels[label]; lt != nil {
			lt.brk = brk
		}
	}
}

// popLoopOnlyBreak leaves a switch/select scope.
func (b *cfgBuilder) popLoopOnlyBreak() {
	b.popLoop()
}

// isPanicCall reports whether the expression is a direct call to the
// panic builtin (syntactic: a shadowed panic would be misread, which
// only makes the graph conservatively shorter).
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
