// The doc-comments rule: every exported symbol carries a godoc
// comment. This absorbs the retired cmd/doclint — same semantics: a
// declaration is documented when it, or its enclosing const/var/type
// block, has a doc comment (a trailing line comment also documents a
// const/var spec, matching how godoc renders grouped declarations);
// methods on unexported receiver types are skipped. Applied to every
// library package — main packages have no godoc surface and are
// exempt.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

type docCommentsRule struct{}

func (docCommentsRule) Name() string { return "doc-comments" }

func (docCommentsRule) Doc() string {
	return "every exported symbol in library packages must carry a godoc comment"
}

func (r docCommentsRule) Check(p *Package) []Finding {
	if p.Types != nil && p.Types.Name() == "main" {
		return nil
	}
	var out []Finding
	report := func(pos token.Pos, kind, name string) {
		out = append(out, Finding{
			Rule:     r.Name(),
			Severity: SeverityWarning,
			Pos:      p.Fset.Position(pos),
			Message:  fmt.Sprintf("exported %s %s has no doc comment", kind, name),
		})
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				r.checkFunc(d, report)
			case *ast.GenDecl:
				r.checkGen(d, report)
			}
		}
	}
	return out
}

// checkFunc flags undocumented exported functions and methods. Methods
// on unexported receiver types are skipped — they are not part of the
// package's godoc surface.
func (docCommentsRule) checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind, name := "function", d.Name.Name
	if d.Recv != nil {
		if len(d.Recv.List) != 1 {
			return
		}
		recv := receiverTypeName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		kind, name = "method", recv+"."+name
	}
	report(d.Pos(), kind, name)
}

// checkGen flags undocumented exported types, constants and variables.
// A doc comment on the enclosing const/var/type block covers every
// spec inside it, and a trailing line comment documents a value spec,
// matching how godoc renders grouped declarations.
func (docCommentsRule) checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || d.Doc != nil || s.Comment != nil {
				continue
			}
			kind := "variable"
			if d.Tok == token.CONST {
				kind = "constant"
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}

// receiverTypeName unwraps a method receiver type expression down to
// its type name (handling pointers and generic instantiations).
func receiverTypeName(expr ast.Expr) string {
	for {
		switch t := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return t.Name
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		default:
			return ""
		}
	}
}
