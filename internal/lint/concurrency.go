// Shared semantic machinery for the flow-aware concurrency rules:
// lock identity resolution (a sync.Mutex/RWMutex field or variable,
// keyed by its go/types object so every instance of a type's lock
// field maps to one node), a may-hold dataflow over the CFG, channel
// object resolution with make-site and close-site facts, and the
// cancellation-case classifier the goroutine and channel rules share.
//
// The analysis is computed once per package and cached on the Package,
// so the three rules that consume it don't re-run the CFG and call
// graph construction three times.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// concInfo is the per-package concurrency analysis the flow-aware
// rules share.
type concInfo struct {
	graph *CallGraph
	// closes marks channel objects the package calls close() on.
	closes map[types.Object]bool
	// makes records, per channel object, whether every observed
	// make(chan ...) site is buffered.
	makes map[types.Object]*makeFacts
	// cfgs caches one CFG per analyzed body.
	cfgs map[*ast.BlockStmt]*CFG
	// held caches, per analyzed body, the may-hold lock sets at each
	// interesting node.
	held map[*ast.BlockStmt]map[ast.Node][]lockAcq
	// acquires lists, per declared function, the lock objects it
	// acquires directly (Lock or RLock).
	acquires map[*types.Func][]types.Object
	// lockedCalls lists every static call made while at least one lock
	// may be held.
	lockedCalls []lockedCall
}

// makeFacts aggregates the make(chan ...) sites observed for one
// channel object.
type makeFacts struct {
	buffered   int
	unbuffered int
}

// lockAcq is one lock possibly held at a program point: the lock's
// object plus where it was acquired.
type lockAcq struct {
	obj types.Object
	pos token.Pos
}

// lockedCall is a static call made while a lock may be held.
type lockedCall struct {
	caller *types.Func
	callee *types.Func
	held   []lockAcq
	pos    token.Pos
}

// concurrency returns the package's cached concurrency analysis,
// computing it on first use.
func (p *Package) concurrency() *concInfo {
	if p.conc != nil {
		return p.conc
	}
	ci := &concInfo{
		graph:    NewCallGraph(p),
		closes:   map[types.Object]bool{},
		makes:    map[types.Object]*makeFacts{},
		cfgs:     map[*ast.BlockStmt]*CFG{},
		held:     map[*ast.BlockStmt]map[ast.Node][]lockAcq{},
		acquires: map[*types.Func][]types.Object{},
	}
	ci.collectChannelFacts(p)
	for _, node := range ci.graph.Nodes {
		ci.analyzeLocks(p, node)
	}
	sort.Slice(ci.lockedCalls, func(i, j int) bool { return ci.lockedCalls[i].pos < ci.lockedCalls[j].pos })
	p.conc = ci
	return ci
}

// cfgFor returns the cached CFG for a body, building it on first use.
func (ci *concInfo) cfgFor(body *ast.BlockStmt) *CFG {
	if c := ci.cfgs[body]; c != nil {
		return c
	}
	c := BuildCFG(body)
	ci.cfgs[body] = c
	return c
}

// collectChannelFacts records close() targets and make(chan) sites for
// every resolvable channel object in the package, including inside
// function literals and composite literals.
func (ci *concInfo) collectChannelFacts(p *Package) {
	p.inspect(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if isBuiltinUse(p, id) { // the builtin, not a shadowing decl
					if obj := p.chanObject(n.Args[0]); obj != nil {
						ci.closes[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			// ch := make(chan T[, n]) and ch = make(chan T[, n])
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				buffered, ok := makeChanExpr(p, rhs)
				if !ok {
					continue
				}
				if obj := p.chanObject(n.Lhs[i]); obj != nil {
					ci.recordMake(obj, buffered)
				}
			}
		case *ast.CompositeLit:
			// Struct{ch: make(chan T, n)}: the key identifier resolves to
			// the field object.
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				buffered, ok := makeChanExpr(p, kv.Value)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					if obj := p.Info.Uses[key]; obj != nil {
						ci.recordMake(obj, buffered)
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if i >= len(n.Names) {
					break
				}
				buffered, ok := makeChanExpr(p, v)
				if !ok {
					continue
				}
				if obj := p.Info.Defs[n.Names[i]]; obj != nil {
					ci.recordMake(obj, buffered)
				}
			}
		}
		return true
	})
}

// recordMake tallies one make site for a channel object.
func (ci *concInfo) recordMake(obj types.Object, buffered bool) {
	f := ci.makes[obj]
	if f == nil {
		f = &makeFacts{}
		ci.makes[obj] = f
	}
	if buffered {
		f.buffered++
	} else {
		f.unbuffered++
	}
}

// makeChanExpr reports whether e is a make(chan ...) call and whether
// it has a capacity argument.
func makeChanExpr(p *Package, e ast.Expr) (buffered, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false, false
	}
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent || id.Name != "make" || !isBuiltinUse(p, id) || len(call.Args) == 0 {
		return false, false
	}
	if tv, found := p.Info.Types[call.Args[0]]; found {
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return false, false
		}
	} else {
		return false, false
	}
	return len(call.Args) >= 2, true
}

// isBuiltinUse reports whether id resolves to a predeclared builtin
// (go/types records builtins in Uses as *types.Builtin; any other
// object means a shadowing declaration).
func isBuiltinUse(p *Package, id *ast.Ident) bool {
	obj := p.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// bufferedProof reports whether every observed make site for the
// channel object is buffered (and at least one was observed).
func (ci *concInfo) bufferedProof(obj types.Object) bool {
	f := ci.makes[obj]
	return f != nil && f.unbuffered == 0 && f.buffered > 0
}

// chanObject resolves a channel-valued expression to the variable or
// field object that names it: `ch` -> var ch, `w.ch` -> field ch.
// Returns nil for unresolvable shapes (function results, index
// expressions over maps, ...).
func (p *Package) chanObject(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return obj
		}
		return p.Info.Defs[e]
	case *ast.SelectorExpr:
		if obj := p.Info.Uses[e.Sel]; obj != nil {
			return obj
		}
	}
	return nil
}

// --- lock identity and may-hold dataflow ----------------------------------

// lockMethod resolves a call to (*sync.Mutex)/(*sync.RWMutex)
// Lock/RLock/Unlock/RUnlock. delta is +1 for acquire, -1 for release.
// obj is the lock variable or field's object (nil when the receiver is
// unresolvable, e.g. a function result).
func lockMethod(p *Package, call *ast.CallExpr) (obj types.Object, delta int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, 0, false
	}
	fn, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, 0, false
	}
	m, found := mutexMethods[fn.FullName()]
	if !found {
		return nil, 0, false
	}
	return p.chanObject(sel.X), m.delta, true
}

// lockName renders a lock object for diagnostics: "Type.field" for a
// struct field, "var name" for a variable.
func lockName(obj types.Object) string {
	if obj == nil {
		return "a mutex"
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Walk the package scope for the named type owning the field so
		// the message reads "partition.mu" instead of bare "mu".
		if v.Pkg() != nil {
			scope := v.Pkg().Scope()
			for _, name := range scope.Names() {
				tn, isType := scope.Lookup(name).(*types.TypeName)
				if !isType {
					continue
				}
				named, isNamed := tn.Type().(*types.Named)
				if !isNamed {
					continue
				}
				st, isStruct := named.Underlying().(*types.Struct)
				if !isStruct {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i) == v {
						return tn.Name() + "." + v.Name()
					}
				}
			}
		}
		return v.Name()
	}
	return obj.Name()
}

// analyzeLocks runs the may-hold dataflow over one function's CFG and
// records: the held set at every call/send/receive/range node, the
// locks the function acquires, and the calls it makes under a lock.
func (ci *concInfo) analyzeLocks(p *Package, node *FuncNode) {
	body := node.Decl.Body
	heldAt := ci.runLockFlow(p, ci.cfgFor(body))
	ci.held[body] = heldAt

	// Summarize for the call graph: direct acquisitions and calls made
	// while holding something.
	seenAcq := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, delta, isLock := lockMethod(p, call); isLock && delta > 0 && obj != nil && !seenAcq[obj] {
			seenAcq[obj] = true
			ci.acquires[node.Fn] = append(ci.acquires[node.Fn], obj)
		}
		return true
	})
	for _, cs := range node.Calls {
		if held := heldAt[cs.Call]; len(held) > 0 {
			ci.lockedCalls = append(ci.lockedCalls, lockedCall{
				caller: node.Fn, callee: cs.Callee, held: held, pos: cs.Call.Pos(),
			})
		}
	}
}

// transfer walks one block node in AST order, recording the held set
// before every call, send, receive, and range, and applying
// lock/unlock effects as they execute. Nested function literals are
// skipped (their bodies run at another time); deferred unlocks do not
// release mid-body (the lock stays held until exit).
func (ci *concInfo) transfer(p *Package, n ast.Node, state map[types.Object]token.Pos, heldAt map[ast.Node][]lockAcq) {
	if d, isDefer := n.(*ast.DeferStmt); isDefer {
		// The deferred call itself runs at exit; only record the held
		// set for a deferred lock-method call's arguments evaluation —
		// cheap approximation: skip entirely.
		_ = d
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			// The head block carries the whole select node, but its comm
			// ops and case bodies execute in their own CFG blocks.
			return false
		case *ast.CallExpr:
			heldAt[m] = snapshotLocks(state)
			// Arguments (possibly containing calls) were visited before
			// this returns; effects apply after recording.
			if obj, delta, isLock := lockMethod(p, m); isLock {
				if obj == nil {
					return true
				}
				if delta > 0 {
					state[obj] = m.Pos()
				} else {
					delete(state, obj)
				}
			}
		case *ast.SendStmt:
			heldAt[m] = snapshotLocks(state)
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				heldAt[m] = snapshotLocks(state)
			}
		case *ast.RangeStmt:
			heldAt[m] = snapshotLocks(state)
			// Only the range expression belongs to this node's block;
			// the body has its own blocks.
			ast.Inspect(m.X, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					heldAt[call] = snapshotLocks(state)
				}
				return true
			})
			return false
		}
		return true
	})
}

// snapshotLocks freezes the current held set, sorted for determinism.
func snapshotLocks(state map[types.Object]token.Pos) []lockAcq {
	if len(state) == 0 {
		return nil
	}
	out := make([]lockAcq, 0, len(state))
	for obj, pos := range state {
		out = append(out, lockAcq{obj: obj, pos: pos})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return lockName(out[i].obj) < lockName(out[j].obj)
	})
	return out
}

// copyLockState clones a block-entry state.
func copyLockState(s map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeLockState unions state into block b's entry state, reporting
// whether anything changed (the fixpoint trigger).
func mergeLockState(in map[*Block]map[types.Object]token.Pos, b *Block, state map[types.Object]token.Pos) bool {
	have := in[b]
	if have == nil {
		in[b] = copyLockState(state)
		return true
	}
	changed := false
	for k, v := range state {
		if _, ok := have[k]; !ok {
			have[k] = v
			changed = true
		}
	}
	return changed
}

// heldFor returns the may-held locks recorded for a node inside body,
// running the lock analysis for function-literal bodies on demand.
func (ci *concInfo) heldFor(p *Package, body *ast.BlockStmt, n ast.Node) []lockAcq {
	m, ok := ci.held[body]
	if !ok {
		// Function literals aren't call-graph nodes; analyze on demand.
		m = ci.runLockFlow(p, ci.cfgFor(body))
		ci.held[body] = m
	}
	return m[n]
}

// runLockFlow is the forward may-hold fixpoint over one CFG: block
// entry states merge by union, and every interesting node gets its
// held-before snapshot.
func (ci *concInfo) runLockFlow(p *Package, cfg *CFG) map[ast.Node][]lockAcq {
	heldAt := map[ast.Node][]lockAcq{}
	in := map[*Block]map[types.Object]token.Pos{}
	in[cfg.Entry] = map[types.Object]token.Pos{}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		state := copyLockState(in[b])
		for _, n := range b.Nodes {
			ci.transfer(p, n, state, heldAt)
		}
		for _, s := range b.Succs {
			if mergeLockState(in, s, state) {
				work = append(work, s)
			}
		}
	}
	return heldAt
}

// acqClosure returns every lock acquired by fn or its in-package
// transitive callees.
func (ci *concInfo) acqClosure(fn *types.Func) []types.Object {
	seen := map[types.Object]bool{}
	var out []types.Object
	add := func(f *types.Func) {
		for _, obj := range ci.acquires[f] {
			if !seen[obj] {
				seen[obj] = true
				out = append(out, obj)
			}
		}
	}
	add(fn)
	for callee := range ci.graph.Reach(fn) {
		add(callee)
	}
	sort.Slice(out, func(i, j int) bool { return lockName(out[i]) < lockName(out[j]) })
	return out
}

// lockedReach returns, for each in-package function, an example locked
// call site from which it is reachable (the caller already holds a
// lock). Used to escalate channel findings that sit on a path under a
// mutex.
func (ci *concInfo) lockedReach() map[*types.Func]lockedCall {
	out := map[*types.Func]lockedCall{}
	for _, lc := range ci.lockedCalls {
		if _, seen := out[lc.callee]; !seen {
			out[lc.callee] = lc
		}
		for f := range ci.graph.Reach(lc.callee) {
			if _, seen := out[f]; !seen {
				out[f] = lc
			}
		}
	}
	return out
}

// --- cancellation classification ------------------------------------------

// doneChanNames matches channel identifiers that conventionally signal
// shutdown; a select case receiving from one counts as a cancellation
// case.
func isDoneChanName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range []string{"done", "stop", "quit", "close", "closing", "shutdown", "cancel", "exit"} {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// isCtxDoneCall reports whether e is a call to context.Context.Done.
func isCtxDoneCall(p *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := p.calleeFunc(call)
	return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// isTimeChan reports whether e produces a time-bounded channel:
// time.After(...), time.Tick(...), or the C field of a Timer/Ticker.
func isTimeChan(p *Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := p.calleeFunc(e)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
			(fn.Name() == "After" || fn.Name() == "Tick")
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		if obj, ok := p.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Path() == "time"
		}
	}
	return false
}

// isCancellationRecv reports whether a receive operand is a
// cancellation signal: ctx.Done(), a done-named channel, or a
// time-bounded channel.
func isCancellationRecv(p *Package, e ast.Expr) bool {
	if isCtxDoneCall(p, e) || isTimeChan(p, e) {
		return true
	}
	if obj := p.chanObject(e); obj != nil && isDoneChanName(obj.Name()) {
		return true
	}
	return false
}

// selectHasEscape reports whether a select statement has a default
// case or a cancellation case — either way, the select cannot block
// forever waiting on unready work channels alone.
func selectHasEscape(p *Package, s *ast.SelectStmt) bool {
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default case
		}
		if recvOperand := commRecvOperand(cc.Comm); recvOperand != nil && isCancellationRecv(p, recvOperand) {
			return true
		}
	}
	return false
}

// commRecvOperand extracts the channel expression of a receive comm
// clause (`<-ch`, `v := <-ch`, `v, ok := <-ch`), or nil for sends.
func commRecvOperand(comm ast.Stmt) ast.Expr {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(expr).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}
