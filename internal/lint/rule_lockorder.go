// The lock-order rule: derives a per-package lock-acquisition graph —
// an edge A -> B whenever lock B may be acquired while A is held,
// either in the same function (via the CFG may-hold dataflow) or
// through a call made under A that reaches a function acquiring B (via
// the intra-package call graph) — and reports every cycle as a
// potential deadlock. Locks are identified by the go/types object of
// the mutex variable or field, so every instance of `partition.mu`
// maps to one node; the analysis deliberately conflates instances
// (lock-order bugs between two instances of the same field are the
// classic shard-deadlock, but ordered multi-instance locking is rare
// enough here that self-edges are excluded to keep the rule quiet).

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockEdge is one observed "B acquired while A held" fact.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
	// via describes a call-graph edge ("via call to flush"); empty for
	// a same-function acquisition.
	via string
}

type lockOrderRule struct{}

func (lockOrderRule) Name() string { return "lock-order" }

func (lockOrderRule) Doc() string {
	return "the per-package lock-acquisition graph (including acquisitions reached through calls) must be cycle-free"
}

func (r lockOrderRule) Check(p *Package) []Finding {
	ci := p.concurrency()

	// Force the lock analysis for function-literal bodies too: they
	// are not call-graph nodes, but their critical sections order locks
	// all the same.
	p.inspect(func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ci.heldFor(p, lit.Body, nil)
		}
		return true
	})

	// Collect edges: first same-function (held set at each acquire),
	// then cross-function (calls made under a lock, closed over the
	// call graph).
	edges := map[[2]types.Object]lockEdge{}
	addEdge := func(e lockEdge) {
		key := [2]types.Object{e.from, e.to}
		if have, ok := edges[key]; !ok || e.pos < have.pos {
			edges[key] = e
		}
	}
	for _, heldAt := range ci.held {
		for n, held := range heldAt {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				continue
			}
			obj, delta, isLock := lockMethod(p, call)
			if !isLock || delta <= 0 || obj == nil {
				continue
			}
			for _, a := range held {
				if a.obj != obj {
					addEdge(lockEdge{from: a.obj, to: obj, pos: call.Pos()})
				}
			}
		}
	}
	for _, lc := range ci.lockedCalls {
		for _, b := range ci.acqClosure(lc.callee) {
			for _, a := range lc.held {
				if a.obj != b {
					addEdge(lockEdge{
						from: a.obj, to: b, pos: lc.pos,
						via: fmt.Sprintf("via call to %s", lc.callee.Name()),
					})
				}
			}
		}
	}
	if len(edges) == 0 {
		return nil
	}

	// Cycle detection over the acquisition graph.
	adj := map[types.Object][]types.Object{}
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	sccs := stronglyConnected(adj)

	var out []Finding
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[types.Object]bool{}
		for _, o := range scc {
			inSCC[o] = true
		}
		// Gather the edges internal to the cycle, ordered by position.
		var cyc []lockEdge
		for key, e := range edges {
			if inSCC[key[0]] && inSCC[key[1]] {
				cyc = append(cyc, e)
			}
		}
		sort.Slice(cyc, func(i, j int) bool { return cyc[i].pos < cyc[j].pos })
		var parts []string
		for _, e := range cyc {
			pos := p.Fset.Position(e.pos)
			loc := fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line)
			if e.via != "" {
				loc = e.via + " at " + loc
			} else {
				loc = "at " + loc
			}
			parts = append(parts, fmt.Sprintf("%s -> %s (%s)", lockName(e.from), lockName(e.to), loc))
		}
		names := make([]string, len(scc))
		for i, o := range scc {
			names[i] = lockName(o)
		}
		sort.Strings(names)
		out = append(out, Finding{
			Rule:     r.Name(),
			Severity: SeverityError,
			Pos:      p.Fset.Position(cyc[0].pos),
			Message: fmt.Sprintf("locks %s are acquired in conflicting orders — %s — two goroutines interleaving these paths can deadlock",
				strings.Join(names, ", "), strings.Join(parts, "; ")),
		})
	}
	return out
}

// shortFile trims a path to its final element for in-message
// positions (the finding's own Pos carries the full path).
func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// stronglyConnected returns the strongly connected components of the
// lock graph (Tarjan), deterministically ordered by lock name.
func stronglyConnected(adj map[types.Object][]types.Object) [][]types.Object {
	// Deterministic node order.
	nodes := make([]types.Object, 0, len(adj))
	seen := map[types.Object]bool{}
	addNode := func(o types.Object) {
		if !seen[o] {
			seen[o] = true
			nodes = append(nodes, o)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return lockName(nodes[i]) < lockName(nodes[j]) })
	for _, tos := range adj {
		sort.Slice(tos, func(i, j int) bool { return lockName(tos[i]) < lockName(tos[j]) })
	}

	index := map[types.Object]int{}
	low := map[types.Object]int{}
	onStack := map[types.Object]bool{}
	var stack []types.Object
	var sccs [][]types.Object
	next := 0

	var strong func(v types.Object)
	strong = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, visited := index[w]; !visited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, visited := index[v]; !visited {
			strong(v)
		}
	}
	return sccs
}
