package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{
			Rule:     "determinism",
			Severity: SeverityError,
			Pos:      token.Position{Filename: "a.go", Line: 10, Column: 2},
			Message:  "call to time.Now",
		},
		{
			Rule:     "doc-comments",
			Severity: SeverityWarning,
			Pos:      token.Position{Filename: "b.go", Line: 3, Column: 1},
			Message:  "exported function F has no doc comment",
		},
	}
}

func TestWriteTextFormat(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, sampleFindings()); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want := "a.go:10:2: error: call to time.Now [determinism]\n" +
		"b.go:3:1: warning: exported function F has no doc comment [doc-comments]\n"
	if b.String() != want {
		t.Errorf("WriteText output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestWriteJSONSchema locks the wire shape of -json output: an array
// of objects with exactly the documented keys and values.
func TestWriteJSONSchema(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, sampleFindings()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var raw []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &raw); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(raw) != 2 {
		t.Fatalf("decoded %d objects, want 2", len(raw))
	}
	wantKeys := []string{"rule", "severity", "file", "line", "col", "message"}
	for i, obj := range raw {
		if len(obj) != len(wantKeys) {
			t.Errorf("object %d has %d keys, want %d: %v", i, len(obj), len(wantKeys), obj)
		}
		for _, k := range wantKeys {
			if _, ok := obj[k]; !ok {
				t.Errorf("object %d missing key %q", i, k)
			}
		}
	}
	if raw[0]["rule"] != "determinism" || raw[0]["severity"] != "error" ||
		raw[0]["file"] != "a.go" || raw[0]["line"] != float64(10) ||
		raw[0]["col"] != float64(2) || raw[0]["message"] != "call to time.Now" {
		t.Errorf("object 0 fields wrong: %v", raw[0])
	}
	if raw[1]["severity"] != "warning" {
		t.Errorf("object 1 severity = %v, want warning", raw[1]["severity"])
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := strings.TrimSpace(b.String()); got != "[]" {
		t.Errorf("empty findings encode as %q, want []", got)
	}
}
