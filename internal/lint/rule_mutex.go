// The mutex-discipline rule: the concurrent index/gather/serve layers
// follow one locking idiom — locks live behind pointer receivers and a
// critical section either defers its unlock or provably releases
// before every return. Two checks enforce it: no value receivers on
// types holding a sync.Mutex/RWMutex (the receiver copy duplicates the
// lock), and no return while a lock is held without a deferred unlock
// (the linear-flow approximation catches the common leak shapes).

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// mutexMethods maps the fully qualified sync lock/unlock methods to
// the lock class ("w" or "r") and balance delta.
var mutexMethods = map[string]struct {
	class string
	delta int
}{
	"(*sync.Mutex).Lock":      {"w", +1},
	"(*sync.Mutex).Unlock":    {"w", -1},
	"(*sync.RWMutex).Lock":    {"w", +1},
	"(*sync.RWMutex).Unlock":  {"w", -1},
	"(*sync.RWMutex).RLock":   {"r", +1},
	"(*sync.RWMutex).RUnlock": {"r", -1},
}

type mutexDisciplineRule struct{}

func (mutexDisciplineRule) Name() string { return "mutex-discipline" }

func (mutexDisciplineRule) Doc() string {
	return "no value receivers on mutex-holding types; no return while a lock is held without a deferred unlock"
}

func (r mutexDisciplineRule) Check(p *Package) []Finding {
	var out []Finding
	add := func(pos token.Position, format string, args ...any) {
		out = append(out, Finding{
			Rule:     r.Name(),
			Severity: SeverityError,
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			r.checkValueReceiver(p, fd, add)
			if fd.Body != nil {
				r.checkLockFlow(p, fd.Body, add)
			}
		}
	}
	// Function literals get their own independent flow analysis.
	p.inspect(func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			r.checkLockFlow(p, lit.Body, add)
		}
		return true
	})
	return out
}

// checkValueReceiver flags methods whose value receiver copies a
// mutex held (directly or embedded) in the receiver struct.
func (r mutexDisciplineRule) checkValueReceiver(p *Package, fd *ast.FuncDecl, add func(token.Position, string, ...any)) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return
	}
	recvType := fd.Recv.List[0].Type
	if _, isPtr := ast.Unparen(recvType).(*ast.StarExpr); isPtr {
		return
	}
	tv, ok := p.Info.Types[recvType]
	if !ok || tv.Type == nil {
		return
	}
	lockField := mutexFieldName(tv.Type)
	if lockField == "" {
		return
	}
	add(p.pos(fd), "method %s has a value receiver but the receiver type holds %s; the lock is copied on every call — use a pointer receiver", fd.Name.Name, lockField)
}

// mutexFieldName returns a description of the first sync.Mutex/RWMutex
// field found in t's underlying struct, or "" when there is none.
func mutexFieldName(t types.Type) string {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		named, ok := f.Type().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Pkg().Path() == "sync" {
			if name := named.Obj().Name(); name == "Mutex" || name == "RWMutex" {
				return fmt.Sprintf("field %s sync.%s", f.Name(), name)
			}
		}
	}
	return ""
}

// lockEvent is one lock-relevant point in a function body, ordered by
// source position.
type lockEvent struct {
	pos   token.Pos
	key   string // rendered receiver expression + lock class
	delta int    // +1 lock, -1 unlock, 0 return
}

// checkLockFlow walks one function body (excluding nested function
// literals) and flags returns that occur while a lock is held with no
// deferred unlock in scope. The analysis is linear in source order — a
// deliberate approximation that matches the repo's straight-line
// critical sections; genuinely branchy lock handoffs can suppress with
// a reason.
func (r mutexDisciplineRule) checkLockFlow(p *Package, body *ast.BlockStmt, add func(token.Position, string, ...any)) {
	var events []lockEvent
	deferredUnlock := map[string]bool{}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if key, delta, ok := r.lockCall(p, n.Call); ok && delta < 0 {
				deferredUnlock[key] = true
			}
			// A deferred closure that unlocks (defer func() { ...;
			// mu.Unlock() }()) also counts as defer discipline.
			if lit, isLit := ast.Unparen(n.Call.Fun).(*ast.FuncLit); isLit {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, isCall := m.(*ast.CallExpr); isCall {
						if key, delta, ok := r.lockCall(p, call); ok && delta < 0 {
							deferredUnlock[key] = true
						}
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			if key, delta, ok := r.lockCall(p, n); ok {
				events = append(events, lockEvent{pos: n.Pos(), key: key, delta: delta})
			}
		case *ast.ReturnStmt:
			events = append(events, lockEvent{pos: n.Pos(), key: "", delta: 0})
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		return walk(n)
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	balance := map[string]int{}
	for _, ev := range events {
		if ev.delta != 0 {
			balance[ev.key] += ev.delta
			continue
		}
		for key, b := range balance {
			if b > 0 && !deferredUnlock[key] {
				add(p.Fset.Position(ev.pos), "return while %s is locked and no deferred unlock is in scope; this path leaks the lock", keyExpr(key))
			}
		}
	}
}

// lockCall resolves a call to a sync mutex lock/unlock method,
// returning the balance key (receiver expression + class) and delta.
func (r mutexDisciplineRule) lockCall(p *Package, call *ast.CallExpr) (key string, delta int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", 0, false
	}
	m, found := mutexMethods[fn.FullName()]
	if !found {
		return "", 0, false
	}
	return types.ExprString(sel.X) + "\x00" + m.class, m.delta, true
}

// keyExpr renders a balance key back to its receiver expression for
// messages.
func keyExpr(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			if key[i+1:] == "r" {
				return key[:i] + " (read lock)"
			}
			return key[:i]
		}
	}
	return key
}
