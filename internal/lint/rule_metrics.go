// The metric-discipline rule: every series registered against an
// obs.Registry must carry a compile-time-constant name matching the
// OPERATIONS.md catalog's etap_ naming scheme, follow the Prometheus
// suffix conventions per kind, and be registered outside loops (the
// registry deduplicates, but per-iteration registration hides the
// series from the catalog and burns lock acquisitions on hot paths).

package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// metricNameRe is the catalog naming scheme: etap_ prefix, lower-case
// snake case.
var metricNameRe = regexp.MustCompile(`^etap_[a-z][a-z0-9_]*$`)

// registryMethods maps obs.Registry registration methods to the metric
// kind they create.
var registryMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"GaugeFunc": "gauge",
	"Histogram": "histogram",
}

type metricDisciplineRule struct{}

func (metricDisciplineRule) Name() string { return "metric-discipline" }

func (metricDisciplineRule) Doc() string {
	return "obs series names must be compile-time constants matching ^etap_[a-z0-9_]+$, with kind-correct suffixes, registered outside loops"
}

func (r metricDisciplineRule) Check(p *Package) []Finding {
	var out []Finding
	add := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Rule:     r.Name(),
			Severity: SeverityError,
			Pos:      p.pos(n),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	p.inspect(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		kind, ok := isRegistryMethod(fn)
		if !ok || len(call.Args) == 0 {
			return true
		}
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				add(call, "metric registered inside a loop; register once at package level and reuse the handle")
			}
		}
		nameArg := call.Args[0]
		tv, ok := p.Info.Types[nameArg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			add(nameArg, "series name must be a compile-time constant string so the OPERATIONS.md catalog can be checked against the source")
			return true
		}
		name := constant.StringVal(tv.Value)
		if !metricNameRe.MatchString(name) {
			add(nameArg, "series name %q does not match the catalog naming scheme ^etap_[a-z][a-z0-9_]*$", name)
			return true
		}
		hasTotal := len(name) > len("_total") && name[len(name)-len("_total"):] == "_total"
		if kind == "counter" && !hasTotal {
			add(nameArg, "counter %q must end in _total (Prometheus counter convention)", name)
		}
		if kind != "counter" && hasTotal {
			add(nameArg, "%s %q must not end in _total; that suffix is reserved for counters", kind, name)
		}
		return true
	})
	return out
}

// isRegistryMethod reports whether fn is a metric-registration method
// on the obs package's Registry, and which kind it registers.
func isRegistryMethod(fn *types.Func) (kind string, ok bool) {
	if fn == nil || fn.Pkg() == nil || !pathHasSegment(fn.Pkg().Path(), "internal/obs") {
		return "", false
	}
	sig, sigOK := fn.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil {
		return "", false
	}
	kind, ok = registryMethods[fn.Name()]
	return kind, ok
}
