package lint

import (
	"regexp"
	"strconv"
	"sync"
	"testing"
)

// The golden harness: each testdata package is loaded under a virtual
// import path (so path-scoped rules apply) and run against one rule.
// Expected findings are declared in the source as trailing
// `// want "regexp"` comments on the offending line, or as
// `// want:LINE "regexp"` anywhere in the file for declarations whose
// trailing-comment position would change the rule's behavior (value
// specs treat trailing comments as documentation).

// wantRe matches a want comment: an optional absolute line, then the
// quoted message pattern.
var wantRe = regexp.MustCompile(`^//\s*want(?::(\d+))?\s+"(.*)"$`)

// expectation is one parsed want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// sharedLoader returns one Loader for the whole test binary so the
// source importer's dependency cache is reused across testdata loads.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loaderVal, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// loadGolden loads one testdata package under a virtual import path.
func loadGolden(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	p, err := sharedLoader(t).LoadAs(dir, importPath)
	if err != nil {
		t.Fatalf("LoadAs(%s): %v", dir, err)
	}
	return p
}

// collectWants parses every want comment in the package.
func collectWants(t *testing.T, p *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range p.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					n, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s: bad want line %q", pos, m[1])
					}
					line = n
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, m[2], err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: line, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("package %s declares no want comments", p.Path)
	}
	return wants
}

// checkGolden runs the rule over the package and diffs findings
// against the want comments.
func checkGolden(t *testing.T, p *Package, ruleName string, severity Severity) {
	t.Helper()
	rules, err := SelectRules(ruleName)
	if err != nil {
		t.Fatalf("SelectRules(%s): %v", ruleName, err)
	}
	findings := Run([]*Package{p}, rules)
	wants := collectWants(t, p)
	for _, f := range findings {
		if f.Rule != ruleName {
			t.Errorf("finding from unexpected rule %s at %s: %s", f.Rule, f.Pos, f.Message)
			continue
		}
		if f.Severity != severity {
			t.Errorf("%s: severity %s, want %s", f.Pos, f.Severity, severity)
		}
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s [%s]", f.Pos, f.Message, f.Rule)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing finding at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

func TestGoldenDeterminism(t *testing.T) {
	p := loadGolden(t, "testdata/src/determinism/pkg", "etap/internal/corpus/goldenpkg")
	checkGolden(t, p, "determinism", SeverityError)
}

func TestGoldenMetricDiscipline(t *testing.T) {
	p := loadGolden(t, "testdata/src/metrics/pkg", "etap/internal/goldenmetrics")
	checkGolden(t, p, "metric-discipline", SeverityError)
}

func TestGoldenErrorSwallowing(t *testing.T) {
	p := loadGolden(t, "testdata/src/errors/pkg", "etap/internal/goldenerrors")
	checkGolden(t, p, "error-swallowing", SeverityError)
}

func TestGoldenContextPlumbing(t *testing.T) {
	p := loadGolden(t, "testdata/src/contextrule/pkg", "etap/internal/goldenctx")
	checkGolden(t, p, "context-plumbing", SeverityError)
}

func TestGoldenMutexDiscipline(t *testing.T) {
	p := loadGolden(t, "testdata/src/mutex/pkg", "etap/goldenmutex")
	checkGolden(t, p, "mutex-discipline", SeverityError)
}

func TestGoldenDocComments(t *testing.T) {
	p := loadGolden(t, "testdata/src/doccomments/pkg", "etap/goldendoc")
	checkGolden(t, p, "doc-comments", SeverityWarning)
}

func TestGoldenGoroutineLifecycle(t *testing.T) {
	p := loadGolden(t, "testdata/src/goroutine/pkg", "etap/internal/goldengoroutine")
	checkGolden(t, p, "goroutine-lifecycle", SeverityError)
}

func TestGoldenLockOrder(t *testing.T) {
	p := loadGolden(t, "testdata/src/lockorder/pkg", "etap/goldenlockorder")
	checkGolden(t, p, "lock-order", SeverityError)
}

func TestGoldenChannelDiscipline(t *testing.T) {
	p := loadGolden(t, "testdata/src/channel/pkg", "etap/internal/goldenchan")
	checkGolden(t, p, "channel-discipline", SeverityWarning)
}
