// The built-in rule registry: the repo-specific rules cmd/etaplint
// ships, in report order — six syntactic rules plus the three
// flow-aware concurrency rules built on the CFG/call-graph layer.
// LINTING.md documents each with rationale, example violations, and
// suppression guidance.

package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Rules returns the full built-in rule set.
func Rules() []Rule {
	return []Rule{
		determinismRule{},
		metricDisciplineRule{},
		errorSwallowingRule{},
		contextPlumbingRule{},
		mutexDisciplineRule{},
		goroutineLifecycleRule{},
		lockOrderRule{},
		channelDisciplineRule{},
		docCommentsRule{},
	}
}

// RuleNames returns the built-in rule IDs, sorted.
func RuleNames() []string {
	var names []string
	for _, r := range Rules() {
		names = append(names, r.Name())
	}
	sort.Strings(names)
	return names
}

// SelectRules resolves a comma-separated rule list ("" or "all" means
// every rule) against the registry, erroring on unknown IDs.
func SelectRules(spec string) ([]Rule, error) {
	all := Rules()
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return all, nil
	}
	byName := map[string]Rule{}
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []Rule
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", name, strings.Join(RuleNames(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty rule selection %q", spec)
	}
	return out, nil
}
