// Package loading: pattern expansion over the module tree, parsing
// with comments, and type checking through the stdlib source importer
// (go/types + go/importer), which resolves both standard-library and
// module-internal imports from source — no external tooling needed.

package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks lint targets. One Loader shares a file
// set and an importer across Load calls, so dependencies type-checked
// for one package are reused for the next.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
	// ModRoot is the directory containing go.mod.
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string
}

// NewLoader locates the enclosing module starting from dir (walking
// upward to the go.mod) and returns a Loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		imp:     importer.ForCompiler(fset, "source", nil),
		ModRoot: root,
		ModPath: modPath,
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// Expand resolves package patterns to directories. A trailing "/..."
// walks the prefix directory recursively; other patterns name a single
// directory. Directories named testdata or vendor, and directories
// whose name starts with "." or "_", are skipped during walks — the
// same pruning the go tool applies. Patterns are relative to the
// current working directory.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "." || base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				ok, err := hasGoFiles(path)
				if err != nil {
					return err
				}
				if ok {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: expanding %s: %w", pat, err)
			}
			continue
		}
		ok, err := hasGoFiles(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", pat, err)
		}
		if !ok {
			return nil, fmt.Errorf("lint: %s: no Go files", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && isLintedFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isLintedFile reports whether name is a Go source file the linter
// analyzes. Test files are excluded: they legitimately use wall clocks,
// ad-hoc randomness, and discarded errors, and are not part of the
// shipped pipeline.
func isLintedFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// Load parses and type-checks the package in dir under its real import
// path (module path + directory relative to the module root).
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	importPath := l.ModPath
	if rel != "." {
		importPath = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadAs(dir, importPath)
}

// LoadAs parses and type-checks the package in dir under the given
// import path. Golden tests use it to present testdata packages to
// path-scoped rules as if they lived in the pipeline (e.g. a testdata
// directory loaded as etap/internal/corpus).
func (l *Loader) LoadAs(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isLintedFile(e.Name()) {
			continue
		}
		// Honour build constraints (//go:build lines and _GOOS/_GOARCH
		// suffixes) for the host platform, the way the compiler would —
		// otherwise platform-variant pairs like the segment index's mmap
		// backends type-check as duplicate declarations.
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", e.Name(), err)
		} else if !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", dir, strings.Join(typeErrs, "\n\t"))
	}
	if err != nil {
		// The Error hook above collects every diagnostic, so err should
		// always be reflected in typeErrs — keep this as a backstop.
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, nil
}
