// The error-swallowing rule: internal packages may not discard error
// returns, neither by assigning them to the blank identifier nor by
// calling a fallible function as a bare statement. Writers documented
// to never fail (strings.Builder, bytes.Buffer, the hash interfaces)
// are exempt — including through fmt.Fprint* — so the rule points at
// real losses, not idioms.

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

type errorSwallowingRule struct{}

func (errorSwallowingRule) Name() string { return "error-swallowing" }

func (errorSwallowingRule) Doc() string {
	return "internal packages must not discard error returns via `_ =` or bare calls"
}

func (r errorSwallowingRule) Check(p *Package) []Finding {
	if !pathHasSegment(p.Path, "internal") {
		return nil
	}
	var out []Finding
	add := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Rule:     r.Name(),
			Severity: SeverityError,
			Pos:      p.pos(n),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	p.inspect(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if errIdx := errorResultIndex(p, call); errIdx >= 0 && !neverFails(p, call) {
				add(n, "%s returns an error that is silently discarded; handle it or assign and check it", types.ExprString(call.Fun))
			}
			return true
		case *ast.AssignStmt:
			r.checkAssign(p, n, add)
		}
		return true
	})
	return out
}

// checkAssign flags blank-identifier assignments whose discarded value
// is an error.
func (r errorSwallowingRule) checkAssign(p *Package, as *ast.AssignStmt, add func(ast.Node, string, ...any)) {
	// Multi-value form: a, _ := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		var results *types.Tuple
		if tv, tvOK := p.Info.Types[as.Rhs[0]]; tvOK {
			if tup, tupOK := tv.Type.(*types.Tuple); tupOK {
				results = tup
			}
		}
		if results == nil {
			return
		}
		for i, lhs := range as.Lhs {
			if !isBlank(lhs) || i >= results.Len() {
				continue
			}
			if implementsError(results.At(i).Type()) && !(ok && neverFails(p, call)) {
				add(as, "error result of %s discarded via blank identifier; handle it or propagate it", rhsName(as.Rhs[0]))
			}
		}
		return
	}
	// Pairwise form: _ = f().
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		tv, ok := p.Info.Types[as.Rhs[i]]
		if !ok || tv.Type == nil || !implementsError(tv.Type) {
			continue
		}
		if call, isCall := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); isCall && neverFails(p, call) {
			continue
		}
		add(as, "error value of %s discarded via blank identifier; handle it or propagate it", rhsName(as.Rhs[i]))
	}
}

// rhsName renders a compact name for the discarded expression.
func rhsName(e ast.Expr) string {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return types.ExprString(call.Fun)
	}
	return types.ExprString(e)
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errorResultIndex returns the index of the first error in the call's
// result types, or -1 when the call cannot fail.
func errorResultIndex(p *Package, call *ast.CallExpr) int {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if implementsError(t.At(i).Type()) {
				return i
			}
		}
	default:
		if implementsError(t) {
			return 0
		}
	}
	return -1
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// neverFails reports whether the call's error return is documented to
// always be nil: methods on strings.Builder, bytes.Buffer, and the
// hash.* implementations, plus fmt.Fprint* writing to one of those.
// The receiver is judged by the receiver expression's static type, so
// a Write promoted through an embedded io.Writer (hash.Hash64, say)
// still counts as the never-fail interface it was called on.
func neverFails(p *Package, call *ast.CallExpr) bool {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, tvOK := p.Info.Types[sel.X]; tvOK && tv.Type != nil && isNeverFailWriter(tv.Type) {
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return isNeverFailWriter(sig.Recv().Type())
	}
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Type != nil {
			return isNeverFailWriter(tv.Type)
		}
	}
	return false
}

// isNeverFailWriter reports whether t (possibly behind pointers) is a
// writer documented to never return a non-nil error.
func isNeverFailWriter(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "strings" && name == "Builder":
		return true
	case pkg == "bytes" && name == "Buffer":
		return true
	case pkg == "hash" || strings.HasPrefix(pkg, "hash/"):
		return true
	}
	return false
}
