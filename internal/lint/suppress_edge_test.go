package lint

import (
	"go/token"
	"os"
	"strings"
	"testing"
)

// lineOf returns the 1-based line of the first source line containing
// marker.
func lineOf(t *testing.T, path, marker string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("%s: marker %q not found", path, marker)
	return 0
}

// TestSuppressionEdgeCases pins the line-coverage semantics of the
// directive parser on three awkward shapes: a directive on the first
// line of a file, a directive inside a struct field list, and two
// stacked directives over one statement.
func TestSuppressionEdgeCases(t *testing.T) {
	p := loadGolden(t, "testdata/src/suppress/edge/pkg", "etap/internal/goldensupedge")
	sup, malformed := collectSuppressions(p)
	if len(malformed) != 0 {
		t.Fatalf("malformed directives in edge testdata:\n%s", dump(malformed))
	}
	file := p.Fset.Position(p.Files[0].Pos()).Filename

	at := func(rule string, line int) bool {
		return sup.covers(Finding{Rule: rule, Pos: token.Position{Filename: file, Line: line}})
	}

	// First-line directive: its own comment group on line 1, so it
	// covers line 1 and line 2, and nothing further down — in
	// particular not the package clause or the rest of the file.
	pkgLine := lineOf(t, file, "package goldensupedge")
	if !at("error-swallowing", 1) {
		t.Error("first-line directive does not cover line 1")
	}
	if !at("error-swallowing", 2) {
		t.Error("first-line directive does not cover the line after its group (line 2)")
	}
	if at("error-swallowing", pkgLine) {
		t.Error("first-line directive leaked coverage to the package clause")
	}
	if at("error-swallowing", lineOf(t, file, "func Unsuppressed")+1) {
		t.Error("first-line directive leaked coverage deep into the file")
	}

	// Field-list directive: the directive is the field's doc group, so
	// it covers the field line after it.
	fieldLine := lineOf(t, file, "Fallible func() error")
	if !at("doc-comments", fieldLine) {
		t.Errorf("field-list directive does not cover the field line %d", fieldLine)
	}
	if at("error-swallowing", fieldLine) {
		t.Error("field-list directive covers a rule it does not name")
	}

	// Stacked directives: both rules cover the statement after the
	// group, and each directive still covers its own line.
	stmtLine := lineOf(t, file, "stacked 2") + 1
	if !at("error-swallowing", stmtLine) {
		t.Errorf("stacked directive 1 does not cover statement line %d", stmtLine)
	}
	if !at("context-plumbing", stmtLine) {
		t.Errorf("stacked directive 2 does not cover statement line %d", stmtLine)
	}
	if at("determinism", stmtLine) {
		t.Error("stacked directives cover a rule neither names")
	}

	// End to end: with the directives honored, exactly one
	// error-swallowing finding (Unsuppressed's) survives.
	rules, err := SelectRules("error-swallowing")
	if err != nil {
		t.Fatalf("SelectRules: %v", err)
	}
	findings := Run([]*Package{p}, rules)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1 (only Unsuppressed):\n%s", len(findings), dump(findings))
	}
	if findings[0].Pos.Line != lineOf(t, file, "func Unsuppressed")+1 {
		t.Errorf("surviving finding at line %d, want Unsuppressed's call", findings[0].Pos.Line)
	}
}
