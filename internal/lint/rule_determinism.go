// The determinism rule: ETAP's training pipeline must be
// bit-deterministic — BM25 golden tests hold across shard counts and
// the seeded fault injector replays exactly — so the packages that
// produce pipeline output may not read wall clocks, draw from the
// shared math/rand source, derive routing from per-process random
// seeds, or let map iteration order leak into ordered output.

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// determinismScope lists the package path segments the rule covers:
// the stages whose output feeds golden tests and replayable runs.
var determinismScope = []string{
	"internal/corpus",
	"internal/web",
	"internal/index",
	"internal/noise",
	"internal/train",
	"internal/rank",
	// The streaming path feeds the same stores as batch extraction, and
	// its idempotency rests on replayable fingerprints — so it answers
	// to the same rules.
	"internal/alert",
	// Tracing decides retention from clocks and a sampling stream; both
	// must be injectable (TracerConfig.Clock/Seed) for replayable tests,
	// so undeclared wall-clock or global-rand reads are findings here.
	"internal/obs",
	// The knowledge base is byte-deterministic by contract (same seed →
	// identical JSONL), and tenant ICP ranking must reproduce across
	// restarts — wall clocks and global rand would silently break both.
	"internal/kb",
	"internal/tenant",
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions backed by the shared process-wide source. Constructing a
// seeded *rand.Rand (rand.New, rand.NewSource) is the sanctioned
// alternative and is not listed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
}

type determinismRule struct{}

func (determinismRule) Name() string { return "determinism" }

func (determinismRule) Doc() string {
	return "pipeline packages must not use wall clocks, global math/rand, per-process hash seeds, or map-order-dependent output"
}

func (r determinismRule) Check(p *Package) []Finding {
	inScope := false
	for _, seg := range determinismScope {
		if pathHasSegment(p.Path, seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var out []Finding
	add := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Rule:     r.Name(),
			Severity: SeverityError,
			Pos:      p.pos(n),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	p.inspect(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := p.calleeFunc(n)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "time", "Now"):
				add(n, "call to time.Now: wall-clock input makes pipeline output time-dependent; thread the time in as data (or suppress for metrics-only timing)")
			case isPkgFunc(fn, "hash/maphash", "MakeSeed"):
				add(n, "maphash.MakeSeed draws a fresh random seed per process; anything routed or ordered by it will not replay across restarts — configure a fixed seed instead")
			case fn.Pkg() != nil && (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2"):
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && globalRandFuncs[fn.Name()] {
					add(n, "global %s.%s draws from the shared process-wide source; thread a seeded *rand.Rand as a parameter instead", fn.Pkg().Name(), fn.Name())
				}
			}
		case *ast.RangeStmt:
			r.checkMapRange(p, n, stack, add)
		}
		return true
	})
	return out
}

// checkMapRange flags map iterations whose body leaks iteration order
// into output: appending to a slice declared outside the loop (unless
// the result is sorted afterwards in the same block), breaking out on
// the first match, or returning a value derived from the iteration
// variables.
func (r determinismRule) checkMapRange(p *Package, rng *ast.RangeStmt, stack []ast.Node, add func(ast.Node, string, ...any)) {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	keyObj, valObj := p.rangeVarObjs(rng)

	for _, app := range r.mapRangeAppends(p, rng, keyObj) {
		if !sortedAfter(p, rng, stack, app.target) {
			add(app.node, "ranging over a map appends to %q in nondeterministic order; sort the result afterwards or iterate sorted keys", types.ExprString(app.target))
		}
	}
	for _, n := range r.orderDependentExits(p, rng, keyObj, valObj) {
		switch n.(type) {
		case *ast.BranchStmt:
			add(n, "break inside a range over a map lets iteration order pick the winning entry; iterate a deterministic order instead")
		case *ast.ReturnStmt:
			add(n, "returning a value derived from map-iteration variables lets iteration order pick the result; iterate a deterministic order instead")
		}
	}
}

// rangeVarObjs resolves the range statement's key and value variables
// to their objects (nil for blank or absent).
func (p *Package) rangeVarObjs(rng *ast.RangeStmt) (key, val types.Object) {
	resolve := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if o := p.Info.Defs[id]; o != nil {
			return o
		}
		return p.Info.Uses[id]
	}
	if rng.Key != nil {
		key = resolve(rng.Key)
	}
	if rng.Value != nil {
		val = resolve(rng.Value)
	}
	return key, val
}

// mapRangeAppend is one `x = append(x, ...)` inside a map range whose
// target x outlives the loop.
type mapRangeAppend struct {
	node   ast.Node
	target ast.Expr
}

// mapRangeAppends finds appends inside the range body that accumulate
// into storage declared outside the loop. Appends into a map entry
// indexed by the range key (m[k] = append(m[k], ...)) are
// order-independent — each key owns its slot — and are skipped.
func (r determinismRule) mapRangeAppends(p *Package, rng *ast.RangeStmt, keyObj types.Object) []mapRangeAppend {
	var out []mapRangeAppend
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "append" {
				continue
			}
			target := call.Args[0]
			if ix, ok := ast.Unparen(target).(*ast.IndexExpr); ok && keyObj != nil && usesObject(p, ix.Index, keyObj) {
				continue
			}
			root := rootIdentObj(p, target)
			if root == nil || (root.Pos() >= rng.Pos() && root.Pos() <= rng.End()) {
				continue // loop-local accumulation dies with the iteration
			}
			out = append(out, mapRangeAppend{node: as, target: target})
		}
		return true
	})
	return out
}

// orderDependentExits finds break statements that terminate the map
// range itself and return statements whose results mention the
// iteration variables.
func (r determinismRule) orderDependentExits(p *Package, rng *ast.RangeStmt, keyObj, valObj types.Object) []ast.Node {
	var out []ast.Node
	// enclosing tracks the statements a break would bind to; the map
	// range is the outermost entry.
	var enclosing []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			enclosing = append(enclosing, n)
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				return walk(m)
			})
			enclosing = enclosing[:len(enclosing)-1]
			return false
		case *ast.FuncLit:
			return false // separate control flow
		case *ast.BranchStmt:
			if n.Tok.String() == "break" && n.Label == nil && len(enclosing) == 0 {
				out = append(out, n)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if (keyObj != nil && usesObject(p, res, keyObj)) || (valObj != nil && usesObject(p, res, valObj)) {
					out = append(out, n)
					break
				}
			}
		}
		return true
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if n == nil || n == rng.Body {
			return true
		}
		return walk(n)
	})
	return out
}

// sortedAfter reports whether, in the block enclosing the range
// statement, a later statement passes the append target to a sort or
// slices call — the collect-then-sort idiom that restores determinism.
func sortedAfter(p *Package, rng *ast.RangeStmt, stack []ast.Node, target ast.Expr) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	targetRoot := rootIdentObj(p, target)
	if targetRoot == nil {
		return false
	}
	for _, stmt := range block.List {
		if stmt.Pos() <= rng.End() {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if usesObject(p, arg, targetRoot) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// rootIdentObj unwraps selectors and index expressions down to the
// expression's root identifier and resolves it to its object.
func rootIdentObj(p *Package, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := p.Info.Uses[t]; o != nil {
				return o
			}
			return p.Info.Defs[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// usesObject reports whether the expression references obj.
func usesObject(p *Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
