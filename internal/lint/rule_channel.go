// The channel-discipline rule: finds sends, receives, selects, and
// range loops in internal/... that can block forever. A blocking op is
// acceptable when the analysis can see its escape hatch:
//
//   - the op is a select case and the select has a default or a
//     cancellation case (ctx.Done(), a done/stop/quit channel, a
//     time-bounded channel),
//   - a send's channel has a buffered-capacity proof (every make site
//     in the package gives it capacity) — unless a mutex is held, where
//     capacity only defers the block,
//   - a send's enclosing declared function spawns goroutine workers
//     that range over the same channel (the worker-pool feeder shape:
//     receivers provably exist for as long as the feed loop runs),
//   - a receive's channel is a cancellation signal itself, or the
//     package provably close()s it (termination by close),
//   - a range loop's channel is close()d somewhere in the package.
//
// Ops that clear none of these are flagged, with the message escalated
// when the CFG's may-hold analysis shows a mutex held at the op — or
// when the call graph shows the op's function is reachable from a call
// made under a lock — because a blocked goroutine holding a lock turns
// one stall into a pile-up.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

type channelDisciplineRule struct{}

func (channelDisciplineRule) Name() string { return "channel-discipline" }

func (channelDisciplineRule) Doc() string {
	return "channel ops in internal/... must have a visible non-blocking escape: cancellation select, buffered proof (sends), or close discipline (receives/range)"
}

func (r channelDisciplineRule) Check(p *Package) []Finding {
	if !pathHasSegment(p.Path, "internal") {
		return nil
	}
	ci := p.concurrency()
	lockedFns := ci.lockedReach()
	var out []Finding
	add := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Rule:     r.Name(),
			Severity: SeverityWarning,
			Pos:      p.pos(n),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	p.inspect(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if !selectHasEscape(p, n) && !selectRecvHasCloseProof(p, ci, n) {
				add(n, "select has no default case, no cancellation case, and no receive on a package-closed channel; every path through it can block forever%s", r.lockContext(p, ci, stack, n, lockedFns))
			}
		case *ast.SendStmt:
			if isSelectComm(stack, n) {
				return true
			}
			obj := p.chanObject(n.Chan)
			held := r.heldAt(p, ci, stack, n)
			if len(held) > 0 {
				add(n, "blocking send on %s while %s is held (acquired at %s); a full channel stalls every other taker of the lock — use a select or move the send outside the critical section",
					chanDesc(p, obj, n.Chan), lockName(held[0].obj), p.posOf(held[0].pos))
				return true
			}
			if obj != nil && ci.bufferedProof(obj) {
				return true
			}
			if hasLocalRangeWorker(p, stack, obj) {
				return true
			}
			add(n, "blocking send on %s with no select around it, no buffered-capacity proof, and no local range workers; if the receiver is gone this goroutine leaks%s",
				chanDesc(p, obj, n.Chan), r.reachContext(p, stack, lockedFns))
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || isSelectComm(stack, n) {
				return true
			}
			if isCancellationRecv(p, n.X) {
				return true
			}
			obj := p.chanObject(n.X)
			if obj != nil && ci.closes[obj] {
				return true
			}
			held := r.heldAt(p, ci, stack, n)
			if len(held) > 0 {
				add(n, "blocking receive on %s while %s is held (acquired at %s); if the sender is gone every other taker of the lock stalls too — receive before locking or use a cancellation select",
					chanDesc(p, obj, n.X), lockName(held[0].obj), p.posOf(held[0].pos))
				return true
			}
			add(n, "blocking receive on %s with no cancellation path and no close() of it in this package; if the sender is gone this goroutine leaks%s",
				chanDesc(p, obj, n.X), r.reachContext(p, stack, lockedFns))
		case *ast.RangeStmt:
			tv, ok := p.Info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true
			}
			obj := p.chanObject(n.X)
			if obj != nil && ci.closes[obj] {
				return true
			}
			add(n, "range over %s never terminates: no close() of it anywhere in this package — close it on the producer's shutdown path%s",
				chanDesc(p, obj, n.X), r.reachContext(p, stack, lockedFns))
		}
		return true
	})
	return out
}

// heldAt resolves the may-held lock set at a node, using the nearest
// enclosing function or literal body.
func (channelDisciplineRule) heldAt(p *Package, ci *concInfo, stack []ast.Node, n ast.Node) []lockAcq {
	body := enclosingBody(stack)
	if body == nil {
		return nil
	}
	return ci.heldFor(p, body, n)
}

// lockContext renders the held-lock suffix for select findings.
func (r channelDisciplineRule) lockContext(p *Package, ci *concInfo, stack []ast.Node, n ast.Node, lockedFns map[*types.Func]lockedCall) string {
	if held := r.heldAt(p, ci, stack, n); len(held) > 0 {
		return fmt.Sprintf(" — and %s is held here (acquired at %s)", lockName(held[0].obj), p.posOf(held[0].pos))
	}
	return r.reachContext(p, stack, lockedFns)
}

// reachContext notes when the op's enclosing function is reachable
// from a call made while a mutex was held, per the call graph.
func (channelDisciplineRule) reachContext(p *Package, stack []ast.Node, lockedFns map[*types.Func]lockedCall) string {
	fn := enclosingFunc(p, stack)
	if fn == nil {
		return ""
	}
	lc, ok := lockedFns[fn]
	if !ok {
		return ""
	}
	return fmt.Sprintf(" — and %s is reachable while %s is held (call at %s)",
		fn.Name(), lockName(lc.held[0].obj), p.posOf(lc.pos))
}

// posOf renders a token.Pos as short file:line for messages.
func (p *Package) posOf(pos token.Pos) string {
	position := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortFile(position.Filename), position.Line)
}

// chanDesc names a channel for diagnostics.
func chanDesc(p *Package, obj types.Object, e ast.Expr) string {
	if obj != nil {
		return "channel " + obj.Name()
	}
	s := types.ExprString(e)
	if len(s) > 40 {
		s = s[:40] + "..."
	}
	return "channel " + s
}

// isSelectComm reports whether n is (part of) the comm statement of an
// enclosing select case — those are judged at the select level.
func isSelectComm(stack []ast.Node, n ast.Node) bool {
	for _, a := range stack {
		cc, ok := a.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if n.Pos() >= cc.Comm.Pos() && n.End() <= cc.Comm.End() {
			return true
		}
	}
	return false
}

// selectRecvHasCloseProof reports whether any receive case of the
// select reads a channel the package close()s — the close makes that
// case eventually ready, so the select terminates.
func selectRecvHasCloseProof(p *Package, ci *concInfo, s *ast.SelectStmt) bool {
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if operand := commRecvOperand(cc.Comm); operand != nil {
			if obj := p.chanObject(operand); obj != nil && ci.closes[obj] {
				return true
			}
		}
	}
	return false
}

// hasLocalRangeWorker reports whether the outermost enclosing declared
// function spawns a goroutine literal that ranges over the same
// channel object — the worker-pool feeder shape, where the spawned
// receivers provably outlive the feed loop (they exit only when the
// feeder close()s the channel).
func hasLocalRangeWorker(p *Package, stack []ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	var body *ast.BlockStmt
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			body = fd.Body
			break
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if r, ok := m.(*ast.RangeStmt); ok && p.chanObject(r.X) == obj {
				found = true
			}
			return !found
		})
		return true
	})
	return found
}

// enclosingBody finds the nearest enclosing function or literal body.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// enclosingFunc finds the nearest enclosing *declared* function (nil
// inside a bare literal), for call-graph reachability lookups.
func enclosingFunc(p *Package, stack []ast.Node) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.FuncDecl:
			fn, _ := p.Info.Defs[f.Name].(*types.Func)
			return fn
		}
	}
	return nil
}
