// The intra-package call graph: which declared function calls which,
// keyed by go/types objects so methods, shadowing, and qualified names
// resolve correctly. It is deliberately lightweight — static calls
// only, no interface dispatch or function-value tracking — because the
// concurrency rules use it for reachability questions ("is a
// cancellation select reachable from this goroutine body?", "which
// locks can this call acquire?") where a conservative under-approx of
// dynamic calls is the right trade against false positives.

package lint

import (
	"go/ast"
	"go/types"
)

// CallSite is one static call made inside a function body.
type CallSite struct {
	// Callee is the invoked function or method; always non-nil.
	Callee *types.Func
	// Call is the call expression.
	Call *ast.CallExpr
}

// FuncNode is one function declared in the package, with its body and
// outgoing static calls.
type FuncNode struct {
	// Fn is the function's type-checker object.
	Fn *types.Func
	// Decl is the declaration; Body may be nil (e.g. assembly stubs).
	Decl *ast.FuncDecl
	// Calls are the static calls in Decl.Body, in source order,
	// excluding calls inside nested function literals (a literal runs
	// at its own time, not the caller's).
	Calls []CallSite
}

// CallGraph indexes every function declared in one package.
type CallGraph struct {
	// Nodes maps the type-checker object of each declared function to
	// its node.
	Nodes map[*types.Func]*FuncNode
}

// NewCallGraph builds the package's intra-package static call graph.
func NewCallGraph(p *Package) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*FuncNode{}}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Nodes[obj] = &FuncNode{
				Fn:    obj,
				Decl:  fd,
				Calls: callsIn(p, fd.Body),
			}
		}
	}
	return g
}

// callsIn collects the static calls directly inside body, in source
// order, not descending into nested function literals.
func callsIn(p *Package, body ast.Node) []CallSite {
	var out []CallSite
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := p.calleeFunc(call); fn != nil {
				out = append(out, CallSite{Callee: fn, Call: call})
			}
		}
		return true
	})
	return out
}

// Reach returns every in-package function transitively callable from
// fn (excluding fn itself unless it is recursive).
func (g *CallGraph) Reach(fn *types.Func) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	var visit func(f *types.Func)
	visit = func(f *types.Func) {
		node := g.Nodes[f]
		if node == nil {
			return
		}
		for _, c := range node.Calls {
			if !out[c.Callee] {
				out[c.Callee] = true
				visit(c.Callee)
			}
		}
	}
	visit(fn)
	return out
}
