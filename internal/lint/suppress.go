// Suppression comments: `//etaplint:ignore rule[,rule] -- reason`
// silences matching findings on the comment's own line and on the line
// after its comment group. The reason is mandatory — a suppression is
// an auditable exception, not an off switch — and malformed directives
// are themselves reported as findings.

package lint

import (
	"strings"
)

// ignorePrefix introduces a suppression directive. Both the directive
// form (no space after //) and a regular comment form are accepted.
const ignorePrefix = "etaplint:ignore"

// suppressionAll is the reserved rule name matching every rule.
const suppressionAll = "all"

// directive is one parsed suppression comment.
type directive struct {
	rules map[string]bool
}

// suppressions indexes parsed directives by file and the source lines
// they cover.
type suppressions map[string]map[int][]directive

// covers reports whether a finding is silenced by a directive at its
// line that names its rule (or "all").
func (s suppressions) covers(f Finding) bool {
	for _, d := range s[f.Pos.Filename][f.Pos.Line] {
		if d.rules[f.Rule] || d.rules[suppressionAll] {
			return true
		}
	}
	return false
}

// collectSuppressions parses every suppression directive in the
// package. It returns the line-coverage index plus one finding per
// malformed directive (missing rule list or missing " -- reason").
func collectSuppressions(p *Package) (suppressions, []Finding) {
	sup := suppressions{}
	var malformed []Finding
	for _, file := range p.Files {
		for _, group := range file.Comments {
			groupHasDirective := false
			for _, c := range group.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				groupHasDirective = true
				pos := p.Fset.Position(c.Pos())
				d, ok := parseDirective(text)
				if !ok {
					malformed = append(malformed, Finding{
						Rule:     "suppression",
						Severity: SeverityError,
						Pos:      pos,
						Message:  "malformed suppression: want //etaplint:ignore <rule>[,<rule>...] -- <reason>",
					})
					continue
				}
				addDirective(sup, pos.Filename, pos.Line, d)
			}
			if groupHasDirective {
				// A directive inside a doc-comment group covers the
				// declaration that follows the group.
				end := p.Fset.Position(group.End())
				for _, c := range group.List {
					if text, ok := directiveText(c.Text); ok {
						if d, ok := parseDirective(text); ok {
							addDirective(sup, end.Filename, end.Line+1, d)
						}
					}
				}
			}
		}
	}
	return sup, malformed
}

// addDirective records a directive as covering one file line.
func addDirective(sup suppressions, file string, line int, d directive) {
	byLine := sup[file]
	if byLine == nil {
		byLine = map[int][]directive{}
		sup[file] = byLine
	}
	byLine[line] = append(byLine[line], d)
}

// directiveText extracts the payload after the ignore marker, or
// reports that the comment is not a suppression directive.
func directiveText(comment string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimLeft(text, " \t")
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// parseDirective splits "rule1,rule2 -- reason" into a directive,
// rejecting empty rule lists and missing reasons.
func parseDirective(text string) (directive, bool) {
	rulesPart, reason, found := strings.Cut(text, "--")
	if !found || strings.TrimSpace(reason) == "" {
		return directive{}, false
	}
	d := directive{rules: map[string]bool{}}
	for _, r := range strings.Split(rulesPart, ",") {
		r = strings.TrimSpace(r)
		if r != "" {
			d.rules[r] = true
		}
	}
	if len(d.rules) == 0 {
		return directive{}, false
	}
	return d, true
}
