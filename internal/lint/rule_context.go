// The context-plumbing rule: the fetch/crawl/search surfaces are the
// pipeline's I/O-shaped entry points — production deployments need
// cancellation and deadlines to propagate through them. Exported
// functions and interface methods named for those operations must take
// a context.Context first, and internal packages must not mint root
// contexts (context.Background/TODO) that sever the caller's chain.

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"unicode"
)

// contextVerbs are the CamelCase words marking an I/O-shaped exported
// surface. A name matches only on an exact word boundary: Fetch and
// SearchQuery match, Fetcher does not.
var contextVerbs = []string{"Fetch", "Crawl", "Search"}

type contextPlumbingRule struct{}

func (contextPlumbingRule) Name() string { return "context-plumbing" }

func (contextPlumbingRule) Doc() string {
	return "exported fetch/crawl/search surfaces must take context.Context first; internal code must not mint root contexts"
}

func (r contextPlumbingRule) Check(p *Package) []Finding {
	if !pathHasSegment(p.Path, "internal") {
		return nil
	}
	var out []Finding
	add := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Rule:     r.Name(),
			Severity: SeverityError,
			Pos:      p.pos(n),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	p.inspect(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := p.calleeFunc(n)
			if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
				add(n, "context.%s mints a root context, severing the caller's cancellation and deadlines; thread the caller's context through instead", fn.Name())
			}
		case *ast.FuncDecl:
			if !n.Name.IsExported() || !nameHasVerb(n.Name.Name) {
				return true
			}
			if n.Recv != nil && !exportedReceiver(n.Recv) {
				return true
			}
			if !firstParamIsContext(p, n.Type) {
				kind := "function"
				if n.Recv != nil {
					kind = "method"
				}
				add(n, "exported %s %s performs fetch/crawl/search work but does not take context.Context as its first parameter", kind, n.Name.Name)
			}
		case *ast.InterfaceType:
			for _, m := range n.Methods.List {
				ft, ok := m.Type.(*ast.FuncType)
				if !ok {
					continue
				}
				for _, name := range m.Names {
					if name.IsExported() && nameHasVerb(name.Name) && !firstParamIsContext(p, ft) {
						add(m, "interface method %s performs fetch/crawl/search work but does not take context.Context as its first parameter", name.Name)
					}
				}
			}
		}
		return true
	})
	return out
}

// nameHasVerb reports whether the identifier contains one of the
// context verbs as a complete CamelCase word.
func nameHasVerb(name string) bool {
	for _, verb := range contextVerbs {
		for start := 0; ; {
			i := indexFrom(name, verb, start)
			if i < 0 {
				break
			}
			end := i + len(verb)
			if end == len(name) || !unicode.IsLower(rune(name[end])) {
				return true
			}
			start = i + 1
		}
	}
	return false
}

// indexFrom is strings.Index starting the scan at offset start.
func indexFrom(s, sub string, start int) int {
	for i := start; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// exportedReceiver reports whether the method receiver names an
// exported type — unexported receivers are not part of the package API.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := ast.Unparen(t).(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// firstParamIsContext reports whether the function type's first
// parameter is context.Context.
func firstParamIsContext(p *Package, ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	first := ft.Params.List[0]
	tv, ok := p.Info.Types[first.Type]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
