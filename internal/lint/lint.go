// Package lint is ETAP's repo-aware static-analysis framework. It
// enforces the invariants the pipeline's correctness rests on but that
// `go vet` cannot see: bit-deterministic output from the synthetic web
// and training pipeline, metric series that match the OPERATIONS.md
// catalog, no silently swallowed errors, context plumbed through
// I/O-shaped call paths, a uniform lock discipline, and doc comments on
// every exported symbol.
//
// The framework is stdlib-only: packages are parsed with go/parser and
// type-checked with go/types using the source importer, so the module's
// zero-external-dependency constraint holds. Rules implement the Rule
// interface and produce positioned Findings with a severity and rule
// ID. A finding can be suppressed at its source line with an annotated
// comment:
//
//	//etaplint:ignore <rule>[,<rule>...] -- <reason>
//
// placed on the offending line, on the line directly above it, or
// inside the declaration's doc-comment group. The reason is mandatory;
// a suppression without one is itself reported.
//
// cmd/etaplint is the command-line front end; LINTING.md catalogues the
// shipped rules.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies how a finding gates CI: errors always fail the
// build, warnings fail at the default threshold, infos are advisory.
type Severity int

// Severity levels, ordered from least to most severe.
const (
	SeverityInfo Severity = iota
	SeverityWarning
	SeverityError
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity parses a severity name as printed by String.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return SeverityInfo, nil
	case "warning", "warn":
		return SeverityWarning, nil
	case "error":
		return SeverityError, nil
	}
	return 0, fmt.Errorf("lint: unknown severity %q (want info, warning, or error)", s)
}

// Finding is one positioned diagnostic produced by a rule.
type Finding struct {
	// Rule is the reporting rule's ID (e.g. "determinism").
	Rule string
	// Severity classifies the finding; see Severity.
	Severity Severity
	// Pos locates the finding (file, line, column).
	Pos token.Position
	// Message describes the violation and how to fix it.
	Message string
}

// Rule is one analysis pass over a type-checked package.
type Rule interface {
	// Name is the stable rule ID used in reports, -rules selection,
	// and suppression comments.
	Name() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
	// Check analyzes the package and returns its findings.
	Check(p *Package) []Finding
}

// Package is one loaded, type-checked lint target.
type Package struct {
	// Path is the package's import path. Rules scope themselves by
	// matching path segments (e.g. only under internal/corpus); golden
	// tests load testdata packages under a virtual path so scoped rules
	// apply.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files are the package's parsed non-test files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression, object, and
	// selection facts for Files.
	Info *types.Info

	// conc lazily caches the shared concurrency analysis (call graph,
	// CFGs, lock dataflow) the flow-aware rules consume.
	conc *concInfo
}

// pos resolves a node's position within the package's file set.
func (p *Package) pos(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// calleeFunc resolves a call expression to the function or method
// object it invokes, or nil for builtins, conversions, and indirect
// calls through function values.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// pathHasSegment reports whether the import path contains seg as a
// complete segment sequence ("internal/corpus" matches
// "etap/internal/corpus" but not "etap/internal/corpusgen").
func pathHasSegment(path, seg string) bool {
	if path == seg || strings.HasPrefix(path, seg+"/") || strings.HasSuffix(path, "/"+seg) {
		return true
	}
	return strings.Contains(path, "/"+seg+"/")
}

// inspect walks every file in the package, invoking fn with each node
// and the stack of its ancestors (outermost first, excluding n itself).
// Returning false prunes the node's children.
func (p *Package) inspect(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			keep := fn(n, stack)
			if keep {
				stack = append(stack, n)
			}
			return keep
		})
	}
}

// Run applies the rules to each package, filters findings through the
// packages' suppression comments, reports malformed suppressions, and
// returns the surviving findings sorted by position.
func Run(pkgs []*Package, rules []Rule) []Finding {
	var out []Finding
	for _, p := range pkgs {
		sup, supFindings := collectSuppressions(p)
		for _, r := range rules {
			for _, f := range r.Check(p) {
				if !sup.covers(f) {
					out = append(out, f)
				}
			}
		}
		out = append(out, supFindings...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}
