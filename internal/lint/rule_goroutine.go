// The goroutine-lifecycle rule: PR 8 fixed a real bug where an
// unsubscribe race resurrected a delivery worker — a goroutine nobody
// owned anymore. This rule makes ownership checkable: every `go`
// statement in internal/... must tie the spawned goroutine to a
// shutdown mechanism the analysis can see —
//
//   - a sync.WaitGroup the body calls Done (or Wait) on,
//   - a cancellation select reachable in the spawned body (ctx.Done(),
//     a done/stop/quit channel, a time-bounded channel, or a default
//     case),
//   - a receive from a cancellation channel,
//   - a range loop over a channel (terminates when the producer
//     closes; the channel-discipline rule checks the close exists), or
//   - an allowlisted bounded-lifetime callee.
//
// The search is flow-aware: the spawned body is resolved through the
// intra-package call graph, so a goroutine whose cancellation select
// lives two calls deep still passes, and one that spawns a function
// with no reachable shutdown path is flagged at the `go` statement.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// goroutineAllowlist names functions with a provably bounded lifetime
// that are acceptable `go` targets without visible shutdown plumbing.
// Keyed by types.Func.FullName. Kept deliberately short: an entry here
// is a reviewed claim that the callee always returns promptly.
var goroutineAllowlist = map[string]string{
	// (none currently; suppress with //etaplint:ignore and a reason for
	// one-off bounded spawns, or add a reviewed entry here.)
}

type goroutineLifecycleRule struct{}

func (goroutineLifecycleRule) Name() string { return "goroutine-lifecycle" }

func (goroutineLifecycleRule) Doc() string {
	return "every `go` statement in internal/... must be tied to a shutdown mechanism (WaitGroup, cancellation select, close-terminated range, or allowlisted bounded callee)"
}

func (r goroutineLifecycleRule) Check(p *Package) []Finding {
	if !pathHasSegment(p.Path, "internal") {
		return nil
	}
	ci := p.concurrency()
	var out []Finding
	p.inspect(func(n ast.Node, stack []ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if reason, tied := spawnEvidence(p, ci, g.Call); !tied {
			out = append(out, Finding{
				Rule:     r.Name(),
				Severity: SeverityError,
				Pos:      p.pos(g),
				Message:  reason,
			})
		}
		return true
	})
	return out
}

// spawnEvidence resolves a go statement's call to its spawned body and
// searches it (transitively, through the intra-package call graph) for
// lifecycle evidence. It returns tied=true when evidence is found,
// else a message explaining what is missing.
func spawnEvidence(p *Package, ci *concInfo, call *ast.CallExpr) (string, bool) {
	const want = "tie it to a sync.WaitGroup, a cancellation select (ctx.Done()/done channel/default), a close-terminated range over a channel, or add it to the reviewed bounded-lifetime allowlist"
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if bodyHasLifecycleEvidence(p, ci, lit.Body, map[*types.Func]bool{}) {
			return "", true
		}
		return "goroutine has no reachable shutdown mechanism: " + want, false
	}
	fn := p.calleeFunc(call)
	if fn == nil {
		return "goroutine spawns through a function value the analysis cannot resolve: " + want + ", or spawn a named function", false
	}
	if _, ok := goroutineAllowlist[fn.FullName()]; ok {
		return "", true
	}
	node := ci.graph.Nodes[fn]
	if node == nil {
		return fmt.Sprintf("goroutine spawns %s, whose body is outside this package and not on the bounded-lifetime allowlist: %s", fn.FullName(), want), false
	}
	if bodyHasLifecycleEvidence(p, ci, node.Decl.Body, map[*types.Func]bool{fn: true}) {
		return "", true
	}
	return fmt.Sprintf("goroutine %s has no reachable shutdown mechanism: %s", fn.Name(), want), false
}

// bodyHasLifecycleEvidence walks one body — including nested function
// literals (a deferred closure calling wg.Done counts) — looking for
// shutdown evidence, recursing into in-package callees.
func bodyHasLifecycleEvidence(p *Package, ci *concInfo, body ast.Node, visited map[*types.Func]bool) bool {
	found := false
	var callees []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := p.calleeFunc(n); fn != nil {
				if isWaitGroupMethod(fn, "Done") || isWaitGroupMethod(fn, "Wait") {
					found = true
					return false
				}
				if ci.graph.Nodes[fn] != nil && !visited[fn] {
					callees = append(callees, fn)
				}
			}
		case *ast.SelectStmt:
			if selectHasEscape(p, n) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isCancellationRecv(p, n.X) {
				found = true
				return false
			}
		}
		return true
	})
	if found {
		return true
	}
	for _, fn := range callees {
		if visited[fn] {
			continue
		}
		visited[fn] = true
		if bodyHasLifecycleEvidence(p, ci, ci.graph.Nodes[fn].Decl.Body, visited) {
			return true
		}
	}
	return false
}

// isWaitGroupMethod reports whether fn is (*sync.WaitGroup).<name>.
func isWaitGroupMethod(fn *types.Func, name string) bool {
	return fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		fn.FullName() == "(*sync.WaitGroup)."+name
}
