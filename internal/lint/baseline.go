// Findings baseline: a committed JSON snapshot of known findings so CI
// can gate on "no new findings" while existing debt is paid down
// incrementally. Entries are keyed by (rule, file, message) with an
// occurrence count — line numbers are deliberately excluded so
// unrelated edits that shift code do not invalidate the baseline.

package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// BaselineEntry is one tolerated finding class: how many findings with
// this exact rule, file, and message the baseline absorbs.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// Baseline is the on-disk findings-baseline format.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// baselineVersion is the current on-disk format version.
const baselineVersion = 1

// baselineKey identifies a finding class for baseline matching.
type baselineKey struct {
	rule, file, message string
}

// NewBaseline aggregates findings into a baseline snapshot, sorted for
// stable diffs.
func NewBaseline(findings []Finding) *Baseline {
	counts := map[baselineKey]int{}
	for _, f := range findings {
		counts[baselineKey{f.Rule, f.Pos.Filename, f.Message}]++
	}
	b := &Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{Rule: k.rule, File: k.file, Message: k.message, Count: n})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline serializes a baseline for the given findings.
func WriteBaseline(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewBaseline(findings))
}

// ReadBaseline parses a baseline, rejecting unknown format versions.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("lint: parse baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline version %d, want %d", b.Version, baselineVersion)
	}
	return &b, nil
}

// Filter returns the findings the baseline does not absorb: each entry
// soaks up at most Count matching findings, in input order, so only
// net-new findings survive.
func (b *Baseline) Filter(findings []Finding) []Finding {
	budget := map[baselineKey]int{}
	for _, e := range b.Findings {
		budget[baselineKey{e.Rule, e.File, e.Message}] += e.Count
	}
	var fresh []Finding
	for _, f := range findings {
		k := baselineKey{f.Rule, f.Pos.Filename, f.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}
