// Package cli is the shared command driver behind cmd/etaplint and
// the deprecated cmd/doclint forwarding shim: flag parsing, package
// loading, rule execution, baseline handling, and exit-code policy
// live here once so the two binaries cannot drift.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"etap/internal/lint"
)

// fprintf writes best-effort diagnostics to the caller's writer.
func fprintf(w io.Writer, format string, args ...any) {
	//etaplint:ignore error-swallowing -- diagnostics are best-effort: a CLI driver has nowhere to report a failed stderr write
	_, _ = fmt.Fprintf(w, format, args...)
}

// Run executes the linter under the given command name and returns the
// process exit code: 0 when no finding meets the severity threshold
// (after baseline subtraction), 1 when at least one does, 2 on usage
// or load errors.
func Run(name string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	rulesSpec := fs.String("rules", "all", "comma-separated rule IDs to run")
	severity := fs.String("severity", "warning", "minimum severity causing a non-zero exit (info, warning, error)")
	list := fs.Bool("list", false, "print the available rules and exit")
	baselinePath := fs.String("baseline", "", "JSON findings baseline: findings recorded there do not fail the run")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from the current findings and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fprintf(stderr, "%s: %v\n", name, err)
		return 2
	}

	rules, err := lint.SelectRules(*rulesSpec)
	if err != nil {
		return fail(err)
	}
	if *list {
		for _, r := range rules {
			fprintf(stdout, "%-18s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	threshold, err := lint.ParseSeverity(*severity)
	if err != nil {
		return fail(err)
	}
	if *writeBaseline && *baselinePath == "" {
		return fail(fmt.Errorf("-write-baseline requires -baseline <file>"))
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		return fail(err)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return fail(err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			return fail(err)
		}
		pkgs = append(pkgs, p)
	}

	findings := lint.Run(pkgs, rules)
	if *writeBaseline {
		f, err := os.Create(*baselinePath)
		if err != nil {
			return fail(err)
		}
		werr := lint.WriteBaseline(f, findings)
		cerr := f.Close()
		if werr != nil {
			return fail(werr)
		}
		if cerr != nil {
			return fail(cerr)
		}
		fprintf(stderr, "%s: wrote baseline with %d finding(s) to %s\n", name, len(findings), *baselinePath)
		return 0
	}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			return fail(err)
		}
		base, rerr := lint.ReadBaseline(f)
		if cerr := f.Close(); cerr != nil {
			return fail(cerr)
		}
		if rerr != nil {
			return fail(rerr)
		}
		findings = base.Filter(findings)
	}

	if *jsonOut {
		err = lint.WriteJSON(stdout, findings)
	} else {
		err = lint.WriteText(stdout, findings)
	}
	if err != nil {
		return fail(err)
	}
	failing := 0
	for _, f := range findings {
		if f.Severity >= threshold {
			failing++
		}
	}
	if failing > 0 {
		if !*jsonOut {
			fprintf(stderr, "%s: %d finding(s) at or above severity %s\n", name, failing, threshold)
		}
		return 1
	}
	return 0
}
