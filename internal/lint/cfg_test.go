package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses one function body and builds its graph.
func buildTestCFG(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return BuildCFG(fd.Body), fset
}

// blockWith returns the reachable block containing a node whose source
// rendering contains substr, or nil.
func blockWith(c *CFG, fset *token.FileSet, src, substr string) *Block {
	lines := strings.Split(src, "\n")
	for b := range c.Reachable() {
		for _, n := range b.Nodes {
			line := fset.Position(n.Pos()).Line
			if line-1 < len(lines) && strings.Contains(lines[line-1], substr) {
				return b
			}
		}
	}
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	c, _ := buildTestCFG(t, "x := 1\n_ = x\nreturn")
	if len(c.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("entry should flow straight to exit, succs=%v", c.Entry.Succs)
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	src := "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	then := blockWith(c, fset, full, "x = 2")
	els := blockWith(c, fset, full, "x = 3")
	join := blockWith(c, fset, full, "_ = x")
	if then == nil || els == nil || join == nil {
		t.Fatal("missing then/else/join blocks")
	}
	if then == els {
		t.Fatal("then and else share a block")
	}
	if len(then.Succs) != 1 || then.Succs[0] != join || len(els.Succs) != 1 || els.Succs[0] != join {
		t.Fatal("then/else do not join")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	src := "for i := 0; i < 3; i++ {\n_ = i\n}\nreturn"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	body := blockWith(c, fset, full, "_ = i")
	if body == nil {
		t.Fatal("loop body block not found")
	}
	// The body must eventually lead back to a block that can re-enter it.
	reached := map[*Block]bool{}
	stack := []*Block{body}
	backEdge := false
	for len(stack) > 0 && !backEdge {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == body {
				backEdge = true
				break
			}
			if !reached[s] {
				reached[s] = true
				stack = append(stack, s)
			}
		}
	}
	if !backEdge {
		t.Fatal("no back edge re-entering the loop body")
	}
}

func TestCFGPanicIsTerminal(t *testing.T) {
	src := "x := 1\nif x > 0 {\npanic(\"boom\")\n}\n_ = x"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	pb := blockWith(c, fset, full, "panic")
	if pb == nil {
		t.Fatal("panic block not found")
	}
	if len(pb.Succs) != 1 || pb.Succs[0] != c.Exit {
		t.Fatalf("panic block should only reach exit, succs=%d", len(pb.Succs))
	}
}

func TestCFGDefersCollected(t *testing.T) {
	c, _ := buildTestCFG(t, "defer println(1)\nif true {\ndefer println(2)\n}")
	if len(c.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(c.Defers))
	}
}

func TestCFGSelectWithoutDefaultCannotSkip(t *testing.T) {
	src := "ch := make(chan int)\nselect {\ncase <-ch:\nprintln(1)\n}\nprintln(2)"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	head := blockWith(c, fset, full, "select {")
	after := blockWith(c, fset, full, "println(2)")
	if head == nil || after == nil {
		t.Fatal("select head or after block not found")
	}
	for _, s := range head.Succs {
		if s == after {
			t.Fatal("select without default has a direct edge past its cases")
		}
	}
}

func TestCFGSelectWithDefault(t *testing.T) {
	src := "ch := make(chan int)\nselect {\ncase <-ch:\nprintln(1)\ndefault:\nprintln(3)\n}\nprintln(2)"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	def := blockWith(c, fset, full, "println(3)")
	if def == nil {
		t.Fatal("default case block not reachable")
	}
}

func TestCFGBreakLeavesLoop(t *testing.T) {
	src := "for {\nbreak\n}\nprintln(2)"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	after := blockWith(c, fset, full, "println(2)")
	if after == nil {
		t.Fatal("code after `for { break }` should be reachable")
	}
}

func TestCFGInfiniteLoopWithoutBreak(t *testing.T) {
	src := "for {\nprintln(1)\n}\nprintln(2)"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	if after := blockWith(c, fset, full, "println(2)"); after != nil {
		t.Fatal("code after `for {}` must be unreachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	src := "outer:\nfor {\nfor {\nbreak outer\n}\n}\nprintln(2)"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	if after := blockWith(c, fset, full, "println(2)"); after == nil {
		t.Fatal("labeled break should make the code after the outer loop reachable")
	}
}

func TestCFGContinueInSwitchTargetsLoop(t *testing.T) {
	src := "for i := 0; i < 3; i++ {\nswitch i {\ncase 0:\ncontinue\n}\nprintln(1)\n}\nprintln(2)"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	cont := blockWith(c, fset, full, "continue")
	if cont == nil {
		t.Fatal("continue block not found")
	}
	// The continue block must reach the loop's post statement (i++), not
	// dead-end.
	if len(cont.Succs) == 0 {
		t.Fatal("continue inside switch has no successor")
	}
}

func TestCFGGotoResolves(t *testing.T) {
	src := "x := 0\nloop:\nx++\nif x < 3 {\ngoto loop\n}\nprintln(2)"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	gb := blockWith(c, fset, full, "goto loop")
	target := blockWith(c, fset, full, "x++")
	if gb == nil || target == nil {
		t.Fatal("goto or target block not found")
	}
	found := false
	for _, s := range gb.Succs {
		if s == target {
			found = true
		}
	}
	if !found {
		t.Fatal("goto edge does not reach its label")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	src := "xs := []int{1}\nfor _, x := range xs {\n_ = x\n}\nprintln(2)"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	body := blockWith(c, fset, full, "_ = x")
	after := blockWith(c, fset, full, "println(2)")
	if body == nil || after == nil {
		t.Fatal("range body or after block missing")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	src := "switch 1 {\ncase 1:\nprintln(1)\nfallthrough\ncase 2:\nprintln(2)\n}"
	c, fset := buildTestCFG(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	c1 := blockWith(c, fset, full, "println(1)")
	c2 := blockWith(c, fset, full, "println(2)")
	if c1 == nil || c2 == nil {
		t.Fatal("case blocks missing")
	}
	found := false
	for _, s := range c1.Succs {
		if s == c2 {
			found = true
		}
	}
	if !found {
		t.Fatal("fallthrough edge missing")
	}
}
