package lint

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

// bl builds a finding for baseline tests.
func bl(rule, file, message string, line int) Finding {
	return Finding{Rule: rule, Severity: SeverityWarning, Message: message,
		Pos: token.Position{Filename: file, Line: line}}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		bl("channel-discipline", "a.go", "blocking send", 10),
		bl("channel-discipline", "a.go", "blocking send", 40),
		bl("lock-order", "b.go", "conflicting orders", 5),
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, findings); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("entries = %d, want 2 (duplicates aggregate by count):\n%+v", len(b.Findings), b.Findings)
	}
	if b.Findings[0].File != "a.go" || b.Findings[0].Count != 2 {
		t.Errorf("first entry = %+v, want a.go count 2", b.Findings[0])
	}
	if fresh := b.Filter(findings); len(fresh) != 0 {
		t.Errorf("round-tripped baseline leaves %d fresh finding(s), want 0", len(fresh))
	}
}

func TestBaselineFilterCountsAndNewFindings(t *testing.T) {
	base := NewBaseline([]Finding{bl("channel-discipline", "a.go", "blocking send", 10)})
	now := []Finding{
		// Same class, line moved: absorbed (line numbers are not keyed).
		bl("channel-discipline", "a.go", "blocking send", 99),
		// Second occurrence of the same class: over budget, fresh.
		bl("channel-discipline", "a.go", "blocking send", 120),
		// Different file: fresh.
		bl("channel-discipline", "c.go", "blocking send", 10),
	}
	fresh := base.Filter(now)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %d, want 2", len(fresh))
	}
	if fresh[0].Pos.Line != 120 || fresh[1].Pos.Filename != "c.go" {
		t.Errorf("unexpected fresh findings: %+v", fresh)
	}
}

func TestBaselineVersionCheck(t *testing.T) {
	_, err := ReadBaseline(strings.NewReader(`{"version": 99, "findings": []}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("ReadBaseline accepted unknown version, err = %v", err)
	}
}
