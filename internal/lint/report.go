// Reporters: the human-facing text format (one go-style positioned
// line per finding) and a machine-readable JSON array for tooling.

package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders findings one per line as
// "file:line:col: severity: message [rule]".
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		_, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s [%s]\n",
			f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Severity, f.Message, f.Rule)
		if err != nil {
			return err
		}
	}
	return nil
}

// JSONFinding is the stable wire shape of one finding in -json output.
type JSONFinding struct {
	// Rule is the reporting rule's ID.
	Rule string `json:"rule"`
	// Severity is the severity name ("info", "warning", "error").
	Severity string `json:"severity"`
	// File is the path of the file containing the finding.
	File string `json:"file"`
	// Line is the 1-based source line.
	Line int `json:"line"`
	// Col is the 1-based source column.
	Col int `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
}

// WriteJSON renders findings as an indented JSON array of JSONFinding
// objects ("[]" when there are none).
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			Rule:     f.Rule,
			Severity: f.Severity.String(),
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
