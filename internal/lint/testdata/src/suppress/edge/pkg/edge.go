//etaplint:ignore error-swallowing -- first-line directive: pins that a directive opening the file covers only its own line and the line after its comment group

// Package goldensupedge pins suppression edge cases: a directive on
// the first line of the file, a directive inside a struct field list,
// and stacked directives covering one statement.
package goldensupedge

import "errors"

// fallible is the violation generator for the tests below.
func fallible() error { return errors.New("boom") }

// Config exercises a directive attached inside a field list: the
// directive's comment group is the field's doc, so it covers the field
// line that follows it.
type Config struct {
	//etaplint:ignore doc-comments -- field-list directive: covers the Fallible field line below
	Fallible func() error
}

// Stacked exercises two consecutive directives in one comment group:
// each covers its own line and the statement after the group.
func Stacked() {
	//etaplint:ignore error-swallowing -- stacked 1: this call's error is deliberately best-effort
	//etaplint:ignore context-plumbing -- stacked 2: both stacked directives must cover the next line
	fallible()
}

// Unsuppressed keeps one live violation so the edge-case package still
// proves the rule fires where no directive reaches.
func Unsuppressed() {
	fallible()
}
