// Package goldensup exercises suppression directives: annotated
// ignores silence findings, the "all" rule name matches every rule, a
// doc-group directive covers the declaration that follows, and a
// directive without a reason is itself reported.
package goldensup

import "os"

// Cleanup discards an error under an annotated suppression.
func Cleanup(path string) {
	//etaplint:ignore error-swallowing -- best-effort cleanup in a test fixture
	os.Remove(path)
}

// CleanupAll suppresses via the reserved "all" rule name.
func CleanupAll(path string) {
	//etaplint:ignore all -- best-effort cleanup in a test fixture
	os.Remove(path)
}

// Unsuppressed discards with no directive in sight.
func Unsuppressed(path string) {
	os.Remove(path)
}

// Malformed sits above a directive that names no reason, which is
// reported and silences nothing.
func Malformed(path string) {
	//etaplint:ignore error-swallowing
	os.Remove(path)
}

// Fetch lacks a context parameter but is excused from its doc-comment
// group.
//
//etaplint:ignore context-plumbing -- legacy surface kept for compatibility
func Fetch(url string) error { return nil }
