// Package goldenerrors exercises the error-swallowing rule: blank
// discards and bare fallible calls are violations; never-fail writers
// and properly handled errors are clean.
package goldenerrors

import (
	"fmt"
	"os"
	"strings"
)

// Drop discards an error via blank assignment.
func Drop(path string) {
	_ = os.Remove(path) // want "discarded via blank identifier"
}

// Bare calls a fallible function as a bare statement.
func Bare(path string) {
	os.Remove(path) // want "silently discarded"
}

// DropPair discards the error half of a multi-value call.
func DropPair(path string) []byte {
	data, _ := os.ReadFile(path) // want "discarded via blank identifier"
	return data
}

// Builder writes through never-fail writers, which are exempt.
func Builder() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	b.WriteString("done")
	return b.String()
}

// Checked handles its error.
func Checked(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}
