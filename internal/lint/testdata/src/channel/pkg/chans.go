// Package goldenchan exercises the channel-discipline rule: blocking
// sends/receives with no visible escape, selects with no default or
// cancellation case, channel ops under a held mutex, and range loops
// over never-closed channels are violations. Cancellation selects,
// buffered-capacity proofs, and close-disciplined channels are clean.
package goldenchan

import (
	"context"
	"sync"
)

// Feed sends on a channel with no make site in the package (no
// buffered proof) and no select around the send.
func Feed(ch chan int) {
	ch <- 1 // want "blocking send"
}

// FeedCtx is the sanctioned shape: a select with a cancellation case.
func FeedCtx(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

// Box proves its channel's capacity at the make site, so the plain
// send is acceptable.
type Box struct{ ch chan int }

// NewBox allocates the buffered channel.
func NewBox() *Box { return &Box{ch: make(chan int, 8)} }

// Put sends with a buffered-capacity proof.
func (b *Box) Put() { b.ch <- 1 }

// Locked sends while holding its mutex: the capacity proof does not
// rescue it, because a full buffer blocks with the lock held.
type Locked struct {
	mu sync.Mutex
	ch chan int
}

// NewLocked allocates the (buffered!) channel.
func NewLocked() *Locked { return &Locked{ch: make(chan int, 1)} }

// Send performs the send inside the critical section.
func (l *Locked) Send() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ch <- 1 // want "while Locked.mu is held"
}

// Wait blocks on a receive with no cancellation path and no close()
// of the channel anywhere in the package.
func Wait(ch chan int) int {
	return <-ch // want "blocking receive"
}

// Consume is clean: the package closes the channel it receives from
// (the closing goroutine captures the same variable, so the close
// proof attaches to the same object).
func Consume() {
	ch := make(chan int)
	go func() {
		close(ch)
	}()
	<-ch
}

// ConsumeAliased shows the analysis' aliasing limit: the close happens
// on closeIt's own parameter, a different object, so no proof carries
// back to the caller's receive.
func ConsumeAliased() {
	ch := make(chan int)
	go closeIt(ch)
	<-ch // want "blocking receive"
}

// closeIt closes its parameter.
func closeIt(ch chan int) {
	close(ch)
}

// DrainForever ranges over a channel no one ever closes.
func DrainForever(ch2 chan string) {
	for range ch2 { // want "range over channel ch2 never terminates"
	}
}

// DrainClosed is the clean worker-pool feeder: the spawned goroutine
// ranges over the same channel (receiver-liveness proof for the send)
// and the feeder closes it (termination proof for the range).
func DrainClosed() {
	jobs := make(chan int)
	go func() {
		for range jobs {
		}
	}()
	for i := 0; i < 4; i++ {
		jobs <- i
	}
	close(jobs)
}

// FeedWrongPool spawns workers, but they drain a different channel —
// no receiver proof carries over to ch.
func FeedWrongPool(ch, other chan int) {
	defer close(other)
	go func() {
		for range other {
		}
	}()
	ch <- 1 // want "blocking send"
}

// Shuttle's select has two work cases and no way out.
func Shuttle(a, b chan int) {
	select { // want "select has no default case"
	case <-a:
	case b <- 1:
	}
}

// Offer is clean: the default case makes the select non-blocking.
func Offer(ch chan int, v int) bool {
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

// WaitDone is clean: receiving from a done-named channel is a
// cancellation wait by convention.
func WaitDone(done chan struct{}) {
	<-done
}
