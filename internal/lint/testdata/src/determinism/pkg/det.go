// Package goldenpkg exercises the determinism rule: wall clocks,
// global randomness, per-process hash seeds, and map-order leaks are
// violations; seeded sources, per-key accumulation, and the
// collect-then-sort idiom are clean.
package goldenpkg

import (
	"hash/maphash"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want "call to time.Now"
}

// Roll draws from the shared global source.
func Roll() int {
	return rand.Intn(6) // want "global rand.Intn"
}

// RollSeeded draws from a seeded source threaded in as a parameter —
// the sanctioned alternative.
func RollSeeded(r *rand.Rand) int {
	return r.Intn(6)
}

// Seeded mints a fresh random hash seed per process.
func Seeded() maphash.Seed {
	return maphash.MakeSeed() // want "maphash.MakeSeed draws a fresh random seed"
}

// Collect leaks map iteration order into its result slice.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "nondeterministic order"
	}
	return out
}

// CollectSorted restores determinism by sorting after the loop.
func CollectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// First lets iteration order pick the returned key.
func First(m map[string]int) string {
	for k := range m {
		return k // want "iteration order pick the result"
	}
	return ""
}

// Pick lets iteration order pick the winning entry.
func Pick(m map[string]int) int {
	best := 0
	for _, v := range m {
		best = v
		break // want "iteration order pick the winning entry"
	}
	return best
}

// Group accumulates into per-key slots, which is order-independent.
func Group(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}
