// Package goldenmutex exercises the mutex-discipline rule: value
// receivers on lock-holding types and returns under a held lock are
// violations; the defer idiom and balanced unlock paths are clean.
package goldenmutex

import "sync"

// Counter holds a mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Get copies the lock through its value receiver.
func (c Counter) Get() int { // want "value receiver"
	return c.n
}

// Inc follows the defer idiom.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek returns while holding the lock on one path.
func (c *Counter) Peek() int {
	c.mu.Lock()
	if c.n > 0 {
		return c.n // want "return while c.mu is locked"
	}
	c.mu.Unlock()
	return 0
}

// Balanced unlocks before every return.
func (c *Counter) Balanced() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}
