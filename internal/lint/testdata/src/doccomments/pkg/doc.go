// Package goldendoc exercises the doc-comments rule. Constant and
// variable expectations use absolute want lines because a trailing
// comment on a value spec would itself count as documentation.
//
// want:9 "exported constant MaxDepth has no doc comment"
// want:11 "exported variable Debug has no doc comment"
package goldendoc

const MaxDepth = 3

var Debug = false

// Documented carries a doc comment.
const Documented = 1

type Widget struct{} // want "exported type Widget has no doc comment"

// Run is documented.
func Run() {}

func Walk() {} // want "exported function Walk has no doc comment"

func (w Widget) Spin() {} // want "exported method Widget.Spin has no doc comment"

func (w Widget) reset() {}
