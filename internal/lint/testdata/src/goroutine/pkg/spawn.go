// Package goldengoroutine exercises the goroutine-lifecycle rule:
// goroutines with no reachable shutdown mechanism are violations;
// WaitGroup-tracked workers, cancellation selects (even ones buried a
// few calls deep), and close-terminated range loops are clean.
package goldengoroutine

import (
	"context"
	"sync"
)

// work is a stand-in task.
func work() {}

// SpawnLeaky launches a goroutine nothing can ever stop.
func SpawnLeaky() {
	go func() { // want "no reachable shutdown mechanism"
		for {
			work()
		}
	}()
}

// SpawnTracked is the sanctioned worker-pool shape: WaitGroup Done in
// a defer, work drained by a range the producer closes.
func SpawnTracked(wg *sync.WaitGroup, jobs chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range jobs {
			work()
		}
	}()
}

// SpawnCtx spawns a named function whose cancellation select sits two
// calls deep — the call graph must find it.
func SpawnCtx(ctx context.Context) {
	go runLoop(ctx)
}

// runLoop delegates to inner.
func runLoop(ctx context.Context) { inner(ctx) }

// inner holds the actual cancellation select.
func inner(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work()
		}
	}
}

// SpawnExternal spawns a function declared outside the package; the
// analysis cannot see its body and it is not allowlisted.
func SpawnExternal(m *sync.Mutex) {
	go m.Lock() // want "outside this package"
}

// SpawnIndirect spawns through a function value the static analysis
// cannot resolve.
func SpawnIndirect(f func()) {
	go f() // want "function value"
}

// SpawnRange is tied to its channel: the goroutine ends when the
// producer closes ch.
func SpawnRange(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// SpawnDoneChan waits on a conventional done channel — a cancellation
// receive, not a leak.
func SpawnDoneChan(done chan struct{}) {
	go func() {
		work()
		<-done
	}()
}

// SpawnNamedLeaky spawns a named in-package function with no shutdown
// path at all.
func SpawnNamedLeaky() {
	go spin() // want "spin has no reachable shutdown mechanism"
}

// spin loops forever.
func spin() {
	for {
		work()
	}
}
