// Package goldenlockorder exercises the lock-order rule: two package
// mutexes taken in opposite orders form a cycle (A -> B in one
// function, B -> A in another), as do two struct locks where one leg
// of the cycle runs through an intra-package call. Locks that every
// path acquires in one consistent order are clean.
package goldenlockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// TakeAB acquires muA then muB.
func TakeAB() {
	muA.Lock()
	muB.Lock() // want "conflicting orders"
	muB.Unlock()
	muA.Unlock()
}

// TakeBA acquires muB then muA — the reverse order.
func TakeBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// Store and Cache deadlock through a call: Store.Flush holds Store.mu
// across a call that takes Cache.mu, while Cache.Evict holds Cache.mu
// across a direct acquisition of Store.mu.
type Store struct {
	mu    sync.Mutex
	cache *Cache
}

// Cache is the second lock holder.
type Cache struct {
	mu    sync.Mutex
	store *Store
}

// Flush holds Store.mu across a call into the cache.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.purge() // want "conflicting orders"
}

// purge acquires Cache.mu.
func (c *Cache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
}

// Evict holds Cache.mu and then takes Store.mu directly.
func (c *Cache) Evict() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store.mu.Lock()
	c.store.mu.Unlock()
}

// Consistent order: every path takes muC before muD — no cycle.
var (
	muC sync.Mutex
	muD sync.Mutex
)

// FirstCD acquires muC then muD.
func FirstCD() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

// SecondCD also acquires muC then muD.
func SecondCD() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	defer muD.Unlock()
}
