// Package goldenmetrics exercises the metric-discipline rule: catalog
// naming, kind-correct suffixes, constant names, and registration
// outside loops.
package goldenmetrics

import "etap/internal/obs"

// Good is a conforming counter.
var Good = obs.Default.Counter("etap_golden_events_total", "Events seen.")

// GoodGauge is a conforming gauge.
var GoodGauge = obs.Default.Gauge("etap_golden_depth", "Current depth.")

// BadPrefix breaks the etap_ naming scheme.
var BadPrefix = obs.Default.Counter("golden_events_total", "Events seen.") // want "does not match the catalog naming scheme"

// BadCounter lacks the _total suffix.
var BadCounter = obs.Default.Counter("etap_golden_events", "Events seen.") // want "must end in _total"

// BadGauge carries the counter-only suffix.
var BadGauge = obs.Default.Gauge("etap_golden_depth_total", "Current depth.") // want "must not end in _total"

// Register builds a series name at run time.
func Register(name string) {
	obs.Default.Counter(name, "Dynamic series.") // want "compile-time constant"
}

// RegisterAll registers the same series once per iteration.
func RegisterAll(names []string) {
	for range names {
		obs.Default.Counter("etap_golden_loop_total", "Loop series.") // want "inside a loop"
	}
}
