// Package goldenctx exercises the context-plumbing rule: exported
// fetch/crawl/search surfaces must take context.Context first, and
// internal code must not mint root contexts.
package goldenctx

import "context"

// Client is an I/O-shaped surface.
type Client struct{}

// Fetch lacks the context parameter.
func (c *Client) Fetch(url string) error { // want "method Fetch"
	return nil
}

// Search takes context first.
func (c *Client) Search(ctx context.Context, q string) error {
	return ctx.Err()
}

// Fetcher abstracts page retrieval.
type Fetcher interface {
	// Fetch retrieves one URL.
	Fetch(url string) error // want "interface method Fetch"
}

// Prefetcher sounds similar but Fetch is not a complete word in it, so
// the rule leaves it alone.
func Prefetcher() {}

// Crawl is the package-level crawl entry point.
func Crawl(ctx context.Context, seeds []string) error {
	return ctx.Err()
}

// Root severs the caller's cancellation chain.
func Root() context.Context {
	return context.Background() // want "mints a root context"
}
