package annotate

import (
	"testing"

	"etap/internal/corpus"
	"etap/internal/ner"
)

// Pipeline-level property: annotating every sentence of a generated
// world never produces an empty-text unit, unknown entity category, or a
// unit that is both entity and POS.
func TestAnnotateCorpusInvariants(t *testing.T) {
	docs := corpus.NewGenerator(corpus.Config{
		Seed: 201, RelevantPerDriver: 10, BackgroundDocs: 30,
		HardNegativePerDriver: 5, FamousEventDocs: 2,
	}).World()
	valid := map[ner.Category]bool{"": true}
	for _, c := range ner.Categories {
		valid[c] = true
	}
	a := New(nil)
	units := 0
	for _, d := range docs {
		for _, s := range d.Sentences {
			for _, u := range a.Annotate(s.Text) {
				units++
				if u.Text == "" {
					t.Fatalf("empty unit in %q", s.Text)
				}
				if !valid[u.Entity] {
					t.Fatalf("unknown category %q", u.Entity)
				}
				if u.IsEntity() && u.POS != "" {
					t.Fatalf("unit is both entity and POS: %+v", u)
				}
				if !u.IsEntity() && u.POS == "" {
					t.Fatalf("unit with neither entity nor POS: %+v", u)
				}
			}
		}
	}
	if units < 1000 {
		t.Fatalf("only %d units annotated", units)
	}
}

// Annotation coverage: across a generated world, a healthy share of
// trigger sentences must contain the entities their driver's filter
// needs (the recognizer is the pipeline's foundation).
func TestAnnotateTriggerCoverage(t *testing.T) {
	gen := corpus.NewGenerator(corpus.Config{
		Seed: 202, RelevantPerDriver: 30, BackgroundDocs: 10,
		HardNegativePerDriver: 2, FamousEventDocs: 2,
	})
	a := New(nil)
	needs := map[corpus.Driver]ner.Category{
		corpus.MergersAcquisitions: ner.ORG,
		corpus.ChangeInManagement:  ner.DESIG,
		corpus.RevenueGrowth:       ner.ORG,
	}
	for _, docsDriver := range []corpus.Driver{
		corpus.MergersAcquisitions, corpus.ChangeInManagement, corpus.RevenueGrowth,
	} {
		total, hit := 0, 0
		for i := 0; i < 20; i++ {
			doc := gen.RelevantDoc(docsDriver)
			for _, s := range doc.Sentences {
				if s.Driver != docsDriver {
					continue
				}
				total++
				if EntityCategories(a.Annotate(s.Text))[needs[docsDriver]] {
					hit++
				}
			}
		}
		if total == 0 || float64(hit)/float64(total) < 0.7 {
			t.Errorf("%s: %d/%d trigger sentences carry %s",
				docsDriver, hit, total, needs[docsDriver])
		}
	}
}
