// Package annotate combines the named-entity recognizer and the
// part-of-speech tagger into ETAP's annotator component (Figure 2): every
// snippet is annotated before classification, and "any entity that did not
// fall in the above categories, was assigned a part-of-speech category".
package annotate

import (
	"strings"

	"etap/internal/ner"
	"etap/internal/pos"
	"etap/internal/textproc"
)

// Unit is one annotated unit of a snippet: either a recognized entity
// (possibly spanning several tokens, collapsed into one unit) or a single
// word with its part-of-speech category.
type Unit struct {
	// Text is the surface text of the unit (entity span or word).
	Text string
	// Entity is the named-entity category, or "" for non-entity units.
	Entity ner.Category
	// POS is the coarse part-of-speech tag; valid when Entity == "".
	POS pos.Tag
}

// IsEntity reports whether the unit is a named entity.
func (u Unit) IsEntity() bool { return u.Entity != "" }

// Lower returns the lower-cased surface text.
func (u Unit) Lower() string { return strings.ToLower(u.Text) }

// Annotator runs NER first and fills the gaps with POS tags.
type Annotator struct {
	rec *ner.Recognizer
}

// New builds an annotator around the given recognizer. A nil recognizer
// gets the default one.
func New(rec *ner.Recognizer) *Annotator {
	if rec == nil {
		rec = ner.NewRecognizer()
	}
	return &Annotator{rec: rec}
}

// Annotate tokenizes text, recognizes entities, collapses each entity
// span into a single unit, and tags the remaining word tokens with their
// coarse part-of-speech category. Punctuation and stray symbols are
// dropped: they carry no signal for trigger-event classification.
func (a *Annotator) Annotate(text string) []Unit {
	tokens := textproc.Tokenize(text)
	entities := a.rec.Recognize(tokens)
	tagged := pos.TagTokens(tokens)

	units := make([]Unit, 0, len(tokens))
	ei := 0
	for i := 0; i < len(tokens); {
		if ei < len(entities) && entities[ei].TokenStart == i {
			e := entities[ei]
			units = append(units, Unit{Text: e.Text, Entity: e.Category})
			i = e.TokenEnd
			ei++
			continue
		}
		t := tagged[i]
		if t.Token.Kind == textproc.KindWord {
			units = append(units, Unit{Text: t.Token.Text, POS: t.Tag.Coarse()})
		}
		// numbers outside entities cannot occur (CNT catches them);
		// punctuation and symbols are dropped.
		i++
	}
	return units
}

// EntityCategories returns the set of entity categories present in units.
// The training-data filters of Section 3.3.1 ("Designation AND (Person OR
// Organization)") are evaluated against this set.
func EntityCategories(units []Unit) map[ner.Category]bool {
	out := make(map[ner.Category]bool)
	for _, u := range units {
		if u.IsEntity() {
			out[u.Entity] = true
		}
	}
	return out
}

// CountEntities returns the number of entity units with the given
// category.
func CountEntities(units []Unit, cat ner.Category) int {
	n := 0
	for _, u := range units {
		if u.Entity == cat {
			n++
		}
	}
	return n
}
