package annotate

import (
	"testing"

	"etap/internal/ner"
	"etap/internal/pos"
)

func TestAnnotateMixesEntitiesAndPOS(t *testing.T) {
	a := New(nil)
	units := a.Annotate("IBM acquired Daksh for $160 million.")
	// Expected: ORG, vb(acquired), ORG, CURRENCY ("for" is IN).
	var cats []string
	for _, u := range units {
		if u.IsEntity() {
			cats = append(cats, string(u.Entity))
		} else {
			cats = append(cats, string(u.POS))
		}
	}
	want := []string{"ORG", "vb", "ORG", "in", "CURRENCY"}
	if len(cats) != len(want) {
		t.Fatalf("units = %v, want %v", cats, want)
	}
	for i := range want {
		if cats[i] != want[i] {
			t.Errorf("unit %d = %q, want %q", i, cats[i], want[i])
		}
	}
}

func TestAnnotateCollapsesEntitySpan(t *testing.T) {
	a := New(nil)
	units := a.Annotate("The new Chief Executive Officer arrived.")
	var desig []Unit
	for _, u := range units {
		if u.Entity == ner.DESIG {
			desig = append(desig, u)
		}
	}
	if len(desig) != 1 || desig[0].Text != "Chief Executive Officer" {
		t.Fatalf("desig units = %+v", desig)
	}
}

func TestAnnotateDropsPunctuation(t *testing.T) {
	a := New(nil)
	units := a.Annotate("Profits, however, fell.")
	for _, u := range units {
		if u.Text == "," || u.Text == "." {
			t.Errorf("punctuation survived: %+v", u)
		}
	}
}

func TestAnnotatePOSCoarse(t *testing.T) {
	a := New(nil)
	units := a.Annotate("The company announced results quickly.")
	byText := map[string]pos.Tag{}
	for _, u := range units {
		if !u.IsEntity() {
			byText[u.Lower()] = u.POS
		}
	}
	if byText["announced"] != pos.TagVB {
		t.Errorf("announced: %q, want coarse vb", byText["announced"])
	}
	if byText["quickly"] != pos.TagRB {
		t.Errorf("quickly: %q, want rb", byText["quickly"])
	}
}

func TestEntityCategories(t *testing.T) {
	a := New(nil)
	units := a.Annotate("Mr. Smith, the new CEO of Halcyon, arrived in Boston.")
	cats := EntityCategories(units)
	for _, want := range []ner.Category{ner.PRSN, ner.DESIG, ner.ORG, ner.PLC} {
		if !cats[want] {
			t.Errorf("missing category %s in %v", want, cats)
		}
	}
}

func TestCountEntities(t *testing.T) {
	a := New(nil)
	units := a.Annotate("IBM acquired Daksh while Oracle watched.")
	if n := CountEntities(units, ner.ORG); n != 3 {
		t.Errorf("ORG count = %d, want 3", n)
	}
	if n := CountEntities(units, ner.PRSN); n != 0 {
		t.Errorf("PRSN count = %d, want 0", n)
	}
}

func TestAnnotateEmpty(t *testing.T) {
	a := New(nil)
	if units := a.Annotate(""); len(units) != 0 {
		t.Errorf("empty: %v", units)
	}
}

func TestAnnotateGeneralizationExample(t *testing.T) {
	// The paper's generalization example: "IBM made profits of $5 billion
	// in the year 1996" → ORGANIZATION ... CURRENCY ... YEAR.
	a := New(nil)
	units := a.Annotate("IBM made profits of $5 billion in the year 1996")
	cats := EntityCategories(units)
	if !cats[ner.ORG] || !cats[ner.CURRENCY] || !cats[ner.YEAR] {
		t.Fatalf("generalization failed: %v (units %+v)", cats, units)
	}
}

func BenchmarkAnnotate(b *testing.B) {
	a := New(nil)
	text := "IBM paid $160 million for Daksh on January 12, 2004 and Mr. Smith, the new CEO, praised the 10% growth in New York."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Annotate(text)
	}
}
