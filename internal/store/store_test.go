package store

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"etap/internal/rank"
)

var t0 = time.Unix(1_120_000_000, 0)

func sampleEvents() []rank.Event {
	return []rank.Event{
		{SnippetID: "d1#0", Driver: "ma", Company: "Acme Corp", Score: 0.9, Text: "Acme buys Widget."},
		{SnippetID: "d1#1", Driver: "ma", Company: "Widget Inc", Score: 0.7, Text: "Widget sold."},
		{SnippetID: "d2#0", Driver: "cim", Company: "Acme", Score: 0.8, Text: "Acme names CEO."},
	}
}

func TestAddAndDedup(t *testing.T) {
	s := New()
	if added := s.Add(sampleEvents(), t0); added != 3 {
		t.Fatalf("added = %d", added)
	}
	// Re-adding refreshes scores but adds nothing.
	again := sampleEvents()
	again[0].Score = 0.95
	if added := s.Add(again, t0.Add(time.Hour)); added != 0 {
		t.Fatalf("re-add created leads: %d", added)
	}
	leads := s.Find(Query{})
	if len(leads) != 3 {
		t.Fatalf("len = %d", len(leads))
	}
	if leads[0].Score != 0.95 {
		t.Errorf("score not refreshed: %v", leads[0].Score)
	}
	if leads[0].FirstSeen != t0.Unix() {
		t.Errorf("FirstSeen changed on re-add")
	}
}

func TestAddSkipsAnonymous(t *testing.T) {
	s := New()
	if added := s.Add([]rank.Event{{Driver: "ma"}}, t0); added != 0 {
		t.Fatalf("added id-less event")
	}
}

func TestFindFilters(t *testing.T) {
	s := New()
	s.Add(sampleEvents(), t0)

	if got := s.Find(Query{Driver: "ma"}); len(got) != 2 {
		t.Errorf("driver filter: %d", len(got))
	}
	// Canonical company match folds "Acme Corp" and "Acme".
	if got := s.Find(Query{Company: "ACME"}); len(got) != 2 {
		t.Errorf("company filter: %d", len(got))
	}
	if got := s.Find(Query{MinScore: 0.85}); len(got) != 1 || got[0].SnippetID != "d1#0" {
		t.Errorf("score filter: %+v", got)
	}
	s.MarkReviewed("d1#0")
	if got := s.Find(Query{Unreviewed: true}); len(got) != 2 {
		t.Errorf("unreviewed filter: %d", len(got))
	}
}

func TestFindSorted(t *testing.T) {
	s := New()
	s.Add(sampleEvents(), t0)
	got := s.Find(Query{})
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("not sorted: %+v", got)
		}
	}
}

func TestMarkReviewedMissing(t *testing.T) {
	s := New()
	if s.MarkReviewed("ghost") {
		t.Fatal("reviewed a phantom lead")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := New()
	s.Add(sampleEvents(), t0)
	s.MarkReviewed("d2#0")

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("lines = %d", lines)
	}
	s2, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("round trip len = %d", s2.Len())
	}
	got := s2.Find(Query{Driver: "cim"})
	if len(got) != 1 || !got[0].Reviewed || got[0].FirstSeen != t0.Unix() {
		t.Fatalf("lead state lost: %+v", got)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{broken\n")); err == nil {
		t.Error("no error for malformed JSON")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"firstSeen":1}` + "\n")); err == nil {
		t.Error("no error for lead without snippet ID")
	}
	// Blank lines are tolerated.
	s, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || s.Len() != 0 {
		t.Errorf("blank lines: %v %d", err, s.Len())
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "leads.jsonl")

	s := New()
	s.Add(sampleEvents(), t0)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("loaded %d", s2.Len())
	}
	// Missing file -> empty store.
	s3, err := LoadFile(filepath.Join(dir, "absent.jsonl"))
	if err != nil || s3.Len() != 0 {
		t.Fatalf("missing file: %v %d", err, s3.Len())
	}
}

func TestSaveLoadRoundTripAfterReview(t *testing.T) {
	// The shutdown-checkpoint contract: MarkReviewed mutations written
	// with SaveFile come back intact from LoadFile — flags, scores,
	// FirstSeen, and insertion order all survive the round trip.
	dir := t.TempDir()
	path := filepath.Join(dir, "leads.jsonl")

	s := New()
	s.Add(sampleEvents(), t0)
	if !s.MarkReviewed("d1#0") || !s.MarkReviewed("d2#0") {
		t.Fatal("marking failed")
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Find(Query{})
	got := loaded.Find(Query{})
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lead %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
	reviewed := map[string]bool{}
	for _, l := range got {
		reviewed[l.SnippetID] = l.Reviewed
	}
	if !reviewed["d1#0"] || !reviewed["d2#0"] || reviewed["d1#1"] {
		t.Fatalf("reviewed flags lost: %v", reviewed)
	}
	// A second save/load of the loaded store is stable (idempotent
	// persistence, no drift across restarts).
	if err := loaded.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got2 := reloaded.Find(Query{})
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("second round trip diverged at %d", i)
		}
	}
}

func TestIncrementalMergeAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "leads.jsonl")

	// Run 1.
	s, _ := LoadFile(path)
	s.Add(sampleEvents()[:2], t0)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Run 2: overlapping events, one new.
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	added := s.Add(sampleEvents(), t0.Add(24*time.Hour))
	if added != 1 {
		t.Fatalf("second run added %d, want 1", added)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	final, _ := LoadFile(path)
	if final.Len() != 3 {
		t.Fatalf("final len = %d", final.Len())
	}
}
