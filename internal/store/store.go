// Package store persists ETAP's outputs: a lead store that accumulates
// extracted trigger events across runs with de-duplication, JSONL
// serialization for downstream CRM systems, and simple querying. The
// paper's sales representatives consume "a ranked list of trigger
// events"; a production deployment needs that list to survive restarts
// and to merge the output of repeated crawls.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"etap/internal/rank"
)

// Lead is a stored trigger event with bookkeeping.
type Lead struct {
	rank.Event
	// FirstSeen is when the event first entered the store (Unix
	// seconds; injected by the caller for determinism in tests).
	FirstSeen int64 `json:"firstSeen"`
	// Reviewed marks leads a domain specialist has validated (Section
	// 4: the ranking component "acts as a precursor to the analysis
	// task").
	Reviewed bool `json:"reviewed"`
}

// Store is an in-memory lead collection with JSONL persistence. Not safe
// for concurrent use; wrap with a mutex if shared.
type Store struct {
	bySnippet map[string]*Lead
	order     []string // insertion order of snippet IDs
}

// New returns an empty store.
func New() *Store {
	return &Store{bySnippet: make(map[string]*Lead)}
}

// Len returns the number of stored leads.
func (s *Store) Len() int { return len(s.order) }

// Add inserts events, de-duplicating by snippet ID. Re-added events keep
// their original FirstSeen and Reviewed flags but refresh the score (a
// re-crawl may re-rank). It reports how many events were new.
func (s *Store) Add(events []rank.Event, now time.Time) int {
	added := 0
	for _, ev := range events {
		if ev.SnippetID == "" {
			continue
		}
		if existing, ok := s.bySnippet[ev.SnippetID]; ok {
			existing.Score = ev.Score
			existing.Orientation = ev.Orientation
			continue
		}
		s.bySnippet[ev.SnippetID] = &Lead{Event: ev, FirstSeen: now.Unix()}
		s.order = append(s.order, ev.SnippetID)
		added++
	}
	return added
}

// MarkReviewed flags a lead as specialist-validated.
func (s *Store) MarkReviewed(snippetID string) bool {
	l, ok := s.bySnippet[snippetID]
	if ok {
		l.Reviewed = true
	}
	return ok
}

// Query filters the stored leads. Zero-valued fields match everything.
type Query struct {
	Driver     string
	Company    string // canonical company match
	MinScore   float64
	Unreviewed bool // only leads not yet reviewed
	// Filter, when non-nil, keeps only leads it returns true for —
	// the hook tenant ICP filtering composes onto the base query.
	Filter func(Lead) bool
}

// Find returns matching leads sorted by descending score (ties by
// snippet ID).
func (s *Store) Find(q Query) []Lead {
	var out []Lead
	for _, id := range s.order {
		l := s.bySnippet[id]
		if q.Driver != "" && l.Driver != q.Driver {
			continue
		}
		if q.Company != "" && !rank.SameCompany(q.Company, l.Company) {
			continue
		}
		if l.Score < q.MinScore {
			continue
		}
		if q.Unreviewed && l.Reviewed {
			continue
		}
		if q.Filter != nil && !q.Filter(*l) {
			continue
		}
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].SnippetID < out[j].SnippetID
	})
	return out
}

// WriteJSONL streams every lead, in insertion order, one JSON object per
// line.
func (s *Store) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, id := range s.order {
		if err := enc.Encode(s.bySnippet[id]); err != nil {
			return fmt.Errorf("store: encoding lead %s: %w", id, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads leads from a JSONL stream into a new store. Duplicate
// snippet IDs keep the first occurrence.
func ReadJSONL(r io.Reader) (*Store, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var l Lead
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("store: line %d: %w", line, err)
		}
		if l.SnippetID == "" {
			return nil, fmt.Errorf("store: line %d: lead without snippet ID", line)
		}
		if _, dup := s.bySnippet[l.SnippetID]; dup {
			continue
		}
		cp := l
		s.bySnippet[l.SnippetID] = &cp
		s.order = append(s.order, l.SnippetID)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: reading: %w", err)
	}
	return s, nil
}

// SaveFile writes the store to path atomically (write + rename).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.WriteJSONL(f); err != nil {
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the write error is what the caller needs
		f.Close()
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the write error is what the caller needs
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the close error is what the caller needs
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a store previously written with SaveFile. A missing
// file yields an empty store (first run).
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return New(), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}
