package obs

import (
	"bytes"
	"context"
	"log/slog"
	"regexp"
	"strings"
	"testing"
	"time"
)

// testTracer builds a deterministic tracer: seeded IDs and a stepping
// clock advancing `step` per reading.
func testTracer(t *testing.T, cfg TracerConfig, step time.Duration) *Tracer {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.Clock == nil {
		now := time.Unix(1_700_000_000, 0)
		cfg.Clock = func() time.Time {
			now = now.Add(step)
			return now
		}
	}
	return NewTracer(cfg)
}

var (
	hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)
	hex16 = regexp.MustCompile(`^[0-9a-f]{16}$`)
)

func TestTraceIDsAndTraceparentFormat(t *testing.T) {
	tr := testTracer(t, TracerConfig{SampleRate: 1}, time.Millisecond)
	dt, root := tr.StartTrace("ingest")
	if !hex32.MatchString(dt.ID()) {
		t.Fatalf("trace ID %q is not 32 hex digits", dt.ID())
	}
	sc := root.Context()
	if !hex16.MatchString(sc.SpanID.String()) {
		t.Fatalf("span ID %q is not 16 hex digits", sc.SpanID.String())
	}
	want := "00-" + dt.ID() + "-" + sc.SpanID.String() + "-01"
	if got := sc.TraceParent(); got != want {
		t.Fatalf("traceparent = %q, want %q", got, want)
	}
	root.End()
}

func TestSpanTreeParentChild(t *testing.T) {
	tr := testTracer(t, TracerConfig{SampleRate: 1}, time.Millisecond)
	dt, root := tr.StartTrace("ingest")
	child := root.Child("extract")
	grand := child.Child("classify")
	grand.SetAttr("driver", "ma")
	grand.End()
	child.End()
	root.End()

	tv, ok := tr.Get(dt.ID())
	if !ok {
		t.Fatal("completed trace not retained at sample rate 1")
	}
	if len(tv.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tv.Spans))
	}
	if tv.Spans[0].Parent != "" {
		t.Fatalf("root span has parent %q", tv.Spans[0].Parent)
	}
	if tv.Spans[1].Parent != tv.Spans[0].ID {
		t.Fatalf("child parent = %q, want root %q", tv.Spans[1].Parent, tv.Spans[0].ID)
	}
	if tv.Spans[2].Parent != tv.Spans[1].ID {
		t.Fatalf("grandchild parent = %q, want child %q", tv.Spans[2].Parent, tv.Spans[1].ID)
	}
	if tv.Spans[2].Attrs["driver"] != "ma" {
		t.Fatalf("grandchild attrs = %v, want driver=ma", tv.Spans[2].Attrs)
	}
	if tv.Status != "ok" {
		t.Fatalf("status = %q, want ok", tv.Status)
	}
	for _, sp := range tv.Spans {
		if !sp.End.After(sp.Start) {
			t.Fatalf("span %s end %v not after start %v", sp.Name, sp.End, sp.Start)
		}
	}
}

func TestTraceCompletesOnLastSpanEnd(t *testing.T) {
	tr := testTracer(t, TracerConfig{SampleRate: 1}, time.Millisecond)
	dt, root := tr.StartTrace("ingest")
	child := root.Child("dispatch")
	root.End()
	if tr.Len() != 0 {
		t.Fatal("trace retained while a span is still open")
	}
	child.End()
	if _, ok := tr.Get(dt.ID()); !ok {
		t.Fatal("trace not retained after its last span ended")
	}
}

func TestTailSamplingRetainsErrorsAndSlow(t *testing.T) {
	reg := NewRegistry()
	tr := testTracer(t, TracerConfig{
		SampleRate:    0, // drop every healthy trace
		SlowThreshold: 50 * time.Millisecond,
		Registry:      reg,
	}, time.Millisecond)

	// Healthy and fast: dropped.
	_, fast := tr.StartTrace("fast")
	fast.End()
	if tr.Len() != 0 {
		t.Fatal("healthy fast trace retained at sample rate 0")
	}

	// Failed: always retained.
	dtErr, bad := tr.StartTrace("bad")
	bad.Fail("boom")
	bad.End()
	tv, ok := tr.Get(dtErr.ID())
	if !ok {
		t.Fatal("errored trace dropped by tail sampling")
	}
	if tv.Status != "error" || tv.Spans[0].Error != "boom" {
		t.Fatalf("errored trace view = %+v", tv)
	}

	// Slow (each clock reading advances 1ms; 60 children ≫ 50ms cut):
	// always retained.
	dtSlow, slow := tr.StartTrace("slow")
	for i := 0; i < 60; i++ {
		slow.Child("step").End()
	}
	slow.End()
	if _, ok := tr.Get(dtSlow.ID()); !ok {
		t.Fatal("slow trace dropped by tail sampling")
	}
}

func TestTailSamplingRateOneKeepsAll(t *testing.T) {
	tr := testTracer(t, TracerConfig{SampleRate: 1}, time.Millisecond)
	for i := 0; i < 10; i++ {
		_, root := tr.StartTrace("t")
		root.End()
	}
	if tr.Len() != 10 {
		t.Fatalf("retained %d traces, want 10 at sample rate 1", tr.Len())
	}
}

func TestTraceStoreRingEvictsOldest(t *testing.T) {
	tr := testTracer(t, TracerConfig{Capacity: 2, SampleRate: 1}, time.Millisecond)
	var ids []string
	for i := 0; i < 3; i++ {
		dt, root := tr.StartTrace("t")
		ids = append(ids, dt.ID())
		root.End()
	}
	if tr.Len() != 2 {
		t.Fatalf("store holds %d, want capacity 2", tr.Len())
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest trace not evicted")
	}
	if _, ok := tr.Get(ids[2]); !ok {
		t.Fatal("newest trace missing")
	}
	list := tr.List(TraceFilter{})
	if len(list) != 2 || list[0].ID != ids[2] || list[1].ID != ids[1] {
		t.Fatalf("List order = %+v, want newest first %v then %v", list, ids[2], ids[1])
	}
}

func TestListFilters(t *testing.T) {
	tr := testTracer(t, TracerConfig{SampleRate: 1}, time.Millisecond)
	_, ok1 := tr.StartTrace("quick")
	ok1.End()
	_, bad := tr.StartTrace("broken")
	bad.Fail("x")
	bad.End()
	_, slow := tr.StartTrace("slow")
	for i := 0; i < 30; i++ {
		slow.Child("step").End()
	}
	slow.End()

	if got := len(tr.List(TraceFilter{})); got != 3 {
		t.Fatalf("unfiltered = %d, want 3", got)
	}
	errs := tr.List(TraceFilter{Status: "error"})
	if len(errs) != 1 || errs[0].Name != "broken" {
		t.Fatalf("status=error list = %+v", errs)
	}
	longs := tr.List(TraceFilter{MinDuration: 20 * time.Millisecond})
	if len(longs) != 1 || longs[0].Name != "slow" {
		t.Fatalf("min-duration list = %+v", longs)
	}
}

func TestSpanCapDetachesNotCrashes(t *testing.T) {
	tr := testTracer(t, TracerConfig{SampleRate: 1}, time.Millisecond)
	dt, root := tr.StartTrace("big")
	for i := 0; i < maxTraceSpans+10; i++ {
		sp := root.Child("s")
		if sp != nil {
			// Detached spans past the cap still mint usable IDs.
			if sp.Context().TraceID.IsZero() {
				t.Fatal("detached span lost its trace ID")
			}
		}
		sp.End()
	}
	root.End()
	tv, ok := tr.Get(dt.ID())
	if !ok {
		t.Fatal("capped trace not retained")
	}
	if len(tv.Spans) != maxTraceSpans {
		t.Fatalf("recorded %d spans, want cap %d", len(tv.Spans), maxTraceSpans)
	}
	if tv.TruncatedSpans != 11 {
		t.Fatalf("truncated = %d, want 11", tv.TruncatedSpans)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	dt, root := tr.StartTrace("ingest")
	if dt != nil || root != nil {
		t.Fatal("nil tracer minted a trace")
	}
	if dt.ID() != "" {
		t.Fatalf("nil trace ID = %q", dt.ID())
	}
	// Every downstream call must tolerate the nils.
	root.SetAttr("k", "v")
	root.Fail("x")
	child := root.Child("c")
	child.End()
	root.End()
	if tr.Len() != 0 || tr.List(TraceFilter{}) != nil {
		t.Fatal("nil tracer retained something")
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("nil tracer resolved a trace")
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := testTracer(t, TracerConfig{SampleRate: 1}, time.Millisecond)
	_, root := tr.StartTrace("ingest")
	ctx := ContextWithDSpan(context.Background(), root)
	if DSpanFrom(ctx) != root {
		t.Fatal("DSpanFrom did not return the attached span")
	}
	sc, ok := SpanContextFrom(ctx)
	if !ok || sc != root.Context() {
		t.Fatalf("SpanContextFrom = %+v, %v", sc, ok)
	}
	cctx, child := StartDSpan(ctx, "extract")
	if child == nil || DSpanFrom(cctx) != child {
		t.Fatal("StartDSpan did not attach the child")
	}
	child.End()
	root.End()

	// Bare context: no span, no allocation of one.
	bctx, none := StartDSpan(context.Background(), "extract")
	if none != nil || DSpanFrom(bctx) != nil {
		t.Fatal("StartDSpan invented a span on a bare context")
	}
	if _, ok := SpanContextFrom(context.Background()); ok {
		t.Fatal("SpanContextFrom found a span on a bare context")
	}
}

func TestStartSpanFeedsDSpanTree(t *testing.T) {
	reg := NewRegistry()
	tr := testTracer(t, TracerConfig{SampleRate: 1, Registry: reg}, time.Millisecond)
	dt, root := tr.StartTrace("ingest")
	ctx := ContextWithDSpan(context.Background(), root)
	// The aggregate span API, handed a ctx carrying a DSpan, contributes
	// to the distributed tree too.
	sp := StartSpan(ctx, "classify")
	sp.AddItems(3)
	sp.End()
	root.End()
	tv, ok := tr.Get(dt.ID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(tv.Spans) != 2 || tv.Spans[1].Name != "classify" {
		t.Fatalf("spans = %+v, want root + classify", tv.Spans)
	}
}

func TestTraceHandlerStampsLogLines(t *testing.T) {
	tr := testTracer(t, TracerConfig{SampleRate: 1}, time.Millisecond)
	_, root := tr.StartTrace("ingest")
	defer root.End()
	ctx := ContextWithDSpan(context.Background(), root)

	var buf bytes.Buffer
	log := slog.New(NewTraceHandler(slog.NewTextHandler(&buf, nil)))
	log.InfoContext(ctx, "processing")
	line := buf.String()
	sc := root.Context()
	if !strings.Contains(line, "trace_id="+sc.TraceID.String()) {
		t.Fatalf("log line missing trace_id: %s", line)
	}
	if !strings.Contains(line, "span_id="+sc.SpanID.String()) {
		t.Fatalf("log line missing span_id: %s", line)
	}

	buf.Reset()
	log.Info("no span")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("span-less log line grew a trace_id: %s", buf.String())
	}

	// WithAttrs/WithGroup must preserve the wrapper.
	buf.Reset()
	log.With("k", "v").WithGroup("g").InfoContext(ctx, "grouped")
	if !strings.Contains(buf.String(), "trace_id=") {
		t.Fatalf("derived logger lost the trace wrapper: %s", buf.String())
	}
}

func TestTracerMetrics(t *testing.T) {
	reg := NewRegistry()
	tr := testTracer(t, TracerConfig{SampleRate: 0, Registry: reg}, time.Millisecond)
	_, a := tr.StartTrace("a")
	a.End() // healthy → discarded
	_, b := tr.StartTrace("b")
	b.Fail("x")
	b.End() // errored → retained
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"etap_trace_started_total 2",
		`etap_trace_retained_total{reason="error"} 1`,
		"etap_trace_discarded_total 1",
		"etap_trace_store_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestDeterministicSeedReproducesIDs(t *testing.T) {
	mk := func() []string {
		tr := testTracer(t, TracerConfig{SampleRate: 1, Seed: 7}, time.Millisecond)
		var out []string
		for i := 0; i < 3; i++ {
			dt, root := tr.StartTrace("t")
			out = append(out, dt.ID(), root.Context().SpanID.String())
			root.End()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded run diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.5, 1, 5})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", got)
	}
	// 90 fast, 10 slow: p50 lands in the first bucket, p99 in (1, 5].
	for i := 0; i < 90; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		h.Observe(2)
	}
	if got := h.Quantile(0.5); got <= 0 || got > 0.1 {
		t.Fatalf("p50 = %v, want within (0, 0.1]", got)
	}
	if got := h.Quantile(0.99); got <= 1 || got > 5 {
		t.Fatalf("p99 = %v, want within (1, 5]", got)
	}
	// Values past every finite bound clamp to the last finite bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow-bucket p99 = %v, want clamp to 1", got)
	}
}
