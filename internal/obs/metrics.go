// Package obs is the pipeline-wide observability layer: a
// dependency-free metrics substrate (atomic counters, gauges and
// fixed-bucket histograms collected in a Registry that renders both
// Prometheus text exposition and JSON snapshots) plus a lightweight
// span/stage-trace API for accounting per-stage wall time and item
// counts across a whole extraction run.
//
// Every pipeline package reports into the process-wide Default registry;
// etapd exposes it at GET /metrics (Prometheus) and GET /debug/vars
// (JSON). All metric types are safe for concurrent use and a metric
// update is a single atomic add — cheap enough for per-snippet hot
// paths (see BenchmarkExtractObservability).
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programmer error; they wrap).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with cumulative bucket counts,
// a total count and a sum — the Prometheus histogram data model.
// Buckets are upper bounds in increasing order; an implicit +Inf bucket
// always exists (the total count).
//
// Bucket, count and sum are separate atomics, not one locked record,
// but update and read orders are arranged so a scrape concurrent with
// Observe still sees a coherent triplet: Observe writes sum, then
// count, then the bucket, while renders read buckets, then count, then
// sum. Every observation visible in a bucket is therefore in the
// exposed +Inf, and every counted observation has its value in the
// exposed sum — the rendered average never undercounts, however the
// scrape races Observe (TestHistogramSumNeverLagsCount).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // one per bound; +Inf is implicit via count
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS loop
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// sum before count before bucket — the reverse of the render-side
	// read order; see the type comment for the invariant this buys.
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
}

// ObserveSince records the seconds elapsed since start — the timer form:
//
//	defer h.ObserveSince(time.Now())
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshotBuckets returns cumulative per-bound counts (Prometheus
// `le` semantics, excluding +Inf which equals Count).
func (h *Histogram) snapshotBuckets() []uint64 {
	out := make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Quantile estimates the q-th quantile (0 < q <= 1) the way Prometheus
// histogram_quantile does: find the bucket holding the target rank and
// interpolate linearly within its bounds. Observations past the last
// finite bucket clamp to that bound. Returns 0 on an empty histogram
// and the mean when the histogram has no buckets.
func (h *Histogram) Quantile(q float64) float64 {
	cum := h.snapshotBuckets()
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	if len(h.bounds) == 0 {
		return h.Sum() / float64(count)
	}
	target := uint64(math.Ceil(q * float64(count)))
	if target < 1 {
		target = 1
	}
	var prev uint64
	lower := 0.0
	for i, c := range cum {
		if c >= target {
			upper := h.bounds[i]
			frac := float64(target-prev) / float64(c-prev)
			return lower + frac*(upper-lower)
		}
		prev = c
		lower = h.bounds[i]
	}
	// Target rank sits in the +Inf bucket; the last finite bound is the
	// best estimate available.
	return h.bounds[len(h.bounds)-1]
}

// ExponentialBuckets returns n upper bounds starting at start, each
// factor times the previous — the standard latency bucket layout.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefDurationBuckets spans 1µs to ~17s — wide enough for both
// per-snippet stage timings (microseconds) and whole HTTP requests.
var DefDurationBuckets = ExponentialBuckets(1e-6, 4, 13)
