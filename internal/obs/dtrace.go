// Distributed per-document tracing: the request-scoped complement to
// the aggregate Trace/Span API. A Tracer mints one DTrace per document
// accepted by POST /ingest; the trace's span tree (parent/child IDs,
// wall-clock timestamps, status, attributes) follows the document
// through extraction, subscription matching, and every webhook
// delivery, and the pair (trace ID, span ID) renders as a W3C
// traceparent header on the outgoing request. Completed traces are
// tail-sampled into a bounded in-memory store — errors and slow
// traces always, healthy ones probabilistically — served by etapd at
// GET /debug/traces and GET /debug/traces/{id}.
//
// The D prefix (DTrace, DSpan) distinguishes the distributed,
// per-document types from the aggregate Trace/Span pair, which keeps
// its API untouched; StartSpan additionally contributes a DSpan when
// its context carries one, so batch instrumentation feeds both layers.
package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"slices"
	"sync"
	"time"
)

// TraceID identifies one distributed trace: 16 bytes rendered as 32
// hex digits, the W3C trace-context trace-id.
type TraceID [16]byte

// String renders the ID as 32 lower-case hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID identifies one span within a trace: 8 bytes rendered as 16
// hex digits, the W3C trace-context parent-id.
type SpanID [8]byte

// String renders the ID as 16 lower-case hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext names a position inside one trace — the pair a W3C
// traceparent header carries.
type SpanContext struct {
	// TraceID is the enclosing trace.
	TraceID TraceID
	// SpanID is the current span within it.
	SpanID SpanID
}

// TraceParent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (sc SpanContext) TraceParent() string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// splitmix64 advances *s and returns the next well-mixed 64-bit value.
// The caller owns synchronization of s.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// idSource is a locked splitmix64 stream: cheap, well-mixed 64-bit
// values for trace IDs and sampling decisions, reproducible from a
// seed. Span IDs do NOT come from here — each DTrace carries its own
// stream (seeded from this one) advanced under the trace's existing
// lock, so concurrent workers minting spans never contend on a global
// mutex.
type idSource struct {
	mu sync.Mutex
	s  uint64
}

func (g *idSource) next() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return splitmix64(&g.s)
}

// float01 draws a uniform value in [0, 1).
func (g *idSource) float01() float64 {
	return float64(g.next()>>11) / (1 << 53)
}

// TracerConfig tunes a Tracer. The zero value keeps 256 traces,
// retains no healthy traces (error and slow ones are always kept), and
// uses the wall clock.
type TracerConfig struct {
	// Capacity bounds the retained-trace store; 0 means 256. When full,
	// the oldest retained trace is evicted to admit the newest.
	Capacity int
	// SampleRate is the probability a completed healthy trace — no
	// failed span, not slow — survives tail sampling. 0 keeps none,
	// 1 keeps all; values outside [0, 1] clamp.
	SampleRate float64
	// SlowThreshold fixes the duration at or above which a completed
	// trace is always retained; 0 derives the cut adaptively as the p90
	// of recent completions (once enough have been seen).
	SlowThreshold time.Duration
	// Seed makes IDs and sampling decisions reproducible; 0 draws a
	// random seed per tracer.
	Seed int64
	// Clock supplies span timestamps; nil means time.Now.
	Clock func() time.Time
	// Registry receives the etap_trace_* series; nil means Default.
	Registry *Registry
}

// tracer tuning bounds.
const (
	defaultTraceCapacity = 256
	// maxTraceSpans caps one trace's span tree; spans past the cap are
	// detached (valid IDs, recorded nowhere) so a pathological fan-out
	// cannot grow a trace without bound.
	maxTraceSpans = 512
	// slowWindow is how many recent completions feed the adaptive slow
	// cut; slowMinSamples gates it and slowEvery paces recomputation.
	slowWindow     = 128
	slowMinSamples = 32
	slowEvery      = 16
)

// Tracer mints per-document traces and tail-samples completed ones
// into a bounded store. Safe for concurrent use; a nil *Tracer is a
// valid no-op (StartTrace returns nils, and every DTrace/DSpan method
// tolerates nil receivers), so call sites need no enabled/disabled
// branches.
type Tracer struct {
	clock      func() time.Time
	sampleRate float64
	fixedSlow  time.Duration
	ids        idSource

	mu          sync.Mutex
	store       []*DTrace // ring buffer, capacity len(store)
	head        int       // next write slot
	n           int       // live entries
	recent      [slowWindow]time.Duration
	scratch     [slowWindow]time.Duration // percentile workspace, avoids per-recompute allocation
	recentN     int
	completions uint64
	slowCut     time.Duration // current adaptive cut; 0 means not yet known

	started         *Counter
	retainedErr     *Counter
	retainedSlow    *Counter
	retainedSampled *Counter
	discarded       *Counter
	entries         *Gauge
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	clock := cfg.Clock
	if clock == nil {
		//etaplint:ignore determinism -- wall-clock default for production; tests inject a fixed Clock
		clock = time.Now
	}
	rate := cfg.SampleRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = Default
	}
	t := &Tracer{
		clock:      clock,
		sampleRate: rate,
		fixedSlow:  cfg.SlowThreshold,
		store:      make([]*DTrace, capacity),
		started: reg.Counter("etap_trace_started_total",
			"Per-document traces minted."),
		retainedErr: reg.Counter("etap_trace_retained_total",
			"Completed traces kept by tail sampling, by reason.", "reason", "error"),
		retainedSlow: reg.Counter("etap_trace_retained_total",
			"Completed traces kept by tail sampling, by reason.", "reason", "slow"),
		retainedSampled: reg.Counter("etap_trace_retained_total",
			"Completed traces kept by tail sampling, by reason.", "reason", "sampled"),
		discarded: reg.Counter("etap_trace_discarded_total",
			"Completed healthy traces dropped by tail sampling."),
		entries: reg.Gauge("etap_trace_store_entries",
			"Traces currently retained in the store."),
	}
	seed := uint64(cfg.Seed)
	if cfg.Seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			seed = binary.BigEndian.Uint64(b[:])
		} else {
			// crypto/rand failing is effectively fatal elsewhere; a fixed
			// fallback seed only risks colliding trace IDs, never safety.
			seed = 0x9e3779b97f4a7c15
		}
	}
	t.ids.s = seed
	return t
}

// StartTrace mints a new trace and its root span. On a nil Tracer both
// results are nil and the whole span-tree API degrades to no-ops.
func (t *Tracer) StartTrace(name string) (*DTrace, *DSpan) {
	if t == nil {
		return nil, nil
	}
	tr := &DTrace{tracer: t, name: name, start: t.clock()}
	t.ids.mu.Lock()
	binary.BigEndian.PutUint64(tr.id[:8], splitmix64(&t.ids.s))
	binary.BigEndian.PutUint64(tr.id[8:], splitmix64(&t.ids.s))
	tr.spanSeed = splitmix64(&t.ids.s)
	t.ids.mu.Unlock()
	tr.idHex = tr.id.String()
	tr.spans = make([]*DSpan, 0, 8)
	t.started.Inc()
	return tr, tr.newSpanAt(SpanID{}, name, tr.start)
}

// finish applies the tail-sampling decision to a completed trace.
func (t *Tracer) finish(tr *DTrace) {
	dur := tr.end.Sub(tr.start)
	t.mu.Lock()
	t.recent[int(t.completions)%slowWindow] = dur
	t.completions++
	if t.recentN < slowWindow {
		t.recentN++
	}
	if t.fixedSlow <= 0 && t.recentN >= slowMinSamples && t.completions%slowEvery == 0 {
		t.slowCut = t.percentileLocked(0.9)
	}
	slowAt := t.fixedSlow
	if slowAt <= 0 {
		slowAt = t.slowCut
	}
	var kept *Counter
	switch {
	case tr.failed:
		kept = t.retainedErr
	case slowAt > 0 && dur >= slowAt:
		kept = t.retainedSlow
	case t.sampleRate > 0 && t.ids.float01() < t.sampleRate:
		kept = t.retainedSampled
	}
	if kept == nil {
		t.mu.Unlock()
		t.discarded.Inc()
		return
	}
	t.store[t.head] = tr
	t.head = (t.head + 1) % len(t.store)
	if t.n < len(t.store) {
		t.n++
	}
	entries := t.n
	t.mu.Unlock()
	kept.Inc()
	t.entries.Set(int64(entries))
}

// percentileLocked computes the q-th percentile of the recent-duration
// window; callers hold t.mu.
func (t *Tracer) percentileLocked(q float64) time.Duration {
	tmp := t.scratch[:t.recentN]
	copy(tmp, t.recent[:t.recentN])
	slices.Sort(tmp)
	idx := int(q * float64(len(tmp)))
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// snapshot returns the retained traces, newest first.
func (t *Tracer) snapshot() []*DTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*DTrace, 0, t.n)
	for i := 0; i < t.n; i++ {
		idx := (t.head - 1 - i + len(t.store)) % len(t.store)
		out = append(out, t.store[idx])
	}
	return out
}

// TraceFilter selects retained traces for List.
type TraceFilter struct {
	// Status keeps only traces with this status ("ok" or "error");
	// empty keeps all.
	Status string
	// MinDuration keeps only traces at least this long.
	MinDuration time.Duration
}

// TraceSummary is one retained trace's List entry.
type TraceSummary struct {
	// ID is the hex trace ID (GET /debug/traces/{id} resolves it).
	ID string `json:"id"`
	// Name is the root span's name.
	Name string `json:"name"`
	// Start is when the trace began.
	Start time.Time `json:"start"`
	// DurationMS is first-span-start to last-span-end, in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Status is "error" when any span failed, else "ok".
	Status string `json:"status"`
	// SpanCount is the number of recorded spans.
	SpanCount int `json:"spans"`
}

// List returns summaries of retained traces matching the filter,
// newest first. A nil Tracer returns nil.
func (t *Tracer) List(f TraceFilter) []TraceSummary {
	if t == nil {
		return nil
	}
	var out []TraceSummary
	for _, tr := range t.snapshot() {
		s := tr.summary()
		if f.Status != "" && s.Status != f.Status {
			continue
		}
		if s.DurationMS < f.MinDuration.Seconds()*1e3 {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Get returns the full span tree of one retained trace by hex ID.
func (t *Tracer) Get(id string) (TraceView, bool) {
	if t == nil {
		return TraceView{}, false
	}
	for _, tr := range t.snapshot() {
		if tr.id.String() == id {
			return tr.view(), true
		}
	}
	return TraceView{}, false
}

// DTrace is one document's distributed trace: a tree of DSpans sharing
// a TraceID. It completes — and becomes a tail-sampling candidate —
// when its last open span ends.
type DTrace struct {
	tracer *Tracer
	id     TraceID
	idHex  string // id.String(), rendered once — the ID is re-read per alert/frame
	name   string
	start  time.Time

	mu        sync.Mutex
	spanSeed  uint64 // private splitmix64 stream for span IDs
	spans     []*DSpan
	truncated int
	open      int
	failed    bool
	done      bool
	end       time.Time
}

// ID returns the hex trace ID; "" on a nil trace.
func (t *DTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.idHex
}

// newSpan opens a child span under parent. Past maxTraceSpans the span
// is detached: its IDs stay valid (traceparent still renders) but it
// is not recorded.
func (t *DTrace) newSpan(parent SpanID, name string) *DSpan {
	return t.newSpanAt(parent, name, t.tracer.clock())
}

func (t *DTrace) newSpanAt(parent SpanID, name string, start time.Time) *DSpan {
	sp := &DSpan{traceID: t.id, parent: parent, name: name, start: start}
	sp.attrs = sp.attrBuf[:0]
	t.mu.Lock()
	binary.BigEndian.PutUint64(sp.id[:], splitmix64(&t.spanSeed))
	if t.done || len(t.spans) >= maxTraceSpans {
		t.truncated++
		t.mu.Unlock()
		return sp
	}
	sp.tr = t
	t.spans = append(t.spans, sp)
	t.open++
	t.mu.Unlock()
	return sp
}

// spanEnded retires one open span ending at `at`; the last one out
// completes the trace and hands it to the tracer's tail sampler.
func (t *DTrace) spanEnded(failed bool, at time.Time) {
	t.mu.Lock()
	if failed {
		t.failed = true
	}
	t.open--
	complete := t.open == 0 && !t.done
	if complete {
		t.done = true
		t.end = at
	}
	t.mu.Unlock()
	if complete {
		t.tracer.finish(t)
	}
}

func (t *DTrace) status() string {
	if t.failed {
		return "error"
	}
	return "ok"
}

// summary builds the List entry; only called on completed traces.
func (t *DTrace) summary() TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSummary{
		ID:         t.id.String(),
		Name:       t.name,
		Start:      t.start,
		DurationMS: t.end.Sub(t.start).Seconds() * 1e3,
		Status:     t.status(),
		SpanCount:  len(t.spans),
	}
}

// TraceView is one trace's full span tree — the GET /debug/traces/{id}
// document.
type TraceView struct {
	// ID is the hex trace ID.
	ID string `json:"id"`
	// Name is the root span's name.
	Name string `json:"name"`
	// Start is when the trace began.
	Start time.Time `json:"start"`
	// DurationMS is first-span-start to last-span-end, in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Status is "error" when any span failed, else "ok".
	Status string `json:"status"`
	// TruncatedSpans counts spans dropped past the per-trace cap.
	TruncatedSpans int `json:"truncated_spans,omitempty"`
	// Spans lists every recorded span in creation order; parent IDs
	// encode the tree (the root span has none).
	Spans []SpanView `json:"spans"`
}

// SpanView is one span of a TraceView.
type SpanView struct {
	// ID is the hex span ID.
	ID string `json:"id"`
	// Parent is the hex parent span ID; empty on the root.
	Parent string `json:"parent,omitempty"`
	// Name is the operation ("ingest", "extract", "webhook", ...).
	Name string `json:"name"`
	// Start and End bound the span's wall time.
	Start time.Time `json:"start"`
	// End is when the span ended.
	End time.Time `json:"end"`
	// DurationMS is the span's wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Status is "error" when the span failed, else "ok".
	Status string `json:"status"`
	// Error carries the failure message of a failed span.
	Error string `json:"error,omitempty"`
	// Attrs are the span's key/value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// view renders the span tree; only called on completed traces.
func (t *DTrace) view() TraceView {
	t.mu.Lock()
	spans := append([]*DSpan(nil), t.spans...)
	v := TraceView{
		ID:             t.id.String(),
		Name:           t.name,
		Start:          t.start,
		DurationMS:     t.end.Sub(t.start).Seconds() * 1e3,
		Status:         t.status(),
		TruncatedSpans: t.truncated,
	}
	t.mu.Unlock()
	for _, sp := range spans {
		v.Spans = append(v.Spans, sp.view())
	}
	return v
}

// DSpan is one timed operation within a DTrace. All methods tolerate a
// nil receiver, so call sites instrumenting a maybe-traced path need no
// branches.
type DSpan struct {
	tr      *DTrace // nil for detached (over-cap) spans
	traceID TraceID
	id      SpanID
	parent  SpanID
	name    string
	start   time.Time

	mu      sync.Mutex
	attrs   []Attr
	attrBuf [2]Attr // inline storage for the common ≤2-attr span: no extra allocation
	fail    bool
	errs    string
	done    bool
	end     time.Time
}

// Attr is one span annotation.
type Attr struct {
	// Key names the annotation.
	Key string
	// Value is its rendered value.
	Value string
}

// Context returns the span's position in its trace; the zero
// SpanContext on a nil span.
func (sp *DSpan) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: sp.traceID, SpanID: sp.id}
}

// SetAttr annotates the span. Repeated keys append; views keep the
// first occurrence.
func (sp *DSpan) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	sp.mu.Unlock()
}

// Fail marks the span (and therefore its trace) errored. The first
// message wins.
func (sp *DSpan) Fail(msg string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if !sp.fail {
		sp.fail = true
		sp.errs = msg
	}
	sp.mu.Unlock()
}

// Child opens a new span under this one. Returns nil on nil or
// detached receivers.
func (sp *DSpan) Child(name string) *DSpan {
	if sp == nil || sp.tr == nil {
		return nil
	}
	return sp.tr.newSpan(sp.id, name)
}

// End closes the span; the trace completes when its last open span
// ends. Ending twice is a no-op.
func (sp *DSpan) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.done {
		sp.mu.Unlock()
		return
	}
	sp.done = true
	if sp.tr != nil {
		sp.end = sp.tr.tracer.clock()
	}
	failed := sp.fail
	end := sp.end
	sp.mu.Unlock()
	if sp.tr != nil {
		sp.tr.spanEnded(failed, end)
	}
}

// view renders the span; spans in a completed trace are themselves
// done, but lock anyway so a racing SetAttr cannot tear the slice.
func (sp *DSpan) view() SpanView {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	v := SpanView{
		ID:         sp.id.String(),
		Name:       sp.name,
		Start:      sp.start,
		End:        sp.end,
		DurationMS: sp.end.Sub(sp.start).Seconds() * 1e3,
		Status:     "ok",
	}
	if !sp.parent.IsZero() {
		v.Parent = sp.parent.String()
	}
	if sp.fail {
		v.Status = "error"
		v.Error = sp.errs
	}
	if len(sp.attrs) > 0 {
		v.Attrs = make(map[string]string, len(sp.attrs))
		for _, a := range sp.attrs {
			if _, ok := v.Attrs[a.Key]; !ok {
				v.Attrs[a.Key] = a.Value
			}
		}
	}
	return v
}

// dspanKey carries the current DSpan through a context.
type dspanKey struct{}

// ContextWithDSpan returns ctx carrying sp as the current span;
// returns ctx unchanged on a nil span.
func ContextWithDSpan(ctx context.Context, sp *DSpan) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, dspanKey{}, sp)
}

// DSpanFrom returns the current span on ctx, or nil.
func DSpanFrom(ctx context.Context) *DSpan {
	sp, _ := ctx.Value(dspanKey{}).(*DSpan)
	return sp
}

// SpanContextFrom returns the trace position carried by ctx; ok is
// false when ctx has no span.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sp := DSpanFrom(ctx)
	if sp == nil {
		return SpanContext{}, false
	}
	return sp.Context(), true
}

// StartDSpan opens a child of ctx's current span and returns a context
// carrying the child. Without a span on ctx it returns (ctx, nil) —
// with every DSpan method nil-safe, untraced paths pay one context
// lookup and nothing else.
func StartDSpan(ctx context.Context, name string) (context.Context, *DSpan) {
	cur := DSpanFrom(ctx)
	if cur == nil || cur.tr == nil {
		return ctx, nil
	}
	sp := cur.tr.newSpan(cur.id, name)
	return ContextWithDSpan(ctx, sp), sp
}
