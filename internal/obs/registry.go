package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Default is the process-wide registry every pipeline package reports
// into. etapd serves it at /metrics and /debug/vars.
var Default = NewRegistry()

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance of a metric family.
type series struct {
	labels string // rendered {k="v",...} or ""
	value  any    // *Counter, *Gauge, func() float64, *Histogram
}

// family groups all series sharing a metric name (and therefore HELP
// and TYPE lines in the exposition).
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histograms only
	series []*series
	byKey  map[string]*series
}

// Registry is a set of named metrics. Get-or-create accessors are safe
// for concurrent use and idempotent: the same (name, labels) always
// returns the same metric, so call sites can re-resolve handles freely.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders label pairs canonically (sorted by key).
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// get returns the series for (name, labels), creating family and series
// as needed. mk builds a fresh metric value; it receives the family's
// authoritative histogram bounds (resolved under the write lock, so all
// series of one family share the first registration's buckets even when
// two goroutines race the first registration).
func (r *Registry) get(name, help string, kind metricKind, bounds []float64, labels []string, mk func(bounds []float64) any) any {
	key := labelKey(labels)

	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.byKey[key]; ok {
			r.mu.RUnlock()
			if f.kind != kind {
				panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
			}
			return s.value
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, byKey: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	s, ok := f.byKey[key]
	if !ok {
		s = &series{labels: key, value: mk(f.bounds)}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s.value
}

// Counter returns the counter for (name, labels), registering it on
// first use. labels are alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.get(name, help, kindCounter, nil, labels, func([]float64) any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge for (name, labels), registering it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.get(name, help, kindGauge, nil, labels, func([]float64) any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time
// (runtime stats, uptime). Re-registering the same (name, labels) keeps
// the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.get(name, help, kindGaugeFunc, nil, labels, func([]float64) any { return fn })
}

// Histogram returns the histogram for (name, labels), registering it on
// first use. A nil buckets uses DefDurationBuckets. All series of one
// family share the first registration's buckets (get resolves the
// authoritative bounds under the write lock).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefDurationBuckets
	}
	return r.get(name, help, kindHistogram, buckets, labels, func(bounds []float64) any { return newHistogram(bounds) }).(*Histogram)
}

// familyView is a point-in-time copy of one family taken under the
// registry lock. The series slice is copied because Registry.get appends
// to it under the write lock; series contents are immutable after
// creation and the metric values are atomic, so everything past the copy
// reads lock-free.
type familyView struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

func (r *Registry) snapshotFamilies() []familyView {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]familyView, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		out = append(out, familyView{
			name:   f.name,
			help:   f.help,
			kind:   f.kind,
			series: append([]*series(nil), f.series...),
		})
	}
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (text/plain; version=0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch v := s.value.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, v.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, v.Value())
			case func() float64:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(v()))
			case *Histogram:
				writeHistogram(&b, f.name, s.labels, v)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the _bucket/_sum/_count triplet, merging the
// series labels with the le label.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	// Buckets before count (Observe does the reverse): keeps the +Inf
	// bucket >= every finite bucket under concurrent observation.
	cum := h.snapshotBuckets()
	count := h.Count()
	for i, bound := range h.Bounds() {
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			mergeLabels(labels, `le="`+formatFloat(bound)+`"`), cum[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, count)
}

func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// HistogramSnapshot is the JSON form of one histogram series.
type HistogramSnapshot struct {
	Count   uint64           `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot returns the registry as a JSON-ready map: counters and
// gauges map to numbers, histograms to HistogramSnapshot. Keys are the
// metric name plus rendered labels.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.series {
			key := f.name + s.labels
			switch v := s.value.(type) {
			case *Counter:
				out[key] = v.Value()
			case *Gauge:
				out[key] = v.Value()
			case func() float64:
				out[key] = v()
			case *Histogram:
				// Buckets, then count, then sum — the read order Observe's
				// write order is arranged against (see Histogram).
				cum := v.snapshotBuckets()
				count := v.Count()
				hs := HistogramSnapshot{Count: count, Sum: v.Sum()}
				for i, bound := range v.Bounds() {
					hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: bound, Count: cum[i]})
				}
				out[key] = hs
			}
		}
	}
	return out
}

// ServeMetrics is an http.HandlerFunc rendering Prometheus text — mount
// it at GET /metrics.
func (r *Registry) ServeMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := r.WritePrometheus(w); err != nil {
		// The response is already streaming; the scraper sees a
		// truncated exposition — typically the peer hung up.
		slog.Debug("obs: writing /metrics response", "err", err)
	}
}

// ServeVars is an http.HandlerFunc rendering the JSON snapshot — mount
// it at GET /debug/vars.
func (r *Registry) ServeVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		slog.Debug("obs: writing /debug/vars response", "err", err)
	}
}
