package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramSumNeverLagsCount pins the Observe write order (sum,
// then count, then bucket) against the render-side read order (buckets,
// then count, then sum). With every observation equal to 1.0, any
// (count, sum) pair read in render order must satisfy sum >= count —
// the rendered average can never undercount. Run with -race; before the
// ordering fix, Observe bumped count before sum and a concurrent scrape
// could see count=N with sum=N-1.
func TestHistogramSumNeverLagsCount(t *testing.T) {
	h := newHistogram([]float64{0.5, 2})
	const (
		writers = 4
		perG    = 5000
	)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Render-side order: buckets, then count, then sum.
			cum := h.snapshotBuckets()
			count := h.Count()
			sum := h.Sum()
			if sum < float64(count) {
				t.Errorf("sum %v lags count %d", sum, count)
				return
			}
			// The +Inf bucket (== count) must dominate every finite one.
			for i, c := range cum {
				if c > count {
					t.Errorf("bucket[%d]=%d exceeds count %d", i, c, count)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(1.0)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone

	wantCount := uint64(writers * perG)
	if got := h.Count(); got != wantCount {
		t.Fatalf("final count = %d, want %d", got, wantCount)
	}
	if got := h.Sum(); got != float64(wantCount) {
		t.Fatalf("final sum = %v, want %d", got, wantCount)
	}
}

// TestHistogramExpositionConsistentUnderWrites scrapes the Prometheus
// text while writers hammer the histogram and checks each scrape's
// internal consistency (every rendered bucket <= rendered count).
func TestHistogramExpositionConsistentUnderWrites(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("etap_test_obs_seconds", "test series", []float64{1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			h.Observe(0.5)
		}
	}()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "etap_test_obs_seconds_count 20000") {
		t.Fatalf("final exposition missing count:\n%s", text)
	}
	if !strings.Contains(text, "etap_test_obs_seconds_sum 10000") {
		t.Fatalf("final exposition missing sum:\n%s", text)
	}
}
