package obs

import (
	"context"
	"io"
	"log/slog"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Fatalf("Sum() = %v, want 106", got)
	}
	// Cumulative: ≤1 holds {0.5, 1}; ≤2 adds {1.5}; ≤4 adds {3}; +Inf = Count.
	want := []uint64{2, 3, 4}
	got := h.snapshotBuckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", got, want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	// Label order must not matter.
	l1 := r.Counter("y_total", "h", "a", "1", "b", "2")
	l2 := r.Counter("y_total", "h", "b", "2", "a", "1")
	if l1 != l2 {
		t.Fatal("label order should not create distinct series")
	}
	l3 := r.Counter("y_total", "h", "a", "other")
	if l1 == l3 {
		t.Fatal("different label values must be distinct series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("z_total", "h")
}

// TestPrometheusGolden pins the exact text exposition format.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.").Add(3)
	r.Counter("app_hits_total", "Hits by path.", "path", "/a").Inc()
	r.Counter("app_hits_total", "Hits by path.", "path", "/b").Add(2)
	r.Gauge("app_queue_depth", "Queue depth.").Set(7)
	// Powers of two keep the sum exact in binary, so the golden string
	// is stable: 0.0625 + 0.5 + 5 = 5.5625.
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total 3
# HELP app_hits_total Hits by path.
# TYPE app_hits_total counter
app_hits_total{path="/a"} 1
app_hits_total{path="/b"} 2
# HELP app_queue_depth Queue depth.
# TYPE app_queue_depth gauge
app_queue_depth 7
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 5.5625
app_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Add(2)
	r.GaugeFunc("g", "h", func() float64 { return 1.5 })
	r.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if snap["c_total"] != uint64(2) {
		t.Fatalf("counter snapshot = %v", snap["c_total"])
	}
	if snap["g"] != 1.5 {
		t.Fatalf("gauge func snapshot = %v", snap["g"])
	}
	hs, ok := snap["h_seconds"].(HistogramSnapshot)
	if !ok || hs.Count != 1 || hs.Buckets[0].Count != 1 {
		t.Fatalf("histogram snapshot = %#v", snap["h_seconds"])
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race this is the data-race gate for the whole metrics layer.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, each = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// Re-resolving handles concurrently exercises the registry's
				// read path, not just the atomics.
				r.Counter("cc_total", "h").Inc()
				r.Gauge("gg", "h").Add(1)
				r.Histogram("hh_seconds", "h", []float64{1e-3, 1}).Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("cc_total", "h").Value(); got != goroutines*each {
		t.Fatalf("counter = %d, want %d", got, goroutines*each)
	}
	if got := r.Gauge("gg", "h").Value(); got != goroutines*each {
		t.Fatalf("gauge = %d, want %d", got, goroutines*each)
	}
	h := r.Histogram("hh_seconds", "h", nil)
	if got := h.Count(); got != goroutines*each {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*each)
	}
	if got := h.snapshotBuckets()[0]; got != goroutines*each {
		t.Fatalf("first bucket = %d, want %d", got, goroutines*each)
	}
}

// TestConcurrentScrapeAndRegister races /metrics- and /debug/vars-style
// scrapes against lazy series creation (a new label value registering a
// series mid-scrape, like the first 4xx response creating a new
// etap_http_responses_total{code=...}). Run under -race this guards the
// registry's series-slice copy in snapshotFamilies.
func TestConcurrentScrapeAndRegister(t *testing.T) {
	r := NewRegistry()
	const goroutines, each = 8, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				code := strconv.Itoa(g*each + i)
				r.Counter("responses_total", "h", "code", code).Inc()
				r.Histogram("latency_seconds", "h", nil, "code", code).Observe(1e-3)
			}
		}(g)
	}
	done := make(chan struct{})
	var scrapes sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-done:
					return
				default:
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapes.Wait()
	if got := len(r.Snapshot()); got != goroutines*each*2 {
		t.Fatalf("series after concurrent registration = %d, want %d", got, goroutines*each*2)
	}
}

// TestHistogramBoundsRace races the first registrations of one family
// with different bucket layouts: every resulting series must share the
// family's authoritative bounds, whichever registration won.
func TestHistogramBoundsRace(t *testing.T) {
	r := NewRegistry()
	layouts := [][]float64{{0.1, 1}, {0.5, 5, 50}, {1, 2, 4, 8}}
	var wg sync.WaitGroup
	hs := make([]*Histogram, 12)
	for i := range hs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hs[i] = r.Histogram("contended_seconds", "h",
				layouts[i%len(layouts)], "worker", strconv.Itoa(i))
		}(i)
	}
	wg.Wait()
	want := hs[0].Bounds()
	for i, h := range hs {
		got := h.Bounds()
		if len(got) != len(want) {
			t.Fatalf("series %d has %d bounds, series 0 has %d — family bounds diverged", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("series %d bounds[%d] = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestSpanAndTrace(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace("run", r)
	ctx := WithTrace(context.Background(), tr)

	sp := StartSpan(ctx, "classify")
	sp.AddItems(10)
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // double End is a no-op

	sp2 := StartSpan(ctx, "classify")
	sp2.AddItems(5)
	sp2.End()

	sum := tr.Summary()
	if len(sum) != 1 {
		t.Fatalf("stages = %d, want 1", len(sum))
	}
	st := sum[0]
	if st.Stage != "classify" || st.Calls != 2 || st.Items != 15 {
		t.Fatalf("stage stats = %+v", st)
	}
	if st.Duration < time.Millisecond {
		t.Fatalf("duration = %v, want >= 1ms", st.Duration)
	}
	if got := StageDuration(r, "classify").Count(); got != 2 {
		t.Fatalf("registry histogram count = %d, want 2", got)
	}
	if got := StageItems(r, "classify").Value(); got != 15 {
		t.Fatalf("registry items = %d, want 15", got)
	}
	if s := tr.String(); !strings.Contains(s, "run:") || !strings.Contains(s, "classify=") {
		t.Fatalf("trace string = %q", s)
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	before := StageDuration(nil, "orphan").Count()
	sp := StartSpan(context.Background(), "orphan")
	sp.End()
	if got := StageDuration(nil, "orphan").Count(); got != before+1 {
		t.Fatalf("default-registry count = %d, want %d", got, before+1)
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "Error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("ParseLogLevel(loud) should error")
	}
}
