package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage metric names shared by the span API and the direct pipeline
// instrumentation: both report into the same families, so /metrics shows
// one per-stage timing catalog regardless of which path recorded it.
const (
	StageDurationMetric = "etap_stage_duration_seconds"
	StageItemsMetric    = "etap_stage_items_total"
)

// StageDuration returns the per-stage duration histogram of reg (nil
// means Default) for one stage name.
func StageDuration(reg *Registry, stage string) *Histogram {
	if reg == nil {
		reg = Default
	}
	return reg.Histogram(StageDurationMetric,
		"Wall time per pipeline-stage invocation.", nil, "stage", stage)
}

// StageItems returns the per-stage item counter of reg (nil means
// Default) for one stage name.
func StageItems(reg *Registry, stage string) *Counter {
	if reg == nil {
		reg = Default
	}
	return reg.Counter(StageItemsMetric,
		"Items processed per pipeline stage.", "stage", stage)
}

// StageStats aggregates all spans of one stage within a trace.
type StageStats struct {
	Stage    string
	Calls    int
	Items    int64
	Duration time.Duration
}

// Trace accumulates per-stage accounting for one logical run (a full
// extraction pass, a training round). It is safe for concurrent spans.
type Trace struct {
	Name string

	reg   *Registry
	start time.Time

	mu     sync.Mutex
	stages map[string]*StageStats
	order  []string
}

// NewTrace starts a trace reporting into reg (nil means Default).
func NewTrace(name string, reg *Registry) *Trace {
	if reg == nil {
		reg = Default
	}
	//etaplint:ignore determinism -- metrics-only timing; the trace start anchors wall-time accounting
	return &Trace{Name: name, reg: reg, start: time.Now(), stages: map[string]*StageStats{}}
}

type traceKey struct{}

// WithTrace attaches a trace to the context; spans started under it
// contribute to the trace's per-run summary in addition to the registry.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// Span measures one stage invocation: wall time plus an item count.
type Span struct {
	tr    *Trace
	d     *DSpan // per-document span when ctx carried one; usually nil
	dur   *Histogram
	items *Counter
	stage string
	start time.Time
	n     int64
	done  bool
}

// StartSpan begins measuring a pipeline stage. The span records into
// the trace attached to ctx (if any) and into that trace's registry —
// or Default when ctx carries no trace. When ctx also carries a
// per-document DSpan, a child DSpan opens under it and ends with this
// span, so batch instrumentation feeds the distributed span tree with
// no extra call sites. Always pair with End:
//
//	sp := obs.StartSpan(ctx, "classify")
//	defer sp.End()
func StartSpan(ctx context.Context, stage string) *Span {
	tr := TraceFrom(ctx)
	var reg *Registry
	if tr != nil {
		reg = tr.reg
	}
	var d *DSpan
	if cur := DSpanFrom(ctx); cur != nil {
		d = cur.Child(stage)
	}
	return &Span{
		tr:    tr,
		d:     d,
		dur:   StageDuration(reg, stage),
		items: StageItems(reg, stage),
		stage: stage,
		//etaplint:ignore determinism -- metrics-only timing; the span start anchors the stage histogram
		start: time.Now(),
	}
}

// AddItems credits n processed items to the span (snippets scored,
// events emitted, pages fetched — whatever the stage counts).
func (s *Span) AddItems(n int) {
	if s == nil {
		return
	}
	s.n += int64(n)
}

// End stops the span, recording duration and items. Ending twice is a
// no-op.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	elapsed := time.Since(s.start)
	s.dur.Observe(elapsed.Seconds())
	if s.n > 0 {
		s.items.Add(uint64(s.n))
	}
	if s.tr != nil {
		s.tr.record(s.stage, s.n, elapsed)
	}
	s.d.End()
}

func (t *Trace) record(stage string, items int64, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.stages[stage]
	if !ok {
		st = &StageStats{Stage: stage}
		t.stages[stage] = st
		t.order = append(t.order, stage)
	}
	st.Calls++
	st.Items += items
	st.Duration += d
}

// Elapsed returns the wall time since the trace started.
func (t *Trace) Elapsed() time.Duration { return time.Since(t.start) }

// Summary returns per-stage aggregates in first-seen order.
func (t *Trace) Summary() []StageStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageStats, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.stages[name])
	}
	return out
}

// String renders the trace compactly, stages sorted by descending
// duration: "extract: classify 1.2s/480 annotate 0.9s/480 ...".
func (t *Trace) String() string {
	sum := t.Summary()
	sort.Slice(sum, func(i, j int) bool { return sum[i].Duration > sum[j].Duration })
	var b strings.Builder
	b.WriteString(t.Name)
	b.WriteByte(':')
	for _, st := range sum {
		fmt.Fprintf(&b, " %s=%s/%d", st.Stage, st.Duration.Round(time.Microsecond), st.Items)
	}
	return b.String()
}
