package obs

import (
	"fmt"
	"log/slog"
	"strings"
)

// ParseLogLevel maps a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive) to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}
