package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// ParseLogLevel maps a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive) to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// traceHandler decorates records with the trace position carried by
// their context.
type traceHandler struct {
	slog.Handler
}

// NewTraceHandler wraps a slog handler so every record logged with a
// context carrying a DSpan gains trace_id and span_id attributes —
// log lines become joinable against GET /debug/traces/{id}. Records
// without a span pass through untouched.
func NewTraceHandler(h slog.Handler) slog.Handler {
	return traceHandler{Handler: h}
}

// Handle implements slog.Handler.
func (t traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc, ok := SpanContextFrom(ctx); ok {
		r.AddAttrs(
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("span_id", sc.SpanID.String()),
		)
	}
	return t.Handler.Handle(ctx, r)
}

// WithAttrs implements slog.Handler, preserving the wrapper.
func (t traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{Handler: t.Handler.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler, preserving the wrapper.
func (t traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{Handler: t.Handler.WithGroup(name)}
}
