package feature

import (
	"math"

	"etap/internal/annotate"
)

// Labeled pairs an annotated snippet with its class label (true =
// positive for the sales driver, false = negative/background).
type Labeled struct {
	Units []annotate.Unit
	Label bool
}

// rigSmoothing is the total pseudo-count mass added to each conditional
// label distribution when estimating H(Y|X); the mass is distributed in
// proportion to the class priors (shrinkage toward the prior). Without
// smoothing, instance values that occur once have degenerate
// (zero-entropy) conditionals and the IV representation would look
// maximally informative for exactly the sparse categories the paper
// abstracts away; shrinking singletons toward the prior drives their
// contribution to H(Y|X) back to H(Y), reproducing the paper's
// observation that entity categories favour PA while content POS favour
// IV. ("There are millions of person names, company names, place names
// ... across the Web" — the penalty stands in for that scale.)
const rigSmoothing = 1.0

// entropy computes H over a slice of counts.
func entropy(counts []float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// RIG computes the relative information gain (Equation 1)
//
//	RIG(Y|X) = (H(Y) - H(Y|X)) / H(Y)
//
// of the class variable Y given the abstraction variable X for the
// requested representation. PA is estimated over snippets (X = presence
// of the category); IV is estimated over category occurrences (X = the
// instance value), with add-alpha smoothing of the conditionals.
//
// The result is 0 when H(Y) == 0 (degenerate label distribution) or when
// the category never occurs.
func RIG(data []Labeled, cat Category, rep Representation) float64 {
	switch rep {
	case RepPA:
		return rigPA(data, cat)
	case RepIV:
		return rigIV(data, cat)
	default:
		return 0
	}
}

func rigPA(data []Labeled, cat Category) float64 {
	// Joint counts over snippets: label x presence.
	var n [2][2]float64 // [presence][label]
	for _, d := range data {
		present := 0
		for _, u := range d.Units {
			if cat.Matches(u) {
				present = 1
				break
			}
		}
		n[present][labelIndex(d.Label)]++
	}
	marg := []float64{n[0][0] + n[1][0], n[0][1] + n[1][1]}
	hy := entropy(marg)
	if hy == 0 {
		return 0
	}
	total := marg[0] + marg[1]
	// Smooth each conditional toward the class prior (see rigSmoothing).
	p0, p1 := marg[0]/total, marg[1]/total
	hyx := 0.0
	for x := 0; x < 2; x++ {
		nx := n[x][0] + n[x][1]
		if nx == 0 {
			continue
		}
		hyx += nx / total * entropy([]float64{
			n[x][0] + 2*rigSmoothing*p0, n[x][1] + 2*rigSmoothing*p1,
		})
	}
	rig := (hy - hyx) / hy
	if rig < 0 {
		rig = 0
	}
	return rig
}

func rigIV(data []Labeled, cat Category) float64 {
	// Observations are category occurrences; X is the instance value.
	counts := map[string][2]float64{}
	var totals [2]float64
	for _, d := range data {
		li := labelIndex(d.Label)
		for _, u := range d.Units {
			if inst, ok := cat.Instance(u); ok {
				c := counts[inst]
				c[li]++
				counts[inst] = c
				totals[li]++
			}
		}
	}
	total := totals[0] + totals[1]
	if total == 0 {
		return 0
	}
	hy := entropy([]float64{totals[0], totals[1]})
	if hy == 0 {
		return 0
	}
	p0, p1 := totals[0]/total, totals[1]/total
	hyx := 0.0
	for _, c := range counts {
		nv := c[0] + c[1]
		hyx += nv / total * entropy([]float64{
			c[0] + 2*rigSmoothing*p0, c[1] + 2*rigSmoothing*p1,
		})
	}
	rig := (hy - hyx) / hy
	if rig < 0 {
		rig = 0
	}
	return rig
}

func labelIndex(b bool) int {
	if b {
		return 1
	}
	return 0
}

// RIGComparison holds the PA and IV relative information gains of one
// abstraction category — one bar pair in Figures 3 and 4.
type RIGComparison struct {
	Category Category
	PA       float64
	IV       float64
}

// Preferred returns the representation with the higher RIG, implementing
// the paper's "novel technique that helps in identifying the right level
// of abstraction". Categories that never occur are dropped.
func (r RIGComparison) Preferred() Representation {
	if r.PA == 0 && r.IV == 0 {
		return RepDrop
	}
	if r.PA >= r.IV {
		return RepPA
	}
	return RepIV
}

// CompareRIG computes the PA-vs-IV comparison for every category, in
// order — the data series behind Figures 3 and 4.
func CompareRIG(data []Labeled, cats []Category) []RIGComparison {
	out := make([]RIGComparison, len(cats))
	for i, c := range cats {
		out[i] = RIGComparison{
			Category: c,
			PA:       RIG(data, c, RepPA),
			IV:       RIG(data, c, RepIV),
		}
	}
	return out
}

// ChoosePolicy derives an abstraction policy from labeled data by picking,
// for each category, the representation with the higher relative
// information gain.
func ChoosePolicy(data []Labeled, cats []Category) Policy {
	p := make(Policy, len(cats))
	for _, cmp := range CompareRIG(data, cats) {
		p[cmp.Category] = cmp.Preferred()
	}
	return p
}
