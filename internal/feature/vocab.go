package feature

import (
	"math"
	"sort"
)

// Vocab is a bijective mapping between feature strings and dense integer
// ids. It is not safe for concurrent mutation.
type Vocab struct {
	byName map[string]int
	names  []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byName: make(map[string]int)}
}

// ID interns name, returning its id (adding it if new).
func (v *Vocab) ID(name string) int {
	if id, ok := v.byName[name]; ok {
		return id
	}
	id := len(v.names)
	v.byName[name] = id
	v.names = append(v.names, name)
	return id
}

// Lookup returns the id of name without adding it.
func (v *Vocab) Lookup(name string) (int, bool) {
	id, ok := v.byName[name]
	return id, ok
}

// Name returns the feature string for id.
func (v *Vocab) Name(id int) string { return v.names[id] }

// Size returns the number of interned features.
func (v *Vocab) Size() int { return len(v.names) }

// Names returns every interned feature in id order (for serialization).
func (v *Vocab) Names() []string { return append([]string(nil), v.names...) }

// VocabFromNames rebuilds a vocabulary with the exact id assignment of
// the given name list (names[i] gets id i).
func VocabFromNames(names []string) *Vocab {
	v := NewVocab()
	for _, n := range names {
		v.ID(n)
	}
	return v
}

// Term is one (feature id, count/weight) pair of a sparse vector.
type Term struct {
	ID int
	W  float64
}

// Vector is a sparse feature vector, sorted by feature id with unique ids.
type Vector []Term

// Vectorize converts a feature-string list into a count vector. When grow
// is true unknown features are added to the vocabulary; otherwise they
// are silently skipped (the correct behaviour at inference time).
func Vectorize(v *Vocab, feats []string, grow bool) Vector {
	counts := make(map[int]float64, len(feats))
	for _, f := range feats {
		var id int
		if grow {
			id = v.ID(f)
		} else {
			var ok bool
			id, ok = v.Lookup(f)
			if !ok {
				continue
			}
		}
		counts[id]++
	}
	out := make(Vector, 0, len(counts))
	for id, c := range counts {
		out = append(out, Term{ID: id, W: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// L2Norm returns the Euclidean norm of the vector.
func (x Vector) L2Norm() float64 {
	s := 0.0
	for _, t := range x {
		s += t.W * t.W
	}
	return math.Sqrt(s)
}

// Dot computes the sparse dot product of two sorted vectors.
func (x Vector) Dot(y Vector) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i].ID == y[j].ID:
			s += x[i].W * y[j].W
			i++
			j++
		case x[i].ID < y[j].ID:
			i++
		default:
			j++
		}
	}
	return s
}

// Scale returns a copy of the vector with every weight multiplied by a.
func (x Vector) Scale(a float64) Vector {
	out := make(Vector, len(x))
	for i, t := range x {
		out[i] = Term{ID: t.ID, W: t.W * a}
	}
	return out
}
