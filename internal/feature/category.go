// Package feature implements ETAP's feature abstraction machinery
// (Section 3.2): abstraction categories over named-entity and
// part-of-speech types, the presence-absence (PA) versus instance-valued
// (IV) representations, relative information gain (RIG) for choosing
// between them, classical feature selection (chi-square, information gain,
// mutual information), and bag-of-feature vectorization.
package feature

import (
	"strings"

	"etap/internal/annotate"
	"etap/internal/ner"
	"etap/internal/pos"
	"etap/internal/textproc"
)

// Category is an abstraction category: exactly one of a named-entity
// category or a coarse part-of-speech category. The paper's Figures 3-4
// plot both kinds side by side (entity names capitalized, POS in small
// letters).
type Category struct {
	Entity ner.Category // non-empty for entity categories
	POS    pos.Tag      // non-empty for POS categories
}

// EntityCategory builds an entity abstraction category.
func EntityCategory(c ner.Category) Category { return Category{Entity: c} }

// POSCategory builds a part-of-speech abstraction category.
func POSCategory(t pos.Tag) Category { return Category{POS: t} }

// String renders the category using the paper's convention: entity
// categories upper-case, POS categories lower-case.
func (c Category) String() string {
	if c.Entity != "" {
		return string(c.Entity)
	}
	return string(c.POS)
}

// ParseCategory inverts String: an all-upper-case name is an entity
// category, anything else a POS category.
func ParseCategory(s string) Category {
	upper := s != "" && strings.ToUpper(s) == s
	if upper {
		return EntityCategory(ner.Category(s))
	}
	return POSCategory(pos.Tag(s))
}

// Matches reports whether the annotated unit belongs to this category.
func (c Category) Matches(u annotate.Unit) bool {
	if c.Entity != "" {
		return u.Entity == c.Entity
	}
	return !u.IsEntity() && u.POS == c.POS
}

// Instance returns the instance value of the unit under this category:
// the lower-cased surface form (stemmed for POS categories, so that
// "acquired"/"acquires" collapse). ok is false when the unit does not
// belong to the category.
func (c Category) Instance(u annotate.Unit) (string, bool) {
	if !c.Matches(u) {
		return "", false
	}
	if c.Entity != "" {
		return u.Lower(), true
	}
	return textproc.Stem(u.Lower()), true
}

// AllCategories returns the default category inventory analysed in the
// paper's figures: all 13 entity categories plus the coarse POS classes.
func AllCategories() []Category {
	var out []Category
	for _, e := range ner.Categories {
		out = append(out, EntityCategory(e))
	}
	for _, t := range []pos.Tag{
		pos.TagVB, pos.TagRB, pos.TagNN, pos.TagNP, pos.TagJJ,
		pos.TagIN, pos.TagDT, pos.TagCC, pos.TagPRP,
	} {
		out = append(out, POSCategory(t))
	}
	return out
}

// Representation selects how an abstraction category is rendered as
// classifier features.
type Representation uint8

const (
	// RepPA (presence-absence): the category contributes one binary
	// feature recording whether any instance occurs in the snippet.
	RepPA Representation = iota
	// RepIV (instance-valued): each instance contributes its own feature
	// ("acquired", "new"); the category identity is folded into the
	// feature name.
	RepIV
	// RepDrop removes the category from the feature space entirely
	// (closed-class POS, punctuation).
	RepDrop
)

// String returns the paper's short name for the representation.
func (r Representation) String() string {
	switch r {
	case RepPA:
		return "PA"
	case RepIV:
		return "IV"
	default:
		return "drop"
	}
}
