package feature

import (
	"testing"
)

// Synthetic dataset: "acquire" perfectly predicts positive, "weather"
// perfectly predicts negative, "said" is uninformative.
func selectionDataset() ([][]string, []bool) {
	var ex [][]string
	var labels []bool
	for i := 0; i < 40; i++ {
		ex = append(ex, []string{"acquire", "said"})
		labels = append(labels, true)
		ex = append(ex, []string{"weather", "said"})
		labels = append(labels, false)
	}
	return ex, labels
}

func TestRankChiSquare(t *testing.T) {
	ex, labels := selectionDataset()
	ranked := Rank(ex, labels, ChiSquare)
	if len(ranked) != 3 {
		t.Fatalf("got %d features, want 3", len(ranked))
	}
	// Perfectly correlated features outrank the uninformative one.
	if ranked[2].Feature != "said" {
		t.Errorf("ranking = %+v, want 'said' last", ranked)
	}
	if ranked[0].Score <= ranked[2].Score {
		t.Errorf("discriminative score %v not above %v", ranked[0].Score, ranked[2].Score)
	}
}

func TestRankInfoGain(t *testing.T) {
	ex, labels := selectionDataset()
	ranked := Rank(ex, labels, InfoGain)
	if ranked[2].Feature != "said" {
		t.Errorf("IG ranking = %+v, want 'said' last", ranked)
	}
	// IG of a perfect predictor on balanced classes is 1 bit.
	if ranked[0].Score < 0.9 {
		t.Errorf("IG top score = %v, want ~1", ranked[0].Score)
	}
	if ranked[2].Score > 1e-9 {
		t.Errorf("IG of uninformative feature = %v, want ~0", ranked[2].Score)
	}
}

func TestRankMutualInfo(t *testing.T) {
	ex, labels := selectionDataset()
	ranked := Rank(ex, labels, MutualInfo)
	// "acquire" is positively associated with the positive class;
	// "weather" negatively. MI ranks positive association first.
	if ranked[0].Feature != "acquire" {
		t.Errorf("MI ranking = %+v, want 'acquire' first", ranked)
	}
}

func TestTopKAndFilter(t *testing.T) {
	ex, labels := selectionDataset()
	keep := TopK(ex, labels, ChiSquare, 2)
	if len(keep) != 2 {
		t.Fatalf("TopK size = %d, want 2", len(keep))
	}
	if keep["said"] {
		t.Errorf("TopK kept the uninformative feature: %v", keep)
	}
	got := Filter([]string{"acquire", "said", "weather"}, keep)
	if len(got) != 2 {
		t.Errorf("Filter = %v", got)
	}
}

func TestTopKLargerThanVocab(t *testing.T) {
	ex, labels := selectionDataset()
	keep := TopK(ex, labels, InfoGain, 100)
	if len(keep) != 3 {
		t.Errorf("TopK overflow: %d, want 3", len(keep))
	}
}

func TestRankEmpty(t *testing.T) {
	if got := Rank(nil, nil, ChiSquare); got != nil {
		t.Errorf("empty: %v", got)
	}
}

func TestRankMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	Rank([][]string{{"a"}}, nil, ChiSquare)
}

func TestRankDeterministicTieBreak(t *testing.T) {
	ex := [][]string{{"b", "a"}, {"a", "b"}}
	labels := []bool{true, false}
	r1 := Rank(ex, labels, ChiSquare)
	r2 := Rank(ex, labels, ChiSquare)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("nondeterministic ranking: %+v vs %+v", r1, r2)
		}
	}
}

func TestChi2Contingency(t *testing.T) {
	// Uniform table: no association.
	if got := chi2(10, 10, 10, 10); got != 0 {
		t.Errorf("chi2 uniform = %v, want 0", got)
	}
	// Perfect association.
	if got := chi2(20, 0, 0, 20); got != 40 {
		t.Errorf("chi2 perfect = %v, want n=40", got)
	}
	// Degenerate margin.
	if got := chi2(0, 0, 5, 5); got != 0 {
		t.Errorf("chi2 degenerate = %v, want 0", got)
	}
}
