package feature

import (
	"math"
	"sort"
)

// Scored pairs a feature with a selection score.
type Scored struct {
	Feature string
	Score   float64
}

// SelectionMeasure is one of the statistical measures the paper lists for
// classical feature selection (Section 3.2.1): "Standard measures used
// are chi-square, information gain, and mutual information."
type SelectionMeasure uint8

const (
	// ChiSquare is Pearson's chi-square statistic of the feature/label
	// contingency table.
	ChiSquare SelectionMeasure = iota
	// InfoGain is the information gain IG(Y; X) of the binary
	// feature-presence variable.
	InfoGain
	// MutualInfo is pointwise mutual information between feature
	// presence and the positive class.
	MutualInfo
)

// String returns the measure's short name as used in experiment
// reports.
func (m SelectionMeasure) String() string {
	switch m {
	case ChiSquare:
		return "chi2"
	case InfoGain:
		return "ig"
	default:
		return "mi"
	}
}

// docSets converts feature-list examples into per-feature document
// frequency counts split by label.
func docSets(examples [][]string, labels []bool) (df map[string][2]float64, n [2]float64) {
	df = make(map[string][2]float64)
	for i, feats := range examples {
		li := labelIndex(labels[i])
		n[li]++
		seen := map[string]bool{}
		for _, f := range feats {
			if !seen[f] {
				seen[f] = true
				c := df[f]
				c[li]++
				df[f] = c
			}
		}
	}
	return df, n
}

// Rank scores every feature occurring in examples by the chosen measure
// and returns them sorted by descending score. examples[i] holds the
// feature list of snippet i and labels[i] its class.
func Rank(examples [][]string, labels []bool, m SelectionMeasure) []Scored {
	if len(examples) != len(labels) {
		panic("feature: examples and labels length mismatch")
	}
	df, n := docSets(examples, labels)
	total := n[0] + n[1]
	if total == 0 {
		return nil
	}

	out := make([]Scored, 0, len(df))
	for f, c := range df {
		// Contingency table:
		//              y=neg        y=pos
		// present      a=c[0]       b=c[1]
		// absent       c2=n0-a      d=n1-b
		a, b := c[0], c[1]
		c2, d := n[0]-a, n[1]-b
		var score float64
		switch m {
		case ChiSquare:
			score = chi2(a, b, c2, d)
		case InfoGain:
			score = infoGain(a, b, c2, d)
		case MutualInfo:
			// PMI(x=1, y=pos) with add-one smoothing.
			pxy := (b + 1) / (total + 2)
			px := (a + b + 1) / (total + 2)
			py := (n[1] + 1) / (total + 2)
			score = math.Log2(pxy / (px * py))
		}
		out = append(out, Scored{Feature: f, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Feature < out[j].Feature
	})
	return out
}

// TopK returns the names of the k best features under the measure ("only
// the top few (an ad hoc tunable parameter in most experiments) features
// are retained").
func TopK(examples [][]string, labels []bool, m SelectionMeasure, k int) map[string]bool {
	ranked := Rank(examples, labels, m)
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make(map[string]bool, k)
	for _, s := range ranked[:k] {
		out[s.Feature] = true
	}
	return out
}

// Filter keeps only the features present in keep.
func Filter(feats []string, keep map[string]bool) []string {
	out := make([]string, 0, len(feats))
	for _, f := range feats {
		if keep[f] {
			out = append(out, f)
		}
	}
	return out
}

func chi2(a, b, c, d float64) float64 {
	n := a + b + c + d
	num := a*d - b*c
	den := (a + b) * (c + d) * (a + c) * (b + d)
	if den == 0 {
		return 0
	}
	return n * num * num / den
}

func infoGain(a, b, c, d float64) float64 {
	n := a + b + c + d
	if n == 0 {
		return 0
	}
	hy := entropy([]float64{a + c, b + d})
	hyx := (a+b)/n*entropy([]float64{a, b}) + (c+d)/n*entropy([]float64{c, d})
	ig := hy - hyx
	if ig < 0 {
		return 0
	}
	return ig
}
