package feature

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVocabInterning(t *testing.T) {
	v := NewVocab()
	a := v.ID("alpha")
	b := v.ID("beta")
	if a == b {
		t.Fatal("distinct features share an id")
	}
	if again := v.ID("alpha"); again != a {
		t.Errorf("re-interning changed id: %d vs %d", again, a)
	}
	if v.Size() != 2 {
		t.Errorf("size = %d, want 2", v.Size())
	}
	if v.Name(a) != "alpha" || v.Name(b) != "beta" {
		t.Errorf("name round trip failed")
	}
	if _, ok := v.Lookup("gamma"); ok {
		t.Error("lookup invented a feature")
	}
}

func TestVectorizeCountsAndSorts(t *testing.T) {
	v := NewVocab()
	vec := Vectorize(v, []string{"b", "a", "b", "c", "b"}, true)
	if len(vec) != 3 {
		t.Fatalf("len = %d, want 3", len(vec))
	}
	for i := 1; i < len(vec); i++ {
		if vec[i].ID <= vec[i-1].ID {
			t.Fatalf("not sorted: %+v", vec)
		}
	}
	id, _ := v.Lookup("b")
	for _, term := range vec {
		if term.ID == id && term.W != 3 {
			t.Errorf("count(b) = %v, want 3", term.W)
		}
	}
}

func TestVectorizeNoGrowSkipsUnknown(t *testing.T) {
	v := NewVocab()
	v.ID("known")
	vec := Vectorize(v, []string{"known", "unknown"}, false)
	if len(vec) != 1 {
		t.Fatalf("got %+v, want only known feature", vec)
	}
	if v.Size() != 1 {
		t.Errorf("no-grow mutated vocab: size %d", v.Size())
	}
}

func TestDotProduct(t *testing.T) {
	x := Vector{{0, 1}, {2, 2}, {5, 3}}
	y := Vector{{1, 4}, {2, 5}, {5, 1}}
	if got := x.Dot(y); got != 2*5+3*1 {
		t.Errorf("dot = %v, want 13", got)
	}
	if got := x.Dot(nil); got != 0 {
		t.Errorf("dot with empty = %v", got)
	}
}

func TestL2Norm(t *testing.T) {
	x := Vector{{0, 3}, {1, 4}}
	if got := x.L2Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("norm = %v, want 5", got)
	}
}

func TestScale(t *testing.T) {
	x := Vector{{0, 1}, {1, 2}}
	y := x.Scale(2.5)
	if y[0].W != 2.5 || y[1].W != 5 {
		t.Errorf("scale: %+v", y)
	}
	if x[0].W != 1 {
		t.Error("scale mutated the receiver")
	}
}

// Property: dot product is symmetric and ||x||^2 == x.Dot(x).
func TestVectorProperties(t *testing.T) {
	f := func(ids []uint8, ws []int8) bool {
		v := NewVocab()
		var feats []string
		for i := range ids {
			reps := 1
			if len(ws) > 0 {
				reps = int(ws[i%len(ws)]) % 4
				if reps < 0 {
					reps = -reps
				}
			}
			for r := 0; r <= reps; r++ {
				feats = append(feats, string(rune('a'+ids[i]%26)))
			}
		}
		x := Vectorize(v, feats, true)
		n := x.L2Norm()
		return math.Abs(n*n-x.Dot(x)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
