package feature

import (
	"sort"
	"strings"
	"testing"

	"etap/internal/annotate"
	"etap/internal/ner"
)

func TestExtractDefaultPolicy(t *testing.T) {
	a := annotate.New(nil)
	units := a.Annotate("IBM acquired Daksh for $160 million.")
	feats := Extract(units, DefaultPolicy())
	sort.Strings(feats)
	joined := strings.Join(feats, " ")

	// Entities abstracted to presence features, deduplicated.
	if !strings.Contains(joined, "ENT=ORG") {
		t.Errorf("missing ENT=ORG in %v", feats)
	}
	if strings.Count(joined, "ENT=ORG") != 1 {
		t.Errorf("ENT=ORG must appear once (PA dedup): %v", feats)
	}
	if !strings.Contains(joined, "ENT=CURRENCY") {
		t.Errorf("missing ENT=CURRENCY in %v", feats)
	}
	// Content verb kept as stemmed instance.
	if !strings.Contains(joined, "w=acquir") {
		t.Errorf("missing w=acquir in %v", feats)
	}
	// No raw company names in the feature space.
	if strings.Contains(joined, "ibm") || strings.Contains(joined, "daksh") {
		t.Errorf("entity instances leaked: %v", feats)
	}
}

func TestExtractBagOfWordsPolicy(t *testing.T) {
	a := annotate.New(nil)
	units := a.Annotate("IBM acquired Daksh.")
	feats := Extract(units, BagOfWordsPolicy())
	joined := strings.Join(feats, " ")
	if !strings.Contains(joined, "ORG=ibm") || !strings.Contains(joined, "ORG=daksh") {
		t.Errorf("IV entities missing: %v", feats)
	}
}

func TestExtractDropsStopwordsAndClosedClass(t *testing.T) {
	a := annotate.New(nil)
	units := a.Annotate("The company said that it was growing.")
	feats := Extract(units, DefaultPolicy())
	for _, f := range feats {
		if f == "w=the" || f == "w=that" || f == "w=it" || f == "w=was" {
			t.Errorf("stopword feature leaked: %v", feats)
		}
	}
}

func TestExtractStemsCollapseInflections(t *testing.T) {
	a := annotate.New(nil)
	p := DefaultPolicy()
	f1 := Extract(a.Annotate("The board acquires startups."), p)
	f2 := Extract(a.Annotate("The board acquired startups."), p)
	has := func(fs []string, w string) bool {
		for _, f := range fs {
			if f == w {
				return true
			}
		}
		return false
	}
	if !has(f1, "w=acquir") || !has(f2, "w=acquir") {
		t.Errorf("inflections not collapsed: %v vs %v", f1, f2)
	}
}

func TestExtractEmpty(t *testing.T) {
	if got := Extract(nil, DefaultPolicy()); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
}

func TestExtractPAOnPOSCategory(t *testing.T) {
	units := []annotate.Unit{
		{Text: "quickly", POS: "rb"},
		{Text: "slowly", POS: "rb"},
	}
	p := Policy{POSCategory("rb"): RepPA}
	feats := Extract(units, p)
	if len(feats) != 1 || feats[0] != "POS=rb" {
		t.Fatalf("got %v, want [POS=rb]", feats)
	}
}

func TestExtractRepDropRemovesCategory(t *testing.T) {
	units := []annotate.Unit{
		{Text: "IBM", Entity: ner.ORG},
		{Text: "acquired", POS: "vb"},
	}
	p := Policy{POSCategory("vb"): RepIV} // ORG unmapped -> dropped
	feats := Extract(units, p)
	if len(feats) != 1 || feats[0] != "w=acquir" {
		t.Fatalf("got %v, want [w=acquir]", feats)
	}
}
