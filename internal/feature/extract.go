package feature

import (
	"etap/internal/annotate"
	"etap/internal/ner"
	"etap/internal/pos"
	"etap/internal/textproc"
)

// Policy maps each abstraction category to its representation. Categories
// absent from the policy are dropped.
type Policy map[Category]Representation

// DefaultPolicy is the abstraction the paper settles on (Section 3.2.2):
// PA for every entity category, IV for the content POS classes (vb, rb,
// nn, np, jj); closed-class POS are dropped (their words are stop words).
func DefaultPolicy() Policy {
	p := Policy{}
	for _, e := range ner.Categories {
		p[EntityCategory(e)] = RepPA
	}
	for _, t := range []pos.Tag{pos.TagVB, pos.TagRB, pos.TagNN, pos.TagNP, pos.TagJJ} {
		p[POSCategory(t)] = RepIV
	}
	return p
}

// BagOfWordsPolicy is the no-abstraction baseline used by the ablation
// benches: every category, entity or POS, keeps its instances.
func BagOfWordsPolicy() Policy {
	p := Policy{}
	for _, c := range AllCategories() {
		p[c] = RepIV
	}
	return p
}

// Extract renders an annotated snippet as a list of feature strings under
// the policy.
//
//   - RepPA categories contribute a single "ENT=<CAT>" feature when at
//     least one instance is present (binary, deduplicated).
//   - RepIV categories contribute one feature per instance occurrence:
//     for POS categories the stemmed word ("w=acquir"), for entity
//     categories the lower-cased surface ("ORG=ibm").
//   - Stop words never become IV features.
func Extract(units []annotate.Unit, p Policy) []string {
	out := make([]string, 0, len(units))
	seenPA := map[string]bool{}
	for _, u := range units {
		if u.IsEntity() {
			rep, ok := p[EntityCategory(u.Entity)]
			if !ok {
				continue
			}
			switch rep {
			case RepPA:
				f := "ENT=" + string(u.Entity)
				if !seenPA[f] {
					seenPA[f] = true
					out = append(out, f)
				}
			case RepIV:
				out = append(out, string(u.Entity)+"="+u.Lower())
			}
			continue
		}
		rep, ok := p[POSCategory(u.POS)]
		if !ok {
			continue
		}
		switch rep {
		case RepPA:
			f := "POS=" + string(u.POS)
			if !seenPA[f] {
				seenPA[f] = true
				out = append(out, f)
			}
		case RepIV:
			w := u.Lower()
			if textproc.IsStopword(w) {
				continue
			}
			out = append(out, "w="+textproc.Stem(w))
		}
	}
	return out
}

// ExtractText annotates text with the given annotator and extracts
// features in one step.
func ExtractText(a *annotate.Annotator, text string, p Policy) []string {
	return Extract(a.Annotate(text), p)
}

// MarshalMap renders the policy as a plain string map (category name →
// representation name) for serialization.
func (p Policy) MarshalMap() map[string]string {
	out := make(map[string]string, len(p))
	for c, r := range p {
		out[c.String()] = r.String()
	}
	return out
}

// PolicyFromMap inverts MarshalMap. Unknown representation names map to
// RepDrop.
func PolicyFromMap(m map[string]string) Policy {
	p := make(Policy, len(m))
	for cat, rep := range m {
		c := ParseCategory(cat)
		switch rep {
		case "PA":
			p[c] = RepPA
		case "IV":
			p[c] = RepIV
		default:
			p[c] = RepDrop
		}
	}
	return p
}
