package feature

import (
	"math"
	"testing"

	"etap/internal/annotate"
	"etap/internal/ner"
	"etap/internal/pos"
)

// mkUnits builds annotated units from shorthand: "ORG:ibm" is an entity,
// "vb:acquired" a POS word.
func mkUnits(specs ...string) []annotate.Unit {
	var out []annotate.Unit
	for _, s := range specs {
		for i := 0; i < len(s); i++ {
			if s[i] == ':' {
				kind, text := s[:i], s[i+1:]
				if kind == strings_ToUpper(kind) {
					out = append(out, annotate.Unit{Text: text, Entity: ner.Category(kind)})
				} else {
					out = append(out, annotate.Unit{Text: text, POS: pos.Tag(kind)})
				}
				break
			}
		}
	}
	return out
}

func strings_ToUpper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 32
		}
	}
	return string(b)
}

func TestEntropy(t *testing.T) {
	if got := entropy([]float64{1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("H(1/2,1/2) = %v, want 1", got)
	}
	if got := entropy([]float64{4, 0}); got != 0 {
		t.Errorf("H(1,0) = %v, want 0", got)
	}
	if got := entropy([]float64{}); got != 0 {
		t.Errorf("H() = %v, want 0", got)
	}
}

// A category that is present in every positive and absent from every
// negative should have high PA RIG.
func TestRIGPADiscriminativePresence(t *testing.T) {
	var data []Labeled
	for i := 0; i < 50; i++ {
		data = append(data, Labeled{Units: mkUnits("DESIG:CEO", "vb:said"), Label: true})
		data = append(data, Labeled{Units: mkUnits("vb:said"), Label: false})
	}
	rig := RIG(data, EntityCategory(ner.DESIG), RepPA)
	if rig < 0.8 {
		t.Errorf("PA RIG = %v, want > 0.8 for perfectly discriminative presence", rig)
	}
}

// A category present everywhere (like verbs) should have near-zero PA RIG.
func TestRIGPAUbiquitousCategory(t *testing.T) {
	var data []Labeled
	for i := 0; i < 50; i++ {
		data = append(data, Labeled{Units: mkUnits("vb:acquired"), Label: true})
		data = append(data, Labeled{Units: mkUnits("vb:walked"), Label: false})
	}
	rig := RIG(data, POSCategory(pos.TagVB), RepPA)
	if rig > 0.05 {
		t.Errorf("PA RIG = %v, want ~0 when category occurs in every snippet", rig)
	}
}

// The same data has high IV RIG: the verb identity separates the classes.
func TestRIGIVDiscriminativeInstances(t *testing.T) {
	var data []Labeled
	for i := 0; i < 50; i++ {
		data = append(data, Labeled{Units: mkUnits("vb:acquired"), Label: true})
		data = append(data, Labeled{Units: mkUnits("vb:walked"), Label: false})
	}
	rig := RIG(data, POSCategory(pos.TagVB), RepIV)
	if rig < 0.5 {
		t.Errorf("IV RIG = %v, want high for discriminative verb instances", rig)
	}
}

// Sparse instances (every org name unique) must yield low IV RIG thanks
// to smoothing — this is the data-sparsity phenomenon that motivates
// abstraction.
func TestRIGIVSparseInstancesPenalized(t *testing.T) {
	var data []Labeled
	for i := 0; i < 40; i++ {
		org := "org" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		data = append(data, Labeled{Units: mkUnits("ORG:" + org), Label: i%2 == 0})
	}
	iv := RIG(data, EntityCategory(ner.ORG), RepIV)
	if iv > 0.3 {
		t.Errorf("IV RIG = %v, want small for singleton instances", iv)
	}
}

// Paper's headline observation: for entity categories appearing mostly in
// positives, PA beats IV; for shared discriminative verbs, IV beats PA.
func TestRIGPaperShape(t *testing.T) {
	var data []Labeled
	for i := 0; i < 60; i++ {
		units := mkUnits(
			"ORG:company"+string(rune('a'+i%30)), // sparse org names, mostly positive docs
			"vb:acquired",                        // shared driver verb
			"nn:deal",
		)
		data = append(data, Labeled{Units: units, Label: true})
		data = append(data, Labeled{Units: mkUnits("vb:walked", "nn:weather"), Label: false})
	}
	org := RIGComparison{
		Category: EntityCategory(ner.ORG),
		PA:       RIG(data, EntityCategory(ner.ORG), RepPA),
		IV:       RIG(data, EntityCategory(ner.ORG), RepIV),
	}
	vb := RIGComparison{
		Category: POSCategory(pos.TagVB),
		PA:       RIG(data, POSCategory(pos.TagVB), RepPA),
		IV:       RIG(data, POSCategory(pos.TagVB), RepIV),
	}
	if org.PA <= org.IV {
		t.Errorf("ORG: PA (%v) should exceed IV (%v)", org.PA, org.IV)
	}
	if vb.IV <= vb.PA {
		t.Errorf("vb: IV (%v) should exceed PA (%v)", vb.IV, vb.PA)
	}
	if org.Preferred() != RepPA {
		t.Errorf("ORG preferred = %v, want PA", org.Preferred())
	}
	if vb.Preferred() != RepIV {
		t.Errorf("vb preferred = %v, want IV", vb.Preferred())
	}
}

func TestRIGDegenerateCases(t *testing.T) {
	// All same label: H(Y)=0, RIG must be 0 not NaN.
	data := []Labeled{
		{Units: mkUnits("ORG:ibm"), Label: true},
		{Units: mkUnits("ORG:sun"), Label: true},
	}
	for _, rep := range []Representation{RepPA, RepIV} {
		if got := RIG(data, EntityCategory(ner.ORG), rep); got != 0 || math.IsNaN(got) {
			t.Errorf("degenerate labels, %v: got %v, want 0", rep, got)
		}
	}
	// Category never occurs.
	if got := RIG(data, EntityCategory(ner.PROD), RepIV); got != 0 {
		t.Errorf("absent category IV RIG = %v, want 0", got)
	}
	// Empty data.
	if got := RIG(nil, EntityCategory(ner.ORG), RepPA); got != 0 {
		t.Errorf("empty data RIG = %v, want 0", got)
	}
}

func TestRIGBounds(t *testing.T) {
	var data []Labeled
	for i := 0; i < 30; i++ {
		data = append(data, Labeled{Units: mkUnits("DESIG:CEO", "vb:hired"), Label: i%3 == 0})
	}
	for _, c := range AllCategories() {
		for _, rep := range []Representation{RepPA, RepIV} {
			got := RIG(data, c, rep)
			if got < 0 || got > 1 || math.IsNaN(got) {
				t.Errorf("RIG(%v,%v) = %v out of [0,1]", c, rep, got)
			}
		}
	}
}

func TestChoosePolicy(t *testing.T) {
	var data []Labeled
	for i := 0; i < 60; i++ {
		data = append(data, Labeled{
			Units: mkUnits("ORG:co"+string(rune('a'+i%30)), "vb:acquired"),
			Label: true,
		})
		data = append(data, Labeled{Units: mkUnits("vb:walked"), Label: false})
	}
	p := ChoosePolicy(data, []Category{EntityCategory(ner.ORG), POSCategory(pos.TagVB), EntityCategory(ner.PROD)})
	if p[EntityCategory(ner.ORG)] != RepPA {
		t.Errorf("ORG policy = %v, want PA", p[EntityCategory(ner.ORG)])
	}
	if p[POSCategory(pos.TagVB)] != RepIV {
		t.Errorf("vb policy = %v, want IV", p[POSCategory(pos.TagVB)])
	}
	if p[EntityCategory(ner.PROD)] != RepDrop {
		t.Errorf("PROD policy = %v, want drop (never occurs)", p[EntityCategory(ner.PROD)])
	}
}

func TestCompareRIGOrder(t *testing.T) {
	data := []Labeled{
		{Units: mkUnits("ORG:ibm", "vb:acquired"), Label: true},
		{Units: mkUnits("nn:weather"), Label: false},
	}
	cats := []Category{EntityCategory(ner.ORG), POSCategory(pos.TagVB)}
	got := CompareRIG(data, cats)
	if len(got) != 2 || got[0].Category != cats[0] || got[1].Category != cats[1] {
		t.Fatalf("CompareRIG order mismatch: %+v", got)
	}
}
