package feature

import (
	"testing"

	"etap/internal/ner"
	"etap/internal/pos"
)

func TestParseCategoryRoundTrip(t *testing.T) {
	for _, c := range AllCategories() {
		got := ParseCategory(c.String())
		if got != c {
			t.Errorf("ParseCategory(%q) = %+v, want %+v", c.String(), got, c)
		}
	}
}

func TestParseCategoryKinds(t *testing.T) {
	if c := ParseCategory("ORG"); c.Entity != ner.ORG {
		t.Errorf("ORG parsed as %+v", c)
	}
	if c := ParseCategory("vb"); c.POS != pos.TagVB {
		t.Errorf("vb parsed as %+v", c)
	}
}

func TestPolicyMarshalRoundTrip(t *testing.T) {
	p := DefaultPolicy()
	m := p.MarshalMap()
	back := PolicyFromMap(m)
	if len(back) != len(p) {
		t.Fatalf("size mismatch: %d vs %d", len(back), len(p))
	}
	for c, rep := range p {
		if back[c] != rep {
			t.Errorf("%s: %v vs %v", c, back[c], rep)
		}
	}
}

func TestPolicyFromMapUnknownRep(t *testing.T) {
	p := PolicyFromMap(map[string]string{"ORG": "bogus"})
	if p[EntityCategory(ner.ORG)] != RepDrop {
		t.Errorf("unknown rep should map to drop: %v", p)
	}
}

func TestVocabNamesRoundTrip(t *testing.T) {
	v := NewVocab()
	for _, n := range []string{"w=alpha", "ENT=ORG", "w=beta"} {
		v.ID(n)
	}
	rebuilt := VocabFromNames(v.Names())
	if rebuilt.Size() != v.Size() {
		t.Fatalf("sizes: %d vs %d", rebuilt.Size(), v.Size())
	}
	for _, n := range v.Names() {
		a, _ := v.Lookup(n)
		b, ok := rebuilt.Lookup(n)
		if !ok || a != b {
			t.Errorf("%q: id %d vs %d (ok=%v)", n, a, b, ok)
		}
	}
}

func TestRepresentationString(t *testing.T) {
	if RepPA.String() != "PA" || RepIV.String() != "IV" || RepDrop.String() != "drop" {
		t.Error("representation names wrong")
	}
}
