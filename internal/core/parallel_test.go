package core

import (
	"testing"

	"etap/internal/corpus"
	"etap/internal/web"
)

func TestExtractEventsParallelMatchesSequential(t *testing.T) {
	f := newFixture(t, 41, Config{Seed: 41})
	f.addDriver(t, corpus.ChangeInManagement, 15)
	id := string(corpus.ChangeInManagement)

	var pages []*web.Page
	for _, d := range f.docs {
		if p, ok := f.web.Page(d.URL); ok {
			pages = append(pages, p)
		}
	}
	seq, err := f.sys.ExtractEvents(id, pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := f.sys.ExtractEventsParallel(id, pages, 0.5, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d events vs %d sequential", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: event %d differs:\n par: %+v\n seq: %+v",
					workers, i, par[i], seq[i])
			}
		}
	}
}

func TestExtractEventsParallelSingleWorkerFallback(t *testing.T) {
	f := newFixture(t, 42, Config{Seed: 42})
	f.addDriver(t, corpus.MergersAcquisitions, 10)
	id := string(corpus.MergersAcquisitions)
	pages := f.web.Search("merger", 20)
	par, err := f.sys.ExtractEventsParallel(id, pages, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := f.sys.ExtractEvents(id, pages, 0.5)
	if len(par) != len(seq) {
		t.Fatalf("fallback differs: %d vs %d", len(par), len(seq))
	}
}

func TestExtractEventsParallelUnknownDriver(t *testing.T) {
	f := newFixture(t, 43, Config{Seed: 43})
	if _, err := f.sys.ExtractEventsParallel("ghost", nil, 0.5, 4); err != ErrUnknownDriver {
		t.Fatalf("err = %v", err)
	}
}

func TestExtractEventsParallelEmptyPages(t *testing.T) {
	f := newFixture(t, 44, Config{Seed: 44})
	f.addDriver(t, corpus.ChangeInManagement, 5)
	events, err := f.sys.ExtractEventsParallel(string(corpus.ChangeInManagement), nil, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("events from no pages: %d", len(events))
	}
}

func BenchmarkExtractEventsSequential(b *testing.B) {
	f := newFixture(b, 45, Config{Seed: 45})
	f.addDriver(b, corpus.ChangeInManagement, 10)
	id := string(corpus.ChangeInManagement)
	var pages []*web.Page
	for _, d := range f.docs {
		if p, ok := f.web.Page(d.URL); ok {
			pages = append(pages, p)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.sys.ExtractEvents(id, pages, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractEventsParallel(b *testing.B) {
	f := newFixture(b, 45, Config{Seed: 45})
	f.addDriver(b, corpus.ChangeInManagement, 10)
	id := string(corpus.ChangeInManagement)
	var pages []*web.Page
	for _, d := range f.docs {
		if p, ok := f.web.Page(d.URL); ok {
			pages = append(pages, p)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.sys.ExtractEventsParallel(id, pages, 0.5, 0); err != nil {
			b.Fatal(err)
		}
	}
}
