package core

import (
	"testing"

	"etap/internal/corpus"
)

func TestDriverExportImportRoundTrip(t *testing.T) {
	f := newFixture(t, 31, Config{Seed: 31})
	f.addDriver(t, corpus.ChangeInManagement, 20)
	id := string(corpus.ChangeInManagement)

	data, err := f.sys.MarshalDriver(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty model")
	}

	// Fresh system over the same web, model imported instead of trained.
	sys2 := New(f.web, Config{Seed: 31})
	if err := sys2.UnmarshalDriver(data, nil); err != nil {
		t.Fatal(err)
	}

	// Scores must agree exactly on arbitrary snippets.
	samples := append(f.gen.PurePositives(corpus.ChangeInManagement, 10),
		f.gen.BackgroundSnippets(10)...)
	for _, s := range samples {
		p1, err1 := f.sys.Score(id, s.Text)
		p2, err2 := sys2.Score(id, s.Text)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if p1 != p2 {
			t.Fatalf("scores diverge after round trip: %v vs %v on %q", p1, p2, s.Text)
		}
	}
}

func TestDriverExportImportSVMAndLogReg(t *testing.T) {
	for _, kind := range []ClassifierKind{LinearSVM, WeightedLogReg} {
		f := newFixture(t, 32, Config{Seed: 32, Classifier: kind})
		f.addDriver(t, corpus.MergersAcquisitions, 10)
		id := string(corpus.MergersAcquisitions)

		data, err := f.sys.MarshalDriver(id)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		sys2 := New(f.web, Config{Seed: 32})
		if err := sys2.UnmarshalDriver(data, nil); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		for _, s := range f.gen.PurePositives(corpus.MergersAcquisitions, 5) {
			p1, _ := f.sys.Score(id, s.Text)
			p2, _ := sys2.Score(id, s.Text)
			if p1 != p2 {
				t.Fatalf("kind %d: scores diverge: %v vs %v", kind, p1, p2)
			}
		}
	}
}

func TestDriverExportPreservesOrientation(t *testing.T) {
	f := newFixture(t, 33, Config{Seed: 33})
	f.addDriver(t, corpus.RevenueGrowth, 10)
	id := string(corpus.RevenueGrowth)

	m, err := f.sys.ExportDriver(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Orientation) == 0 {
		t.Fatal("orientation lexicon lost in export")
	}
	sys2 := New(f.web, Config{Seed: 33})
	if err := sys2.ImportDriver(m, nil); err != nil {
		t.Fatal(err)
	}
	pages := f.web.Search(`"revenue growth"`, 20)
	events, err := sys2.ExtractEvents(id, pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	oriented := 0
	for _, ev := range events {
		if ev.Orientation != 0 {
			oriented++
		}
	}
	if len(events) > 0 && oriented == 0 {
		t.Error("imported driver lost orientation scoring")
	}
}

func TestImportDriverValidation(t *testing.T) {
	f := newFixture(t, 34, Config{Seed: 34})
	if err := f.sys.ImportDriver(DriverModel{}, nil); err == nil {
		t.Error("no error for empty model")
	}
	if err := f.sys.ImportDriver(DriverModel{ID: "x", Classifier: "unknown"}, nil); err == nil {
		t.Error("no error for unknown classifier kind")
	}
	if err := f.sys.ImportDriver(DriverModel{ID: "x", Classifier: "nb"}, nil); err == nil {
		t.Error("no error for missing nb parameters")
	}
	if err := f.sys.UnmarshalDriver([]byte("{"), nil); err == nil {
		t.Error("no error for malformed JSON")
	}
	// Duplicate import.
	f.addDriver(t, corpus.ChangeInManagement, 5)
	data, _ := f.sys.MarshalDriver(string(corpus.ChangeInManagement))
	if err := f.sys.UnmarshalDriver(data, nil); err == nil {
		t.Error("no error for duplicate driver import")
	}
}

func TestExportUnknownDriver(t *testing.T) {
	f := newFixture(t, 35, Config{Seed: 35})
	if _, err := f.sys.ExportDriver("ghost"); err != ErrUnknownDriver {
		t.Errorf("err = %v", err)
	}
}
