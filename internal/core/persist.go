package core

import (
	"encoding/json"
	"fmt"

	"etap/internal/classify"
	"etap/internal/feature"
	"etap/internal/rank"
	"etap/internal/train"
)

// DriverModel is the serializable form of a trained sales driver: the
// classifier parameters, vocabulary and abstraction policy needed to
// score new snippets exactly as the training-time system would. Smart
// queries and the orientation lexicon are carried along; the entity
// filter is a function and must be re-supplied on import (it only
// matters for re-training, not for scoring).
type DriverModel struct {
	ID           string                       `json:"id"`
	Title        string                       `json:"title"`
	SmartQueries []string                     `json:"smartQueries,omitempty"`
	Orientation  map[string]float64           `json:"orientation,omitempty"`
	Policy       map[string]string            `json:"policy"`
	Vocab        []string                     `json:"vocab"`
	Classifier   string                       `json:"classifier"` // "nb", "svm", "logreg"
	NaiveBayes   *classify.NaiveBayesSnapshot `json:"naiveBayes,omitempty"`
	SVM          *classify.SVMSnapshot        `json:"svm,omitempty"`
	LogReg       *classify.LogRegSnapshot     `json:"logReg,omitempty"`
}

// ExportDriver captures a trained driver for persistence.
func (s *System) ExportDriver(driverID string) (DriverModel, error) {
	td, ok := s.drivers[driverID]
	if !ok {
		return DriverModel{}, ErrUnknownDriver
	}
	m := DriverModel{
		ID:           td.spec.ID,
		Title:        td.spec.Title,
		SmartQueries: td.spec.SmartQueries,
		Policy:       td.policy.MarshalMap(),
		Vocab:        td.vocab.Names(),
	}
	if td.spec.Orientation != nil {
		m.Orientation = map[string]float64(td.spec.Orientation)
	}
	switch clf := td.clf.(type) {
	case *classify.NaiveBayes:
		snap := clf.Snapshot()
		m.Classifier, m.NaiveBayes = "nb", &snap
	case *classify.SVM:
		snap := clf.Snapshot()
		m.Classifier, m.SVM = "svm", &snap
	case *classify.LogReg:
		snap := clf.Snapshot()
		m.Classifier, m.LogReg = "logreg", &snap
	default:
		return DriverModel{}, fmt.Errorf("core: classifier %T is not serializable", td.clf)
	}
	return m, nil
}

// ImportDriver installs a previously exported driver. filter (optional)
// restores the entity filter for future re-training; scoring does not
// need it.
func (s *System) ImportDriver(m DriverModel, filter train.Filter) error {
	if m.ID == "" {
		return fmt.Errorf("core: driver model without ID")
	}
	if _, dup := s.drivers[m.ID]; dup {
		return fmt.Errorf("core: driver %q already present", m.ID)
	}
	var clf classify.Classifier
	switch m.Classifier {
	case "nb":
		if m.NaiveBayes == nil {
			return fmt.Errorf("core: nb model missing parameters")
		}
		clf = classify.NaiveBayesFromSnapshot(*m.NaiveBayes)
	case "svm":
		if m.SVM == nil {
			return fmt.Errorf("core: svm model missing parameters")
		}
		clf = classify.SVMFromSnapshot(*m.SVM)
	case "logreg":
		if m.LogReg == nil {
			return fmt.Errorf("core: logreg model missing parameters")
		}
		clf = classify.LogRegFromSnapshot(*m.LogReg)
	default:
		return fmt.Errorf("core: unknown classifier kind %q", m.Classifier)
	}

	spec := SalesDriver{
		ID:           m.ID,
		Title:        m.Title,
		SmartQueries: m.SmartQueries,
		Filter:       filter,
	}
	if m.Orientation != nil {
		spec.Orientation = rank.Lexicon(m.Orientation)
	}
	s.drivers[m.ID] = &trainedDriver{
		spec:   spec,
		clf:    clf,
		vocab:  feature.VocabFromNames(m.Vocab),
		policy: feature.PolicyFromMap(m.Policy),
	}
	return nil
}

// MarshalDriver serializes a trained driver to JSON.
func (s *System) MarshalDriver(driverID string) ([]byte, error) {
	m, err := s.ExportDriver(driverID)
	if err != nil {
		return nil, err
	}
	return json.Marshal(m)
}

// UnmarshalDriver installs a driver from its JSON form.
func (s *System) UnmarshalDriver(data []byte, filter train.Filter) error {
	var m DriverModel
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("core: decoding driver model: %w", err)
	}
	return s.ImportDriver(m, filter)
}
