// Package core implements the ETAP system itself (Section 2): sales
// drivers, trigger events, and the three components — data gathering,
// event identification, and ranking — wired into one pipeline.
//
// Usage:
//
//	sys := core.New(web, core.Config{})
//	stats, err := sys.AddDriver(core.SalesDriver{...}, purePositives)
//	events := sys.ExtractEvents("change-in-management", pages, 0.5)
//	ranked := rank.ByScore(events)
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"etap/internal/annotate"
	"etap/internal/classify"
	"etap/internal/feature"
	"etap/internal/gather"
	"etap/internal/ner"
	"etap/internal/noise"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/snippet"
	"etap/internal/train"
	"etap/internal/web"
)

// SalesDriver describes one sales driver: "a class of events whose
// existence indicates a high propensity to buy products/services by the
// companies associated with the events".
type SalesDriver struct {
	// ID is the stable identifier ("mergers-acquisitions").
	ID string
	// Title is the display name ("Mergers & acquisitions").
	Title string
	// SmartQueries generate the noisy positive data (Section 3.3.1).
	SmartQueries []string
	// Filter is the snippet-level entity filter distilling noisy
	// positives; nil accepts everything.
	Filter train.Filter
	// Orientation is an optional driver-specific scoring lexicon
	// (Section 4); nil drivers rank by classifier score only.
	Orientation rank.Lexicon
}

// ClassifierKind selects the classifier family for event identification.
type ClassifierKind uint8

// Supported classifier families. NaiveBayes is the paper's choice;
// the others are the cited alternatives.
const (
	NaiveBayes ClassifierKind = iota
	LinearSVM
	WeightedLogReg
)

// Config tunes the pipeline.
type Config struct {
	// SnippetN is the sentences-per-snippet window; 0 means 3.
	SnippetN int
	// TopK documents fetched per smart query; 0 means 200.
	TopK int
	// NegativeCount is the size of the shared random negative sample;
	// 0 means 2000. (The paper used over 2 million; the scale is a
	// parameter.)
	NegativeCount int
	// NoiseIterations caps the Brodley-style iterations; 0 means 2
	// (Table 1 reports "results after two iterations").
	NoiseIterations int
	// Oversample is the pure-positive oversampling factor; 0 means 3.
	Oversample int
	// Classifier selects the family; default NaiveBayes.
	Classifier ClassifierKind
	// Policy is the feature-abstraction policy; nil means the paper's
	// default (PA entities, IV content POS) unless AutoPolicy is set.
	Policy feature.Policy
	// AutoPolicy derives the policy from pure positives vs negatives by
	// relative information gain (Section 3.2.2). Requires pure
	// positives at AddDriver time.
	AutoPolicy bool
	// Seed drives sampling and SGD; fully deterministic per seed.
	Seed int64
	// MissRate injects NER errors (robustness experiments); 0 is off.
	MissRate float64
	// FeatureTopK applies the paper's classical feature selection
	// (Section 3.2.1): only the top-k features by the chosen measure,
	// computed on the training data, are retained. 0 means 300;
	// negative disables selection.
	FeatureTopK int
	// FeatureMeasure selects the ranking statistic; the zero value is
	// chi-square.
	FeatureMeasure feature.SelectionMeasure
	// SemiSupervised replaces the Brodley-style noise-elimination loop
	// with the EM of Nigam et al. [10]: pure positives and negatives
	// are the labeled data and the noisy positives are treated as
	// unlabeled. Requires pure positives; only meaningful with the
	// naïve Bayes classifier.
	SemiSupervised bool
	// Metrics selects the registry the extraction hot path (snippet →
	// annotate → classify → rank) reports into; nil means obs.Default.
	// It scopes only this pipeline: the train, gather, and index
	// packages always report into the process-wide obs.Default.
	Metrics *obs.Registry
	// DisableMetrics turns extraction-pipeline instrumentation off —
	// the control arm of the observability-overhead benchmark. Like
	// Metrics, it does not affect train/gather/index metrics.
	DisableMetrics bool
	// Shards is the search-index shard count used when this Config
	// builds a web (BuildWebWith / BuildWebFromHTMLWith); 0 means
	// GOMAXPROCS. It does not re-shard a web built elsewhere. Ranked
	// results are identical for any shard count.
	Shards int
	// CacheSize is the search-index query-result cache capacity in
	// entries, applied like Shards at web-build time; 0 means
	// index.DefaultCacheSize, negative disables caching.
	CacheSize int
	// RouteSeed, when non-zero, makes the search index's shard routing
	// deterministic across process restarts (see index.Options.RouteSeed).
	// Applied like Shards at web-build time; 0 keeps the per-process
	// random routing.
	RouteSeed uint64
	// Fetch is the data-gathering fetch policy — retry/backoff/breaker
	// settings and optional fault injection — applied by System.Crawl.
	// The zero value means gather's documented defaults and no injected
	// faults.
	Fetch gather.FetchOptions
	// IndexDir, when non-empty, backs webs built by BuildWebEngine with
	// the persistent segment index rooted at this directory instead of
	// the in-RAM sharded index: documents committed there survive
	// restarts and are re-opened, not re-indexed. Ranked results are
	// identical to the in-RAM engine's. Empty keeps the in-RAM index.
	IndexDir string
	// SegmentFlushDocs is the per-writer memtable size, in documents,
	// at which the persistent index seals and flushes a segment; 0
	// means index.DefaultFlushDocs. Only meaningful with IndexDir.
	SegmentFlushDocs int
	// MergeFactor is the persistent index's tiered merge fan-in; 0
	// means index.DefaultMergeFactor. Only meaningful with IndexDir.
	MergeFactor int
}

func (c Config) withDefaults() Config {
	if c.SnippetN == 0 {
		c.SnippetN = snippet.DefaultN
	}
	if c.TopK == 0 {
		c.TopK = 200
	}
	if c.NegativeCount == 0 {
		c.NegativeCount = 2000
	}
	if c.NoiseIterations == 0 {
		c.NoiseIterations = 2
	}
	if c.Oversample == 0 {
		c.Oversample = noise.DefaultOversample
	}
	if c.FeatureTopK == 0 {
		c.FeatureTopK = 300
	}
	return c
}

// TrainingStats reports what AddDriver did.
type TrainingStats struct {
	Generation train.Stats
	// NoisyPositives is the size of the distilled noisy positive set.
	NoisyPositives int
	// PurePositives is the number of supplied pure positive snippets
	// (before oversampling).
	PurePositives int
	// Negatives is the size of the shared negative sample.
	Negatives int
	// NoiseHistory records the per-iteration shrink of Pⁿ.
	NoiseHistory []noise.IterationStats
	// VocabularySize after training.
	VocabularySize int
}

// trainedDriver bundles a driver with its trained classifier.
type trainedDriver struct {
	spec   SalesDriver
	clf    classify.Classifier
	vocab  *feature.Vocab
	policy feature.Policy
	stats  TrainingStats
}

// System is a configured ETAP instance over one web.
type System struct {
	web *web.Web
	ann *annotate.Annotator
	rec *ner.Recognizer
	cfg Config
	met *pipelineMetrics // nil when Config.DisableMetrics

	drivers map[string]*trainedDriver
	// negatives are shared across drivers ("The same set of negative
	// class snippets can be used across different sales-driver
	// categories").
	negatives []train.Snippet
}

// New builds a system over w.
func New(w *web.Web, cfg Config) *System {
	cfg = cfg.withDefaults()
	var opts []ner.Option
	if cfg.MissRate > 0 {
		opts = append(opts, ner.WithMissRate(cfg.MissRate, cfg.Seed))
	}
	rec := ner.NewRecognizer(opts...)
	sys := &System{
		web:     w,
		ann:     annotate.New(rec),
		rec:     rec,
		cfg:     cfg,
		drivers: make(map[string]*trainedDriver),
	}
	if !cfg.DisableMetrics {
		sys.met = newPipelineMetrics(cfg.Metrics)
	}
	return sys
}

// Annotator exposes the system's annotation pipeline.
func (s *System) Annotator() *annotate.Annotator { return s.ann }

// Recognizer exposes the system's entity recognizer.
func (s *System) Recognizer() *ner.Recognizer { return s.rec }

// Web exposes the underlying web.
func (s *System) Web() *web.Web { return s.web }

// Crawl runs the focused crawler over the system's web with the
// system's fetch policy threaded in: when the crawl supplies no
// Fetcher and the config enables fault injection, the web is wrapped
// in a FaultFetcher; when the crawl's retry settings are zero, the
// system's take effect. Explicit per-crawl settings always win. The
// context bounds the crawl and propagates into every fetch attempt.
func (s *System) Crawl(ctx context.Context, cfg gather.CrawlConfig) gather.CrawlResult {
	if cfg.Fetcher == nil && s.cfg.Fetch.Fault != nil {
		cfg.Fetcher = web.NewFaultFetcher(s.web, *s.cfg.Fetch.Fault)
	}
	if cfg.Retry.IsZero() {
		cfg.Retry = s.cfg.Fetch.Retry
	}
	return gather.Crawl(ctx, s.web, cfg)
}

// Drivers returns the IDs of the trained drivers, in no particular order.
func (s *System) Drivers() []string {
	out := make([]string, 0, len(s.drivers))
	for id := range s.drivers {
		out = append(out, id)
	}
	return out
}

// ErrUnknownDriver is returned for operations on drivers that were never
// added.
var ErrUnknownDriver = errors.New("core: unknown sales driver")

// ErrNoTrainingData is returned when smart queries produce no noisy
// positive snippets.
var ErrNoTrainingData = errors.New("core: smart queries produced no noisy positive data")

// AddDriver trains the two-class classifier for one sales driver:
// noisy-positive generation via smart queries and entity filters, shared
// negative sampling, feature abstraction, and iterative noise
// elimination. purePositives (possibly empty) are the manually labeled
// snippets; they are oversampled per the configuration.
func (s *System) AddDriver(d SalesDriver, purePositives []string) (TrainingStats, error) {
	if d.ID == "" {
		return TrainingStats{}, errors.New("core: sales driver needs an ID")
	}
	if _, dup := s.drivers[d.ID]; dup {
		return TrainingStats{}, fmt.Errorf("core: driver %q already added", d.ID)
	}
	trainStart := time.Now()

	spec := train.Spec{SmartQueries: d.SmartQueries, Filter: d.Filter}
	noisy, genStats := train.NoisyPositives(s.web, s.ann, spec, train.Config{
		TopK:     s.cfg.TopK,
		SnippetN: s.cfg.SnippetN,
	})
	if len(noisy) == 0 && len(purePositives) == 0 {
		return TrainingStats{}, ErrNoTrainingData
	}
	if s.negatives == nil {
		s.negatives = train.Negatives(s.web, s.ann, s.cfg.NegativeCount, s.cfg.SnippetN, s.cfg.Seed)
	}

	pureUnits := make([][]annotate.Unit, len(purePositives))
	for i, t := range purePositives {
		pureUnits[i] = s.ann.Annotate(t)
	}

	// Abstraction policy: fixed, default, or RIG-derived.
	policy := s.cfg.Policy
	if policy == nil {
		if s.cfg.AutoPolicy {
			var labeled []feature.Labeled
			for _, u := range pureUnits {
				labeled = append(labeled, feature.Labeled{Units: u, Label: true})
			}
			for _, n := range s.negatives {
				labeled = append(labeled, feature.Labeled{Units: n.Units, Label: false})
			}
			policy = feature.ChoosePolicy(labeled, feature.AllCategories())
		} else {
			policy = feature.DefaultPolicy()
		}
	}

	// Extract feature lists once; apply classical feature selection
	// (Section 3.2.1) computed on the training data.
	var featLists [][]string
	var labels []bool
	add := func(units []annotate.Unit, label bool) {
		featLists = append(featLists, feature.Extract(units, policy))
		labels = append(labels, label)
	}
	for _, u := range pureUnits {
		add(u, true)
	}
	for _, n := range noisy {
		add(n.Units, true)
	}
	for _, n := range s.negatives {
		add(n.Units, false)
	}

	vocab := feature.NewVocab()
	if s.cfg.FeatureTopK > 0 {
		keep := feature.TopK(featLists, labels, s.cfg.FeatureMeasure, s.cfg.FeatureTopK)
		// Intern exactly the selected features; Vectorize(grow=false)
		// then drops everything else, at training and inference alike.
		for _, f := range sortedKeys(keep) {
			vocab.ID(f)
		}
	} else {
		for _, fl := range featLists {
			for _, f := range fl {
				vocab.ID(f)
			}
		}
	}

	nPure := len(pureUnits)
	var pureVecs, noisyVecs, negVecs []feature.Vector
	for i, fl := range featLists {
		v := feature.Vectorize(vocab, fl, false)
		switch {
		case i < nPure:
			pureVecs = append(pureVecs, v)
		case i < nPure+len(noisy):
			noisyVecs = append(noisyVecs, v)
		default:
			negVecs = append(negVecs, v)
		}
	}

	var clf classify.Classifier
	var history []noise.IterationStats
	if s.cfg.SemiSupervised {
		// EM over the noisy positives as unlabeled data [10].
		var labeledEx []classify.Example
		for _, x := range pureVecs {
			for k := 0; k < s.cfg.Oversample; k++ {
				labeledEx = append(labeledEx, classify.Example{X: x, Label: true})
			}
		}
		for _, x := range negVecs {
			labeledEx = append(labeledEx, classify.Example{X: x, Label: false})
		}
		clf = classify.TrainNaiveBayesEM(labeledEx, noisyVecs,
			classify.NaiveBayesConfig{}, s.cfg.NoiseIterations+3, 1)
	} else {
		res := noise.Learn(pureVecs, noisyVecs, negVecs, noise.Config{
			Train:         s.trainer(),
			MaxIterations: s.cfg.NoiseIterations,
			Oversample:    s.cfg.Oversample,
		})
		clf = res.Classifier
		history = res.History
	}

	stats := TrainingStats{
		Generation:     genStats,
		NoisyPositives: len(noisy),
		PurePositives:  len(purePositives),
		Negatives:      len(s.negatives),
		NoiseHistory:   history,
		VocabularySize: vocab.Size(),
	}
	s.drivers[d.ID] = &trainedDriver{
		spec:   d,
		clf:    clf,
		vocab:  vocab,
		policy: policy,
		stats:  stats,
	}
	if s.met != nil {
		s.met.trainDur.Observe(time.Since(trainStart).Seconds())
	}
	return stats, nil
}

// trainer returns the per-iteration training function for the configured
// classifier family.
func (s *System) trainer() noise.Trainer {
	switch s.cfg.Classifier {
	case LinearSVM:
		return func(ex []classify.Example) classify.Classifier {
			return classify.TrainSVM(ex, classify.SVMConfig{Seed: s.cfg.Seed})
		}
	case WeightedLogReg:
		return func(ex []classify.Example) classify.Classifier {
			return classify.TrainLogReg(ex, classify.LogRegConfig{
				Seed: s.cfg.Seed, PosWeight: 0.8,
			})
		}
	default:
		return func(ex []classify.Example) classify.Classifier {
			return classify.TrainNaiveBayes(ex, classify.NaiveBayesConfig{})
		}
	}
}

// Score returns the positive-class probability of one snippet text for a
// driver.
func (s *System) Score(driverID, text string) (float64, error) {
	td, ok := s.drivers[driverID]
	if !ok {
		return 0, ErrUnknownDriver
	}
	units := s.ann.Annotate(text)
	x := feature.Vectorize(td.vocab, feature.Extract(units, td.policy), false)
	return td.clf.Prob(x), nil
}

// ExtractEvents runs the event identification component over pages: each
// page is split into snippets, annotated, scored, and snippets at or
// above threshold become trigger events. The subject company is the first
// ORG entity in the snippet (when any).
func (s *System) ExtractEvents(driverID string, pages []*web.Page, threshold float64) ([]rank.Event, error) {
	td, ok := s.drivers[driverID]
	if !ok {
		return nil, ErrUnknownDriver
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	if s.met != nil {
		s.met.runs.Inc()
	}
	gen := snippet.Generator{N: s.cfg.SnippetN}
	var events []rank.Event
	for _, page := range pages {
		events = append(events, s.scorePage(td, driverID, gen, page, threshold)...)
	}
	return events, nil
}

// ExtractAllEvents runs event identification across every trained
// driver — the per-document unit of work of the streaming ingest path
// (internal/alert), where a document's driver is not known in advance.
// Drivers run in sorted-ID order so the event stream is deterministic.
func (s *System) ExtractAllEvents(pages []*web.Page, threshold float64) []rank.Event {
	//etaplint:ignore context-plumbing -- compatibility wrapper; no cancellation crosses this boundary
	return s.ExtractAllEventsTraced(context.Background(), pages, threshold)
}

// ExtractAllEventsTraced is ExtractAllEvents contributing one
// per-driver extraction span to the document trace carried by ctx —
// a no-op without one, so the batch path pays nothing. The streaming
// ingest worker (internal/alert) calls this form.
func (s *System) ExtractAllEventsTraced(ctx context.Context, pages []*web.Page, threshold float64) []rank.Event {
	ids := s.Drivers()
	sort.Strings(ids)
	var events []rank.Event
	for _, id := range ids {
		_, sp := obs.StartDSpan(ctx, "extract")
		sp.SetAttr("driver", id)
		evs, err := s.ExtractEvents(id, pages, threshold)
		if err != nil {
			// Drivers() only names trained drivers, so this cannot
			// happen; guard anyway rather than drop events silently.
			sp.Fail(err.Error())
			sp.End()
			continue
		}
		sp.SetAttr("events", strconv.Itoa(len(evs)))
		sp.End()
		events = append(events, evs...)
	}
	return events
}

// scorePage splits one page into snippets and scores each against the
// driver classifier — the per-page unit of work shared by the
// sequential and parallel extractors. When metrics are enabled it
// attributes wall time to the snippet/annotate/classify stages and
// counts snippets scored and events emitted.
func (s *System) scorePage(td *trainedDriver, driverID string, gen snippet.Generator, page *web.Page, threshold float64) []rank.Event {
	m := s.met
	var t time.Time
	if m != nil {
		t = time.Now()
	}
	snips := gen.Split(page.URL, page.Text)
	if m != nil {
		m.snippetDur.Observe(time.Since(t).Seconds())
	}
	var events []rank.Event
	for _, sn := range snips {
		if m != nil {
			t = time.Now()
		}
		units := s.ann.Annotate(sn.Text)
		if m != nil {
			now := time.Now()
			m.annotateDur.Observe(now.Sub(t).Seconds())
			t = now
		}
		x := feature.Vectorize(td.vocab, feature.Extract(units, td.policy), false)
		p := td.clf.Prob(x)
		if m != nil {
			m.classifyDur.Observe(time.Since(t).Seconds())
			m.snippets.Inc()
		}
		if p < threshold {
			continue
		}
		if m != nil {
			m.events.Inc()
		}
		ev := rank.Event{
			SnippetID: sn.ID,
			Text:      sn.Text,
			Driver:    driverID,
			Score:     p,
			Company:   firstOrg(units),
		}
		if td.spec.Orientation != nil {
			ev.Orientation = td.spec.Orientation.Score(sn.Text)
		}
		events = append(events, ev)
	}
	return events
}

// Stats returns the training statistics of a driver.
func (s *System) Stats(driverID string) (TrainingStats, error) {
	td, ok := s.drivers[driverID]
	if !ok {
		return TrainingStats{}, ErrUnknownDriver
	}
	return td.stats, nil
}

// Policy returns the feature-abstraction policy in effect for a driver.
func (s *System) Policy(driverID string) (feature.Policy, error) {
	td, ok := s.drivers[driverID]
	if !ok {
		return nil, ErrUnknownDriver
	}
	return td.policy, nil
}

// sortedKeys returns the map's keys in sorted order, for deterministic
// vocabulary ids.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func firstOrg(units []annotate.Unit) string {
	for _, u := range units {
		if u.Entity == ner.ORG {
			return u.Text
		}
	}
	return ""
}
