package core

import (
	"strings"
	"testing"

	"etap/internal/corpus"
	"etap/internal/textproc"
)

func TestBuildWebFromHTMLEquivalence(t *testing.T) {
	docs := corpus.NewGenerator(corpus.Config{
		Seed: 81, RelevantPerDriver: 15, BackgroundDocs: 40,
		HardNegativePerDriver: 5, FamousEventDocs: 2,
	}).World()

	plain := BuildWeb(docs)
	fromHTML := BuildWebFromHTML(docs)

	if plain.Len() != fromHTML.Len() {
		t.Fatalf("page counts differ: %d vs %d", plain.Len(), fromHTML.Len())
	}
	for _, d := range docs {
		p1, _ := plain.Page(d.URL)
		p2, ok := fromHTML.Page(d.URL)
		if !ok {
			t.Fatalf("%s missing from HTML web", d.URL)
		}
		// Same content after the round trip, modulo whitespace (HTML
		// blocks become paragraph breaks — which can only *improve*
		// sentence boundaries, e.g. after "... Quartzite Inc.").
		n1 := strings.Join(strings.Fields(p1.Text), " ")
		n2 := strings.Join(strings.Fields(p2.Text), " ")
		if n1 != n2 {
			t.Fatalf("%s content differs:\n plain: %q\n html:  %q", d.URL, n1, n2)
		}
		// And the HTML path never yields fewer sentences than plain.
		if s1, s2 := textproc.SplitSentences(p1.Text), textproc.SplitSentences(p2.Text); len(s2) < len(s1) {
			t.Fatalf("%s: HTML path lost sentences: %d vs %d", d.URL, len(s2), len(s1))
		}
		// Same links and title.
		if len(p1.Links) != len(p2.Links) {
			t.Fatalf("%s: link counts differ: %v vs %v", d.URL, p1.Links, p2.Links)
		}
		for i := range p1.Links {
			if p1.Links[i] != p2.Links[i] {
				t.Fatalf("%s: link %d differs", d.URL, i)
			}
		}
		if p2.Title != p1.Title {
			t.Fatalf("%s: title %q vs %q", d.URL, p2.Title, p1.Title)
		}
	}
}

func TestBuildWebFromHTMLPipelineSmoke(t *testing.T) {
	gen := corpus.NewGenerator(corpus.Config{
		Seed: 82, RelevantPerDriver: 40, BackgroundDocs: 120,
		HardNegativePerDriver: 10, FamousEventDocs: 4,
	})
	docs := gen.World()
	w := BuildWebFromHTML(docs)
	sys := New(w, Config{Seed: 82, TopK: 60, NegativeCount: 600})
	var spec SalesDriver
	for _, sd := range DefaultDrivers() {
		if sd.ID == string(corpus.ChangeInManagement) {
			spec = sd
		}
	}
	stats, err := sys.AddDriver(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NoisyPositives < 20 {
		t.Fatalf("HTML path produced only %d noisy positives (%s)",
			stats.NoisyPositives, stats.Generation)
	}
	pages := w.Search(`"new ceo"`, 30)
	events, err := sys.ExtractEvents(string(corpus.ChangeInManagement), pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events extracted over the HTML-built web")
	}
}

func TestRenderHTMLEscapes(t *testing.T) {
	doc := corpus.Document{
		Title: "A & B <deal>",
		Host:  "h.example.com",
		Sentences: []corpus.Sentence{
			{Text: "Revenue rose 5% & margins held."},
		},
	}
	html := corpus.RenderHTML(&doc)
	if strings.Contains(html, "<deal>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(html, "&amp;") {
		t.Error("ampersand not escaped")
	}
}
