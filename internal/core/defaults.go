package core

import (
	"runtime"
	"strings"
	"sync"

	"etap/internal/corpus"
	"etap/internal/htmlx"
	"etap/internal/index"
	"etap/internal/rank"
	"etap/internal/train"
	"etap/internal/web"
)

// DefaultDrivers returns the three sales drivers ETAP ships with
// (Section 2), configured with the paper's smart queries and snippet
// filters; revenue growth additionally carries the semantic-orientation
// lexicon of Section 4.
func DefaultDrivers() []SalesDriver {
	specs := train.DefaultSpecs()
	out := make([]SalesDriver, 0, len(corpus.Drivers))
	for _, d := range corpus.Drivers {
		spec := specs[d]
		sd := SalesDriver{
			ID:           string(d),
			Title:        d.Title(),
			SmartQueries: spec.SmartQueries,
			Filter:       spec.Filter,
		}
		if d == corpus.RevenueGrowth {
			sd.Orientation = rank.DefaultRevenueLexicon()
		}
		out = append(out, sd)
	}
	return out
}

// BuildWeb converts generated corpus documents into a frozen web with a
// search index — the standard bridge between the synthetic corpus and the
// pipeline. Equivalent to BuildWebWith with a zero Config.
func BuildWeb(docs []corpus.Document) *web.Web {
	return BuildWebWith(docs, Config{})
}

// BuildWebWith is BuildWeb honouring the Config's index knobs (Shards,
// CacheSize, RouteSeed) and bulk-loading the sharded index
// concurrently. Page order, page content and ranked search results are
// identical to a sequential build for any shard count.
func BuildWebWith(docs []corpus.Document, cfg Config) *web.Web {
	w := web.New(web.WithIndexOptions(index.Options{
		Shards:    cfg.Shards,
		CacheSize: cfg.CacheSize,
		RouteSeed: cfg.RouteSeed,
	}))
	pages := make([]web.Page, len(docs))
	for i, d := range docs {
		pages[i] = web.Page{
			URL:   d.URL,
			Host:  d.Host,
			Title: d.Title,
			Text:  d.Text(),
			Links: d.Links,
		}
	}
	w.AddPages(pages)
	w.Freeze()
	return w
}

// BuildWebEngine is BuildWebWith honouring the Config's persistence
// knobs: with IndexDir set the web is backed by the on-disk segment
// index (opened or created there), so documents already committed from
// a previous run are served without re-indexing — only the page table
// is rebuilt from docs. With IndexDir empty it is exactly BuildWebWith.
// Callers owning a persistent web must Close it to flush and release
// the index.
func BuildWebEngine(docs []corpus.Document, cfg Config) (*web.Web, error) {
	if cfg.IndexDir == "" {
		return BuildWebWith(docs, cfg), nil
	}
	eng, err := index.OpenSegmentIndex(index.SegmentOptions{
		Dir:         cfg.IndexDir,
		FlushDocs:   cfg.SegmentFlushDocs,
		MergeFactor: cfg.MergeFactor,
		Writers:     cfg.Shards,
		CacheSize:   cfg.CacheSize,
		RouteSeed:   cfg.RouteSeed,
	})
	if err != nil {
		return nil, err
	}
	w := web.New(web.WithEngine(eng))
	pages := make([]web.Page, len(docs))
	for i, d := range docs {
		pages[i] = web.Page{
			URL:   d.URL,
			Host:  d.Host,
			Title: d.Title,
			Text:  d.Text(),
			Links: d.Links,
		}
	}
	w.AddPages(pages)
	w.Freeze()
	return w, nil
}

// BuildWebFromHTML exercises the full gathering path a real deployment
// takes: every document is rendered to the HTML a crawler would fetch,
// then the page text, title and links are recovered with internal/htmlx.
// The resulting web is behaviourally equivalent to BuildWeb's (same
// sentences, same links), which TestBuildWebFromHTMLEquivalence asserts.
// Equivalent to BuildWebFromHTMLWith with a zero Config.
func BuildWebFromHTML(docs []corpus.Document) *web.Web {
	return BuildWebFromHTMLWith(docs, Config{})
}

// BuildWebFromHTMLWith is BuildWebFromHTML honouring the Config's index
// knobs. The HTML render runs concurrently in internal/corpus, the
// text/title/link extraction concurrently here, and the index bulk-load
// concurrently in internal/web — the three expensive phases of
// ingesting a crawl.
func BuildWebFromHTMLWith(docs []corpus.Document, cfg Config) *web.Web {
	w := web.New(web.WithIndexOptions(index.Options{
		Shards:    cfg.Shards,
		CacheSize: cfg.CacheSize,
		RouteSeed: cfg.RouteSeed,
	}))
	rendered := corpus.RenderHTMLAll(docs)
	pages := make([]web.Page, len(docs))
	parallelRange(len(docs), func(i int) {
		html := rendered[i]
		text := htmlx.ExtractText(html)
		// The nav/header/footer blocks are page chrome, not article
		// text; a production gatherer strips known chrome. Here chrome
		// is exactly the first block (nav links) and the last ("Served
		// by ..."), so trim them.
		text = stripChrome(text, docs[i].Title)
		pages[i] = web.Page{
			URL:   docs[i].URL,
			Host:  docs[i].Host,
			Title: htmlx.Title(html),
			Text:  text,
			Links: htmlx.ExtractLinks(html),
		}
	})
	w.AddPages(pages)
	w.Freeze()
	return w
}

// parallelRange runs fn(0..n-1) across a GOMAXPROCS worker pool. fn
// must only touch state owned by its own index.
func parallelRange(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// stripChrome removes the navigation prefix (everything before the
// repeated title heading) and the footer suffix from extracted text.
func stripChrome(text, title string) string {
	if i := strings.Index(text, title); i >= 0 {
		text = text[i+len(title):]
	}
	if i := strings.LastIndex(text, "Served by "); i >= 0 {
		text = text[:i]
	}
	return strings.TrimSpace(text)
}
