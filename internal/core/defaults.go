package core

import (
	"strings"

	"etap/internal/corpus"
	"etap/internal/htmlx"
	"etap/internal/rank"
	"etap/internal/train"
	"etap/internal/web"
)

// DefaultDrivers returns the three sales drivers ETAP ships with
// (Section 2), configured with the paper's smart queries and snippet
// filters; revenue growth additionally carries the semantic-orientation
// lexicon of Section 4.
func DefaultDrivers() []SalesDriver {
	specs := train.DefaultSpecs()
	out := make([]SalesDriver, 0, len(corpus.Drivers))
	for _, d := range corpus.Drivers {
		spec := specs[d]
		sd := SalesDriver{
			ID:           string(d),
			Title:        d.Title(),
			SmartQueries: spec.SmartQueries,
			Filter:       spec.Filter,
		}
		if d == corpus.RevenueGrowth {
			sd.Orientation = rank.DefaultRevenueLexicon()
		}
		out = append(out, sd)
	}
	return out
}

// BuildWeb converts generated corpus documents into a frozen web with a
// search index — the standard bridge between the synthetic corpus and the
// pipeline.
func BuildWeb(docs []corpus.Document) *web.Web {
	w := web.New()
	for _, d := range docs {
		w.AddPage(web.Page{
			URL:   d.URL,
			Host:  d.Host,
			Title: d.Title,
			Text:  d.Text(),
			Links: d.Links,
		})
	}
	w.Freeze()
	return w
}

// BuildWebFromHTML exercises the full gathering path a real deployment
// takes: every document is rendered to the HTML a crawler would fetch,
// then the page text, title and links are recovered with internal/htmlx.
// The resulting web is behaviourally equivalent to BuildWeb's (same
// sentences, same links), which TestBuildWebFromHTMLEquivalence asserts.
func BuildWebFromHTML(docs []corpus.Document) *web.Web {
	w := web.New()
	for _, d := range docs {
		html := corpus.RenderHTML(&d)
		text := htmlx.ExtractText(html)
		// The nav/header/footer blocks are page chrome, not article
		// text; a production gatherer strips known chrome. Here chrome
		// is exactly the first block (nav links) and the last ("Served
		// by ..."), so trim them.
		text = stripChrome(text, d.Title)
		w.AddPage(web.Page{
			URL:   d.URL,
			Host:  d.Host,
			Title: htmlx.Title(html),
			Text:  text,
			Links: htmlx.ExtractLinks(html),
		})
	}
	w.Freeze()
	return w
}

// stripChrome removes the navigation prefix (everything before the
// repeated title heading) and the footer suffix from extracted text.
func stripChrome(text, title string) string {
	if i := strings.Index(text, title); i >= 0 {
		text = text[i+len(title):]
	}
	if i := strings.LastIndex(text, "Served by "); i >= 0 {
		text = text[:i]
	}
	return strings.TrimSpace(text)
}
