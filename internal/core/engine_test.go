package core

import (
	"fmt"
	"testing"

	"etap/internal/corpus"
)

// TestBuildWebEngineReopen covers the persistent build path end to
// end: with IndexDir set, BuildWebEngine writes segments on first
// build, ranks identically to the in-RAM build, and a second build
// over the same directory re-opens the committed segments (no
// re-indexing — memtables stay empty) while still serving the same
// results over the rebuilt page table.
func TestBuildWebEngineReopen(t *testing.T) {
	docs := corpus.NewGenerator(corpus.Config{
		Seed: 93, RelevantPerDriver: 10, BackgroundDocs: 30,
		HardNegativePerDriver: 3, FamousEventDocs: 1,
	}).World()
	queries := []string{"merger", `"joint venture"`, "acquisition", "revenue growth"}

	ram := BuildWebWith(docs, Config{})
	golden := make(map[string]string, len(queries))
	for _, q := range queries {
		hits := ram.Search(q, 10)
		urls := make([]string, len(hits))
		for i, h := range hits {
			urls[i] = h.URL
		}
		golden[q] = fmt.Sprint(urls)
	}

	cfg := Config{IndexDir: t.TempDir(), SegmentFlushDocs: 8}
	w1, err := BuildWebEngine(docs, cfg)
	if err != nil {
		t.Fatalf("first build: %v", err)
	}
	for _, q := range queries {
		hits := w1.Search(q, 10)
		urls := make([]string, len(hits))
		for i, h := range hits {
			urls[i] = h.URL
		}
		if fmt.Sprint(urls) != golden[q] {
			t.Errorf("query %q: segment build diverged from in-RAM: %v", q, urls)
		}
	}
	if err := w1.Close(); err != nil {
		t.Fatalf("close first build: %v", err)
	}

	w2, err := BuildWebEngine(docs, cfg)
	if err != nil {
		t.Fatalf("rebuild over existing dir: %v", err)
	}
	defer w2.Close()
	st := w2.Index().IndexStats()
	if st.Docs != len(docs) || st.Segments == 0 {
		t.Fatalf("reopen stats = %+v, want %d docs served from segments", st, len(docs))
	}
	for _, q := range queries {
		hits := w2.Search(q, 10)
		urls := make([]string, len(hits))
		for i, h := range hits {
			urls[i] = h.URL
		}
		if fmt.Sprint(urls) != golden[q] {
			t.Errorf("query %q: reopened engine diverged: %v", q, urls)
		}
	}
}
