package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"etap/internal/classify"
	"etap/internal/corpus"
	"etap/internal/gather"
	"etap/internal/rank"
	"etap/internal/web"
)

// fixture builds a world, web and system shared by the tests.
type fixture struct {
	gen  *corpus.Generator
	docs []corpus.Document
	web  *web.Web
	sys  *System
}

func newFixture(t testing.TB, seed int64, cfg Config) *fixture {
	t.Helper()
	gen := corpus.NewGenerator(corpus.Config{
		Seed:                  seed,
		RelevantPerDriver:     50,
		BackgroundDocs:        150,
		HardNegativePerDriver: 15,
		FamousEventDocs:       6,
	})
	docs := gen.World()
	w := BuildWeb(docs)
	if cfg.NegativeCount == 0 {
		cfg.NegativeCount = 600
	}
	if cfg.TopK == 0 {
		cfg.TopK = 60
	}
	return &fixture{gen: gen, docs: docs, web: w, sys: New(w, cfg)}
}

func (f *fixture) addDriver(t testing.TB, d corpus.Driver, purePos int) TrainingStats {
	t.Helper()
	var pure []string
	for _, s := range f.gen.PurePositives(d, purePos) {
		pure = append(pure, s.Text)
	}
	var spec SalesDriver
	for _, sd := range DefaultDrivers() {
		if sd.ID == string(d) {
			spec = sd
		}
	}
	stats, err := f.sys.AddDriver(spec, pure)
	if err != nil {
		t.Fatalf("AddDriver(%s): %v", d, err)
	}
	return stats
}

func TestAddDriverTrains(t *testing.T) {
	f := newFixture(t, 1, Config{Seed: 1})
	stats := f.addDriver(t, corpus.ChangeInManagement, 20)
	if stats.NoisyPositives < 30 {
		t.Errorf("noisy positives = %d, want >= 30 (%s)", stats.NoisyPositives, stats.Generation)
	}
	if stats.Negatives != 600 {
		t.Errorf("negatives = %d, want 600", stats.Negatives)
	}
	if len(stats.NoiseHistory) == 0 || len(stats.NoiseHistory) > 2 {
		t.Errorf("noise iterations = %d, want 1-2", len(stats.NoiseHistory))
	}
	if stats.VocabularySize == 0 {
		t.Error("empty vocabulary")
	}
}

func TestScoreSeparatesClasses(t *testing.T) {
	f := newFixture(t, 2, Config{Seed: 2})
	f.addDriver(t, corpus.ChangeInManagement, 20)

	pos := f.gen.PurePositives(corpus.ChangeInManagement, 30)
	neg := f.gen.BackgroundSnippets(30)
	posHigh, negLow := 0, 0
	for _, s := range pos {
		p, err := f.sys.Score(string(corpus.ChangeInManagement), s.Text)
		if err != nil {
			t.Fatal(err)
		}
		if p >= 0.5 {
			posHigh++
		}
	}
	for _, s := range neg {
		p, _ := f.sys.Score(string(corpus.ChangeInManagement), s.Text)
		if p < 0.5 {
			negLow++
		}
	}
	if posHigh < 20 {
		t.Errorf("only %d/30 positives scored >= 0.5", posHigh)
	}
	if negLow < 27 {
		t.Errorf("only %d/30 negatives scored < 0.5", negLow)
	}
}

func TestExtractEventsFindTriggers(t *testing.T) {
	f := newFixture(t, 3, Config{Seed: 3})
	f.addDriver(t, corpus.MergersAcquisitions, 20)

	// Evaluate on relevant + background pages.
	var pages []*web.Page
	for _, d := range f.docs {
		if p, ok := f.web.Page(d.URL); ok {
			pages = append(pages, p)
		}
	}
	events, err := f.sys.ExtractEvents(string(corpus.MergersAcquisitions), pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 30 {
		t.Fatalf("only %d events extracted", len(events))
	}
	// Precision spot check against ground truth.
	byURL := map[string]*corpus.Document{}
	for i := range f.docs {
		byURL[f.docs[i].URL] = &f.docs[i]
	}
	correct := 0
	for _, ev := range events {
		url := ev.SnippetID[:lastHash(ev.SnippetID)]
		if byURL[url].ContainsTrigger(ev.Text, corpus.MergersAcquisitions) {
			correct++
		}
	}
	prec := float64(correct) / float64(len(events))
	if prec < 0.5 {
		t.Errorf("event precision %.2f too low (%d/%d)", prec, correct, len(events))
	}
	t.Logf("extracted %d events, precision %.2f", len(events), prec)
}

func lastHash(id string) int {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '#' {
			return i
		}
	}
	return len(id)
}

func TestExtractEventsCompanyAttribution(t *testing.T) {
	f := newFixture(t, 4, Config{Seed: 4})
	f.addDriver(t, corpus.MergersAcquisitions, 20)
	var pages []*web.Page
	for _, d := range f.docs {
		if d.Kind == corpus.KindRelevant && d.Driver == corpus.MergersAcquisitions {
			if p, ok := f.web.Page(d.URL); ok {
				pages = append(pages, p)
			}
		}
	}
	events, err := f.sys.ExtractEvents(string(corpus.MergersAcquisitions), pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	withCompany := 0
	for _, ev := range events {
		if ev.Company != "" {
			withCompany++
		}
	}
	if float64(withCompany) < 0.6*float64(len(events)) {
		t.Errorf("only %d/%d events have a company", withCompany, len(events))
	}
}

func TestOrientationAppliedForRevenueGrowth(t *testing.T) {
	f := newFixture(t, 5, Config{Seed: 5})
	f.addDriver(t, corpus.RevenueGrowth, 20)
	var pages []*web.Page
	for _, d := range f.docs {
		if d.Kind == corpus.KindRelevant && d.Driver == corpus.RevenueGrowth {
			if p, ok := f.web.Page(d.URL); ok {
				pages = append(pages, p)
			}
		}
	}
	events, err := f.sys.ExtractEvents(string(corpus.RevenueGrowth), pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for _, ev := range events {
		if ev.Orientation != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("no event received an orientation score")
	}
	ranked := rank.ByOrientation(events)
	if len(ranked) != len(events) {
		t.Fatalf("ranking lost events")
	}
}

func TestUnknownDriverErrors(t *testing.T) {
	f := newFixture(t, 6, Config{Seed: 6})
	if _, err := f.sys.Score("nonexistent", "text"); !errors.Is(err, ErrUnknownDriver) {
		t.Errorf("Score err = %v", err)
	}
	if _, err := f.sys.ExtractEvents("nonexistent", nil, 0.5); !errors.Is(err, ErrUnknownDriver) {
		t.Errorf("ExtractEvents err = %v", err)
	}
	if _, err := f.sys.Stats("nonexistent"); !errors.Is(err, ErrUnknownDriver) {
		t.Errorf("Stats err = %v", err)
	}
}

func TestAddDriverValidation(t *testing.T) {
	f := newFixture(t, 7, Config{Seed: 7})
	if _, err := f.sys.AddDriver(SalesDriver{}, nil); err == nil {
		t.Error("no error for missing ID")
	}
	// No smart queries and no pure positives: no training data.
	if _, err := f.sys.AddDriver(SalesDriver{ID: "empty"}, nil); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("err = %v, want ErrNoTrainingData", err)
	}
	// Duplicate.
	f.addDriver(t, corpus.ChangeInManagement, 5)
	var spec SalesDriver
	for _, sd := range DefaultDrivers() {
		if sd.ID == string(corpus.ChangeInManagement) {
			spec = sd
		}
	}
	if _, err := f.sys.AddDriver(spec, nil); err == nil {
		t.Error("no error for duplicate driver")
	}
}

func TestNegativesSharedAcrossDrivers(t *testing.T) {
	f := newFixture(t, 8, Config{Seed: 8})
	s1 := f.addDriver(t, corpus.ChangeInManagement, 10)
	s2 := f.addDriver(t, corpus.MergersAcquisitions, 10)
	if s1.Negatives != s2.Negatives {
		t.Errorf("negative sets differ: %d vs %d", s1.Negatives, s2.Negatives)
	}
}

func TestClassifierFamilies(t *testing.T) {
	for _, kind := range []ClassifierKind{NaiveBayes, LinearSVM, WeightedLogReg} {
		f := newFixture(t, 9, Config{Seed: 9, Classifier: kind})
		f.addDriver(t, corpus.ChangeInManagement, 20)
		pos := f.gen.PurePositives(corpus.ChangeInManagement, 20)
		neg := f.gen.BackgroundSnippets(20)
		var m classify.Metrics
		for _, s := range pos {
			p, _ := f.sys.Score(string(corpus.ChangeInManagement), s.Text)
			m.Add(p >= 0.5, true)
		}
		for _, s := range neg {
			p, _ := f.sys.Score(string(corpus.ChangeInManagement), s.Text)
			m.Add(p >= 0.5, false)
		}
		if m.F1() < 0.5 {
			t.Errorf("classifier %d: F1 = %.3f (%v)", kind, m.F1(), m)
		}
	}
}

func TestSemiSupervisedTrains(t *testing.T) {
	f := newFixture(t, 12, Config{Seed: 12, SemiSupervised: true})
	stats := f.addDriver(t, corpus.ChangeInManagement, 20)
	if len(stats.NoiseHistory) != 0 {
		t.Errorf("EM mode ran the elimination loop: %+v", stats.NoiseHistory)
	}
	pos := f.gen.PurePositives(corpus.ChangeInManagement, 20)
	neg := f.gen.BackgroundSnippets(20)
	var m classify.Metrics
	for _, s := range pos {
		p, _ := f.sys.Score(string(corpus.ChangeInManagement), s.Text)
		m.Add(p >= 0.5, true)
	}
	for _, s := range neg {
		p, _ := f.sys.Score(string(corpus.ChangeInManagement), s.Text)
		m.Add(p >= 0.5, false)
	}
	if m.F1() < 0.7 {
		t.Fatalf("semi-supervised F1 = %.3f (%v)", m.F1(), m)
	}
}

func TestAutoPolicyTrains(t *testing.T) {
	f := newFixture(t, 10, Config{Seed: 10, AutoPolicy: true})
	f.addDriver(t, corpus.ChangeInManagement, 30)
	p, err := f.sys.Policy(string(corpus.ChangeInManagement))
	if err != nil || len(p) == 0 {
		t.Fatalf("policy missing: %v", err)
	}
}

func TestDefaultDrivers(t *testing.T) {
	drivers := DefaultDrivers()
	if len(drivers) != 3 {
		t.Fatalf("got %d drivers", len(drivers))
	}
	for _, d := range drivers {
		if d.ID == "" || d.Title == "" || len(d.SmartQueries) != 5 || d.Filter == nil {
			t.Errorf("driver incomplete: %+v", d)
		}
	}
	var rg SalesDriver
	for _, d := range drivers {
		if d.ID == string(corpus.RevenueGrowth) {
			rg = d
		}
	}
	if rg.Orientation == nil {
		t.Error("revenue growth driver lacks orientation lexicon")
	}
}

func TestDriversList(t *testing.T) {
	f := newFixture(t, 11, Config{Seed: 11})
	f.addDriver(t, corpus.ChangeInManagement, 5)
	got := f.sys.Drivers()
	if len(got) != 1 || got[0] != string(corpus.ChangeInManagement) {
		t.Fatalf("Drivers() = %v", got)
	}
}

func TestSystemCrawlThreadsFetchPolicy(t *testing.T) {
	w := web.New()
	w.AddPage(web.Page{URL: "u:a", Text: "alpha news", Links: []string{"u:b"}})
	w.AddPage(web.Page{URL: "u:b", Text: "beta news"})
	sys := New(w, Config{Fetch: gather.FetchOptions{
		Fault: &web.FaultConfig{Seed: 3, TransientRate: 1, MaxTransient: 1},
		Retry: gather.RetryConfig{MaxAttempts: 4, Sleep: func(time.Duration) {}},
	}})
	got := sys.Crawl(context.Background(), gather.CrawlConfig{Seeds: []string{"u:a"}})
	if len(got.Pages) != 2 || len(got.Failed) != 0 {
		t.Fatalf("crawl: %d pages, %d failed", len(got.Pages), len(got.Failed))
	}
	if got.Retries == 0 {
		t.Fatal("fault injection from Config.Fetch not applied (no retries)")
	}
	// An explicit per-crawl fetcher wins over the config's fault layer.
	clean := sys.Crawl(context.Background(), gather.CrawlConfig{Seeds: []string{"u:a"}, Fetcher: w})
	if clean.Retries != 0 || len(clean.Pages) != 2 {
		t.Fatalf("explicit fetcher overridden: retries=%d pages=%d", clean.Retries, len(clean.Pages))
	}
}
