package core

import (
	"runtime"
	"sort"
	"sync"

	"etap/internal/rank"
	"etap/internal/snippet"
	"etap/internal/web"
)

// ExtractEventsParallel is ExtractEvents with a worker pool: pages are
// scored concurrently, which matters when ETAP processes a full crawl.
// The result is identical to the sequential version — events arrive in
// (page, snippet) order regardless of scheduling. workers <= 0 uses
// GOMAXPROCS.
//
// When metrics are enabled, the etap_extract_queue_depth gauge tracks
// pages enqueued but not yet claimed and etap_extract_workers_busy
// tracks workers mid-page — the pair that shows whether a slow run is
// starved for workers (depth high, busy pegged) or for input.
func (s *System) ExtractEventsParallel(driverID string, pages []*web.Page, threshold float64, workers int) ([]rank.Event, error) {
	td, ok := s.drivers[driverID]
	if !ok {
		return nil, ErrUnknownDriver
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pages) {
		workers = len(pages)
	}
	if workers <= 1 {
		return s.ExtractEvents(driverID, pages, threshold)
	}
	m := s.met
	if m != nil {
		m.runs.Inc()
	}

	type indexed struct {
		page   int
		events []rank.Event
	}
	jobs := make(chan int)
	results := make(chan indexed, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := snippet.Generator{N: s.cfg.SnippetN}
			for pi := range jobs {
				if m != nil {
					m.queueDepth.Dec()
					m.workersBusy.Inc()
				}
				events := s.scorePage(td, driverID, gen, pages[pi], threshold)
				if m != nil {
					m.workersBusy.Dec()
				}
				results <- indexed{page: pi, events: events}
			}
		}()
	}
	go func() {
		for i := range pages {
			if m != nil {
				m.queueDepth.Inc()
			}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	collected := make([]indexed, 0, len(pages))
	for r := range results {
		if len(r.events) > 0 {
			collected = append(collected, r)
		}
	}
	sort.Slice(collected, func(i, j int) bool { return collected[i].page < collected[j].page })
	var out []rank.Event
	for _, c := range collected {
		out = append(out, c.events...)
	}
	return out, nil
}
