package core

import (
	"etap/internal/obs"
)

// pipelineMetrics caches the metric handles the extraction hot path
// updates, resolved once at System construction. A nil *pipelineMetrics
// disables instrumentation entirely (Config.DisableMetrics) — the
// overhead of the enabled path is measured by
// BenchmarkExtractObservability.
type pipelineMetrics struct {
	// Per-stage wall time, shared families with the obs span API.
	snippetDur  *obs.Histogram
	annotateDur *obs.Histogram
	classifyDur *obs.Histogram

	snippets *obs.Counter // snippets scored (classifier invocations)
	events   *obs.Counter // events at/above threshold
	runs     *obs.Counter // extraction passes
	trainDur *obs.Histogram

	queueDepth  *obs.Gauge // pages enqueued, not yet picked up by a worker
	workersBusy *obs.Gauge
}

func newPipelineMetrics(r *obs.Registry) *pipelineMetrics {
	if r == nil {
		r = obs.Default
	}
	return &pipelineMetrics{
		snippetDur:  obs.StageDuration(r, "snippet"),
		annotateDur: obs.StageDuration(r, "annotate"),
		classifyDur: obs.StageDuration(r, "classify"),
		snippets: r.Counter("etap_extract_snippets_scored_total",
			"Snippets run through a driver classifier."),
		events: r.Counter("etap_extract_events_emitted_total",
			"Trigger events emitted at or above threshold."),
		runs: r.Counter("etap_extract_runs_total",
			"Extraction passes (ExtractEvents/ExtractEventsParallel calls)."),
		trainDur: obs.StageDuration(r, "train"),
		queueDepth: r.Gauge("etap_extract_queue_depth",
			"Pages enqueued for the extraction worker pool, not yet claimed."),
		workersBusy: r.Gauge("etap_extract_workers_busy",
			"Extraction workers currently processing a page."),
	}
}
