// Event fingerprinting: the dedup key that makes re-ingestion
// idempotent. The paper's program alerts a salesperson once per
// trigger event; a stream that replays a document (re-crawl, retried
// POST, restarted feed) must not alert twice. The fingerprint hashes
// what makes an event the same event — the canonical company, the
// sales driver, and the snippet text — so the same news re-ingested
// under any URL stays one alert, while a new event for the same
// company fires again.
package alert

import (
	"fmt"
	"hash/fnv"
	"sync"

	"etap/internal/rank"
)

// Fingerprint derives the stable dedup key of an event: an FNV-1a hash
// over driver, canonical company, and snippet text. Snippet IDs are
// deliberately excluded — they embed the document URL, and the same
// story syndicated under two URLs is still one trigger event.
func Fingerprint(ev rank.Event) string {
	h := fnv.New64a()
	h.Write([]byte(ev.Driver))
	h.Write([]byte{0})
	h.Write([]byte(rank.Canonical(ev.Company)))
	h.Write([]byte{0})
	h.Write([]byte(ev.Text))
	return fmt.Sprintf("%016x", h.Sum64())
}

// dedup is a concurrency-safe fingerprint set.
type dedup struct {
	mu   sync.Mutex
	seen map[string]bool
}

func newDedup() *dedup {
	return &dedup{seen: make(map[string]bool)}
}

// filter returns the events whose fingerprints are fresh, marking them
// seen, and the count of duplicates dropped. Within one call a
// repeated fingerprint counts as a duplicate too.
func (d *dedup) filter(events []rank.Event) (fresh []rank.Event, dropped int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ev := range events {
		fp := Fingerprint(ev)
		if d.seen[fp] {
			dropped++
			continue
		}
		d.seen[fp] = true
		fresh = append(fresh, ev)
	}
	return fresh, dropped
}

// seed marks events as already alerted without emitting anything —
// how a restarted process recovers its dedup state from the
// checkpointed lead store.
func (d *dedup) seed(events []rank.Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ev := range events {
		d.seen[Fingerprint(ev)] = true
	}
}

// size returns the number of distinct fingerprints seen.
func (d *dedup) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seen)
}
