// Partitioned ingest: the consumer side of the write-ahead log.
// Documents are routed by URL hash to N partitions; each partition is
// consumed in order by exactly one goroutine, so "this partition has
// processed sequence S" means every lower sequence routed to it is
// done too — the property that makes the committed offset an exact
// watermark instead of a guess.
package alert

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// partition is one ordered ingest lane: a bounded channel, its credit
// counter, and the mutex that keeps WAL-sequence order and channel
// order identical.
type partition struct {
	// mu is held across {WAL append, channel send} so items enter the
	// channel in sequence order. The fsync happens OUTSIDE mu (see
	// EnqueueTraced): holding a partition through a disk flush would
	// serialize its throughput on fsync latency.
	mu sync.Mutex
	ch chan ingestItem
	// inflight counts accepted-but-undequeued items; it is the credit
	// gate (inflight > cap rejects with ErrQueueFull) and the source of
	// Health.QueueDepth. Decremented at dequeue, mirroring the old
	// single-channel len() semantics.
	inflight atomic.Int64
}

// routeDoc picks the partition for a URL: FNV-1a over the URL modulo
// the partition count. Deterministic across restarts, so a replayed
// document lands on the same partition that owns its committed offset.
func routeDoc(url string, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(url)) //etaplint:ignore error-swallowing -- hash.Hash64 Write never fails
	return int(h.Sum64() % uint64(parts))
}

// queueDepth sums accepted-but-undequeued items across partitions.
func (m *Manager) queueDepth() int64 {
	var n int64
	for _, p := range m.parts {
		n += p.inflight.Load()
	}
	return n
}

// consume is one partition's consumer loop: dequeue in order, process,
// then — only after process returns — advance the partition's
// committed offset so a crash replays anything unfinished.
func (m *Manager) consume(ctx context.Context, part int, p *partition) {
	defer m.wg.Done()
	for it := range p.ch {
		p.inflight.Add(-1)
		m.met.queueDepth.Set(m.queueDepth())
		m.process(ctx, it)
		if m.wal != nil && it.seq > 0 {
			m.wal.Commit(part, it.seq)
		}
		m.pending.Add(-1)
	}
}

// replayWAL re-enqueues every logged document a previous life accepted
// but did not finish processing. It runs inside Start, before Enqueue
// opens for business: sends may block on partition capacity (the
// consumers are already draining), and per-partition offsets above the
// global replay floor are skipped here. Fingerprint dedup — seeded
// from the checkpointed lead store — keeps the inevitable overlap from
// re-alerting anything already delivered.
func (m *Manager) replayWAL(replayed *int) error {
	return m.wal.Replay(func(seq uint64, rec WALRecord) error {
		part := routeDoc(rec.URL, len(m.parts))
		if seq <= m.wal.CommittedOffset(part) {
			return nil
		}
		doc := Document{URL: rec.URL, Title: rec.Title, Text: rec.Text}
		tr, root := m.cfg.Tracer.StartTrace("ingest")
		root.SetAttr("url", doc.URL)
		root.SetAttr("replay", "true")
		it := ingestItem{
			doc:  doc,
			tr:   tr,
			root: root,
			// The original accept time anchors the delivery-lag SLO: a
			// crash does not reset the clock on the documents it delayed.
			acceptedAt: time.Unix(0, rec.At),
			seq:        seq,
			part:       part,
		}
		p := m.parts[part]
		m.pending.Add(1)
		p.inflight.Add(1)
		p.ch <- it
		*replayed++
		return nil
	})
}

// WALStats exposes the attached log's counters (zero value when the
// manager runs without a WAL) — surfaced for tests and operators.
func (m *Manager) WALStats() WALStats {
	if m.wal == nil {
		return WALStats{}
	}
	return m.wal.Stats()
}
