package alert

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"etap/internal/gather"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/web"
)

// workPipeline emulates a trained extraction pass at realistic cost:
// per document it tokenizes, hashes every token repeatedly, and scores
// the text — a couple hundred microseconds of real CPU per document,
// the same order as the real per-snippet classify/extract stages — so
// the tracing overhead is measured against representative stage work
// rather than a near-free stub (which would inflate the percentage).
type workPipeline struct{}

func (workPipeline) ExtractAllEvents(pages []*web.Page, threshold float64) []rank.Event {
	var out []rank.Event
	for _, pg := range pages {
		toks := strings.Fields(pg.Text)
		var acc uint64
		for round := 0; round < 2400; round++ {
			for _, tok := range toks {
				h := fnv.New64a()
				h.Write([]byte(tok))
				acc ^= h.Sum64()
			}
		}
		score := 0.8 + float64(acc%100)/1000 // 0.8..0.899, always a trigger
		if score < threshold {
			continue
		}
		out = append(out, rank.Event{
			SnippetID: pg.URL + "#0",
			Text:      pg.Text,
			Driver:    "mergers-acquisitions",
			Company:   "Acme",
			Score:     score,
		})
	}
	return out
}

// runTracedIngest is runIngest over the work pipeline with an optional
// tracer, returning wall time from first Enqueue to a drained Flush.
func runTracedIngest(tb testing.TB, docs int, tracer *obs.Tracer) time.Duration {
	tb.Helper()
	sink := &recordSink{}
	w := web.New()
	w.Freeze()
	deliver := newScriptDeliverer()
	subs := NewSubscriptions()
	if _, err := subs.Add(Subscription{
		Company: "Acme", Driver: "mergers-acquisitions",
		WebhookURL: "https://crm.example/hook",
	}); err != nil {
		tb.Fatal(err)
	}
	m := NewManager(workPipeline{}, sink, w, Config{
		Workers:         runtime.GOMAXPROCS(0),
		QueueSize:       docs + 8,
		SubscriberQueue: docs + 8,
		Registry:        obs.NewRegistry(),
		Subscriptions:   subs,
		Deliverer:       deliver,
		Tracer:          tracer,
		Retry:           gather.RetryConfig{MaxAttempts: 1, Sleep: noSleep, AttemptTimeout: -1},
	})
	m.Start(context.Background())
	defer m.Close()

	start := time.Now()
	for i := 0; i < docs; i++ {
		err := m.Enqueue(Document{
			URL:  fmt.Sprintf("https://bench.example/doc-%d", i),
			Text: fmt.Sprintf("Acme announced merger number %d with a regional competitor in the enterprise software market.", i),
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start)
	if sink.len() != docs {
		tb.Fatalf("stored %d events, want %d", sink.len(), docs)
	}
	return elapsed
}

// traceBenchReport is the schema of BENCH_trace.json — the tracing
// overhead record, refreshed by `make bench-trace`.
type traceBenchReport struct {
	GeneratedAt  string  `json:"generated_at"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	Docs         int     `json:"docs"`
	SampleRate   float64 `json:"sample_rate"`
	BaselineDPS  float64 `json:"baseline_docs_per_sec"`
	TracedDPS    float64 `json:"traced_docs_per_sec"`
	OverheadPct  float64 `json:"overhead_pct"`
	TracesKept   int     `json:"traces_retained"`
	OverheadGate float64 `json:"overhead_gate_pct"`
}

// traceOverheadGate is the acceptance ceiling: steady-state ingest with
// sampling enabled must cost no more than this much throughput.
const traceOverheadGate = 5.0

// TestTraceBenchHarness measures ingest throughput with tracing off
// versus tracing on (sample rate 0.25) over the realistic work
// pipeline, asserts the overhead stays under the gate, and writes
// BENCH_trace.json to the path named by ETAP_BENCH_TRACE. Skipped
// unless that variable is set — run it via `make bench-trace`.
func TestTraceBenchHarness(t *testing.T) {
	out := os.Getenv("ETAP_BENCH_TRACE")
	if out == "" {
		t.Skip("set ETAP_BENCH_TRACE=<output path> (or run `make bench-trace`)")
	}
	const (
		docs   = 600
		rounds = 16
		sample = 0.25
	)
	// Each round runs the two modes back to back and records the traced:
	// baseline duration ratio. Adjacent runs land in the same noise
	// window — GC pauses, scheduler churn, and (on shared vCPUs) steal
	// time hit both about equally — so the ratio is far steadier than
	// either duration, and the median across rounds rejects the rounds
	// where a burst straddled only one mode. A warmup round per mode is
	// discarded so cold caches and lazy runtime setup don't count.
	best := func(d, prev time.Duration) time.Duration {
		if prev == 0 || d < prev {
			return d
		}
		return prev
	}
	newTracer := func() *obs.Tracer {
		return obs.NewTracer(obs.TracerConfig{
			SampleRate: sample,
			Capacity:   256,
			Registry:   obs.NewRegistry(),
		})
	}
	runTracedIngest(t, docs, nil)
	runTracedIngest(t, docs, newTracer())
	var baseBest, tracedBest time.Duration
	var ratios []float64
	var kept int
	for r := 0; r < rounds; r++ {
		// Force a collection before each timed run so one mode never
		// pays down GC debt the other accrued, and alternate which mode
		// goes first so any residual order effect cancels across rounds.
		var base, traced time.Duration
		tracer := newTracer()
		if r%2 == 0 {
			runtime.GC()
			base = runTracedIngest(t, docs, nil)
			runtime.GC()
			traced = runTracedIngest(t, docs, tracer)
		} else {
			runtime.GC()
			traced = runTracedIngest(t, docs, tracer)
			runtime.GC()
			base = runTracedIngest(t, docs, nil)
		}
		baseBest = best(base, baseBest)
		tracedBest = best(traced, tracedBest)
		ratios = append(ratios, traced.Seconds()/base.Seconds())
		kept = tracer.Len()
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]

	dps := func(d time.Duration) float64 { return float64(docs) / d.Seconds() }
	overhead := (median - 1) * 100
	rep := traceBenchReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Docs:         docs,
		SampleRate:   sample,
		BaselineDPS:  dps(baseBest),
		TracedDPS:    dps(tracedBest),
		OverheadPct:  overhead,
		TracesKept:   kept,
		OverheadGate: traceOverheadGate,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("ingest: baseline %.0f docs/s, traced %.0f docs/s, overhead %.2f%% (gate %.0f%%), %d traces retained",
		rep.BaselineDPS, rep.TracedDPS, overhead, traceOverheadGate, kept)
	if overhead > traceOverheadGate {
		t.Fatalf("tracing overhead %.2f%% exceeds the %.0f%% gate", overhead, traceOverheadGate)
	}
	if kept == 0 {
		t.Fatal("no traces retained at sample rate 0.25 — the traced run measured nothing")
	}
}
