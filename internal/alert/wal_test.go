package alert

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"etap/internal/obs"
)

// quietTestLog discards log output so recovery warnings exercised on
// purpose don't spam the test run.
func quietTestLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// snapCounter reads a counter out of a registry JSON snapshot.
func snapCounter(t *testing.T, snap map[string]any, name string) int {
	t.Helper()
	v, ok := snap[name]
	if !ok {
		t.Fatalf("metric %s missing from snapshot", name)
	}
	f, ok := v.(uint64)
	if !ok {
		t.Fatalf("metric %s has type %T", name, v)
	}
	return int(f)
}

func testWAL(t *testing.T, cfg WALConfig) *WAL {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Log == nil {
		cfg.Log = quietTestLog()
	}
	w, err := OpenWAL(cfg)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w
}

func walAppendSync(t *testing.T, w *WAL, rec WALRecord) uint64 {
	t.Helper()
	seq, err := w.Append(rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatalf("Sync(%d): %v", seq, err)
	}
	return seq
}

func collectReplay(t *testing.T, w *WAL) map[uint64]WALRecord {
	t.Helper()
	got := make(map[uint64]WALRecord)
	if err := w.Replay(func(seq uint64, rec WALRecord) error {
		if _, dup := got[seq]; dup {
			t.Fatalf("replay yielded seq %d twice", seq)
		}
		got[seq] = rec
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir})
	want := make(map[uint64]WALRecord)
	for i := 0; i < 25; i++ {
		rec := WALRecord{
			URL:   fmt.Sprintf("https://example.com/doc-%d", i),
			Title: fmt.Sprintf("Doc %d", i),
			Text:  fmt.Sprintf("Body of document %d announcing a merger.", i),
			At:    int64(1_700_000_000_000_000_000 + i),
		}
		want[walAppendSync(t, w, rec)] = rec
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reopened := testWAL(t, WALConfig{Dir: dir})
	defer reopened.Close()
	got := collectReplay(t, reopened)
	if len(got) != len(want) {
		t.Fatalf("replay returned %d records, want %d", len(got), len(want))
	}
	for seq, rec := range want {
		if got[seq] != rec {
			t.Errorf("seq %d: got %+v want %+v", seq, got[seq], rec)
		}
	}
	if st := reopened.Stats(); st.NextSeq != uint64(len(want))+1 {
		t.Errorf("NextSeq after reopen = %d, want %d", st.NextSeq, len(want)+1)
	}
}

func TestWALSequencesAreContiguousFromOne(t *testing.T) {
	w := testWAL(t, WALConfig{})
	defer w.Close()
	for i := 1; i <= 5; i++ {
		seq, err := w.Append(WALRecord{URL: "u", Text: "t", At: int64(i)})
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
}

func TestWALTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir})
	for i := 0; i < 5; i++ {
		walAppendSync(t, w, WALRecord{URL: fmt.Sprintf("u%d", i), Text: "t", At: int64(i)})
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: chop the last 7 bytes of the newest non-empty
	// segment, simulating a crash mid-write.
	seg := newestSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	reopened := testWAL(t, WALConfig{Dir: dir, Registry: reg})
	defer reopened.Close()
	got := collectReplay(t, reopened)
	if len(got) != 4 {
		t.Fatalf("replay after torn tail returned %d records, want 4", len(got))
	}
	if _, lost := got[5]; lost {
		t.Error("torn record 5 should not replay")
	}
	if st := reopened.Stats(); st.NextSeq != 5 {
		t.Errorf("NextSeq after truncation = %d, want 5 (torn seq reused)", st.NextSeq)
	}
}

func TestWALTornHeaderTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir})
	walAppendSync(t, w, WALRecord{URL: "u", Text: "t", At: 1})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := newestSegment(t, dir)
	// Append half a header: a torn frame with no payload at all.
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := testWAL(t, WALConfig{Dir: dir})
	defer reopened.Close()
	if got := collectReplay(t, reopened); len(got) != 1 {
		t.Fatalf("replay returned %d records, want 1", len(got))
	}
}

func TestWALCorruptMiddleSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir, SegmentBytes: 1}) // rotate every append
	for i := 0; i < 3; i++ {
		walAppendSync(t, w, WALRecord{URL: fmt.Sprintf("u%d", i), Text: "t", At: int64(i)})
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a payload byte in the FIRST segment — not the final one, so
	// recovery must refuse rather than truncate.
	bases, err := walSegmentBases(dir)
	if err != nil || len(bases) < 2 {
		t.Fatalf("want >=2 segments, got %d (err %v)", len(bases), err)
	}
	seg := walSegmentPath(dir, bases[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) <= walHeaderLen {
		t.Fatalf("first segment unexpectedly empty")
	}
	data[walHeaderLen] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(WALConfig{Dir: dir, Registry: obs.NewRegistry(), Log: quietTestLog()}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("OpenWAL on corrupt middle segment: err = %v, want ErrWALCorrupt", err)
	}
}

func TestWALChecksumCatchesBitFlip(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir})
	walAppendSync(t, w, WALRecord{URL: "u1", Text: "first", At: 1})
	walAppendSync(t, w, WALRecord{URL: "u2", Text: "second", At: 2})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip one bit inside the LAST frame's payload: recovery treats a
	// checksum-failed final frame as torn and truncates it.
	seg := newestSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reopened := testWAL(t, WALConfig{Dir: dir})
	defer reopened.Close()
	got := collectReplay(t, reopened)
	if len(got) != 1 || got[1].Text != "first" {
		t.Fatalf("replay after bit flip = %v, want only record 1", got)
	}
}

func TestWALRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir, SegmentBytes: 1, CommitEvery: 1})
	w.SetPartitions(1)
	const n = 6
	for i := 0; i < n; i++ {
		walAppendSync(t, w, WALRecord{URL: fmt.Sprintf("u%d", i), Text: "t", At: int64(i)})
	}
	if st := w.Stats(); st.Segments < n {
		t.Fatalf("SegmentBytes=1 should rotate every append: %d segments for %d records", st.Segments, n)
	}
	// Commit everything: GC must collapse to just the active segment.
	w.Commit(0, n)
	if err := w.FlushCommits(); err != nil {
		t.Fatalf("FlushCommits: %v", err)
	}
	if st := w.Stats(); st.Segments != 1 {
		t.Errorf("after full commit, %d segments remain, want 1", st.Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Nothing above the floor: replay must be empty.
	reopened := testWAL(t, WALConfig{Dir: dir})
	defer reopened.Close()
	if got := collectReplay(t, reopened); len(got) != 0 {
		t.Errorf("replay after full commit returned %d records, want 0", len(got))
	}
}

func TestWALGCKeepsUncommittedSegments(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir, SegmentBytes: 1})
	defer w.Close()
	w.SetPartitions(2)
	for i := 0; i < 4; i++ {
		walAppendSync(t, w, WALRecord{URL: fmt.Sprintf("u%d", i), Text: "t", At: int64(i)})
	}
	// Partition 1 never commits → floor stays 0 → nothing may be GC'd.
	w.Commit(0, 4)
	if err := w.FlushCommits(); err != nil {
		t.Fatalf("FlushCommits: %v", err)
	}
	if st := w.Stats(); st.Segments < 4 {
		t.Errorf("GC removed segments below the floor: %d left", st.Segments)
	}
	if st := w.Stats(); st.CommittedFloor != 0 {
		t.Errorf("floor = %d, want 0 while partition 1 is uncommitted", st.CommittedFloor)
	}
}

func TestWALCommitOffsetsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir})
	w.SetPartitions(2)
	for i := 0; i < 8; i++ {
		walAppendSync(t, w, WALRecord{URL: fmt.Sprintf("u%d", i), Text: "t", At: int64(i)})
	}
	w.Commit(0, 7)
	w.Commit(1, 4)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reopened := testWAL(t, WALConfig{Dir: dir})
	defer reopened.Close()
	reopened.SetPartitions(2)
	if got := reopened.CommittedOffset(0); got != 7 {
		t.Errorf("partition 0 offset = %d, want 7", got)
	}
	if got := reopened.CommittedOffset(1); got != 4 {
		t.Errorf("partition 1 offset = %d, want 4", got)
	}
	// Replay floor is min(7,4)=4: records 5..8 must replay.
	got := collectReplay(t, reopened)
	for seq := uint64(5); seq <= 8; seq++ {
		if _, ok := got[seq]; !ok {
			t.Errorf("seq %d above floor missing from replay", seq)
		}
	}
	if _, ok := got[4]; ok {
		t.Error("seq 4 at the floor must not replay")
	}
}

func TestWALPartitionCountChangeFloorsOffsets(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir})
	w.SetPartitions(2)
	for i := 0; i < 6; i++ {
		walAppendSync(t, w, WALRecord{URL: fmt.Sprintf("u%d", i), Text: "t", At: int64(i)})
	}
	w.Commit(0, 6)
	w.Commit(1, 3)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reopened := testWAL(t, WALConfig{Dir: dir})
	defer reopened.Close()
	reopened.SetPartitions(3) // count changed: offsets collapse to floor 3
	got := collectReplay(t, reopened)
	for seq := uint64(4); seq <= 6; seq++ {
		if _, ok := got[seq]; !ok {
			t.Errorf("seq %d above collapsed floor missing from replay", seq)
		}
	}
	if _, ok := got[3]; ok {
		t.Error("seq 3 at the collapsed floor must not replay")
	}
}

func TestWALCommitStateMissingReplaysEverything(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir})
	w.SetPartitions(1)
	for i := 0; i < 3; i++ {
		walAppendSync(t, w, WALRecord{URL: fmt.Sprintf("u%d", i), Text: "t", At: int64(i)})
	}
	w.Commit(0, 3)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Crash before the sidecar flush: simulate by deleting it. Replay
	// must over-deliver (all 3 records) — dedup absorbs it downstream.
	if err := os.Remove(filepath.Join(dir, walCommitName)); err != nil {
		t.Fatal(err)
	}
	reopened := testWAL(t, WALConfig{Dir: dir})
	defer reopened.Close()
	if got := collectReplay(t, reopened); len(got) != 3 {
		t.Errorf("replay without sidecar returned %d records, want all 3", len(got))
	}
}

func TestWALConcurrentAppendSyncGroupCommit(t *testing.T) {
	reg := obs.NewRegistry()
	w := testWAL(t, WALConfig{Registry: reg, FsyncBatch: 8})
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := w.Append(WALRecord{
					URL:  fmt.Sprintf("https://w%d.example.com/%d", g, i),
					Text: "concurrent",
					At:   int64(g*1000 + i),
				})
				if err != nil {
					errs <- err
					return
				}
				if err := w.Sync(seq); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append/sync: %v", err)
	}
	st := w.Stats()
	if want := uint64(writers*perWriter) + 1; st.NextSeq != want {
		t.Errorf("NextSeq = %d, want %d", st.NextSeq, want)
	}
	if st.Synced != uint64(writers*perWriter) {
		t.Errorf("Synced = %d, want %d", st.Synced, writers*perWriter)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Group commit must have shared fsyncs: strictly fewer fsync calls
	// than appends would need individually is the whole point, but with
	// scheduling noise the only hard guarantee is full durability, so
	// just assert the counters are coherent.
	snap := reg.Snapshot()
	appends := snapCounter(t, snap, "etap_alert_wal_appends_total")
	if appends != writers*perWriter {
		t.Errorf("appends counter = %d, want %d", appends, writers*perWriter)
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	w := testWAL(t, WALConfig{})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := w.Append(WALRecord{URL: "u", Text: "t", At: 1}); !errors.Is(err, ErrWALClosed) {
		t.Errorf("Append after Close: err = %v, want ErrWALClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v, want nil (idempotent)", err)
	}
}

func TestWALFrameRejectsOversizedLength(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir})
	walAppendSync(t, w, WALRecord{URL: "u", Text: "t", At: 1})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Forge a frame whose declared length exceeds the cap; recovery
	// must treat it as torn, not allocate gigabytes.
	seg := newestSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [walHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:8], 2)
	binary.BigEndian.PutUint32(hdr[8:12], walMaxPayload+1)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := testWAL(t, WALConfig{Dir: dir})
	defer reopened.Close()
	if got := collectReplay(t, reopened); len(got) != 1 {
		t.Fatalf("replay returned %d records, want 1", len(got))
	}
}

// newestSegment returns the path of the highest-base non-empty segment
// (the last one holding records; the freshly-opened active segment of
// a closed WAL may be empty).
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	bases, err := walSegmentBases(dir)
	if err != nil || len(bases) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	for i := len(bases) - 1; i >= 0; i-- {
		path := walSegmentPath(dir, bases[i])
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > 0 {
			return path
		}
	}
	t.Fatalf("all segments empty in %s", dir)
	return ""
}
