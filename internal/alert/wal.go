// The ingest write-ahead log: the durability layer in front of
// POST /ingest. The paper's program promises a salesperson that no
// business event is lost; before this log, a crash between the 202
// response and process() silently dropped accepted documents. Now a
// document is appended — length+CRC framed, fsync-batched via group
// commit, segment-rotated — before the 202 goes out, partition
// consumers advance a committed offset only after processing
// completes, and a restart replays the uncommitted tail. Fingerprint
// dedup (seeded from the checkpointed lead store) makes that replay
// idempotent, so the log only has to guarantee at-least-once.
//
// The on-disk format (frames, segments, the commit sidecar, and the
// crash-recovery matrix) is specified normatively in STORAGE.md §9.
package alert

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"etap/internal/obs"
)

// WALRecord is one logged document: the ingest payload plus the accept
// timestamp (UnixNano) that anchors the delivery-lag SLO across a
// restart — a replayed alert's lag is measured from the original
// accept, not the replay.
type WALRecord struct {
	URL   string `json:"url"`
	Title string `json:"title,omitempty"`
	Text  string `json:"text"`
	At    int64  `json:"at"`
}

// WALConfig tunes the log. The zero value of each field selects the
// documented default.
type WALConfig struct {
	// Dir is the log directory; it is created if missing. Required.
	Dir string
	// FsyncBatch caps how many appends one fsync may acknowledge:
	// 1 fsyncs every append individually (strictest, slowest), larger
	// values let concurrent appenders share a group-commit fsync, each
	// round acknowledging at most FsyncBatch records. 0 means 64.
	FsyncBatch int
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes; 0 means 8 MiB.
	SegmentBytes int64
	// CommitEvery flushes the committed-offset sidecar every N offset
	// commits (and on Close); 0 means 256. A stale sidecar only costs
	// replay work — never correctness — because replay is idempotent.
	CommitEvery int
	// Registry receives the etap_alert_wal_* series; nil means
	// obs.Default.
	Registry *obs.Registry
	// Log receives recovery and GC reports; nil means slog.Default.
	Log *slog.Logger
}

func (c WALConfig) withDefaults() WALConfig {
	if c.FsyncBatch <= 0 {
		c.FsyncBatch = 64
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.CommitEvery <= 0 {
		c.CommitEvery = 256
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// ErrWALClosed reports an append or sync after Close.
var ErrWALClosed = errors.New("alert: wal closed")

// ErrWALCorrupt reports a frame that fails its checksum somewhere other
// than the tail of the final segment — damage recovery cannot explain
// as a torn write, so the operator must intervene (STORAGE.md §9.5).
var ErrWALCorrupt = errors.New("alert: wal segment corrupt")

const (
	walSegmentPrefix = "wal-"
	walSegmentSuffix = ".log"
	walCommitName    = "wal-commit.json"
	// walHeaderLen is the fixed frame header: sequence (8) + payload
	// length (4) + CRC-32C over header-minus-CRC plus payload (4).
	walHeaderLen = 16
	// walMaxPayload bounds a frame's payload; anything larger is
	// corruption, not data (ingest bodies are capped far below this).
	walMaxPayload = 8 << 20
)

// walCRCTable is the Castagnoli polynomial every frame checksum uses.
var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// walMetrics is the etap_alert_wal_* series for one log.
type walMetrics struct {
	appends    *obs.Counter
	fsyncs     *obs.Counter
	batch      *obs.Histogram
	bytes      *obs.Counter
	segments   *obs.Gauge
	replayed   *obs.Counter
	torn       *obs.Counter
	commits    *obs.Counter
	removed    *obs.Counter
	floorGauge *obs.Gauge
}

func newWALMetrics(reg *obs.Registry) *walMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return &walMetrics{
		appends: reg.Counter("etap_alert_wal_appends_total",
			"Documents appended to the ingest write-ahead log."),
		fsyncs: reg.Counter("etap_alert_wal_fsyncs_total",
			"fsync calls issued by the write-ahead log."),
		batch: reg.Histogram("etap_alert_wal_fsync_batch",
			"Appends acknowledged per fsync (group-commit batch size).", nil),
		bytes: reg.Counter("etap_alert_wal_bytes_total",
			"Bytes appended to the write-ahead log, frames included."),
		segments: reg.Gauge("etap_alert_wal_segments",
			"Write-ahead-log segment files on disk."),
		replayed: reg.Counter("etap_alert_wal_replayed_records_total",
			"Records re-read from the log by startup replay."),
		torn: reg.Counter("etap_alert_wal_torn_frames_total",
			"Torn tail frames truncated during recovery."),
		commits: reg.Counter("etap_alert_wal_commit_flushes_total",
			"Committed-offset sidecar flushes."),
		removed: reg.Counter("etap_alert_wal_segments_removed_total",
			"Fully-committed segments deleted by log GC."),
		floorGauge: reg.Gauge("etap_alert_wal_committed_floor",
			"Lowest committed offset across partitions (the replay floor)."),
	}
}

// WAL is the ingest write-ahead log. Append buffers a record and
// assigns its sequence number; Sync makes it durable (group commit);
// Commit advances a partition's processed watermark; Replay re-reads
// everything at or above the recovery floor. Safe for concurrent use.
type WAL struct {
	cfg WALConfig
	met *walMetrics

	// mu serializes buffer writes, sequence assignment, and rotation.
	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	oldFiles []*os.File // rotated out, not yet fsynced+closed
	segBytes int64
	nextSeq  uint64
	written  uint64 // highest seq written to the buffer
	segments []uint64
	closed   bool

	// syncMu guards the group-commit state: one leader flushes and
	// fsyncs while followers wait on cond for the watermark to cover
	// their sequence.
	syncMu  sync.Mutex
	cond    *sync.Cond
	synced  uint64
	syncing bool

	// cmu guards the committed-offset map and its flush cadence.
	cmu        sync.Mutex
	offsets    map[int]uint64
	partitions int
	sinceFlush int
	replayed   bool
}

// walCommitState is the JSON schema of the committed-offset sidecar.
type walCommitState struct {
	// Partitions records the consumer count the offsets are keyed by;
	// a restart with a different count must fall back to the floor.
	Partitions int `json:"partitions"`
	// Offsets maps partition index → highest sequence whose processing
	// completed (all lower sequences routed to that partition included).
	Offsets map[string]uint64 `json:"offsets"`
}

// OpenWAL opens (or creates) the log in cfg.Dir, validates every
// retained segment, truncates a torn tail frame in the final one, and
// starts a fresh segment for this process's appends.
func OpenWAL(cfg WALConfig) (*WAL, error) {
	if cfg.Dir == "" {
		return nil, errors.New("alert: wal requires a directory")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("alert: wal dir: %w", err)
	}
	w := &WAL{
		cfg:     cfg,
		met:     newWALMetrics(cfg.Registry),
		offsets: make(map[int]uint64),
	}
	w.cond = sync.NewCond(&w.syncMu)

	bases, err := walSegmentBases(cfg.Dir)
	if err != nil {
		return nil, err
	}
	last := uint64(0)
	for i, base := range bases {
		final := i == len(bases)-1
		end, torn, err := w.validateSegment(walSegmentPath(cfg.Dir, base), base, final)
		if err != nil {
			return nil, err
		}
		if torn > 0 {
			w.met.torn.Add(uint64(torn))
			cfg.Log.Warn("alert: wal torn tail truncated",
				"segment", walSegmentName(base), "frames", torn, "last_good_seq", end)
		}
		if end > last {
			last = end
		}
	}
	w.nextSeq = last + 1
	w.written = last
	w.synced = last // everything already on disk is durable
	w.segments = bases

	if err := w.loadCommits(); err != nil {
		return nil, err
	}
	if err := w.openSegment(w.nextSeq); err != nil {
		return nil, err
	}
	w.met.segments.Set(int64(len(w.segments)))
	return w, nil
}

// walSegmentName renders the segment file name for a base sequence.
func walSegmentName(base uint64) string {
	return fmt.Sprintf("%s%016x%s", walSegmentPrefix, base, walSegmentSuffix)
}

func walSegmentPath(dir string, base uint64) string {
	return filepath.Join(dir, walSegmentName(base))
}

// walSegmentBases lists the base sequences of every segment in dir,
// ascending. Unparseable names are ignored (operator files are not
// ours to touch).
func walSegmentBases(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("alert: wal scan: %w", err)
	}
	var bases []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, walSegmentPrefix) || !strings.HasSuffix(name, walSegmentSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, walSegmentPrefix), walSegmentSuffix)
		base, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// validateSegment scans one segment, verifying every frame checksum.
// It returns the last valid sequence seen (0 if the segment is empty)
// and, for the final segment, truncates a torn tail in place and
// reports how many frames it cut. A checksum failure anywhere else is
// ErrWALCorrupt: sequential appends can only tear the very end.
func (w *WAL) validateSegment(path string, base uint64, final bool) (lastSeq uint64, torn int, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("alert: wal open %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	var off int64
	r := bufio.NewReader(f)
	want := base
	for {
		seq, payload, n, ferr := readWALFrame(r)
		if ferr == io.EOF {
			return lastSeq, 0, nil
		}
		if ferr != nil {
			if !final {
				return 0, 0, fmt.Errorf("%w: %s at offset %d: %v", ErrWALCorrupt, path, off, ferr)
			}
			// Torn tail: everything before off is intact; cut the rest.
			if terr := f.Truncate(off); terr != nil {
				return 0, 0, fmt.Errorf("alert: wal truncate %s: %w", path, terr)
			}
			if serr := f.Sync(); serr != nil {
				return 0, 0, fmt.Errorf("alert: wal sync after truncate %s: %w", path, serr)
			}
			return lastSeq, 1, nil
		}
		if seq != want {
			return 0, 0, fmt.Errorf("%w: %s holds seq %d where %d was expected", ErrWALCorrupt, path, seq, want)
		}
		_ = payload
		lastSeq = seq
		want = seq + 1
		off += int64(n)
	}
}

// readWALFrame decodes one frame from r: (seq, payload, frame length).
// io.EOF at a frame boundary is a clean end; any other failure —
// short header, short payload, oversized length, checksum mismatch —
// is returned as an error for the caller to classify.
func readWALFrame(r *bufio.Reader) (uint64, []byte, int, error) {
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, fmt.Errorf("short header: %w", err)
	}
	seq := binary.BigEndian.Uint64(hdr[0:8])
	size := binary.BigEndian.Uint32(hdr[8:12])
	sum := binary.BigEndian.Uint32(hdr[12:16])
	if size > walMaxPayload {
		return 0, nil, 0, fmt.Errorf("frame length %d exceeds cap", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("short payload: %w", err)
	}
	crc := crc32.Update(0, walCRCTable, hdr[0:12])
	crc = crc32.Update(crc, walCRCTable, payload)
	if crc != sum {
		return 0, nil, 0, errors.New("checksum mismatch")
	}
	return seq, payload, walHeaderLen + int(size), nil
}

// openSegment starts a fresh segment whose first record will be base.
// Called at open and at rotation, under mu (or before the WAL is
// shared).
func (w *WAL) openSegment(base uint64) error {
	path := walSegmentPath(w.cfg.Dir, base)
	// O_TRUNC is safe: a same-base collision means the prior segment
	// with this base held zero valid records.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("alert: wal segment create: %w", err)
	}
	if len(w.segments) == 0 || w.segments[len(w.segments)-1] != base {
		w.segments = append(w.segments, base)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64<<10)
	w.segBytes = 0
	w.met.segments.Set(int64(len(w.segments)))
	return nil
}

// Append buffers one record, assigns its sequence number, and rotates
// the segment when full. The record is NOT durable until a Sync call
// covering the returned sequence succeeds — callers answering clients
// must Sync before acknowledging.
func (w *WAL) Append(rec WALRecord) (uint64, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("alert: wal encode: %w", err)
	}
	var hdr [walHeaderLen]byte
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrWALClosed
	}
	seq := w.nextSeq
	w.nextSeq++
	if w.segBytes >= w.cfg.SegmentBytes {
		if err := w.rotateLocked(seq); err != nil {
			w.nextSeq--
			w.mu.Unlock()
			return 0, err
		}
	}
	binary.BigEndian.PutUint64(hdr[0:8], seq)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	crc := crc32.Update(0, walCRCTable, hdr[0:12])
	crc = crc32.Update(crc, walCRCTable, payload)
	binary.BigEndian.PutUint32(hdr[12:16], crc)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("alert: wal write: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("alert: wal write: %w", err)
	}
	frame := int64(walHeaderLen + len(payload))
	w.segBytes += frame
	w.written = seq
	w.mu.Unlock()
	w.met.appends.Inc()
	w.met.bytes.Add(uint64(frame))
	return seq, nil
}

// rotateLocked seals the active segment (flushing its buffer, deferring
// fsync+close to the next sync round) and opens the next one. Caller
// holds mu; firstSeq is the sequence about to be written.
func (w *WAL) rotateLocked(firstSeq uint64) error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("alert: wal flush at rotation: %w", err)
	}
	w.oldFiles = append(w.oldFiles, w.f)
	return w.openSegment(firstSeq)
}

// Sync blocks until every record up to and including seq is durable.
// Concurrent callers share fsyncs: one leader flushes and syncs while
// the rest wait, each fsync acknowledging at most FsyncBatch records.
func (w *WAL) Sync(seq uint64) error {
	w.syncMu.Lock()
	for {
		if w.synced >= seq {
			w.syncMu.Unlock()
			return nil
		}
		if !w.syncing {
			w.syncing = true
			w.syncMu.Unlock()
			target, err := w.flushAndSync()
			w.syncMu.Lock()
			w.syncing = false
			if err != nil {
				w.cond.Broadcast()
				w.syncMu.Unlock()
				return err
			}
			if target > w.synced {
				w.met.batch.Observe(float64(target - w.synced))
				w.synced = target
			}
			w.cond.Broadcast()
			continue // re-check: the cap may leave seq for the next round
		}
		w.cond.Wait()
	}
}

// flushAndSync is one group-commit round: flush the append buffer,
// fsync rotated-out segments (closing them) and the active one, and
// return the highest durable sequence — capped at FsyncBatch records
// past the current watermark so one round's acknowledgement matches
// the configured batch size.
func (w *WAL) flushAndSync() (uint64, error) {
	w.mu.Lock()
	if w.closed && w.f == nil {
		w.mu.Unlock()
		return 0, ErrWALClosed
	}
	target := w.written
	err := w.bw.Flush()
	olds := w.oldFiles
	w.oldFiles = nil
	cur := w.f
	w.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("alert: wal flush: %w", err)
	}
	for _, of := range olds {
		if serr := of.Sync(); serr != nil {
			return 0, fmt.Errorf("alert: wal fsync sealed segment: %w", serr)
		}
		if cerr := of.Close(); cerr != nil {
			return 0, fmt.Errorf("alert: wal close sealed segment: %w", cerr)
		}
		w.met.fsyncs.Inc()
	}
	if serr := cur.Sync(); serr != nil {
		return 0, fmt.Errorf("alert: wal fsync: %w", serr)
	}
	w.met.fsyncs.Inc()
	w.syncMu.Lock()
	if cap := w.synced + uint64(w.cfg.FsyncBatch); target > cap {
		target = cap
	}
	w.syncMu.Unlock()
	return target, nil
}

// SetPartitions declares the consumer count offsets are keyed by. If
// it differs from the count the sidecar recorded, per-partition
// offsets are collapsed to their floor (replay re-reads more, dedup
// absorbs it) and the map is re-keyed.
func (w *WAL) SetPartitions(n int) {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	if w.partitions == n {
		return
	}
	if len(w.offsets) > 0 {
		floor := walFloor(w.offsets, w.partitions)
		w.offsets = make(map[int]uint64, n)
		for p := 0; p < n; p++ {
			w.offsets[p] = floor
		}
	}
	w.partitions = n
}

// walFloor is the lowest committed offset across parts partitions; a
// partition with no recorded offset floors it at 0.
func walFloor(offsets map[int]uint64, parts int) uint64 {
	if parts <= 0 {
		return 0
	}
	floor := ^uint64(0)
	for p := 0; p < parts; p++ {
		off, ok := offsets[p]
		if !ok {
			return 0
		}
		if off < floor {
			floor = off
		}
	}
	if floor == ^uint64(0) {
		return 0
	}
	return floor
}

// CommittedOffset returns the highest sequence partition p has fully
// processed (0 before its first commit).
func (w *WAL) CommittedOffset(p int) uint64 {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	return w.offsets[p]
}

// Commit records that partition p has fully processed seq (and, since
// each partition consumes in order, every lower sequence routed to
// it). Every CommitEvery commits the sidecar is flushed and fully
// committed segments are garbage-collected.
func (w *WAL) Commit(p int, seq uint64) {
	w.cmu.Lock()
	if seq > w.offsets[p] {
		w.offsets[p] = seq
	}
	w.sinceFlush++
	flush := w.sinceFlush >= w.cfg.CommitEvery
	if flush {
		w.sinceFlush = 0
	}
	w.cmu.Unlock()
	if flush {
		if err := w.FlushCommits(); err != nil {
			w.cfg.Log.Warn("alert: wal commit flush", "err", err)
		}
	}
}

// FlushCommits writes the committed-offset sidecar (atomic write +
// rename, the repo's checkpoint discipline) and garbage-collects
// segments every partition has moved past.
func (w *WAL) FlushCommits() error {
	w.cmu.Lock()
	state := walCommitState{Partitions: w.partitions, Offsets: make(map[string]uint64, len(w.offsets))}
	for p, off := range w.offsets {
		state.Offsets[strconv.Itoa(p)] = off
	}
	floor := walFloor(w.offsets, w.partitions)
	w.cmu.Unlock()
	data, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("alert: wal commit encode: %w", err)
	}
	path := filepath.Join(w.cfg.Dir, walCommitName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("alert: wal commit write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("alert: wal commit rename: %w", err)
	}
	w.met.commits.Inc()
	w.met.floorGauge.Set(int64(floor))
	w.gc(floor)
	return nil
}

// loadCommits reads the sidecar; a missing file is a fresh log.
func (w *WAL) loadCommits() error {
	data, err := os.ReadFile(filepath.Join(w.cfg.Dir, walCommitName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("alert: wal commit read: %w", err)
	}
	var state walCommitState
	if err := json.Unmarshal(data, &state); err != nil {
		return fmt.Errorf("alert: wal commit decode: %w", err)
	}
	w.partitions = state.Partitions
	keys := make([]string, 0, len(state.Offsets))
	for key := range state.Offsets {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		p, err := strconv.Atoi(key)
		if err != nil {
			return fmt.Errorf("alert: wal commit partition key %q: %w", key, err)
		}
		w.offsets[p] = state.Offsets[key]
	}
	return nil
}

// gc deletes segments whose every record is at or below floor — proven
// by the NEXT segment's base — keeping the active segment regardless.
func (w *WAL) gc(floor uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	for len(w.segments) > 1 && w.segments[1] <= floor+1 {
		base := w.segments[0]
		if err := os.Remove(walSegmentPath(w.cfg.Dir, base)); err != nil {
			w.cfg.Log.Warn("alert: wal gc", "segment", walSegmentName(base), "err", err)
			break
		}
		w.segments = w.segments[1:]
		removed++
	}
	if removed > 0 {
		w.met.removed.Add(uint64(removed))
		w.met.segments.Set(int64(len(w.segments)))
	}
}

// Replay streams every retained record at or above the recovery floor
// to fn, in sequence order, reading straight off disk. Call it before
// the first Append of this process (the manager replays before opening
// ingest); fn deciding per-record whether to skip (already committed)
// or reprocess is the caller's business. A non-nil fn error aborts the
// replay and is returned.
func (w *WAL) Replay(fn func(seq uint64, rec WALRecord) error) error {
	w.cmu.Lock()
	w.replayed = true
	floor := walFloor(w.offsets, w.partitions)
	w.cmu.Unlock()
	w.mu.Lock()
	bases := append([]uint64(nil), w.segments...)
	active := w.f.Name()
	w.mu.Unlock()
	for _, base := range bases {
		path := walSegmentPath(w.cfg.Dir, base)
		if path == active {
			// The fresh segment this process appends to: nothing of a
			// prior life lives there.
			continue
		}
		if err := w.replaySegment(path, floor, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment feeds one segment's records past floor to fn.
func (w *WAL) replaySegment(path string, floor uint64, fn func(uint64, WALRecord) error) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("alert: wal replay open %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	r := bufio.NewReader(f)
	for {
		seq, payload, _, ferr := readWALFrame(r)
		if ferr == io.EOF {
			return nil
		}
		if ferr != nil {
			// Open already truncated torn tails and verified checksums;
			// fresh damage between then and now is corruption.
			return fmt.Errorf("%w: %s during replay: %v", ErrWALCorrupt, path, ferr)
		}
		if seq <= floor {
			continue
		}
		var rec WALRecord
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			return fmt.Errorf("%w: %s seq %d payload: %v", ErrWALCorrupt, path, seq, uerr)
		}
		w.met.replayed.Inc()
		if ferr := fn(seq, rec); ferr != nil {
			return ferr
		}
	}
}

// WALStats is a point-in-time snapshot for tests and health reporting.
type WALStats struct {
	// Segments is the retained segment-file count (including the
	// active one).
	Segments int
	// NextSeq is the sequence the next append will take.
	NextSeq uint64
	// Synced is the highest durable sequence.
	Synced uint64
	// CommittedFloor is the lowest committed offset across partitions.
	CommittedFloor uint64
}

// Stats snapshots the log's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	segs := len(w.segments)
	next := w.nextSeq
	w.mu.Unlock()
	w.syncMu.Lock()
	synced := w.synced
	w.syncMu.Unlock()
	w.cmu.Lock()
	floor := walFloor(w.offsets, w.partitions)
	w.cmu.Unlock()
	return WALStats{Segments: segs, NextSeq: next, Synced: synced, CommittedFloor: floor}
}

// Close makes every buffered record durable, flushes the committed
// offsets, and closes the segment files. Append and Sync fail with
// ErrWALClosed afterwards. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	written := w.written
	w.mu.Unlock()
	var firstErr error
	if written > 0 {
		if err := w.Sync(written); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Wait out any in-flight group-commit round before closing files.
	w.syncMu.Lock()
	for w.syncing {
		w.cond.Wait()
	}
	w.syncMu.Unlock()
	w.mu.Lock()
	for _, of := range w.oldFiles {
		if err := of.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := of.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	w.oldFiles = nil
	if w.f != nil {
		if err := w.bw.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := w.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := w.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		w.f = nil
	}
	w.mu.Unlock()
	if err := w.FlushCommits(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
