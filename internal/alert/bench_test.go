package alert

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"strings"

	"etap/internal/gather"
	"etap/internal/kb"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/tenant"
	"etap/internal/web"
)

// benchDocCount is the document stream the ingest harness pushes
// through the manager; every document carries a distinct trigger
// sentence so each one exercises the full extract-dedup-store-fanout
// path rather than short-circuiting at the fingerprint.
const benchDocCount = 2000

// runIngest pushes docs documents through a manager with the given
// worker-pool size and one matching subscriber, returning the wall time
// from first Enqueue to a drained Flush plus the stored-event and
// delivered-alert counts.
func runIngest(tb testing.TB, workers, docs int) (time.Duration, int, int) {
	tb.Helper()
	sink := &recordSink{}
	w := web.New()
	w.Freeze()
	deliver := newScriptDeliverer()
	subs := NewSubscriptions()
	if _, err := subs.Add(Subscription{
		Company: "Acme", Driver: "mergers-acquisitions",
		WebhookURL: "https://crm.example/hook",
	}); err != nil {
		tb.Fatal(err)
	}
	m := NewManager(&stubPipeline{}, sink, w, Config{
		Workers:         workers,
		QueueSize:       docs + 8,
		SubscriberQueue: docs + 8,
		Registry:        obs.NewRegistry(),
		Subscriptions:   subs,
		Deliverer:       deliver,
		Retry:           gather.RetryConfig{MaxAttempts: 1, Sleep: noSleep, AttemptTimeout: -1},
	})
	m.Start(context.Background())
	defer m.Close()

	start := time.Now()
	for i := 0; i < docs; i++ {
		err := m.Enqueue(Document{
			URL:  fmt.Sprintf("https://bench.example/doc-%d", i),
			Text: fmt.Sprintf("Acme announced merger number %d with a regional competitor.", i),
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start), sink.len(), len(deliver.deliveredAlerts())
}

// BenchmarkIngest measures end-to-end ingest throughput (enqueue →
// extract → dedup → store → fan-out → deliver) at one worker and at
// GOMAXPROCS workers.
func BenchmarkIngest(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runIngest(b, workers, 500)
			}
		})
	}
}

// alertBenchReport is the schema of BENCH_alert.json — the ingest
// throughput record for the streaming subsystem, refreshed by
// `make bench-alert`.
type alertBenchReport struct {
	GeneratedAt string           `json:"generated_at"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	Docs        int              `json:"docs"`
	Workers     int              `json:"workers"`
	SingleDPS   float64          `json:"single_worker_docs_per_sec"`
	PooledDPS   float64          `json:"pooled_docs_per_sec"`
	Speedup     float64          `json:"speedup"`
	Stored      int              `json:"events_stored"`
	Delivered   int              `json:"alerts_delivered"`
	Matching    matchBenchReport `json:"matching"`
	// TenantMatching layers tenant ICP filtering over the same
	// population; candidates must not grow, proving the composed path
	// stays O(candidates), not O(tenants × subscriptions).
	TenantMatching tenantMatchReport `json:"tenant_matching"`
}

// matchBenchReport records the subscription-matching scenario: the
// same event stream matched by the old full scan and by the inverted
// index, over a large skewed subscription population.
type matchBenchReport struct {
	Subs              int     `json:"subscriptions"`
	Events            int     `json:"events"`
	LinearNsPerEvent  float64 `json:"linear_ns_per_event"`
	IndexedNsPerEvent float64 `json:"indexed_ns_per_event"`
	Speedup           float64 `json:"speedup"`
	AvgCandidates     float64 `json:"avg_candidates"`
	ResultsIdentical  bool    `json:"results_identical"`
}

// tenantMatchReport records the tenant-scoped matching scenario: the
// match-bench population with half its subscriptions tenant-scoped
// against a 1000-tenant ICP registry, matched through the inverted
// index composed with dispatch-time ICP filtering.
type tenantMatchReport struct {
	Tenants       int     `json:"tenants"`
	ScopedSubs    int     `json:"tenant_scoped_subscriptions"`
	Events        int     `json:"events"`
	NsPerEvent    float64 `json:"ns_per_event"`
	AvgCandidates float64 `json:"avg_candidates"`
	Matched       int     `json:"matched_deliveries"`
	// CandidatesEqualBase is true when tenant scoping probed exactly as
	// many candidates per event as the tenant-free scenario — the
	// O(candidates) claim.
	CandidatesEqualBase bool `json:"candidates_equal_base"`
}

const (
	matchSubCount   = 100_000
	matchEventCount = 200
	benchTenants    = 1000
)

// buildMatchBench seeds a 100k-subscription population over a skewed
// company distribution — a few hot companies hold most of the watchers,
// with wildcard-company and driver-narrowed minorities — plus an event
// stream drawn from the same skew.
func buildMatchBench(tb testing.TB) (*Subscriptions, []rank.Event) {
	tb.Helper()
	rng := rand.New(rand.NewSource(2026))
	companies := make([]string, 2000)
	for i := range companies {
		companies[i] = fmt.Sprintf("Company %d Inc", i)
	}
	// Min-of-three draws concentrates mass on low indices without
	// needing a zipf table.
	skew := func() string {
		i := rng.Intn(len(companies))
		for k := 0; k < 2; k++ {
			if j := rng.Intn(len(companies)); j < i {
				i = j
			}
		}
		return companies[i]
	}
	drivers := []string{"mergers-acquisitions", "new-offices", "funding-rounds"}
	ss := NewSubscriptions()
	for i := 0; i < matchSubCount; i++ {
		s := Subscription{Company: skew(), MinScore: 0.5}
		switch r := rng.Intn(100); {
		case r == 0:
			s.Company = "" // watch every company: rare, and every event probes these
		case r < 30:
			s.Driver = drivers[rng.Intn(len(drivers))]
		}
		if _, err := ss.Add(s); err != nil {
			tb.Fatal(err)
		}
	}
	events := make([]rank.Event, matchEventCount)
	for i := range events {
		events[i] = rank.Event{
			SnippetID: fmt.Sprintf("bench#%d", i),
			Company:   skew(),
			Driver:    drivers[rng.Intn(len(drivers))],
			Score:     0.9,
		}
	}
	return ss, events
}

// runMatchBench times the full-scan matcher (what fanOut did before
// the index: snapshot List, Matches everything) against the indexed
// path (Candidates, then Matches) and asserts they select identical
// subscribers in identical order for every event.
func runMatchBench(tb testing.TB) matchBenchReport {
	tb.Helper()
	ss, events := buildMatchBench(tb)

	linStart := time.Now()
	linear := make([][]string, len(events))
	for i, ev := range events {
		linear[i] = linearMatch(ss, ev)
	}
	linDur := time.Since(linStart)

	idxStart := time.Now()
	indexed := make([][]string, len(events))
	candidates := 0
	for i, ev := range events {
		cands := ss.Candidates(ev.Company, ev.Driver)
		candidates += len(cands)
		var ids []string
		for _, s := range cands {
			if s.Matches(ev) {
				ids = append(ids, s.ID)
			}
		}
		indexed[i] = ids
	}
	idxDur := time.Since(idxStart)

	identical := true
	for i := range events {
		if fmt.Sprint(linear[i]) != fmt.Sprint(indexed[i]) {
			identical = false
			tb.Errorf("event %d: indexed matched %d subs, linear %d — sets diverge",
				i, len(indexed[i]), len(linear[i]))
		}
	}
	perEvent := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(len(events)) }
	return matchBenchReport{
		Subs:              matchSubCount,
		Events:            len(events),
		LinearNsPerEvent:  perEvent(linDur),
		IndexedNsPerEvent: perEvent(idxDur),
		Speedup:           linDur.Seconds() / idxDur.Seconds(),
		AvgCandidates:     float64(candidates) / float64(len(events)),
		ResultsIdentical:  identical,
	}
}

// buildTenantBench layers a knowledge base covering every bench
// company and a 1000-tenant ICP registry onto the match-bench
// population, tenant-scoping roughly half the subscriptions by a
// seeded draw. The returned manager only exists to expose tenantAllows
// — it is never started.
func buildTenantBench(tb testing.TB, ss *Subscriptions) (*Manager, int) {
	tb.Helper()
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb,
			"{\"key\":\"company %d\",\"name\":\"Company %d Inc\",\"industry\":%q,\"employees\":500,\"sizeBucket\":\"medium\",\"hq\":\"New York\",\"founded\":1990}\n",
			i, i, kb.Industries[i%len(kb.Industries)])
	}
	k, err := kb.ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		tb.Fatal(err)
	}
	reg := tenant.NewRegistry(tenant.Config{Clock: fixedClock, Registry: obs.NewRegistry()})
	for j := 0; j < benchTenants; j++ {
		if _, err := reg.Add(tenant.Profile{
			Name:       fmt.Sprintf("bench-tenant-%d", j),
			Industries: []string{kb.Industries[j%len(kb.Industries)]},
		}); err != nil {
			tb.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2027))
	scoped := 0
	for _, s := range ss.List() {
		if rng.Intn(2) == 0 {
			continue
		}
		s.Tenant = fmt.Sprintf("tenant-%d", 1+rng.Intn(benchTenants))
		if _, err := ss.Update(s.ID, s); err != nil {
			tb.Fatal(err)
		}
		scoped++
	}
	m := NewManager(nil, nil, nil, Config{
		Registry:      obs.NewRegistry(),
		Subscriptions: ss,
		Tenants:       reg,
		KB:            k,
		Clock:         fixedClock,
	})
	return m, scoped
}

// runTenantMatchBench times the composed matcher — inverted-index
// Candidates, Matches, then dispatch-time tenant ICP filtering — over
// the tenant-scoped population, recording the probe count so the
// harness can assert tenant scoping added no candidates.
func runTenantMatchBench(tb testing.TB) tenantMatchReport {
	tb.Helper()
	ss, events := buildMatchBench(tb)
	m, scoped := buildTenantBench(tb, ss)

	start := time.Now()
	candidates, matched := 0, 0
	for _, ev := range events {
		cands := ss.Candidates(ev.Company, ev.Driver)
		candidates += len(cands)
		for _, s := range cands {
			if s.Matches(ev) && m.tenantAllows(s, ev) {
				matched++
			}
		}
	}
	dur := time.Since(start)
	return tenantMatchReport{
		Tenants:       benchTenants,
		ScopedSubs:    scoped,
		Events:        len(events),
		NsPerEvent:    float64(dur.Nanoseconds()) / float64(len(events)),
		AvgCandidates: float64(candidates) / float64(len(events)),
		Matched:       matched,
	}
}

// TestAlertBenchHarness measures single-worker vs pooled ingest
// throughput over a synthetic trigger-dense document stream and writes
// BENCH_alert.json to the path named by ETAP_BENCH_ALERT. Skipped
// unless that variable is set — run it via `make bench-alert`.
func TestAlertBenchHarness(t *testing.T) {
	out := os.Getenv("ETAP_BENCH_ALERT")
	if out == "" {
		t.Skip("set ETAP_BENCH_ALERT=<output path> (or run `make bench-alert`)")
	}
	workers := runtime.GOMAXPROCS(0)

	singleDur, stored1, delivered1 := runIngest(t, 1, benchDocCount)
	pooledDur, storedN, deliveredN := runIngest(t, workers, benchDocCount)
	if stored1 != benchDocCount || storedN != benchDocCount {
		t.Fatalf("stored %d/%d events, want %d each", stored1, storedN, benchDocCount)
	}
	if delivered1 != benchDocCount || deliveredN != benchDocCount {
		t.Fatalf("delivered %d/%d alerts, want %d each", delivered1, deliveredN, benchDocCount)
	}

	matching := runMatchBench(t)
	if !matching.ResultsIdentical {
		t.Fatal("indexed matching diverged from the linear scan")
	}

	tenantMatching := runTenantMatchBench(t)
	// The O(candidates) claim: tenant scoping must not widen the probe
	// set — per-event cost tracks candidates, never tenants ×
	// subscriptions.
	tenantMatching.CandidatesEqualBase = tenantMatching.AvgCandidates == matching.AvgCandidates
	if !tenantMatching.CandidatesEqualBase {
		t.Fatalf("tenant scoping changed the candidate count: %.1f vs %.1f per event",
			tenantMatching.AvgCandidates, matching.AvgCandidates)
	}

	dps := func(d time.Duration) float64 { return float64(benchDocCount) / d.Seconds() }
	rep := alertBenchReport{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:     workers,
		Docs:           benchDocCount,
		Workers:        workers,
		SingleDPS:      dps(singleDur),
		PooledDPS:      dps(pooledDur),
		Speedup:        singleDur.Seconds() / pooledDur.Seconds(),
		Stored:         storedN,
		Delivered:      deliveredN,
		Matching:       matching,
		TenantMatching: tenantMatching,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("ingest: 1 worker %.0f docs/s, %d workers %.0f docs/s (%.2fx), %d alerts delivered",
		rep.SingleDPS, workers, rep.PooledDPS, rep.Speedup, rep.Delivered)
	t.Logf("matching: %d subs, linear %.0f ns/event vs indexed %.0f ns/event (%.1fx), %.1f avg candidates",
		matching.Subs, matching.LinearNsPerEvent, matching.IndexedNsPerEvent,
		matching.Speedup, matching.AvgCandidates)
	t.Logf("tenant matching: %d tenants, %d scoped subs, %.0f ns/event, %.1f avg candidates (equal to base: %v)",
		tenantMatching.Tenants, tenantMatching.ScopedSubs, tenantMatching.NsPerEvent,
		tenantMatching.AvgCandidates, tenantMatching.CandidatesEqualBase)
}
