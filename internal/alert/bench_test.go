package alert

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"etap/internal/gather"
	"etap/internal/obs"
	"etap/internal/web"
)

// benchDocCount is the document stream the ingest harness pushes
// through the manager; every document carries a distinct trigger
// sentence so each one exercises the full extract-dedup-store-fanout
// path rather than short-circuiting at the fingerprint.
const benchDocCount = 2000

// runIngest pushes docs documents through a manager with the given
// worker-pool size and one matching subscriber, returning the wall time
// from first Enqueue to a drained Flush plus the stored-event and
// delivered-alert counts.
func runIngest(tb testing.TB, workers, docs int) (time.Duration, int, int) {
	tb.Helper()
	sink := &recordSink{}
	w := web.New()
	w.Freeze()
	deliver := newScriptDeliverer()
	subs := NewSubscriptions()
	if _, err := subs.Add(Subscription{
		Company: "Acme", Driver: "mergers-acquisitions",
		WebhookURL: "https://crm.example/hook",
	}); err != nil {
		tb.Fatal(err)
	}
	m := NewManager(&stubPipeline{}, sink, w, Config{
		Workers:         workers,
		QueueSize:       docs + 8,
		SubscriberQueue: docs + 8,
		Registry:        obs.NewRegistry(),
		Subscriptions:   subs,
		Deliverer:       deliver,
		Retry:           gather.RetryConfig{MaxAttempts: 1, Sleep: noSleep, AttemptTimeout: -1},
	})
	m.Start(context.Background())
	defer m.Close()

	start := time.Now()
	for i := 0; i < docs; i++ {
		err := m.Enqueue(Document{
			URL:  fmt.Sprintf("https://bench.example/doc-%d", i),
			Text: fmt.Sprintf("Acme announced merger number %d with a regional competitor.", i),
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start), sink.len(), len(deliver.deliveredAlerts())
}

// BenchmarkIngest measures end-to-end ingest throughput (enqueue →
// extract → dedup → store → fan-out → deliver) at one worker and at
// GOMAXPROCS workers.
func BenchmarkIngest(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runIngest(b, workers, 500)
			}
		})
	}
}

// alertBenchReport is the schema of BENCH_alert.json — the ingest
// throughput record for the streaming subsystem, refreshed by
// `make bench-alert`.
type alertBenchReport struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Docs        int     `json:"docs"`
	Workers     int     `json:"workers"`
	SingleDPS   float64 `json:"single_worker_docs_per_sec"`
	PooledDPS   float64 `json:"pooled_docs_per_sec"`
	Speedup     float64 `json:"speedup"`
	Stored      int     `json:"events_stored"`
	Delivered   int     `json:"alerts_delivered"`
}

// TestAlertBenchHarness measures single-worker vs pooled ingest
// throughput over a synthetic trigger-dense document stream and writes
// BENCH_alert.json to the path named by ETAP_BENCH_ALERT. Skipped
// unless that variable is set — run it via `make bench-alert`.
func TestAlertBenchHarness(t *testing.T) {
	out := os.Getenv("ETAP_BENCH_ALERT")
	if out == "" {
		t.Skip("set ETAP_BENCH_ALERT=<output path> (or run `make bench-alert`)")
	}
	workers := runtime.GOMAXPROCS(0)

	singleDur, stored1, delivered1 := runIngest(t, 1, benchDocCount)
	pooledDur, storedN, deliveredN := runIngest(t, workers, benchDocCount)
	if stored1 != benchDocCount || storedN != benchDocCount {
		t.Fatalf("stored %d/%d events, want %d each", stored1, storedN, benchDocCount)
	}
	if delivered1 != benchDocCount || deliveredN != benchDocCount {
		t.Fatalf("delivered %d/%d alerts, want %d each", delivered1, deliveredN, benchDocCount)
	}

	dps := func(d time.Duration) float64 { return float64(benchDocCount) / d.Seconds() }
	rep := alertBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  workers,
		Docs:        benchDocCount,
		Workers:     workers,
		SingleDPS:   dps(singleDur),
		PooledDPS:   dps(pooledDur),
		Speedup:     singleDur.Seconds() / pooledDur.Seconds(),
		Stored:      storedN,
		Delivered:   deliveredN,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("ingest: 1 worker %.0f docs/s, %d workers %.0f docs/s (%.2fx), %d alerts delivered",
		rep.SingleDPS, workers, rep.PooledDPS, rep.Speedup, rep.Delivered)
}
