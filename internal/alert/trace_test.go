package alert

import (
	"context"
	"sync"
	"testing"
	"time"

	"etap/internal/gather"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/web"
)

// tracedManager wires a test manager sharing one tracer and registry so
// assertions can inspect both.
func tracedManager(t *testing.T, cfg Config, deliver Deliverer) (*Manager, *obs.Tracer, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 1, Seed: 11, Registry: reg})
	cfg.Tracer = tracer
	m, _ := newTestManager(t, cfg, deliver)
	return m, tracer, reg
}

func spanNames(tv obs.TraceView) map[string]int {
	out := map[string]int{}
	for _, sp := range tv.Spans {
		out[sp.Name]++
	}
	return out
}

func TestTraceFollowsDocumentThroughDelivery(t *testing.T) {
	deliver := newScriptDeliverer()
	m, tracer, _ := tracedManager(t, Config{}, deliver)
	if _, err := m.Subscriptions().Add(Subscription{ID: "s1", WebhookURL: "https://hook.example/a"}); err != nil {
		t.Fatal(err)
	}
	id, err := m.EnqueueTraced(Document{URL: "https://n.example/a", Text: "a merger closed"})
	if err != nil {
		t.Fatal(err)
	}
	flush(t, m)

	tv, ok := tracer.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained after delivery", id)
	}
	names := spanNames(tv)
	for _, want := range []string{"ingest", "index", "extract", "dedup", "store", "dispatch", "webhook"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span; have %v", want, names)
		}
	}
	if tv.Status != "error" && tv.Status != "ok" {
		t.Fatalf("bad status %q", tv.Status)
	}
	if tv.Status != "ok" {
		t.Fatalf("clean delivery traced as %q", tv.Status)
	}
	// The delivered alert carries the trace ID end to end.
	deliv := deliver.deliveredAlerts()
	if len(deliv) != 1 || deliv[0].TraceID != id {
		t.Fatalf("delivered alerts = %+v, want one with trace %s", deliv, id)
	}
}

func TestRetriedDeliveryGetsSpanPerAttempt(t *testing.T) {
	deliver := newScriptDeliverer()
	deliver.fails["s1"] = 2 // two transient failures, then success
	m, tracer, _ := tracedManager(t, Config{}, deliver)
	if _, err := m.Subscriptions().Add(Subscription{ID: "s1", WebhookURL: "https://hook.example/a"}); err != nil {
		t.Fatal(err)
	}
	id, err := m.EnqueueTraced(Document{URL: "https://n.example/a", Text: "a merger closed"})
	if err != nil {
		t.Fatal(err)
	}
	flush(t, m)
	tv, ok := tracer.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	names := spanNames(tv)
	if names["webhook"] != 3 {
		t.Fatalf("webhook spans = %d, want 3 (two failures + success); spans %v", names["webhook"], names)
	}
	// The failed attempts are error spans; the delivery as a whole is ok.
	var failed int
	for _, sp := range tv.Spans {
		if sp.Name == "webhook" && sp.Status == "error" {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("failed webhook spans = %d, want 2", failed)
	}
	if tv.Status != "error" {
		t.Fatalf("trace status = %q; a trace with failed spans reports error", tv.Status)
	}
}

func TestDeadLetterCarriesTraceID(t *testing.T) {
	deliver := newScriptDeliverer()
	deliver.permanent["s1"] = true
	m, tracer, _ := tracedManager(t, Config{}, deliver)
	if _, err := m.Subscriptions().Add(Subscription{ID: "s1", WebhookURL: "https://hook.example/a"}); err != nil {
		t.Fatal(err)
	}
	id, err := m.EnqueueTraced(Document{URL: "https://n.example/a", Text: "a merger closed"})
	if err != nil {
		t.Fatal(err)
	}
	flush(t, m)
	dead := m.DeadLetters()
	if len(dead) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(dead))
	}
	if dead[0].TraceID != id {
		t.Fatalf("dead letter trace = %q, want %q", dead[0].TraceID, id)
	}
	// An abandoned delivery is an errored trace — always retained, even
	// at sample rate 0.
	tv, ok := tracer.Get(id)
	if !ok {
		t.Fatal("dead-lettered trace not retained")
	}
	if tv.Status != "error" {
		t.Fatalf("dead-lettered trace status = %q, want error", tv.Status)
	}
}

func TestQueueFullRejectionTracedAsError(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 0, Seed: 3, Registry: obs.NewRegistry()})
	// No workers draining: queue size 1, manager started but with a
	// blocked pipeline? Simpler: fill the queue faster than the workers
	// drain by never starting... Enqueue requires Start. Use a pipeline
	// that blocks until released.
	release := make(chan struct{})
	blocker := &blockingPipeline{release: release}
	sink := &recordSink{}
	w := web.New()
	w.Freeze()
	m := NewManager(blocker, sink, w, Config{
		Workers:   1,
		QueueSize: 1,
		Clock:     fixedClock,
		Registry:  obs.NewRegistry(),
		Deliverer: newScriptDeliverer(),
		Tracer:    tracer,
	})
	m.Start(context.Background())
	// LIFO: release the blocked worker first, then Close can drain.
	defer m.Close()
	defer close(release)

	// First document occupies the worker; second fills the queue; the
	// third must bounce with a traced rejection.
	var lastID string
	var lastErr error
	for i := 0; i < 8; i++ {
		lastID, lastErr = m.EnqueueTraced(Document{URL: "https://n.example/a", Text: "merger"})
		if lastErr != nil {
			break
		}
	}
	if lastErr != ErrQueueFull {
		t.Fatalf("never hit ErrQueueFull; last err %v", lastErr)
	}
	if lastID == "" {
		t.Fatal("rejection returned no trace ID")
	}
	tv, ok := tracer.Get(lastID)
	if !ok {
		t.Fatal("rejected document's trace not retained (errors bypass sampling)")
	}
	if tv.Status != "error" {
		t.Fatalf("rejection trace status = %q, want error", tv.Status)
	}
}

// blockingPipeline parks every extraction until release closes.
type blockingPipeline struct{ release chan struct{} }

func (p *blockingPipeline) ExtractAllEvents(pages []*web.Page, threshold float64) []rank.Event {
	<-p.release
	return nil
}

func TestDeliveryLagObservedAndHealthSLO(t *testing.T) {
	// Stepping clock: every reading advances 10ms, so each delivered
	// alert accrues a nonzero accept→2xx lag.
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(10 * time.Millisecond)
		return now
	}
	deliver := newScriptDeliverer()
	sink := &recordSink{}
	w := web.New()
	w.Freeze()
	reg := obs.NewRegistry()
	m := NewManager(&stubPipeline{}, sink, w, Config{
		Clock:     clock,
		Registry:  reg,
		Deliverer: deliver,
		Retry:     gather.RetryConfig{MaxAttempts: 3, Sleep: noSleep, AttemptTimeout: -1},
		LagSLO:    time.Millisecond, // any observed lag exceeds this
	})
	m.Start(context.Background())
	defer m.Close()
	if _, err := m.Subscriptions().Add(Subscription{ID: "s1", WebhookURL: "https://hook.example/a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Enqueue(Document{URL: "https://n.example/a", Text: "a merger closed"}); err != nil {
		t.Fatal(err)
	}
	flush(t, m)

	h := m.Health()
	if h.DeliveryLagP99 <= 0 {
		t.Fatalf("DeliveryLagP99 = %v, want > 0 after a delivery", h.DeliveryLagP99)
	}
	if h.DeliveryLagSLO != 0.001 {
		t.Fatalf("DeliveryLagSLO = %v, want 0.001", h.DeliveryLagSLO)
	}
	reasons := h.Degraded()
	found := false
	for _, r := range reasons {
		if r == DegradedDeliveryLag {
			found = true
		}
	}
	if !found {
		t.Fatalf("degradation reasons %v missing %q", reasons, DegradedDeliveryLag)
	}

	// Lag under budget: healthy.
	under := Health{DeliveryLagP99: 0.1, DeliveryLagSLO: 1}
	for _, r := range under.Degraded() {
		if r == DegradedDeliveryLag {
			t.Fatal("lag under budget reported degraded")
		}
	}
	// SLO off (0): never degraded on lag.
	off := Health{DeliveryLagP99: 99, DeliveryLagSLO: 0}
	for _, r := range off.Degraded() {
		if r == DegradedDeliveryLag {
			t.Fatal("disabled SLO reported degraded")
		}
	}
}

func TestQueueWaitHistogramRegistered(t *testing.T) {
	deliver := newScriptDeliverer()
	sink := &recordSink{}
	w := web.New()
	w.Freeze()
	reg := obs.NewRegistry()
	m := NewManager(&stubPipeline{}, sink, w, Config{
		Clock:     fixedClock,
		Registry:  reg,
		Deliverer: deliver,
		Retry:     gather.RetryConfig{MaxAttempts: 3, Sleep: noSleep, AttemptTimeout: -1},
	})
	m.Start(context.Background())
	defer m.Close()
	if _, err := m.Subscriptions().Add(Subscription{ID: "s1", WebhookURL: "https://hook.example/a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Enqueue(Document{URL: "https://n.example/a", Text: "a merger closed"}); err != nil {
		t.Fatal(err)
	}
	flush(t, m)
	snap := reg.Snapshot()
	key := `etap_alert_subscriber_queue_wait_seconds{subscription="s1"}`
	hs, ok := snap[key].(obs.HistogramSnapshot)
	if !ok {
		t.Fatalf("snapshot missing %s; keys present: %v", key, keysOf(snap))
	}
	if hs.Count != 1 {
		t.Fatalf("queue-wait count = %d, want 1", hs.Count)
	}
	lag, ok := snap["etap_alert_delivery_lag_seconds"].(obs.HistogramSnapshot)
	if !ok || lag.Count != 1 {
		t.Fatalf("delivery-lag histogram = %+v ok=%v, want count 1", lag, ok)
	}
}

func keysOf(m map[string]any) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
