package alert

// Regression tests for three dispatcher bugs: a worker resurrected
// after Unsubscribe, delivery using the worker-spawn-time subscription
// instead of the dispatch-time one, and dead letters losing their
// failure classification when the retry policy reported none.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"etap/internal/gather"
	"etap/internal/obs"
)

func TestFailureReasonTable(t *testing.T) {
	cases := []struct {
		name string
		out  gather.Outcome
		want string
	}{
		{"policy reason wins", gather.Outcome{Reason: gather.FailExhausted, Err: errors.New("boom")}, gather.FailExhausted},
		{"breaker reason", gather.Outcome{Reason: gather.FailBreakerOpen}, gather.FailBreakerOpen},
		{"permanent reason", gather.Outcome{Reason: gather.FailNotFound, Err: errors.New("410 gone")}, gather.FailNotFound},
		{"error message fallback", gather.Outcome{Err: errors.New("connection reset")}, "connection reset"},
		{"nothing to classify", gather.Outcome{}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := failureReason(tc.out); got != tc.want {
				t.Fatalf("failureReason(%+v) = %q, want %q", tc.out, got, tc.want)
			}
		})
	}
}

func TestDeadLetterCarriesComputedReason(t *testing.T) {
	// End to end: an exhausted delivery's dead letter must carry the
	// same classification the span and log line get — never empty.
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	sub, _ := m.Subscriptions().Add(Subscription{WebhookURL: "http://dead.example.com/hook"})
	deliver.fails[sub.ID] = -1
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "a merger abandoned"}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	dead := m.DeadLetters()
	if len(dead) != 1 {
		t.Fatalf("dead letters = %+v, want 1", dead)
	}
	if dead[0].Reason == "" {
		t.Fatal("dead letter with empty Reason")
	}
	if want := failureReason(gather.Outcome{Reason: gather.FailExhausted}); dead[0].Reason != want {
		t.Fatalf("dead letter reason = %q, want %q", dead[0].Reason, want)
	}
}

// subSnapshotDeliverer records the WebhookURL of the subscription each
// delivery was handed — the probe for the stale-snapshot bug.
type subSnapshotDeliverer struct {
	mu   sync.Mutex
	urls []string
}

func (d *subSnapshotDeliverer) Deliver(_ context.Context, sub Subscription, _ Alert) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.urls = append(d.urls, sub.WebhookURL)
	return nil
}

func (d *subSnapshotDeliverer) seen() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.urls...)
}

func TestDeliveryUsesDispatchTimeSubscription(t *testing.T) {
	deliver := &subSnapshotDeliverer{}
	cfg := Config{
		Clock:    fixedClock,
		Registry: obs.NewRegistry(),
		Retry:    gather.RetryConfig{MaxAttempts: 1, Sleep: noSleep, AttemptTimeout: -1},
		Log:      quietTestLog(),
	}.withDefaults()
	met := newMetrics(cfg.Registry)
	d := newDispatcher(cfg, met, deliver, nil)
	defer d.close()

	// Same subscription ID, different webhook between dispatches — the
	// shape of a delete-and-recreate or an edited endpoint. The worker
	// spawned by the first dispatch must not pin the first URL.
	first := Subscription{ID: "sub-1", WebhookURL: "http://old.example.com/hook"}
	second := Subscription{ID: "sub-1", WebhookURL: "http://new.example.com/hook"}
	a := Alert{Subscription: "sub-1"}
	d.dispatch(context.Background(), first, a, fixedClock())
	waitFor(t, func() bool { return len(deliver.seen()) == 1 })
	d.dispatch(context.Background(), second, a, fixedClock())
	waitFor(t, func() bool { return len(deliver.seen()) == 2 })

	got := deliver.seen()
	if got[0] != first.WebhookURL || got[1] != second.WebhookURL {
		t.Fatalf("deliveries used %v, want dispatch-time snapshots [%s %s]",
			got, first.WebhookURL, second.WebhookURL)
	}
}

func TestDispatchDropsDeletedSubscription(t *testing.T) {
	// Deterministic replay of the resurrection race: fanOut snapshots
	// the subscription, Unsubscribe deletes it and stops its worker,
	// then dispatch runs with the stale snapshot. Without the liveness
	// re-check it would spawn a fresh worker and deliver to the
	// cancelled endpoint.
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	sub, _ := m.Subscriptions().Add(Subscription{WebhookURL: "http://gone.example.com/hook"})
	if err := m.Unsubscribe(sub.ID); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	m.disp.dispatch(context.Background(), sub, Alert{Subscription: sub.ID}, fixedClock())
	m.disp.mu.Lock()
	_, resurrected := m.disp.workers[sub.ID]
	m.disp.mu.Unlock()
	if resurrected {
		t.Fatal("dispatch resurrected a worker for a deleted subscription")
	}
	if n := len(deliver.deliveredAlerts()); n != 0 {
		t.Fatalf("delivered %d alerts to a deleted subscription", n)
	}
	if got := m.met.delSubDrops.Value(); got != 1 {
		t.Fatalf("deleted-sub drop counter = %d, want 1", got)
	}
}

func TestUnsubscribeRaceNeverResurrectsWorkers(t *testing.T) {
	// -race stress: ingestion fanning out against subscribe/unsubscribe
	// churn. The invariant under test: once Unsubscribe returns, no
	// delivery for that ID may START later, and the dispatcher never
	// holds a worker for an ID the subscription set lacks once the dust
	// settles.
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{Workers: 4, QueueSize: 256, SubscriberQueue: 64}, deliver)
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sub, err := m.Subscriptions().Add(Subscription{
				ID:         fmt.Sprintf("churn-%d", i),
				Company:    "Acme",
				WebhookURL: "http://churn.example.com/hook",
			})
			if err != nil {
				continue
			}
			if err := m.Unsubscribe(sub.ID); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		doc := Document{
			URL:  fmt.Sprintf("http://stream.example.com/%d", i),
			Text: fmt.Sprintf("Story %d: Acme merger talk.", i),
		}
		for errors.Is(m.Enqueue(doc), ErrQueueFull) {
			time.Sleep(time.Millisecond)
		}
	}
	flush(t, m)
	close(stop)
	churn.Wait()
	flush(t, m)

	m.disp.mu.Lock()
	var orphans []string
	for id := range m.disp.workers {
		if _, err := m.Subscriptions().Get(id); err != nil {
			orphans = append(orphans, id)
		}
	}
	m.disp.mu.Unlock()
	if len(orphans) > 0 {
		t.Fatalf("dispatcher holds workers for deleted subscriptions: %v", orphans)
	}
}

// waitFor polls until ok() or a 5s deadline.
func waitFor(t *testing.T, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
