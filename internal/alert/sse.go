// SSE broadcasting: the live view of the alert stream. Webhook
// delivery is the durable at-least-once path; the broadcaster is the
// ephemeral one — a fan-out of JSON frames to whoever has
// GET /alerts/stream open right now. Slow clients lose frames rather
// than stall the pipeline: each client gets a bounded buffer and a
// drop counter, never backpressure.
package alert

import "sync"

// Broadcaster fans frames out to subscribed channels. Safe for
// concurrent use.
type Broadcaster struct {
	mu      sync.Mutex
	clients map[chan []byte]bool
	buffer  int
	met     *metrics
}

func newBroadcaster(buffer int, met *metrics) *Broadcaster {
	if buffer <= 0 {
		buffer = 16
	}
	return &Broadcaster{clients: make(map[chan []byte]bool), buffer: buffer, met: met}
}

// Subscribe registers a client and returns its frame channel plus a
// cancel function. The channel is closed by cancel (exactly once;
// cancel is idempotent).
func (b *Broadcaster) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, b.buffer)
	b.mu.Lock()
	b.clients[ch] = true
	b.mu.Unlock()
	b.met.sseClients.Inc()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.clients, ch)
			b.mu.Unlock()
			close(ch)
			b.met.sseClients.Dec()
		})
	}
	return ch, cancel
}

// Broadcast offers a frame to every client, dropping it for clients
// whose buffers are full.
func (b *Broadcaster) Broadcast(frame []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.clients {
		select {
		case ch <- frame:
		default:
			b.met.sseDropped.Inc()
		}
	}
}

// Clients returns the number of connected clients.
func (b *Broadcaster) Clients() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}
