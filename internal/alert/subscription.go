// Subscriptions: the standing interests alerts are matched against. A
// subscription names what a salesperson cares about — a company, a
// sales driver, a minimum score, any combination — and where matching
// alerts go (a webhook URL, the SSE stream, or both). The set persists
// as JSONL through the same atomic write+rename discipline as the lead
// store, so subscriptions survive restarts via the checkpointer.
package alert

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"etap/internal/rank"
)

// Subscription is one standing alert interest. Zero-valued filter
// fields match everything, so an empty subscription is a firehose.
type Subscription struct {
	// ID is assigned by the set ("sub-1", "sub-2", ...) unless the
	// creator supplies one.
	ID string `json:"id"`
	// Company filters by subject company, matched through canonical
	// alias resolution (rank.SameCompany); empty matches any company,
	// including events with none attributed.
	Company string `json:"company,omitempty"`
	// Driver filters by sales-driver ID; empty matches all drivers.
	Driver string `json:"driver,omitempty"`
	// MinScore is the classifier-score floor; events below it are not
	// delivered.
	MinScore float64 `json:"minScore,omitempty"`
	// WebhookURL, when set, receives matching alerts as HTTP POSTs with
	// at-least-once delivery. Empty means SSE-only.
	WebhookURL string `json:"webhook,omitempty"`
	// Tenant, when set, scopes the subscription to a tenant: alerts are
	// additionally filtered through the tenant's ICP (looked up at
	// dispatch time, so a profile update applies to the very next
	// event). The manager needs a tenant registry attached; without one
	// a tenant-scoped subscription delivers nothing (fail closed).
	Tenant string `json:"tenant,omitempty"`
	// Created is when the subscription entered the set (Unix seconds).
	Created int64 `json:"created"`
}

// Matches reports whether an event satisfies the subscription's
// filters.
func (s Subscription) Matches(ev rank.Event) bool {
	if s.Driver != "" && s.Driver != ev.Driver {
		return false
	}
	if s.Company != "" && !rank.SameCompany(s.Company, ev.Company) {
		return false
	}
	return ev.Score >= s.MinScore
}

// Validate rejects subscriptions the dispatcher cannot act on.
func (s Subscription) Validate() error {
	if s.MinScore < 0 || s.MinScore > 1 {
		return errors.New("alert: minScore must be in [0, 1]")
	}
	if s.WebhookURL != "" && !strings.Contains(s.WebhookURL, "://") {
		return fmt.Errorf("alert: webhook %q is not an absolute URL", s.WebhookURL)
	}
	// A company filter that canonicalizes to nothing (punctuation or
	// whitespace only) would be indexed as a wildcard but matched as an
	// impossible filter — a subscription that silently never fires.
	if s.Company != "" && rank.Canonical(s.Company) == "" {
		return fmt.Errorf("alert: company %q canonicalizes to nothing and can never match", s.Company)
	}
	return nil
}

// canonicalized returns the subscription with its company filter in
// the canonical form the fingerprint dedup and the inverted index use
// (rank.Canonical), so what the API stores is exactly what matching
// compares.
func (s Subscription) canonicalized() Subscription {
	s.Company = rank.Canonical(s.Company)
	return s
}

// ErrUnknownSubscription reports an ID the set does not hold.
var ErrUnknownSubscription = errors.New("alert: unknown subscription")

// Subscriptions is a concurrency-safe subscription set with JSONL
// persistence and a revision counter for checkpoint gating.
type Subscriptions struct {
	mu    sync.RWMutex
	byID  map[string]Subscription
	order []string // insertion order, for deterministic iteration
	next  int      // next auto-assigned ID suffix
	rev   uint64   // mutation count, for revision-gated checkpoints
	// idx is the inverted subscription index (see subindex.go):
	// (canonical company, driver) → member IDs, maintained by every
	// mutation under mu so Candidates never sees a stale view.
	idx map[subKey]map[string]struct{}
	// seq records each subscription's insertion sequence so Candidates
	// can restore insertion order after probing unordered buckets.
	seq  map[string]uint64
	seqN uint64
}

// NewSubscriptions returns an empty set.
func NewSubscriptions() *Subscriptions {
	return &Subscriptions{byID: make(map[string]Subscription)}
}

// insertLocked stores a subscription and indexes it. Caller holds mu
// and has already resolved ID collisions.
func (ss *Subscriptions) insertLocked(s Subscription) {
	ss.byID[s.ID] = s
	ss.order = append(ss.order, s.ID)
	ss.indexInsertLocked(s)
}

// Add inserts a subscription, assigning an ID when none is supplied,
// and returns the stored value. A duplicate ID is an error.
func (ss *Subscriptions) Add(s Subscription) (Subscription, error) {
	if err := s.Validate(); err != nil {
		return Subscription{}, err
	}
	s = s.canonicalized()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s.ID == "" {
		for {
			ss.next++
			s.ID = fmt.Sprintf("sub-%d", ss.next)
			if _, taken := ss.byID[s.ID]; !taken {
				break
			}
		}
	} else if _, dup := ss.byID[s.ID]; dup {
		return Subscription{}, fmt.Errorf("alert: subscription %q already exists", s.ID)
	}
	ss.insertLocked(s)
	ss.rev++
	return s, nil
}

// Update replaces a subscription's filters in place, preserving its
// ID, Created stamp, and insertion sequence — an updated subscription
// keeps its position in the deterministic fan-out order — and
// re-buckets it in the inverted index under the new filters.
func (ss *Subscriptions) Update(id string, s Subscription) (Subscription, error) {
	if err := s.Validate(); err != nil {
		return Subscription{}, err
	}
	s = s.canonicalized()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	old, ok := ss.byID[id]
	if !ok {
		return Subscription{}, fmt.Errorf("%s: %w", id, ErrUnknownSubscription)
	}
	s.ID = old.ID
	s.Created = old.Created
	seq := ss.seq[id]
	ss.indexDeleteLocked(old)
	ss.indexInsertLocked(s)
	ss.seq[id] = seq
	ss.byID[id] = s
	ss.rev++
	return s, nil
}

// Get returns the subscription with the given ID.
func (ss *Subscriptions) Get(id string) (Subscription, error) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	s, ok := ss.byID[id]
	if !ok {
		return Subscription{}, fmt.Errorf("%s: %w", id, ErrUnknownSubscription)
	}
	return s, nil
}

// Delete removes a subscription.
func (ss *Subscriptions) Delete(id string) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s, ok := ss.byID[id]
	if !ok {
		return fmt.Errorf("%s: %w", id, ErrUnknownSubscription)
	}
	ss.indexDeleteLocked(s)
	delete(ss.byID, id)
	for i, oid := range ss.order {
		if oid == id {
			ss.order = append(ss.order[:i], ss.order[i+1:]...)
			break
		}
	}
	ss.rev++
	return nil
}

// List returns all subscriptions in insertion order.
func (ss *Subscriptions) List() []Subscription {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	out := make([]Subscription, 0, len(ss.order))
	for _, id := range ss.order {
		out = append(out, ss.byID[id])
	}
	return out
}

// Len returns the subscription count.
func (ss *Subscriptions) Len() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return len(ss.order)
}

// Revision returns the mutation count: a checkpointer can skip saves
// when it hasn't moved.
func (ss *Subscriptions) Revision() uint64 {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.rev
}

// WriteJSONL streams every subscription, in insertion order, one JSON
// object per line.
func (ss *Subscriptions) WriteJSONL(w io.Writer) error {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.writeJSONLLocked(w)
}

// writeJSONLLocked is WriteJSONL with the read lock already held —
// RLock does not nest safely (a queued writer between two RLocks
// deadlocks), so SaveFile reads the revision and writes the snapshot
// under one acquisition.
func (ss *Subscriptions) writeJSONLLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, id := range ss.order {
		if err := enc.Encode(ss.byID[id]); err != nil {
			return fmt.Errorf("alert: encoding subscription %s: %w", id, err)
		}
	}
	return bw.Flush()
}

// ReadSubscriptions loads a set from a JSONL stream. Duplicate IDs keep
// the first occurrence. Auto-assignment resumes past the highest
// "sub-N" ID seen, so reloaded sets never reissue a live ID.
func ReadSubscriptions(r io.Reader) (*Subscriptions, error) {
	ss := NewSubscriptions()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s Subscription
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("alert: line %d: %w", line, err)
		}
		if s.ID == "" {
			return nil, fmt.Errorf("alert: line %d: subscription without ID", line)
		}
		if _, dup := ss.byID[s.ID]; dup {
			continue
		}
		// Older checkpoints may hold non-canonical company filters; adopt
		// the canonical form unless it is empty while the raw is not — a
		// degenerate filter is kept verbatim rather than silently widened
		// to a firehose (it cannot match, but it also cannot over-match).
		if c := rank.Canonical(s.Company); c != "" {
			s.Company = c
		}
		// insertLocked also rebuilds the inverted index, so a reloaded
		// checkpoint matches exactly like a freshly-built set. No lock is
		// held: the set is not yet shared.
		ss.insertLocked(s)
		var n int
		if _, err := fmt.Sscanf(s.ID, "sub-%d", &n); err == nil && n > ss.next {
			ss.next = n
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("alert: reading subscriptions: %w", err)
	}
	return ss, nil
}

// SaveFile writes the set to path atomically (write + rename), the
// same discipline as the lead store, and returns the revision the
// snapshot captured.
func (ss *Subscriptions) SaveFile(path string) (uint64, error) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	rev := ss.rev
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	if err := ss.writeJSONLLocked(f); err != nil {
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the write error is what the caller needs
		f.Close()
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the write error is what the caller needs
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		//etaplint:ignore error-swallowing -- best-effort cleanup on an already-failing path; the close error is what the caller needs
		os.Remove(tmp)
		return 0, err
	}
	return rev, os.Rename(tmp, path)
}

// LoadSubscriptions reads a set previously written with SaveFile. A
// missing file yields an empty set (first run).
func LoadSubscriptions(path string) (*Subscriptions, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return NewSubscriptions(), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSubscriptions(f)
}
