// Delivery fan-out: one bounded queue and one worker per subscriber,
// so a slow or dead webhook endpoint delays only its own subscriber.
// Each worker owns a gather.RetryPolicy — the same retry/backoff/
// circuit-breaker engine the crawler uses — keyed by endpoint host,
// giving webhook delivery at-least-once semantics with exponential
// backoff and a breaker that stops hammering a dead endpoint. Alerts
// that exhaust their retry budget (or find their queue full) land in a
// bounded dead-letter buffer instead of vanishing.
package alert

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"etap/internal/gather"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/web"
)

// Alert is one delivered notification: the event, the subscription it
// matched, and when it fired (Unix seconds). TraceID carries the
// originating document's trace, when tracing is on — the same ID the
// 202 response returned and /debug/traces serves.
type Alert struct {
	Subscription string     `json:"subscription,omitempty"`
	Event        rank.Event `json:"event"`
	Time         int64      `json:"time"`
	TraceID      string     `json:"trace_id,omitempty"`
}

// Deliverer pushes one alert to a subscriber's endpoint. Failures are
// retried unless wrapped in PermanentError; implementations must
// honour ctx (each attempt runs under the retry policy's per-attempt
// deadline).
type Deliverer interface {
	Deliver(ctx context.Context, sub Subscription, a Alert) error
}

// PermanentError marks a delivery failure retrying cannot fix — a 4xx
// response, a malformed endpoint. The dispatcher abandons the alert
// without burning its retry budget or the endpoint's breaker.
type PermanentError struct{ Err error }

// Error implements error.
func (e *PermanentError) Error() string { return "permanent: " + e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *PermanentError) Unwrap() error { return e.Err }

// deliveryTransient classifies delivery errors for the retry policy:
// everything is retryable except an explicit PermanentError and
// parent-context cancellation (shutdown must not sit through backoff).
func deliveryTransient(err error) bool {
	var pe *PermanentError
	return !errors.As(err, &pe) && !errors.Is(err, context.Canceled)
}

// DeadLetter is one alert the dispatcher gave up on, and why.
type DeadLetter struct {
	Alert Alert `json:"alert"`
	// Reason classifies the failure: gather.FailExhausted,
	// gather.FailBreakerOpen, gather.FailNotFound, or "queue-full".
	Reason string `json:"reason"`
	// Err is the last underlying error's message, when any.
	Err string `json:"err,omitempty"`
	// Attempts is how many delivery attempts were made.
	Attempts int `json:"attempts"`
	// TraceID joins the entry to its document's trace (mirrors
	// Alert.TraceID, lifted out for grep-ability).
	TraceID string `json:"trace_id,omitempty"`
}

// ReasonQueueFull marks an alert dead-lettered because its
// subscriber's queue was full — backpressure, not endpoint failure.
const ReasonQueueFull = "queue-full"

// deadLetters is a bounded FIFO of abandoned alerts; when full, the
// oldest entry is dropped to admit the newest.
type deadLetters struct {
	mu      sync.Mutex
	buf     []DeadLetter
	cap     int
	dropped int
	met     *metrics
}

func newDeadLetters(cap int, met *metrics) *deadLetters {
	if cap <= 0 {
		cap = 128
	}
	return &deadLetters{cap: cap, met: met}
}

func (d *deadLetters) add(dl DeadLetter) {
	if dl.TraceID == "" {
		dl.TraceID = dl.Alert.TraceID
	}
	d.mu.Lock()
	d.buf = append(d.buf, dl)
	if len(d.buf) > d.cap {
		d.buf = d.buf[1:]
		d.dropped++
	}
	depth := len(d.buf)
	d.mu.Unlock()
	d.met.deadTotal.Inc()
	d.met.deadDepth.Set(int64(depth))
}

// list returns a copy of the buffer, oldest first.
func (d *deadLetters) list() []DeadLetter {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]DeadLetter(nil), d.buf...)
}

func (d *deadLetters) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf)
}

// dispatcher routes alerts to per-subscriber workers.
type dispatcher struct {
	cfg     Config
	met     *metrics
	deliver Deliverer
	dead    *deadLetters
	// live reports whether a subscription ID still exists. dispatch
	// consults it before spawning a worker, closing the race where a
	// concurrent Unsubscribe (subs.Delete then stop) lands between
	// fanOut's subscription snapshot and the dispatch — without the
	// check, dispatch would resurrect the retired worker and deliver to
	// an endpoint the user just cancelled. nil means always live.
	live func(id string) bool

	mu      sync.Mutex
	workers map[string]*subWorker
	closed  bool

	pending atomic.Int64 // alerts enqueued but not yet terminal
	wg      sync.WaitGroup
}

// subWorker is one subscriber's delivery lane: a bounded queue drained
// by a single goroutine owning the subscriber's retry policy. The lane
// carries only the subscription's identity — each queued alert brings
// its own dispatch-time Subscription snapshot, so an updated webhook
// URL or threshold takes effect on the next matched alert, not on
// worker restart.
type subWorker struct {
	id string
	ch chan queuedAlert
}

// queuedAlert is one alert in flight through a subscriber lane, with
// its open dispatch span and timing anchors. The span rides the queue,
// not a context: the worker goroutine runs under the FIRST dispatch
// call's context, which must not leak span identity onto later alerts.
// sub is the subscription as it was when the alert matched — delivery
// must honour that snapshot, not whatever the worker saw at spawn.
type queuedAlert struct {
	a          Alert
	sub        Subscription
	sp         *obs.DSpan // "dispatch" span; open until delivery is terminal
	acceptedAt time.Time  // Clock at ingest accept (delivery-lag zero point)
	enqueuedAt time.Time  // Clock at lane enqueue (queue-wait zero point)
}

func newDispatcher(cfg Config, met *metrics, deliver Deliverer, live func(id string) bool) *dispatcher {
	return &dispatcher{
		cfg:     cfg,
		met:     met,
		deliver: deliver,
		dead:    newDeadLetters(cfg.DeadLetterCap, met),
		workers: make(map[string]*subWorker),
		live:    live,
	}
}

// dispatch offers the alert to its subscriber's queue, spawning the
// worker on first use. A full queue dead-letters the alert instead of
// blocking the ingest pipeline. acceptedAt anchors the delivery-lag
// SLO (the ingest-accept instant, not the dispatch instant).
func (d *dispatcher) dispatch(ctx context.Context, sub Subscription, a Alert, acceptedAt time.Time) {
	_, sp := obs.StartDSpan(ctx, "dispatch")
	sp.SetAttr("subscription", sub.ID)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		sp.Fail("dispatcher closed")
		sp.End()
		d.dead.add(DeadLetter{Alert: a, Reason: ReasonQueueFull, Err: "dispatcher closed"})
		return
	}
	w := d.workers[sub.ID]
	if w == nil {
		// Re-check liveness under d.mu before spawning: the snapshot the
		// alert matched against may predate an Unsubscribe, and a worker
		// created here would outlive the deletion.
		if d.live != nil && !d.live(sub.ID) {
			d.mu.Unlock()
			d.met.delSubDrops.Inc()
			sp.Fail("subscription deleted")
			sp.End()
			return
		}
		size := d.cfg.SubscriberQueue
		if size <= 0 {
			size = 16
		}
		w = &subWorker{id: sub.ID, ch: make(chan queuedAlert, size)}
		d.workers[sub.ID] = w
		d.wg.Add(1)
		go d.run(ctx, w)
	}
	qa := queuedAlert{a: a, sub: sub, sp: sp, acceptedAt: acceptedAt, enqueuedAt: d.cfg.Clock()}
	select {
	case w.ch <- qa:
		d.pending.Add(1)
		d.met.fanout.Inc()
		d.met.subQueue.Add(1)
		d.mu.Unlock()
	default:
		d.mu.Unlock()
		d.met.subDropped.Inc()
		sp.Fail(ReasonQueueFull)
		sp.End()
		d.dead.add(DeadLetter{Alert: a, Reason: ReasonQueueFull})
	}
}

// run drains one subscriber's queue. Each worker owns its policy:
// breaker state and the jitter stream are per-subscriber, and
// RetryPolicy is not safe for concurrent use.
func (d *dispatcher) run(ctx context.Context, w *subWorker) {
	defer d.wg.Done()
	policy := gather.NewRetryPolicy(d.cfg.Retry, d.met.policy, deliveryTransient)
	defer policy.Close()
	qw := d.met.queueWait(w.id)
	for qa := range w.ch {
		d.met.subQueue.Add(-1)
		wait := d.cfg.Clock().Sub(qa.enqueuedAt)
		qw.Observe(wait.Seconds())
		qa.sp.SetAttr("queue_wait", wait.String())
		d.attempt(ctx, policy, qa)
		d.pending.Add(-1)
	}
}

// failureReason classifies a failed delivery outcome for the span, the
// log line, and the dead-letter entry alike: the policy's reason when
// it set one (exhausted, breaker-open, not-found), else the last
// error's message — never empty for a failure, so /alerts/deadletters
// entries always carry a usable classification.
func failureReason(out gather.Outcome) string {
	if out.Reason != "" {
		return out.Reason
	}
	if out.Err != nil {
		return out.Err.Error()
	}
	return ""
}

// attempt runs one delivery under the subscriber's retry policy, keyed
// by the webhook endpoint's host so one dead endpoint trips one
// breaker. Each try gets its own "webhook" span, put on the attempt's
// context so the deliverer can stamp the outgoing traceparent. The
// subscription used is qa.sub — the dispatch-time snapshot.
func (d *dispatcher) attempt(ctx context.Context, policy *gather.RetryPolicy, qa queuedAlert) {
	sub := qa.sub
	start := d.cfg.Clock()
	out := policy.Execute(ctx, web.HostOf(sub.WebhookURL), func(ctx context.Context) error {
		d.met.attempts.Inc()
		asp := qa.sp.Child("webhook")
		err := d.deliver.Deliver(obs.ContextWithDSpan(ctx, asp), sub, qa.a)
		if err != nil {
			asp.Fail(err.Error())
		}
		asp.End()
		return err
	})
	d.met.deliveryDur.Observe(d.cfg.Clock().Sub(start).Seconds())
	qa.sp.SetAttr("attempts", strconv.Itoa(out.Attempts))
	if out.Err == nil && out.Reason == "" {
		d.met.deliveries.Inc()
		d.met.deliveryLag.Observe(d.cfg.Clock().Sub(qa.acceptedAt).Seconds())
		qa.sp.End()
		return
	}
	d.met.failures.Inc()
	reason := failureReason(out)
	qa.sp.Fail(reason)
	qa.sp.End()
	d.cfg.Log.WarnContext(obs.ContextWithDSpan(ctx, qa.sp), "alert: delivery abandoned",
		"subscription", sub.ID, "reason", reason, "attempts", out.Attempts)
	dl := DeadLetter{Alert: qa.a, Reason: reason, Attempts: out.Attempts}
	if out.Err != nil {
		dl.Err = out.Err.Error()
	}
	d.dead.add(dl)
}

// stop removes one subscriber's worker, letting it drain in the
// background; used when a subscription is deleted.
func (d *dispatcher) stop(id string) {
	d.mu.Lock()
	w := d.workers[id]
	delete(d.workers, id)
	d.mu.Unlock()
	if w != nil {
		close(w.ch)
	}
}

// close stops accepting alerts, drains every queue, and waits for the
// workers (and their breaker state) to wind down.
func (d *dispatcher) close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	workers := d.workers
	d.workers = make(map[string]*subWorker)
	d.mu.Unlock()
	for _, w := range workers {
		close(w.ch)
	}
	d.wg.Wait()
}
