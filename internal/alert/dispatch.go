// Delivery fan-out: one bounded queue and one worker per subscriber,
// so a slow or dead webhook endpoint delays only its own subscriber.
// Each worker owns a gather.RetryPolicy — the same retry/backoff/
// circuit-breaker engine the crawler uses — keyed by endpoint host,
// giving webhook delivery at-least-once semantics with exponential
// backoff and a breaker that stops hammering a dead endpoint. Alerts
// that exhaust their retry budget (or find their queue full) land in a
// bounded dead-letter buffer instead of vanishing.
package alert

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"etap/internal/gather"
	"etap/internal/rank"
	"etap/internal/web"
)

// Alert is one delivered notification: the event, the subscription it
// matched, and when it fired (Unix seconds).
type Alert struct {
	Subscription string     `json:"subscription,omitempty"`
	Event        rank.Event `json:"event"`
	Time         int64      `json:"time"`
}

// Deliverer pushes one alert to a subscriber's endpoint. Failures are
// retried unless wrapped in PermanentError; implementations must
// honour ctx (each attempt runs under the retry policy's per-attempt
// deadline).
type Deliverer interface {
	Deliver(ctx context.Context, sub Subscription, a Alert) error
}

// PermanentError marks a delivery failure retrying cannot fix — a 4xx
// response, a malformed endpoint. The dispatcher abandons the alert
// without burning its retry budget or the endpoint's breaker.
type PermanentError struct{ Err error }

// Error implements error.
func (e *PermanentError) Error() string { return "permanent: " + e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *PermanentError) Unwrap() error { return e.Err }

// deliveryTransient classifies delivery errors for the retry policy:
// everything is retryable except an explicit PermanentError and
// parent-context cancellation (shutdown must not sit through backoff).
func deliveryTransient(err error) bool {
	var pe *PermanentError
	return !errors.As(err, &pe) && !errors.Is(err, context.Canceled)
}

// DeadLetter is one alert the dispatcher gave up on, and why.
type DeadLetter struct {
	Alert Alert `json:"alert"`
	// Reason classifies the failure: gather.FailExhausted,
	// gather.FailBreakerOpen, gather.FailNotFound, or "queue-full".
	Reason string `json:"reason"`
	// Err is the last underlying error's message, when any.
	Err string `json:"err,omitempty"`
	// Attempts is how many delivery attempts were made.
	Attempts int `json:"attempts"`
}

// ReasonQueueFull marks an alert dead-lettered because its
// subscriber's queue was full — backpressure, not endpoint failure.
const ReasonQueueFull = "queue-full"

// deadLetters is a bounded FIFO of abandoned alerts; when full, the
// oldest entry is dropped to admit the newest.
type deadLetters struct {
	mu      sync.Mutex
	buf     []DeadLetter
	cap     int
	dropped int
	met     *metrics
}

func newDeadLetters(cap int, met *metrics) *deadLetters {
	if cap <= 0 {
		cap = 128
	}
	return &deadLetters{cap: cap, met: met}
}

func (d *deadLetters) add(dl DeadLetter) {
	d.mu.Lock()
	d.buf = append(d.buf, dl)
	if len(d.buf) > d.cap {
		d.buf = d.buf[1:]
		d.dropped++
	}
	depth := len(d.buf)
	d.mu.Unlock()
	d.met.deadTotal.Inc()
	d.met.deadDepth.Set(int64(depth))
}

// list returns a copy of the buffer, oldest first.
func (d *deadLetters) list() []DeadLetter {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]DeadLetter(nil), d.buf...)
}

func (d *deadLetters) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf)
}

// dispatcher routes alerts to per-subscriber workers.
type dispatcher struct {
	cfg     Config
	met     *metrics
	deliver Deliverer
	dead    *deadLetters

	mu      sync.Mutex
	workers map[string]*subWorker
	closed  bool

	pending atomic.Int64 // alerts enqueued but not yet terminal
	wg      sync.WaitGroup
}

// subWorker is one subscriber's delivery lane: a bounded queue drained
// by a single goroutine owning the subscriber's retry policy.
type subWorker struct {
	sub Subscription
	ch  chan Alert
}

func newDispatcher(cfg Config, met *metrics, deliver Deliverer) *dispatcher {
	return &dispatcher{
		cfg:     cfg,
		met:     met,
		deliver: deliver,
		dead:    newDeadLetters(cfg.DeadLetterCap, met),
		workers: make(map[string]*subWorker),
	}
}

// dispatch offers the alert to its subscriber's queue, spawning the
// worker on first use. A full queue dead-letters the alert instead of
// blocking the ingest pipeline.
func (d *dispatcher) dispatch(ctx context.Context, sub Subscription, a Alert) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.dead.add(DeadLetter{Alert: a, Reason: ReasonQueueFull, Err: "dispatcher closed"})
		return
	}
	w := d.workers[sub.ID]
	if w == nil {
		size := d.cfg.SubscriberQueue
		if size <= 0 {
			size = 16
		}
		w = &subWorker{sub: sub, ch: make(chan Alert, size)}
		d.workers[sub.ID] = w
		d.wg.Add(1)
		go d.run(ctx, w)
	}
	select {
	case w.ch <- a:
		d.pending.Add(1)
		d.met.fanout.Inc()
		d.met.subQueue.Add(1)
		d.mu.Unlock()
	default:
		d.mu.Unlock()
		d.met.subDropped.Inc()
		d.dead.add(DeadLetter{Alert: a, Reason: ReasonQueueFull})
	}
}

// run drains one subscriber's queue. Each worker owns its policy:
// breaker state and the jitter stream are per-subscriber, and
// RetryPolicy is not safe for concurrent use.
func (d *dispatcher) run(ctx context.Context, w *subWorker) {
	defer d.wg.Done()
	policy := gather.NewRetryPolicy(d.cfg.Retry, d.met.policy, deliveryTransient)
	defer policy.Close()
	for a := range w.ch {
		d.met.subQueue.Add(-1)
		d.attempt(ctx, policy, w.sub, a)
		d.pending.Add(-1)
	}
}

// attempt runs one delivery under the subscriber's retry policy, keyed
// by the webhook endpoint's host so one dead endpoint trips one
// breaker.
func (d *dispatcher) attempt(ctx context.Context, policy *gather.RetryPolicy, sub Subscription, a Alert) {
	start := d.cfg.Clock()
	out := policy.Execute(ctx, web.HostOf(sub.WebhookURL), func(ctx context.Context) error {
		d.met.attempts.Inc()
		return d.deliver.Deliver(ctx, sub, a)
	})
	d.met.deliveryDur.Observe(d.cfg.Clock().Sub(start).Seconds())
	if out.Err == nil && out.Reason == "" {
		d.met.deliveries.Inc()
		return
	}
	d.met.failures.Inc()
	dl := DeadLetter{Alert: a, Reason: out.Reason, Attempts: out.Attempts}
	if out.Err != nil {
		dl.Err = out.Err.Error()
	}
	d.dead.add(dl)
}

// stop removes one subscriber's worker, letting it drain in the
// background; used when a subscription is deleted.
func (d *dispatcher) stop(id string) {
	d.mu.Lock()
	w := d.workers[id]
	delete(d.workers, id)
	d.mu.Unlock()
	if w != nil {
		close(w.ch)
	}
}

// close stops accepting alerts, drains every queue, and waits for the
// workers (and their breaker state) to wind down.
func (d *dispatcher) close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	workers := d.workers
	d.workers = make(map[string]*subWorker)
	d.mu.Unlock()
	for _, w := range workers {
		close(w.ch)
	}
	d.wg.Wait()
}
