package alert

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"etap/internal/gather"
	"etap/internal/index"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/web"
)

// fixedClock is a deterministic Clock for tests.
func fixedClock() time.Time { return time.Unix(1_700_000_000, 0) }

// stubPipeline emits one event per page whose text contains "merger",
// attributed to Acme with the page text as snippet.
type stubPipeline struct{ score float64 }

func (p *stubPipeline) ExtractAllEvents(pages []*web.Page, threshold float64) []rank.Event {
	score := p.score
	if score == 0 {
		score = 0.9
	}
	var out []rank.Event
	for _, pg := range pages {
		if !strings.Contains(pg.Text, "merger") {
			continue
		}
		if score < threshold {
			continue
		}
		out = append(out, rank.Event{
			SnippetID: pg.URL + "#0",
			Text:      pg.Text,
			Driver:    "mergers-acquisitions",
			Company:   "Acme",
			Score:     score,
		})
	}
	return out
}

// recordSink records every AddLeads call.
type recordSink struct {
	mu     sync.Mutex
	events []rank.Event
}

func (s *recordSink) AddLeads(events []rank.Event, _ time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, events...)
	return len(events)
}

func (s *recordSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// scriptDeliverer is a hand-scripted Deliverer: per-subscription
// remaining transient failures (-1 = forever), optional permanent
// failures, and a delivery log.
type scriptDeliverer struct {
	mu        sync.Mutex
	fails     map[string]int // remaining transient failures by sub ID
	permanent map[string]bool
	delivered []Alert
	attempts  int
}

func newScriptDeliverer() *scriptDeliverer {
	return &scriptDeliverer{fails: map[string]int{}, permanent: map[string]bool{}}
}

func (d *scriptDeliverer) Deliver(_ context.Context, sub Subscription, a Alert) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.attempts++
	if d.permanent[sub.ID] {
		return &PermanentError{Err: errors.New("endpoint rejected the alert")}
	}
	if n := d.fails[sub.ID]; n != 0 {
		if n > 0 {
			d.fails[sub.ID] = n - 1
		}
		return errors.New("endpoint unreachable")
	}
	d.delivered = append(d.delivered, a)
	return nil
}

func (d *scriptDeliverer) deliveredAlerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.delivered...)
}

func noSleep(time.Duration) {}

// newTestManager wires a manager over stubs with a private registry
// and deterministic clock; the caller owns Close.
func newTestManager(t *testing.T, cfg Config, deliver Deliverer) (*Manager, *recordSink) {
	t.Helper()
	sink := &recordSink{}
	w := web.New()
	w.Freeze()
	cfg.Clock = fixedClock
	cfg.Registry = obs.NewRegistry()
	cfg.Deliverer = deliver
	if cfg.Retry.IsZero() {
		cfg.Retry = gather.RetryConfig{MaxAttempts: 3, Sleep: noSleep, AttemptTimeout: -1}
	}
	m := NewManager(&stubPipeline{}, sink, w, cfg)
	m.Start(context.Background())
	t.Cleanup(m.Close)
	return m, sink
}

func flush(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestIngestExtractsStoresAndDelivers(t *testing.T) {
	deliver := newScriptDeliverer()
	m, sink := newTestManager(t, Config{}, deliver)
	sub, err := m.Subscriptions().Add(Subscription{
		Company: "Acme", MinScore: 0.5, WebhookURL: "http://crm.example.com/hook",
	})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if err := m.Enqueue(Document{URL: "http://news.example.com/1", Text: "Acme announced a merger today."}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	if sink.len() != 1 {
		t.Fatalf("sink got %d events, want 1", sink.len())
	}
	got := deliver.deliveredAlerts()
	if len(got) != 1 {
		t.Fatalf("delivered %d alerts, want 1: %+v", len(got), got)
	}
	if got[0].Subscription != sub.ID || got[0].Event.Company != "Acme" {
		t.Fatalf("alert = %+v", got[0])
	}
	if got[0].Time != fixedClock().Unix() {
		t.Fatalf("alert time = %d", got[0].Time)
	}
}

func TestReingestionIsIdempotent(t *testing.T) {
	deliver := newScriptDeliverer()
	m, sink := newTestManager(t, Config{}, deliver)
	if _, err := m.Subscriptions().Add(Subscription{WebhookURL: "http://crm.example.com/hook"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	doc := Document{URL: "http://news.example.com/1", Text: "Acme announced a merger today."}
	for i := 0; i < 3; i++ {
		if err := m.Enqueue(doc); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		flush(t, m)
	}
	// Same story syndicated under a fresh URL: still one alert.
	if err := m.Enqueue(Document{URL: "http://mirror.example.com/1", Text: doc.Text}); err != nil {
		t.Fatalf("enqueue mirror: %v", err)
	}
	flush(t, m)
	if sink.len() != 1 {
		t.Fatalf("sink got %d events, want 1", sink.len())
	}
	if n := len(deliver.deliveredAlerts()); n != 1 {
		t.Fatalf("delivered %d alerts, want 1", n)
	}
}

// TestIngestOverSegmentEngine runs the streaming ingest path over a
// web backed by the persistent segment index: documents become
// searchable through the on-disk engine, and after a restart (engine
// reopened from its manifest, fresh web and manager) re-enqueueing an
// already-committed document repairs the page table without
// re-indexing — the recovered index reports the duplicate, extraction
// still runs (fingerprint dedup owns alert idempotency), and the
// document count never moves.
func TestIngestOverSegmentEngine(t *testing.T) {
	dir := t.TempDir()
	openWeb := func() *web.Web {
		eng, err := index.OpenSegmentIndex(index.SegmentOptions{Dir: dir, FlushDocs: 2})
		if err != nil {
			t.Fatalf("open segment index: %v", err)
		}
		w := web.New(web.WithEngine(eng))
		w.Freeze()
		return w
	}
	newManager := func(w *web.Web) (*Manager, *recordSink, *scriptDeliverer) {
		deliver := newScriptDeliverer()
		sink := &recordSink{}
		cfg := Config{
			Clock:     fixedClock,
			Registry:  obs.NewRegistry(),
			Deliverer: deliver,
			Retry:     gather.RetryConfig{MaxAttempts: 3, Sleep: noSleep, AttemptTimeout: -1},
		}
		m := NewManager(&stubPipeline{}, sink, w, cfg)
		m.Start(context.Background())
		return m, sink, deliver
	}

	w := openWeb()
	m, sink, _ := newManager(w)
	if _, err := m.Subscriptions().Add(Subscription{WebhookURL: "http://crm.example.com/hook"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	doc := Document{URL: "http://news.example.com/1", Text: "Acme announced a merger today."}
	if err := m.Enqueue(doc); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if err := m.Enqueue(Document{URL: "http://news.example.com/2", Text: "Quiet day on the markets."}); err != nil {
		t.Fatalf("enqueue filler: %v", err)
	}
	flush(t, m)
	if sink.len() != 1 {
		t.Fatalf("sink got %d events, want 1", sink.len())
	}
	if hits := w.Search("merger", 0); len(hits) != 1 || hits[0].URL != doc.URL {
		t.Fatalf("segment-backed search: %v", hits)
	}
	m.Close()
	if err := w.Close(); err != nil {
		t.Fatalf("close web: %v", err)
	}

	// Restart: the recovered index remembers both documents, so the
	// re-enqueued story must not be indexed again.
	w2 := openWeb()
	if got := w2.Index().Len(); got != 2 {
		t.Fatalf("recovered engine holds %d docs, want 2", got)
	}
	m2, sink2, _ := newManager(w2)
	defer func() {
		m2.Close()
		if err := w2.Close(); err != nil {
			t.Errorf("close reopened web: %v", err)
		}
	}()
	if _, err := m2.Subscriptions().Add(Subscription{WebhookURL: "http://crm.example.com/hook"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if err := m2.Enqueue(doc); err != nil {
		t.Fatalf("re-enqueue: %v", err)
	}
	flush(t, m2)
	if got := w2.Index().Len(); got != 2 {
		t.Fatalf("recovered duplicate was re-indexed: engine holds %d docs", got)
	}
	if p, ok := w2.Page(doc.URL); !ok || p.Text != doc.Text {
		t.Fatalf("page table not repaired after restart: %+v %v", p, ok)
	}
	if hits := w2.Search("merger", 0); len(hits) != 1 || hits[0].URL != doc.URL {
		t.Fatalf("post-restart search: %v", hits)
	}
	// Extraction re-runs on a replayed URL by design — the fresh
	// manager's fingerprint store owns alert idempotency from here
	// (SeedEvents is the restart handoff for that, covered elsewhere).
	if sink2.len() != 1 {
		t.Fatalf("sink got %d events after restart replay, want 1", sink2.len())
	}
}

func TestSeedEventsSuppressesRedelivery(t *testing.T) {
	deliver := newScriptDeliverer()
	m, sink := newTestManager(t, Config{}, deliver)
	m.SeedEvents([]rank.Event{{
		Text: "Acme announced a merger today.", Driver: "mergers-acquisitions", Company: "Acme",
	}})
	if err := m.Enqueue(Document{URL: "http://news.example.com/1", Text: "Acme announced a merger today."}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	if sink.len() != 0 || len(deliver.deliveredAlerts()) != 0 {
		t.Fatalf("seeded event re-alerted: sink=%d delivered=%d", sink.len(), len(deliver.deliveredAlerts()))
	}
}

func TestEnqueueBackpressure(t *testing.T) {
	deliver := newScriptDeliverer()
	sink := &recordSink{}
	cfg := Config{QueueSize: 1, Workers: 1, Clock: fixedClock,
		Registry: obs.NewRegistry(), Deliverer: deliver,
		Retry: gather.RetryConfig{MaxAttempts: 1, Sleep: noSleep, AttemptTimeout: -1}}
	m := NewManager(&stubPipeline{}, sink, nil, cfg)
	// Not started: the queue fills and then rejects.
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "a merger"}); err != ErrNotStarted {
		t.Fatalf("enqueue before start: %v", err)
	}
	m.Start(context.Background())
	defer m.Close()
	// Stall the single worker with a slow pipeline? Simpler: enqueue
	// faster than one bounded slot drains is racy, so drive the queue
	// state directly: fill the channel while workers are busy cannot be
	// forced deterministically here — instead verify the closed path
	// and the validation errors, and leave saturation to the health
	// test, which controls the queue without workers.
	if err := m.Enqueue(Document{Text: "no url"}); err == nil {
		t.Fatal("document without URL accepted")
	}
	if err := m.Enqueue(Document{URL: "http://n/2"}); err == nil {
		t.Fatal("document without text accepted")
	}
	m.Close()
	if err := m.Enqueue(Document{URL: "http://n/3", Text: "x"}); err != ErrClosed {
		t.Fatalf("enqueue after close: %v", err)
	}
}

func TestQueueFullRejects(t *testing.T) {
	deliver := newScriptDeliverer()
	cfg := Config{QueueSize: 2, Workers: 1, Clock: fixedClock,
		Registry: obs.NewRegistry(), Deliverer: deliver,
		Retry: gather.RetryConfig{MaxAttempts: 1, Sleep: noSleep, AttemptTimeout: -1}}
	m := NewManager(&stubPipeline{}, &recordSink{}, nil, cfg)
	// Never started: no worker drains, so the third enqueue must see a
	// full queue and bounce — after Start below, the queued documents
	// process normally.
	m.started.Store(true)
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "a"}); err != nil {
		t.Fatalf("enqueue 1: %v", err)
	}
	if err := m.Enqueue(Document{URL: "http://n/2", Text: "b"}); err != nil {
		t.Fatalf("enqueue 2: %v", err)
	}
	if err := m.Enqueue(Document{URL: "http://n/3", Text: "c"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue 3: %v, want ErrQueueFull", err)
	}
	if h := m.Health(); h.QueueDepth != 2 || h.QueueCap != 2 {
		t.Fatalf("health = %+v", h)
	}
	if d := m.Health().Degraded(); len(d) != 1 || d[0] != DegradedQueueSaturated {
		t.Fatalf("degraded = %v", d)
	}
	m.started.Store(false)
	m.Start(context.Background())
	defer m.Close()
	flush(t, m)
}

func TestDeliveryRetriesThenSucceeds(t *testing.T) {
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	sub, _ := m.Subscriptions().Add(Subscription{WebhookURL: "http://crm.example.com/hook"})
	deliver.fails[sub.ID] = 2
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "a merger closed"}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	if n := len(deliver.deliveredAlerts()); n != 1 {
		t.Fatalf("delivered %d alerts, want 1", n)
	}
	if deliver.attempts != 3 {
		t.Fatalf("attempts = %d, want 3", deliver.attempts)
	}
	if len(m.DeadLetters()) != 0 {
		t.Fatalf("dead letters: %+v", m.DeadLetters())
	}
}

func TestDeliveryExhaustionDeadLetters(t *testing.T) {
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	sub, _ := m.Subscriptions().Add(Subscription{WebhookURL: "http://dead.example.com/hook"})
	deliver.fails[sub.ID] = -1
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "a merger collapsed"}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	dead := m.DeadLetters()
	if len(dead) != 1 {
		t.Fatalf("dead letters = %+v, want 1", dead)
	}
	if dead[0].Reason != gather.FailExhausted || dead[0].Attempts != 3 {
		t.Fatalf("dead letter = %+v", dead[0])
	}
	if dead[0].Alert.Subscription != sub.ID {
		t.Fatalf("dead letter = %+v", dead[0])
	}
	if d := m.Health().Degraded(); len(d) != 1 || d[0] != DegradedDeadLetters {
		t.Fatalf("degraded = %v", d)
	}
}

func TestPermanentDeliveryFailureSkipsRetries(t *testing.T) {
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	sub, _ := m.Subscriptions().Add(Subscription{WebhookURL: "http://bad.example.com/hook"})
	deliver.permanent[sub.ID] = true
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "a merger approved"}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	dead := m.DeadLetters()
	if len(dead) != 1 || dead[0].Reason != gather.FailNotFound {
		t.Fatalf("dead letters = %+v", dead)
	}
	if deliver.attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries on permanent)", deliver.attempts)
	}
}

func TestSubscriptionFiltersAndFanOut(t *testing.T) {
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	matching, _ := m.Subscriptions().Add(Subscription{
		Company: "Acme", Driver: "mergers-acquisitions", WebhookURL: "http://a.example.com/h"})
	if _, err := m.Subscriptions().Add(Subscription{
		Company: "Globex", WebhookURL: "http://b.example.com/h"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := m.Subscriptions().Add(Subscription{
		MinScore: 0.95, WebhookURL: "http://c.example.com/h"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "Acme finalized the merger."}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	got := deliver.deliveredAlerts()
	if len(got) != 1 || got[0].Subscription != matching.ID {
		t.Fatalf("delivered = %+v, want only %s", got, matching.ID)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	sub, _ := m.Subscriptions().Add(Subscription{WebhookURL: "http://a.example.com/h"})
	if err := m.Unsubscribe(sub.ID); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	if err := m.Unsubscribe(sub.ID); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("double unsubscribe: %v", err)
	}
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "another merger"}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	if n := len(deliver.deliveredAlerts()); n != 0 {
		t.Fatalf("delivered %d alerts after unsubscribe", n)
	}
}

func TestSSEBroadcast(t *testing.T) {
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	ch, cancel := m.Broadcaster().Subscribe()
	defer cancel()
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "a merger signed"}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	select {
	case frame := <-ch:
		if !strings.Contains(string(frame), "merger signed") {
			t.Fatalf("frame = %s", frame)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no SSE frame within 2s")
	}
	if m.Health().SSEClients != 1 {
		t.Fatalf("sse clients = %d", m.Health().SSEClients)
	}
	cancel()
	cancel() // idempotent
	if m.Health().SSEClients != 0 {
		t.Fatalf("sse clients after cancel = %d", m.Health().SSEClients)
	}
}

func TestSubscriptionPersistenceRoundTrip(t *testing.T) {
	ss := NewSubscriptions()
	a, _ := ss.Add(Subscription{Company: "Acme", MinScore: 0.7, WebhookURL: "http://a/h", Created: 100})
	b, _ := ss.Add(Subscription{Driver: "new-offices"})
	if a.ID != "sub-1" || b.ID != "sub-2" {
		t.Fatalf("assigned IDs %q, %q", a.ID, b.ID)
	}
	path := filepath.Join(t.TempDir(), "subs.jsonl")
	rev, err := ss.SaveFile(path)
	if err != nil || rev != ss.Revision() {
		t.Fatalf("save: rev=%d err=%v", rev, err)
	}
	loaded, err := LoadSubscriptions(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got := loaded.List(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("round trip = %+v", got)
	}
	// Auto-assignment resumes past the loaded IDs.
	c, _ := loaded.Add(Subscription{})
	if c.ID != "sub-3" {
		t.Fatalf("resumed ID = %q", c.ID)
	}
	// Missing file: empty set.
	empty, err := LoadSubscriptions(filepath.Join(t.TempDir(), "missing.jsonl"))
	if err != nil || empty.Len() != 0 {
		t.Fatalf("missing file: %d, %v", empty.Len(), err)
	}
}

func TestSubscriptionValidation(t *testing.T) {
	ss := NewSubscriptions()
	if _, err := ss.Add(Subscription{MinScore: 1.5}); err == nil {
		t.Fatal("out-of-range minScore accepted")
	}
	if _, err := ss.Add(Subscription{WebhookURL: "not a url"}); err == nil {
		t.Fatal("relative webhook accepted")
	}
	if _, err := ss.Add(Subscription{ID: "x"}); err != nil {
		t.Fatalf("explicit ID rejected: %v", err)
	}
	if _, err := ss.Add(Subscription{ID: "x"}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if _, err := ss.Get("nope"); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatal("unknown get")
	}
}

func TestFingerprintIgnoresURLAndAliases(t *testing.T) {
	base := rank.Event{SnippetID: "http://a/1#0", Text: "Acme bought Globex.",
		Driver: "mergers-acquisitions", Company: "Acme Inc."}
	mirrored := base
	mirrored.SnippetID = "http://b/9#3"
	if Fingerprint(base) != Fingerprint(mirrored) {
		t.Fatal("fingerprint depends on snippet ID")
	}
	aliased := base
	aliased.Company = "Acme Incorporated"
	if Fingerprint(base) != Fingerprint(aliased) {
		t.Fatal("fingerprint not canonical over company aliases")
	}
	other := base
	other.Driver = "new-offices"
	if Fingerprint(base) == Fingerprint(other) {
		t.Fatal("fingerprint collides across drivers")
	}
}

func TestHealthDegradedTable(t *testing.T) {
	cases := []struct {
		name string
		h    Health
		want []string
	}{
		{"healthy", Health{QueueDepth: 3, QueueCap: 64}, nil},
		{"saturated", Health{QueueDepth: 64, QueueCap: 64}, []string{DegradedQueueSaturated}},
		{"dead letters", Health{QueueCap: 64, DeadLetters: 2}, []string{DegradedDeadLetters}},
		{"both", Health{QueueDepth: 64, QueueCap: 64, DeadLetters: 1},
			[]string{DegradedQueueSaturated, DegradedDeadLetters}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.h.Degraded()
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("Degraded() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestConcurrentIngestIsRaceClean(t *testing.T) {
	deliver := newScriptDeliverer()
	m, sink := newTestManager(t, Config{Workers: 4, QueueSize: 256, SubscriberQueue: 256}, deliver)
	if _, err := m.Subscriptions().Add(Subscription{WebhookURL: "http://crm.example.com/h"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				doc := Document{
					URL:  fmt.Sprintf("http://stream.example.com/%d-%d", g, i),
					Text: fmt.Sprintf("Story %d-%d: a merger was announced.", g, i),
				}
				for m.Enqueue(doc) == ErrQueueFull {
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	flush(t, m)
	if sink.len() != 80 {
		t.Fatalf("sink got %d events, want 80", sink.len())
	}
	if n := len(deliver.deliveredAlerts()); n != 80 {
		t.Fatalf("delivered %d alerts, want 80", n)
	}
}
