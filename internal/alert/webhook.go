// Webhook delivery: alerts leave the process as JSON POSTs — the CRM
// integration surface the paper's "automatically generated sales
// leads" imply. Transport failures and 5xx responses are transient
// (the retry policy's problem); 4xx responses are the subscriber's
// configuration being wrong, which no retry fixes.
package alert

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"etap/internal/obs"
)

// WebhookDeliverer POSTs alerts to each subscription's WebhookURL.
type WebhookDeliverer struct {
	// Client is the HTTP client; nil means http.DefaultClient. Attempt
	// deadlines come from the retry policy's context, so the client
	// needs no timeout of its own.
	Client *http.Client
}

// Deliver implements Deliverer.
func (wd *WebhookDeliverer) Deliver(ctx context.Context, sub Subscription, a Alert) error {
	body, err := json.Marshal(a)
	if err != nil {
		return &PermanentError{Err: fmt.Errorf("alert: encoding alert: %w", err)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sub.WebhookURL, bytes.NewReader(body))
	if err != nil {
		return &PermanentError{Err: fmt.Errorf("alert: webhook %s: %w", sub.WebhookURL, err)}
	}
	req.Header.Set("Content-Type", "application/json")
	// W3C trace context: the receiver can join its logs to the trace the
	// 202 response named. Each retry carries a fresh span ID.
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		req.Header.Set("traceparent", sc.TraceParent())
	}
	client := wd.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("alert: posting to %s: %w", sub.WebhookURL, err)
	}
	// Drain so the connection is reusable; the body content is the
	// subscriber's business.
	//etaplint:ignore error-swallowing -- response body content is irrelevant; only the status code matters
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	//etaplint:ignore error-swallowing -- nothing to do about a close error on a drained response
	resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return &PermanentError{Err: fmt.Errorf("alert: webhook %s answered %s", sub.WebhookURL, resp.Status)}
	default:
		return fmt.Errorf("alert: webhook %s answered %s", sub.WebhookURL, resp.Status)
	}
}
