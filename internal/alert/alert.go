// Package alert is ETAP's streaming subsystem — the "Electronic
// Trigger Alert Program" finally living up to its name. The batch
// pipeline crawls, extracts, and serves a static ranked list; this
// package makes it proactive, the production shape Sedano's news
// stream processor takes: documents arrive one at a time, flow through
// the same snippet → annotate → classify → rank path, are deduplicated
// against everything already alerted, and matching subscribers are
// notified while the news is fresh.
//
// The manager owns three stages, each independently bounded:
//
//	ingest    a bounded queue + worker pool; a full queue rejects the
//	          document (the HTTP layer answers 429) instead of buffering
//	          without limit
//	dedup     a fingerprint set (company + driver + snippet text) seeded
//	          from the checkpointed lead store, so re-ingestion — and a
//	          restart — never re-alerts an event already seen
//	delivery  per-subscriber queues with at-least-once webhook delivery
//	          under the crawler's retry/backoff/breaker policy, a
//	          dead-letter buffer for what delivery gave up on, and an
//	          SSE broadcast for live watchers
package alert

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"etap/internal/gather"
	"etap/internal/kb"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/tenant"
	"etap/internal/web"
)

// Document is one unit of the ingest stream — the body of POST
// /ingest.
type Document struct {
	URL   string `json:"url"`
	Title string `json:"title,omitempty"`
	Text  string `json:"text"`
}

// Pipeline extracts trigger events from pages across every trained
// driver. core.System implements it (ExtractAllEvents).
type Pipeline interface {
	ExtractAllEvents(pages []*web.Page, threshold float64) []rank.Event
}

// TracedPipeline is the optional Pipeline extension the manager
// prefers when per-document tracing is on: implementations contribute
// extraction spans to the document trace carried by ctx. core.System
// implements it (ExtractAllEventsTraced).
type TracedPipeline interface {
	Pipeline
	ExtractAllEventsTraced(ctx context.Context, pages []*web.Page, threshold float64) []rank.Event
}

// Sink receives freshly extracted events. serve.Server implements it
// over the lead store, so streamed and batch-extracted leads land in
// the same place.
type Sink interface {
	AddLeads(events []rank.Event, now time.Time) int
}

// Indexer adds ingested pages to the searchable web. *web.Web
// implements it (Ingest); a duplicate URL must return
// web.ErrDuplicatePage.
type Indexer interface {
	Ingest(p web.Page) error
}

// Config tunes the manager. The zero value selects the defaults noted
// per field.
type Config struct {
	// Workers is the ingest worker-pool size; 0 means 2. Each worker
	// owns one partition (see Partitions), so this is also the default
	// partition count.
	Workers int
	// Partitions is the ingest partition count: documents are routed by
	// URL hash, each partition consumed in order by one worker so the
	// WAL's committed offsets are exact watermarks. 0 means Workers.
	Partitions int
	// QueueSize bounds each partition's ingest queue; 0 means 64. A
	// full partition rejects with ErrQueueFull (HTTP 429). Total ingest
	// capacity is Partitions × QueueSize.
	QueueSize int
	// WAL, when non-nil, logs every accepted document durably before
	// Enqueue returns, and Start replays whatever a previous life
	// accepted but did not finish. The manager takes ownership: Close
	// closes it.
	WAL *WAL
	// Threshold is the classifier-score floor for trigger events;
	// 0 means 0.5.
	Threshold float64
	// SubscriberQueue bounds each subscriber's delivery queue; 0 means
	// 16. A full queue dead-letters the alert.
	SubscriberQueue int
	// DeadLetterCap bounds the dead-letter buffer; 0 means 128. When
	// full, the oldest entry is dropped.
	DeadLetterCap int
	// SSEBuffer is the per-client SSE frame buffer; 0 means 16.
	SSEBuffer int
	// Retry tunes webhook delivery (attempts, backoff, breaker); the
	// zero value means gather's documented defaults.
	Retry gather.RetryConfig
	// Clock supplies timestamps (alert times, lead FirstSeen); nil
	// means time.Now. Tests inject a fixed clock for determinism.
	Clock func() time.Time
	// Registry receives the etap_alert_* series; nil means obs.Default.
	Registry *obs.Registry
	// Subscriptions is the initial subscription set (typically loaded
	// from a checkpoint); nil starts empty.
	Subscriptions *Subscriptions
	// Deliverer pushes alerts to webhook endpoints; nil means
	// WebhookDeliverer over http.DefaultClient. Tests inject recorders
	// and fault injectors.
	Deliverer Deliverer
	// Log receives structured progress and drop reports; nil means
	// slog.Default.
	Log *slog.Logger
	// Tracer mints one distributed trace per accepted document,
	// following it through extraction, matching, and every webhook
	// delivery; nil disables per-document tracing. Share the tracer
	// with serve.Server.AttachTracer so the traces are browsable.
	Tracer *obs.Tracer
	// LagSLO is the p99 delivery-lag budget (ingest accept → webhook
	// 2xx). When the observed p99 exceeds it, Health reports the
	// subsystem degraded; 0 disables the check.
	LagSLO time.Duration
	// Tenants, when non-nil, enables tenant-scoped subscriptions:
	// fan-out additionally filters each tenant-tagged subscription
	// through its tenant's ICP, looked up at dispatch time. Without a
	// registry, tenant-scoped subscriptions deliver nothing (fail
	// closed).
	Tenants *tenant.Registry
	// KB supplies company firmographics for tenant ICP filtering; nil
	// means events resolve to no record, so ICPs with categorical
	// criteria match nothing.
	KB *kb.KB
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Workers
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.Clock == nil {
		//etaplint:ignore determinism -- wall-clock default for production; tests inject a fixed Clock
		c.Clock = time.Now
	}
	if c.Subscriptions == nil {
		c.Subscriptions = NewSubscriptions()
	}
	if c.Deliverer == nil {
		c.Deliverer = &WebhookDeliverer{}
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// ErrQueueFull reports an ingest queue at capacity — the backpressure
// signal the HTTP layer translates to 429.
var ErrQueueFull = errors.New("alert: ingest queue full")

// ErrClosed reports an enqueue after Close.
var ErrClosed = errors.New("alert: manager closed")

// ErrNotStarted reports an enqueue before Start (including the window
// where Start is still replaying the write-ahead log).
var ErrNotStarted = errors.New("alert: manager not started")

// ErrWAL reports a write-ahead-log failure during enqueue: the
// document could not be made durable, so it was not accepted. The HTTP
// layer translates it to 503 — the client should retry.
var ErrWAL = errors.New("alert: write-ahead log failure")

// Manager runs the streaming subsystem: the ingest pool, the dedup
// set, the dispatcher, and the SSE broadcaster.
type Manager struct {
	cfg      Config
	met      *metrics
	pipeline Pipeline
	sink     Sink
	indexer  Indexer
	subs     *Subscriptions
	dedup    *dedup
	disp     *dispatcher
	bcast    *Broadcaster
	wal      *WAL

	parts    []*partition
	pending  atomic.Int64 // documents accepted but not fully processed
	wg       sync.WaitGroup
	launched atomic.Bool // Start ran (consumers spawned, replay begun)
	started  atomic.Bool // Enqueue is open (replay finished)

	// closeMu serializes Enqueue's send against Close's channel close:
	// enqueues hold the read side, so Close cannot close a partition
	// between the closed check and the send.
	closeMu sync.RWMutex
	closed  bool
}

// NewManager wires a manager over the extraction pipeline, the lead
// sink, and the searchable web. Any of the three may be nil in tests
// exercising a subset of the path.
func NewManager(pipeline Pipeline, sink Sink, indexer Indexer, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	met := newMetrics(cfg.Registry)
	m := &Manager{
		cfg:      cfg,
		met:      met,
		pipeline: pipeline,
		sink:     sink,
		indexer:  indexer,
		subs:     cfg.Subscriptions,
		dedup:    newDedup(),
		bcast:    newBroadcaster(cfg.SSEBuffer, met),
		wal:      cfg.WAL,
		parts:    make([]*partition, cfg.Partitions),
	}
	m.disp = newDispatcher(cfg, met, cfg.Deliverer, m.subscriptionLive)
	for i := range m.parts {
		m.parts[i] = &partition{ch: make(chan ingestItem, cfg.QueueSize)}
	}
	if m.wal != nil {
		m.wal.SetPartitions(cfg.Partitions)
	}
	return m
}

// subscriptionLive reports whether a subscription still exists — the
// dispatcher's guard against resurrecting a delivery worker for an
// unsubscribed endpoint.
func (m *Manager) subscriptionLive(id string) bool {
	_, err := m.subs.Get(id)
	return err == nil
}

// ingestItem is one queued document plus its per-document trace and
// accept timestamp. The trace must ride the queue with the document:
// worker goroutines run under the Start context, not the HTTP
// request's, so a context value would not survive the hop.
type ingestItem struct {
	doc        Document
	tr         *obs.DTrace
	root       *obs.DSpan
	acceptedAt time.Time // Clock at Enqueue; the delivery-lag SLO's zero point
	seq        uint64    // WAL sequence; 0 when the manager runs without a WAL
	part       int       // owning partition (routeDoc of the URL)
}

// traceID returns the item's hex trace ID, "" when tracing is off.
func (it ingestItem) traceID() string { return it.tr.ID() }

// Start launches the partition consumers and, when a WAL is attached,
// synchronously replays every document a previous life accepted but
// did not finish processing — Enqueue answers ErrNotStarted (HTTP 503)
// until the replay is fully enqueued. ctx bounds all delivery
// attempts: cancelling it makes in-flight webhook deliveries abort
// instead of sitting through backoff.
func (m *Manager) Start(ctx context.Context) {
	if !m.launched.CompareAndSwap(false, true) {
		return
	}
	for i, p := range m.parts {
		m.wg.Add(1)
		go m.consume(ctx, i, p)
	}
	if m.wal != nil {
		var replayed int
		if err := m.replayWAL(&replayed); err != nil {
			// Replay is best-effort beyond the point of damage: what was
			// re-enqueued is processed; the rest needs the operator (see
			// the OPERATIONS.md runbook).
			m.cfg.Log.Error("alert: wal replay aborted", "replayed", replayed, "err", err)
		} else if replayed > 0 {
			m.cfg.Log.Info("alert: wal replay complete", "replayed", replayed)
		}
	}
	m.started.Store(true)
}

// SeedEvents marks events as already alerted without delivering
// anything — how a restart recovers dedup state from the checkpointed
// lead store before the first document arrives.
func (m *Manager) SeedEvents(events []rank.Event) {
	m.dedup.seed(events)
}

// Subscriptions exposes the subscription set (for the CRUD API and the
// checkpointer).
func (m *Manager) Subscriptions() *Subscriptions { return m.subs }

// Broadcaster exposes the SSE fan-out (for the /alerts/stream
// handler).
func (m *Manager) Broadcaster() *Broadcaster { return m.bcast }

// DeadLetters returns a copy of the dead-letter buffer, oldest first.
func (m *Manager) DeadLetters() []DeadLetter { return m.disp.dead.list() }

// Unsubscribe deletes a subscription and retires its delivery worker.
func (m *Manager) Unsubscribe(id string) error {
	if err := m.subs.Delete(id); err != nil {
		return err
	}
	m.disp.stop(id)
	return nil
}

// Enqueue offers one document to the ingest queue. A full queue
// returns ErrQueueFull immediately — the caller decides whether to
// shed or retry.
func (m *Manager) Enqueue(doc Document) error {
	_, err := m.EnqueueTraced(doc)
	return err
}

// EnqueueTraced is Enqueue returning the document's hex trace ID ("" when
// the manager has no Tracer) — the value POST /ingest echoes in its
// 202 response. A queue-full rejection still returns the ID: the trace
// ends in error status, so the rejection is findable in /debug/traces.
//
// With a WAL attached, the document is appended to the log and fsynced
// (group commit) before a nil error is returned: once the caller sees
// success, a crash cannot lose the document.
func (m *Manager) EnqueueTraced(doc Document) (string, error) {
	if doc.URL == "" {
		return "", errors.New("alert: document without URL")
	}
	if doc.Text == "" {
		return "", errors.New("alert: document without text")
	}
	if !m.started.Load() {
		return "", ErrNotStarted
	}
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.closed {
		return "", ErrClosed
	}
	tr, root := m.cfg.Tracer.StartTrace("ingest")
	root.SetAttr("url", doc.URL)
	it := ingestItem{doc: doc, tr: tr, root: root, acceptedAt: m.cfg.Clock()}
	it.part = routeDoc(doc.URL, len(m.parts))
	p := m.parts[it.part]
	// Credit gate: inflight is decremented at dequeue, so it bounds the
	// channel occupancy — the send below can never block.
	if p.inflight.Add(1) > int64(m.cfg.QueueSize) {
		p.inflight.Add(-1)
		m.met.rejected.Inc()
		root.Fail(ErrQueueFull.Error())
		root.End()
		return it.traceID(), ErrQueueFull
	}
	// Append and send under the partition mutex so channel order equals
	// sequence order; fsync AFTER releasing it so one slow flush doesn't
	// serialize the partition (Sync group-commits across partitions).
	p.mu.Lock()
	if m.wal != nil {
		seq, err := m.wal.Append(WALRecord{
			URL: doc.URL, Title: doc.Title, Text: doc.Text,
			At: it.acceptedAt.UnixNano(),
		})
		if err != nil {
			p.mu.Unlock()
			p.inflight.Add(-1)
			m.met.walErrors.Inc()
			root.Fail(err.Error())
			root.End()
			m.cfg.Log.Error("alert: wal append",
				"url", doc.URL, "trace_id", it.traceID(), "err", err)
			return it.traceID(), errors.Join(ErrWAL, err)
		}
		it.seq = seq
	}
	//etaplint:ignore channel-discipline -- the credit gate above keeps channel occupancy strictly below capacity, so this send never blocks; it must stay inside p.mu so channel order equals WAL-sequence order
	p.ch <- it
	p.mu.Unlock()
	m.pending.Add(1)
	if m.wal != nil && it.seq > 0 {
		if err := m.wal.Sync(it.seq); err != nil {
			// The item is already queued and may be processed — delivery
			// is at-least-once — but durability failed, so the caller
			// must not treat the document as accepted.
			m.met.walErrors.Inc()
			m.cfg.Log.Error("alert: wal fsync",
				"url", doc.URL, "trace_id", it.traceID(), "err", err)
			return it.traceID(), errors.Join(ErrWAL, err)
		}
	}
	m.met.ingested.Inc()
	m.met.queueDepth.Set(m.queueDepth())
	return it.traceID(), nil
}

// process runs one document through the streaming pipeline: index,
// extract, dedup, store, fan out. Each stage contributes a span to the
// document's trace (when tracing is on).
func (m *Manager) process(ctx context.Context, it ingestItem) {
	doc := it.doc
	ctx = obs.ContextWithDSpan(ctx, it.root)
	defer it.root.End()
	start := m.cfg.Clock()
	defer func() {
		m.met.ingestDur.Observe(m.cfg.Clock().Sub(start).Seconds())
	}()
	page := web.Page{URL: doc.URL, Host: web.HostOf(doc.URL), Title: doc.Title, Text: doc.Text}
	if m.indexer != nil {
		_, isp := obs.StartDSpan(ctx, "index")
		if err := m.indexer.Ingest(page); err != nil {
			if !errors.Is(err, web.ErrDuplicatePage) {
				isp.Fail(err.Error())
				isp.End()
				it.root.Fail("index: " + err.Error())
				m.cfg.Log.WarnContext(ctx, "alert: indexing ingested document", "url", doc.URL, "err", err)
				return
			}
			// A replayed URL is expected on a stream: extraction still
			// runs (the text may differ), and the fingerprint dedup
			// decides what, if anything, is new.
			isp.SetAttr("duplicate", "true")
			m.met.dupDocs.Inc()
		}
		isp.End()
	}
	var events []rank.Event
	ectx, esp := obs.StartDSpan(ctx, "extract")
	if m.pipeline != nil {
		if tp, ok := m.pipeline.(TracedPipeline); ok {
			events = tp.ExtractAllEventsTraced(ectx, []*web.Page{&page}, m.cfg.Threshold)
		} else {
			events = m.pipeline.ExtractAllEvents([]*web.Page{&page}, m.cfg.Threshold)
		}
	}
	esp.SetAttr("events", strconv.Itoa(len(events)))
	esp.End()
	m.met.events.Add(uint64(len(events)))
	_, dsp := obs.StartDSpan(ctx, "dedup")
	fresh, dropped := m.dedup.filter(events)
	dsp.SetAttr("fresh", strconv.Itoa(len(fresh)))
	dsp.SetAttr("dropped", strconv.Itoa(dropped))
	dsp.End()
	m.met.dedupHits.Add(uint64(dropped))
	if len(fresh) == 0 {
		return
	}
	now := m.cfg.Clock()
	if m.sink != nil {
		_, ssp := obs.StartDSpan(ctx, "store")
		added := m.sink.AddLeads(fresh, now)
		ssp.SetAttr("added", strconv.Itoa(added))
		ssp.End()
	}
	for _, ev := range fresh {
		m.fanOut(ctx, ev, now, it)
	}
}

// fanOut broadcasts one fresh event to the SSE stream and enqueues it
// to every matching webhook subscriber, stamping the document's trace
// ID into every frame and alert. Matching goes through the inverted
// subscription index: Candidates prunes to the buckets that could
// match (O(matching), not O(all subscribers)) and Matches confirms
// each one, so the index is a cost optimization, never a correctness
// dependency.
func (m *Manager) fanOut(ctx context.Context, ev rank.Event, now time.Time, it ingestItem) {
	a := Alert{Event: ev, Time: now.Unix(), TraceID: it.traceID()}
	if frame, err := json.Marshal(a); err != nil {
		// The SSE frame is lost but webhook fan-out below still runs —
		// say so instead of silently thinning the stream.
		m.met.sseMarshal.Inc()
		m.cfg.Log.WarnContext(ctx, "alert: marshaling SSE frame",
			"trace_id", it.traceID(), "err", err)
	} else {
		m.bcast.Broadcast(frame)
	}
	cands := m.subs.Candidates(ev.Company, ev.Driver)
	m.met.candidates.Observe(float64(len(cands)))
	for _, sub := range cands {
		if sub.WebhookURL == "" || !sub.Matches(ev) {
			continue
		}
		if !m.tenantAllows(sub, ev) {
			continue
		}
		a := a
		a.Subscription = sub.ID
		m.disp.dispatch(ctx, sub, a, it.acceptedAt)
	}
}

// tenantAllows applies a tenant-scoped subscription's ICP filter. The
// profile is looked up at dispatch time, never cached on the
// subscription, so an ICP update applies to the very next event — a
// stale profile can never route an alert. Missing registry or profile
// fails closed: a tenant-scoped subscription without a resolvable ICP
// delivers nothing.
func (m *Manager) tenantAllows(sub Subscription, ev rank.Event) bool {
	if sub.Tenant == "" {
		return true
	}
	if m.cfg.Tenants == nil {
		m.met.tenantMissing.Inc()
		return false
	}
	p, _, err := m.cfg.Tenants.Get(sub.Tenant)
	if err != nil {
		m.met.tenantMissing.Inc()
		return false
	}
	var c *kb.Company
	if m.cfg.KB != nil {
		if cc, ok := m.cfg.KB.Lookup(ev.Company); ok {
			c = cc
		}
	}
	if !p.MatchCompany(c) {
		m.met.tenantFiltered.Inc()
		return false
	}
	return true
}

// Health reports the subsystem's load for /healthz.
type Health struct {
	// QueueDepth and QueueCap describe the ingest queue; depth at cap
	// means new documents are being rejected.
	QueueDepth int `json:"ingest_queue_depth"`
	QueueCap   int `json:"ingest_queue_cap"`
	// DeadLetters is the dead-letter buffer occupancy.
	DeadLetters int `json:"dead_letters"`
	// Subscriptions is the live subscription count.
	Subscriptions int `json:"subscriptions"`
	// SSEClients is the connected /alerts/stream count.
	SSEClients int `json:"sse_clients"`
	// DeliveryLagP99 is the observed p99 end-to-end delivery lag in
	// seconds (ingest accept → webhook 2xx); 0 until a delivery lands.
	DeliveryLagP99 float64 `json:"delivery_lag_p99_seconds"`
	// DeliveryLagSLO is the configured p99 budget in seconds; 0 means
	// the SLO check is off.
	DeliveryLagSLO float64 `json:"delivery_lag_slo_seconds,omitempty"`
}

// Reasons the subsystem reports itself degraded.
const (
	DegradedQueueSaturated = "ingest-queue-saturated"
	DegradedDeadLetters    = "dead-letters-pending"
	DegradedDeliveryLag    = "delivery-lag-slo-exceeded"
)

// Degraded lists why the subsystem is unhealthy; empty means healthy.
func (h Health) Degraded() []string {
	var out []string
	if h.QueueCap > 0 && h.QueueDepth >= h.QueueCap {
		out = append(out, DegradedQueueSaturated)
	}
	if h.DeadLetters > 0 {
		out = append(out, DegradedDeadLetters)
	}
	if h.DeliveryLagSLO > 0 && h.DeliveryLagP99 > h.DeliveryLagSLO {
		out = append(out, DegradedDeliveryLag)
	}
	return out
}

// Health snapshots the subsystem's load.
func (m *Manager) Health() Health {
	return Health{
		QueueDepth:     int(m.queueDepth()),
		QueueCap:       len(m.parts) * m.cfg.QueueSize,
		DeadLetters:    m.disp.dead.len(),
		Subscriptions:  m.subs.Len(),
		SSEClients:     m.bcast.Clients(),
		DeliveryLagP99: m.met.deliveryLag.Quantile(0.99),
		DeliveryLagSLO: m.cfg.LagSLO.Seconds(),
	}
}

// Flush blocks until every accepted document is fully processed and
// every dispatched alert is terminal (delivered or dead-lettered), or
// ctx expires. A test helper and a shutdown aid; new documents may
// keep arriving while it waits.
func (m *Manager) Flush(ctx context.Context) error {
	for m.pending.Load() > 0 || m.disp.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Close drains and stops the subsystem: the ingest partitions stop
// accepting, consumers finish what was queued, delivery workers drain
// their lanes (in-flight webhook attempts still honour the Start
// context), and the attached WAL — every processed sequence committed
// — is flushed and closed. Idempotent.
func (m *Manager) Close() {
	m.closeMu.Lock()
	if m.closed {
		m.closeMu.Unlock()
		return
	}
	m.closed = true
	for _, p := range m.parts {
		close(p.ch)
	}
	m.closeMu.Unlock()
	if m.launched.Load() {
		m.wg.Wait()
	}
	m.disp.close()
	if m.wal != nil {
		if err := m.wal.Close(); err != nil {
			m.cfg.Log.Warn("alert: closing wal", "err", err)
		}
	}
}
