package alert

// Golden idempotency tests for WAL replay: a crash between acceptance
// and processing must converge, after restart, on exactly the state a
// crash-free run produces — every accepted document alerted at least
// once, no fingerprint alerted twice.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"etap/internal/gather"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/web"
)

// replayDocs builds n distinct trigger documents; each produces exactly
// one event with a unique fingerprint (the snippet is the page text).
func replayDocs(n int) []Document {
	docs := make([]Document, n)
	for i := range docs {
		docs[i] = Document{
			URL:  fmt.Sprintf("http://news.example.com/story-%d", i),
			Text: fmt.Sprintf("Story %d: Acme merger confirmed.", i),
		}
	}
	return docs
}

// walManager builds an unstarted manager over a WAL in dir, mirroring
// newTestManager except that Start stays with the caller so dedup can
// be seeded before replay. The manager owns the WAL's Close.
func walManager(t *testing.T, dir string, deliver Deliverer) (*Manager, *recordSink) {
	t.Helper()
	wal, err := OpenWAL(WALConfig{Dir: dir, Log: quietTestLog()})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	sink := &recordSink{}
	w := web.New()
	w.Freeze()
	m := NewManager(&stubPipeline{}, sink, w, Config{
		Workers:    2,
		Partitions: 2,
		Clock:      fixedClock,
		Registry:   obs.NewRegistry(),
		Deliverer:  deliver,
		Retry:      gather.RetryConfig{MaxAttempts: 3, Sleep: noSleep, AttemptTimeout: -1},
		Log:        quietTestLog(),
		WAL:        wal,
	})
	return m, sink
}

// subscribeAcme adds the one subscription every replay test delivers
// through.
func subscribeAcme(t *testing.T, m *Manager) {
	t.Helper()
	if _, err := m.Subscriptions().Add(Subscription{
		ID: "crm", Company: "Acme", MinScore: 0.5, WebhookURL: "http://crm.example.com/hook",
	}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
}

// deliveredFingerprints reduces a delivery log to sorted snippet IDs —
// the per-document fingerprint for these corpora, since every document
// yields exactly one event.
func deliveredFingerprints(alerts []Alert) []string {
	out := make([]string, 0, len(alerts))
	for _, a := range alerts {
		out = append(out, a.Event.SnippetID)
	}
	sort.Strings(out)
	return out
}

// sinkEvents snapshots a recordSink's accumulated events.
func sinkEvents(s *recordSink) []rank.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]rank.Event(nil), s.events...)
}

func TestWALReplayMatchesSingleRunGolden(t *testing.T) {
	docs := replayDocs(10)

	// Control: one crash-free manager processes the full corpus.
	control := newScriptDeliverer()
	cm, _ := newTestManager(t, Config{Workers: 2, Partitions: 2, Log: quietTestLog()}, control)
	subscribeAcme(t, cm)
	for _, doc := range docs {
		if err := cm.Enqueue(doc); err != nil {
			t.Fatalf("control enqueue: %v", err)
		}
	}
	flush(t, cm)
	want := deliveredFingerprints(control.deliveredAlerts())
	if len(want) != len(docs) {
		t.Fatalf("control delivered %d alerts, want %d", len(want), len(docs))
	}

	// Crashing run, act 1: manager A accepts and fully processes the
	// first half, committing its offsets on Close.
	dir := t.TempDir()
	delivA := newScriptDeliverer()
	a, sinkA := walManager(t, dir, delivA)
	subscribeAcme(t, a)
	a.Start(context.Background())
	for _, doc := range docs[:5] {
		if err := a.Enqueue(doc); err != nil {
			t.Fatalf("enqueue A: %v", err)
		}
	}
	flush(t, a)
	a.Close()

	// Act 2: the second half reaches the WAL — the 202 went out — but
	// the process dies before any consumer sees the documents. Appending
	// directly to a reopened log is exactly that state.
	wal, err := OpenWAL(WALConfig{Dir: dir, Log: quietTestLog()})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	wal.SetPartitions(2)
	for _, doc := range docs[5:] {
		seq, err := wal.Append(WALRecord{URL: doc.URL, Title: doc.Title, Text: doc.Text, At: fixedClock().UnixNano()})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := wal.Sync(seq); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatalf("close wal: %v", err)
	}

	// Act 3: restart. Dedup is seeded from the checkpointed lead store
	// (manager A's sink), then Start replays the uncommitted tail.
	delivB := newScriptDeliverer()
	b, _ := walManager(t, dir, delivB)
	subscribeAcme(t, b)
	b.SeedEvents(sinkEvents(sinkA))
	b.Start(context.Background())
	flush(t, b)
	b.Close()

	gotA := deliveredFingerprints(delivA.deliveredAlerts())
	gotB := deliveredFingerprints(delivB.deliveredAlerts())
	got := append(append([]string(nil), gotA...), gotB...)
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("crash+replay delivered %v, control delivered %v", got, want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("fingerprint %q delivered more than once", got[i])
		}
	}
}

func TestWALReplayAfterLostCommitsIsIdempotent(t *testing.T) {
	// Worst case: the commit sidecar is gone, so EVERY record replays.
	// The fingerprint dedup seeded from the lead store must absorb all
	// of it — zero redeliveries, zero sink writes.
	docs := replayDocs(5)
	dir := t.TempDir()
	delivA := newScriptDeliverer()
	a, sinkA := walManager(t, dir, delivA)
	subscribeAcme(t, a)
	a.Start(context.Background())
	for _, doc := range docs {
		if err := a.Enqueue(doc); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	flush(t, a)
	a.Close()
	if n := len(delivA.deliveredAlerts()); n != len(docs) {
		t.Fatalf("run A delivered %d, want %d", n, len(docs))
	}

	if err := os.Remove(filepath.Join(dir, walCommitName)); err != nil {
		t.Fatalf("remove commit sidecar: %v", err)
	}

	delivB := newScriptDeliverer()
	b, sinkB := walManager(t, dir, delivB)
	subscribeAcme(t, b)
	b.SeedEvents(sinkEvents(sinkA))
	b.Start(context.Background())
	flush(t, b)
	stats := b.WALStats()
	b.Close()

	if n := len(delivB.deliveredAlerts()); n != 0 {
		t.Fatalf("replay redelivered %d alerts, want 0 (dedup should absorb)", n)
	}
	if n := sinkB.len(); n != 0 {
		t.Fatalf("replay rewrote %d events into the sink, want 0", n)
	}
	// And the replay really happened — the log was not silently empty.
	if stats.NextSeq <= uint64(len(docs)) {
		t.Fatalf("wal next seq = %d, want > %d (records were appended)", stats.NextSeq, len(docs))
	}
}
