package alert

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"etap/internal/rank"
)

// linearMatch is the pre-index matcher: scan everything, keep what
// Matches. The golden reference every Candidates assertion compares
// against.
func linearMatch(ss *Subscriptions, ev rank.Event) []string {
	var out []string
	for _, s := range ss.List() {
		if s.Matches(ev) {
			out = append(out, s.ID)
		}
	}
	return out
}

// indexedMatch is the production path: prune with Candidates, confirm
// with Matches.
func indexedMatch(ss *Subscriptions, ev rank.Event) []string {
	var out []string
	for _, s := range ss.Candidates(ev.Company, ev.Driver) {
		if s.Matches(ev) {
			out = append(out, s.ID)
		}
	}
	return out
}

func TestCandidatesMatchLinearScan(t *testing.T) {
	// A seeded random subscription population over a skewed company
	// distribution, probed by events drawn from the same skew plus
	// corner cases. The indexed matcher must agree with the linear scan
	// exactly — IDs and order both.
	rng := rand.New(rand.NewSource(42))
	companies := []string{"Acme", "Globex", "Initech", "Umbrella", "Hooli", ""}
	drivers := []string{"mergers-acquisitions", "new-offices", "funding-rounds", ""}
	ss := NewSubscriptions()
	for i := 0; i < 500; i++ {
		// Zipf-ish skew: low indices dominate, mirroring a realistic
		// many-watchers-per-hot-company shape.
		c := companies[min2(rng.Intn(len(companies)), rng.Intn(len(companies)))]
		d := drivers[min2(rng.Intn(len(drivers)), rng.Intn(len(drivers)))]
		if _, err := ss.Add(Subscription{
			Company:    c,
			Driver:     d,
			MinScore:   float64(rng.Intn(10)) / 10,
			WebhookURL: fmt.Sprintf("http://hook-%d.example.com/h", i),
		}); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	events := []rank.Event{
		{Company: "Acme", Driver: "mergers-acquisitions", Score: 0.95},
		{Company: "Acme Inc.", Driver: "new-offices", Score: 0.55}, // alias form
		{Company: "Globex", Driver: "funding-rounds", Score: 0.05},
		{Company: "", Driver: "mergers-acquisitions", Score: 0.8}, // no company attributed
		{Company: "Nonesuch Corp", Driver: "new-offices", Score: 0.9},
		{Company: "", Driver: "", Score: 1.0},
	}
	for i := 0; i < 50; i++ {
		events = append(events, rank.Event{
			Company: companies[rng.Intn(len(companies))],
			Driver:  drivers[rng.Intn(len(drivers))],
			Score:   float64(rng.Intn(11)) / 10,
		})
	}
	for i, ev := range events {
		want := linearMatch(ss, ev)
		got := indexedMatch(ss, ev)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("event %d (%+v): indexed = %v, linear = %v", i, ev, got, want)
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCandidatesAfterDelete(t *testing.T) {
	ss := NewSubscriptions()
	a, _ := ss.Add(Subscription{Company: "Acme", WebhookURL: "http://a/h"})
	b, _ := ss.Add(Subscription{Company: "Acme", WebhookURL: "http://b/h"})
	ev := rank.Event{Company: "Acme", Score: 0.9}
	if got := indexedMatch(ss, ev); len(got) != 2 {
		t.Fatalf("before delete: %v", got)
	}
	if err := ss.Delete(a.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	got := indexedMatch(ss, ev)
	if len(got) != 1 || got[0] != b.ID {
		t.Fatalf("after delete: %v, want [%s]", got, b.ID)
	}
	// Deleting the last bucket member must drop the bucket entirely.
	if err := ss.Delete(b.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if got := indexedMatch(ss, ev); len(got) != 0 {
		t.Fatalf("after deleting all: %v", got)
	}
}

func TestCandidatesRebuiltOnLoad(t *testing.T) {
	ss := NewSubscriptions()
	for i, c := range []string{"Acme", "Globex", "", "Acme"} {
		if _, err := ss.Add(Subscription{Company: c, WebhookURL: fmt.Sprintf("http://h%d/h", i)}); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := ss.WriteJSONL(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := ReadSubscriptions(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	ev := rank.Event{Company: "Acme", Score: 0.9}
	want := indexedMatch(ss, ev)
	got := indexedMatch(loaded, ev)
	if len(want) != 3 || fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("loaded index = %v, want %v (3 matches)", got, want)
	}
}

func TestCandidatesPreserveInsertionOrder(t *testing.T) {
	// Dispatch order followed List() before the index; Candidates must
	// keep it so switching matchers never reorders deliveries.
	ss := NewSubscriptions()
	ids := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		// Alternate buckets so order cannot fall out of bucket locality.
		c, d := "", ""
		switch i % 3 {
		case 0:
			c = "Acme"
		case 1:
			d = "new-offices"
		}
		s, err := ss.Add(Subscription{Company: c, Driver: d})
		if err != nil {
			t.Fatalf("add: %v", err)
		}
		ids = append(ids, s.ID)
	}
	got := indexedMatch(ss, rank.Event{Company: "Acme", Driver: "new-offices", Score: 1})
	if fmt.Sprint(got) != fmt.Sprint(ids) {
		t.Fatalf("order = %v, want insertion order %v", got, ids)
	}
}

func TestCandidatesCanonicalizeCompanyAliases(t *testing.T) {
	ss := NewSubscriptions()
	s, _ := ss.Add(Subscription{Company: "Acme Inc.", WebhookURL: "http://a/h"})
	got := indexedMatch(ss, rank.Event{Company: "Acme Incorporated", Score: 0.9})
	if len(got) != 1 || got[0] != s.ID {
		t.Fatalf("alias lookup = %v, want [%s]", got, s.ID)
	}
}

func TestFanOutUsesIndexAndMatchesExactly(t *testing.T) {
	// Through the manager: only the pruned-and-confirmed subscriber is
	// delivered to, and the candidate histogram observes the probe.
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	match, _ := m.Subscriptions().Add(Subscription{Company: "Acme", WebhookURL: "http://a/h"})
	if _, err := m.Subscriptions().Add(Subscription{Company: "Globex", WebhookURL: "http://b/h"}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if err := m.Enqueue(Document{URL: "http://n/1", Text: "Acme merger complete."}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	flush(t, m)
	got := deliver.deliveredAlerts()
	if len(got) != 1 || got[0].Subscription != match.ID {
		t.Fatalf("delivered = %+v, want only %s", got, match.ID)
	}
	if n := m.met.candidates.Count(); n == 0 {
		t.Fatal("match-candidates histogram never observed")
	}
}

func TestFanOutCountsSSEMarshalErrors(t *testing.T) {
	// A NaN score is the one thing rank.Event can carry that
	// json.Marshal rejects; the frame is lost but the loss must be
	// counted, not swallowed.
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{Log: quietTestLog()}, deliver)
	ev := rank.Event{Company: "Acme", Driver: "mergers-acquisitions", Score: math.NaN()}
	m.fanOut(context.Background(), ev, fixedClock(), ingestItem{acceptedAt: fixedClock()})
	if got := m.met.sseMarshal.Value(); got != 1 {
		t.Fatalf("sse marshal error counter = %d, want 1", got)
	}
}
