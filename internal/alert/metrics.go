// Alert-subsystem instrumentation: every stage of the streaming path —
// ingestion, extraction, dedup, fan-out, delivery, dead-lettering, SSE —
// reports into an etap_alert_* series so an operator can see the
// pipeline breathe (and tell a quiet stream from a wedged one).
package alert

import (
	"etap/internal/gather"
	"etap/internal/obs"
)

// metrics bundles the alert series for one manager. Registration is
// get-or-create, so managers sharing a registry share series.
type metrics struct {
	reg         *obs.Registry  // kept for per-subscriber series minted later
	ingested    *obs.Counter   // documents accepted into the queue
	rejected    *obs.Counter   // documents bounced on a full queue
	dupDocs     *obs.Counter   // re-ingested URLs (web already held them)
	ingestDur   *obs.Histogram // per-document pipeline latency
	queueDepth  *obs.Gauge     // ingest queue occupancy
	events      *obs.Counter   // trigger events extracted from the stream
	dedupHits   *obs.Counter   // events dropped by fingerprint dedup
	fanout      *obs.Counter   // alerts enqueued to subscriber queues
	subQueue    *obs.Gauge     // occupancy summed over subscriber queues
	subDropped  *obs.Counter   // alerts bounced on a full subscriber queue
	attempts    *obs.Counter   // delivery attempts (first tries + retries)
	deliveries  *obs.Counter   // successful deliveries
	failures    *obs.Counter   // deliveries abandoned after retry exhaustion
	deliveryDur *obs.Histogram // per-delivery wall time including retries
	deliveryLag *obs.Histogram // ingest accept → webhook 2xx, end to end
	deadTotal   *obs.Counter   // dead-lettered alerts, cumulative
	deadDepth   *obs.Gauge     // dead-letter buffer occupancy
	sseClients  *obs.Gauge     // connected SSE streams
	sseDropped  *obs.Counter   // SSE frames dropped on slow clients
	sseMarshal  *obs.Counter   // SSE frames lost to marshal failures
	walErrors   *obs.Counter   // enqueues failed on WAL append/fsync
	candidates  *obs.Histogram // subscription candidates probed per event
	delSubDrops *obs.Counter   // dispatches dropped for deleted subscriptions

	tenantFiltered *obs.Counter // deliveries suppressed by a tenant's ICP
	tenantMissing  *obs.Counter // tenant-scoped matches with no resolvable profile

	policy gather.PolicyMetrics
}

// queueWait returns the per-subscriber queue-wait histogram — how long
// alerts sat in subID's delivery queue before their worker picked them
// up. Registered once per worker (get-or-create), never in the drain
// loop.
func (m *metrics) queueWait(subID string) *obs.Histogram {
	return m.reg.Histogram("etap_alert_subscriber_queue_wait_seconds",
		"Alert wait time in a subscriber's delivery queue.", nil, "subscription", subID)
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.Default
	}
	return &metrics{
		reg: reg,
		ingested: reg.Counter("etap_alert_ingested_docs_total",
			"Documents accepted by POST /ingest."),
		rejected: reg.Counter("etap_alert_ingest_rejected_total",
			"Documents rejected because the ingest queue was full."),
		dupDocs: reg.Counter("etap_alert_duplicate_docs_total",
			"Re-ingested documents whose URL the web already held."),
		ingestDur: reg.Histogram("etap_alert_ingest_duration_seconds",
			"Per-document streaming-pipeline latency (index, extract, dedup, store).", nil),
		queueDepth: reg.Gauge("etap_alert_ingest_queue_depth",
			"Documents waiting in the ingest queue."),
		events: reg.Counter("etap_alert_events_total",
			"Trigger events extracted from ingested documents."),
		dedupHits: reg.Counter("etap_alert_dedup_hits_total",
			"Events dropped because their fingerprint was already seen."),
		fanout: reg.Counter("etap_alert_fanout_total",
			"Alerts enqueued to subscriber delivery queues."),
		subQueue: reg.Gauge("etap_alert_subscriber_queue_depth",
			"Alerts waiting across all subscriber delivery queues."),
		subDropped: reg.Counter("etap_alert_subscriber_dropped_total",
			"Alerts dead-lettered because a subscriber queue was full."),
		attempts: reg.Counter("etap_alert_delivery_attempts_total",
			"Webhook delivery attempts, including retries."),
		deliveries: reg.Counter("etap_alert_deliveries_total",
			"Alerts delivered successfully."),
		failures: reg.Counter("etap_alert_delivery_failures_total",
			"Alerts abandoned after exhausting the retry budget."),
		deliveryDur: reg.Histogram("etap_alert_delivery_duration_seconds",
			"Per-alert delivery wall time including retries and backoff.", nil),
		deliveryLag: reg.Histogram("etap_alert_delivery_lag_seconds",
			"End-to-end lag from ingest accept to webhook 2xx.", nil),
		deadTotal: reg.Counter("etap_alert_dead_letters_total",
			"Alerts moved to the dead-letter buffer, cumulative."),
		deadDepth: reg.Gauge("etap_alert_dead_letters",
			"Alerts currently held in the dead-letter buffer."),
		sseClients: reg.Gauge("etap_alert_sse_clients",
			"Connected /alerts/stream clients."),
		sseDropped: reg.Counter("etap_alert_sse_dropped_total",
			"SSE frames dropped because a client buffer was full."),
		sseMarshal: reg.Counter("etap_alert_sse_marshal_errors_total",
			"SSE broadcast frames lost because the alert failed to marshal."),
		walErrors: reg.Counter("etap_alert_wal_errors_total",
			"Ingest enqueues failed on a write-ahead-log append or fsync."),
		candidates: reg.Histogram("etap_alert_match_candidates",
			"Candidate subscriptions probed per fresh event (inverted-index pruning).", nil),
		delSubDrops: reg.Counter("etap_alert_deleted_sub_drops_total",
			"Alert dispatches dropped because their subscription was deleted."),
		tenantFiltered: reg.Counter("etap_tenant_alert_filtered_total",
			"Matched alerts suppressed because the tenant's ICP rejected the company."),
		tenantMissing: reg.Counter("etap_tenant_alert_missing_total",
			"Tenant-scoped matches dropped because no tenant registry or profile resolved (fail closed)."),
		policy: gather.PolicyMetrics{
			Retries: reg.Counter("etap_alert_delivery_retries_total",
				"Webhook delivery retries after transient failures."),
			BackoffSleeps: reg.Counter("etap_alert_backoff_sleeps_total",
				"Backoff sleeps taken between delivery attempts."),
			Backoff: reg.Histogram("etap_alert_backoff_seconds",
				"Backoff durations slept between delivery attempts.", nil),
			Failures: reg.Counter("etap_alert_endpoint_failures_total",
				"Delivery executions that ended in failure (feeds the breaker)."),
			BreakerTrips: reg.Counter("etap_alert_breaker_trips_total",
				"Webhook-endpoint circuit-breaker trips."),
			BreakerOpen: reg.Gauge("etap_alert_breaker_open",
				"Webhook endpoints with an open circuit breaker."),
			BreakerShortCircuits: reg.Counter("etap_alert_breaker_short_circuits_total",
				"Deliveries short-circuited by an open endpoint breaker."),
		},
	}
}
