// The inverted subscription index: the mirror image of the document
// index. Where the document index maps terms → documents, this maps
// (canonical company, driver) filter keys → subscription IDs, so
// matching a fresh event probes at most four buckets — exact,
// company-wildcard, driver-wildcard, full-firehose — instead of
// scanning every subscription. Candidates are a superset (MinScore and
// alias nuance are not keyed), so callers still confirm with
// Subscription.Matches; correctness never depends on the index, only
// cost does. The index lives inside Subscriptions, maintained under
// its existing mutex by Add/Delete and rebuilt implicitly when a JSONL
// checkpoint is loaded.
package alert

import (
	"sort"

	"etap/internal/rank"
)

// subKey is one index bucket: the canonicalized company filter and the
// driver filter of a subscription. Empty fields are wildcards.
type subKey struct {
	company string // rank.Canonical of Subscription.Company; "" matches any
	driver  string // Subscription.Driver verbatim; "" matches any
}

// keyOf buckets a subscription. Canonicalizing the company here means
// an event's company needs canonicalizing once per lookup, not once
// per subscription — the same trick SameCompany uses, amortized.
func keyOf(s Subscription) subKey {
	return subKey{company: rank.Canonical(s.Company), driver: s.Driver}
}

// indexInsertLocked adds id to its bucket. Caller holds ss.mu.
func (ss *Subscriptions) indexInsertLocked(s Subscription) {
	if ss.idx == nil {
		ss.idx = make(map[subKey]map[string]struct{})
		ss.seq = make(map[string]uint64)
	}
	k := keyOf(s)
	bucket := ss.idx[k]
	if bucket == nil {
		bucket = make(map[string]struct{})
		ss.idx[k] = bucket
	}
	bucket[s.ID] = struct{}{}
	ss.seqN++
	ss.seq[s.ID] = ss.seqN
}

// indexDeleteLocked removes id from its bucket. Caller holds ss.mu and
// s is the stored value being deleted.
func (ss *Subscriptions) indexDeleteLocked(s Subscription) {
	k := keyOf(s)
	if bucket := ss.idx[k]; bucket != nil {
		delete(bucket, s.ID)
		if len(bucket) == 0 {
			delete(ss.idx, k)
		}
	}
	delete(ss.seq, s.ID)
}

// Candidates returns every subscription whose company/driver filters
// could match an event attributed to (company, driver) — the exact
// bucket plus the wildcard buckets — in insertion order, mirroring
// List's iteration so switching the matcher never reorders deliveries.
// The result is a superset: callers must still confirm with Matches.
func (ss *Subscriptions) Candidates(company, driver string) []Subscription {
	c := rank.Canonical(company)
	keys := [4]subKey{
		{company: c, driver: driver},
		{company: c, driver: ""},
		{company: "", driver: driver},
		{company: "", driver: ""},
	}
	ss.mu.RLock()
	var ids []string
	var probed [4]subKey
	n := 0
	for _, k := range keys {
		// An empty event field collapses key pairs onto each other; skip
		// already-probed buckets rather than yielding a candidate twice.
		dup := false
		for i := 0; i < n; i++ {
			if probed[i] == k {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		probed[n] = k
		n++
		ids = ss.bucketIDsLocked(k, ids)
	}
	seq := ss.seq
	sort.Slice(ids, func(i, j int) bool { return seq[ids[i]] < seq[ids[j]] })
	out := make([]Subscription, len(ids))
	for i, id := range ids {
		out[i] = ss.byID[id]
	}
	ss.mu.RUnlock()
	return out
}

// bucketIDsLocked appends one bucket's member IDs to ids, sorted by
// insertion sequence so the accumulation is deterministic bucket by
// bucket. Caller holds ss.mu (read or write).
func (ss *Subscriptions) bucketIDsLocked(k subKey, ids []string) []string {
	var bucket []string
	for id := range ss.idx[k] {
		bucket = append(bucket, id)
	}
	sort.Slice(bucket, func(i, j int) bool { return ss.seq[bucket[i]] < ss.seq[bucket[j]] })
	return append(ids, bucket...)
}
