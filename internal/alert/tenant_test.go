package alert

import (
	"strings"
	"testing"
	"time"

	"etap/internal/kb"
	"etap/internal/obs"
	"etap/internal/tenant"
)

// testKB builds a two-company knowledge base matching the companies
// the stub pipeline attributes events to.
func testKB(t *testing.T) *kb.KB {
	t.Helper()
	k, err := kb.ReadJSONL(strings.NewReader(
		`{"key":"acme","name":"Acme","industry":"retail","employees":50,"sizeBucket":"small","hq":"New York","founded":1990,"keywords":["commerce"]}
{"key":"globex","name":"Globex","industry":"energy","employees":20000,"sizeBucket":"enterprise","hq":"Houston","founded":1975,"keywords":["power"]}
`))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func testTenants(t *testing.T) *tenant.Registry {
	t.Helper()
	return tenant.NewRegistry(tenant.Config{
		Clock:    func() time.Time { return time.Unix(1_700_000_000, 0) },
		Registry: obs.NewRegistry(),
	})
}

// TestSubscriptionCompanyCanonicalized is the regression test for the
// canonicalization bug: a subscription created with a non-canonical
// company form is stored in the same canonical form the fingerprint
// and the inverted index use, so it can never silently fail to match —
// and a company that canonicalizes to nothing is rejected outright
// instead of being indexed as a wildcard it could never satisfy.
func TestSubscriptionCompanyCanonicalized(t *testing.T) {
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	sub, err := m.Subscriptions().Add(Subscription{
		Company: "Halcyon Dynamics, Inc.", WebhookURL: "http://crm.example.com/hook",
	})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if sub.Company != "halcyon dynamics" {
		t.Fatalf("stored company %q, want the canonical form %q", sub.Company, "halcyon dynamics")
	}
	// The stub pipeline attributes events to "Acme"; subscribe with a
	// suffixed, punctuated form of the same identity and it must fire.
	sub2, err := m.Subscriptions().Add(Subscription{
		Company: "Acme, Corp.", WebhookURL: "http://crm.example.com/hook2",
	})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if sub2.Company != "acme" {
		t.Fatalf("stored company %q, want %q", sub2.Company, "acme")
	}
	if err := m.Enqueue(Document{URL: "http://news.example.com/c1", Text: "Acme announced a merger today."}); err != nil {
		t.Fatal(err)
	}
	flush(t, m)
	got := deliver.deliveredAlerts()
	if len(got) != 1 || got[0].Subscription != sub2.ID {
		t.Fatalf("delivered %+v, want exactly one alert for %s", got, sub2.ID)
	}

	// A filter that canonicalizes to nothing is a subscription that can
	// never match any attributed event — reject it at create time.
	if _, err := m.Subscriptions().Add(Subscription{Company: "()."}); err == nil {
		t.Fatal("degenerate company filter accepted")
	}
	if _, err := m.Subscriptions().Update(sub.ID, Subscription{Company: "  ,  "}); err == nil {
		t.Fatal("degenerate company filter accepted on update")
	}
}

// TestSubscriptionUpdate checks Update preserves identity and fan-out
// position while re-bucketing the inverted index under the new
// filters.
func TestSubscriptionUpdate(t *testing.T) {
	ss := NewSubscriptions()
	a, err := ss.Add(Subscription{Company: "Acme", Driver: "mergers-acquisitions", WebhookURL: "http://h/1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Add(Subscription{Company: "Acme", WebhookURL: "http://h/2"}); err != nil {
		t.Fatal(err)
	}
	rev := ss.Revision()
	upd, err := ss.Update(a.ID, Subscription{Company: "Globex Inc", WebhookURL: "http://h/1b", MinScore: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if upd.ID != a.ID || upd.Created != a.Created {
		t.Fatalf("update must preserve ID and Created: %+v vs %+v", upd, a)
	}
	if upd.Company != "globex" {
		t.Fatalf("updated company %q, want canonical %q", upd.Company, "globex")
	}
	if ss.Revision() <= rev {
		t.Fatal("update did not advance the revision")
	}
	// Old bucket no longer yields the subscription; new one does.
	for _, c := range ss.Candidates("Acme", "mergers-acquisitions") {
		if c.ID == a.ID {
			t.Fatal("updated subscription still in its old index bucket")
		}
	}
	found := false
	for _, c := range ss.Candidates("Globex", "any-driver") {
		if c.ID == a.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("updated subscription missing from its new index bucket")
	}
	if _, err := ss.Update("nope", Subscription{}); err == nil {
		t.Fatal("updating an unknown subscription succeeded")
	}
}

// TestTenantScopedFanOut checks the composition of the inverted
// subscription index with tenant ICP filtering: a tenant whose ICP
// accepts the event's company receives the alert, a tenant whose ICP
// rejects it does not, and a tenant-scoped subscription without a
// resolvable profile fails closed.
func TestTenantScopedFanOut(t *testing.T) {
	k := testKB(t)
	reg := testTenants(t)
	retail, err := reg.Add(tenant.Profile{Name: "retail-buyer", Industries: []string{"retail"}})
	if err != nil {
		t.Fatal(err)
	}
	energy, err := reg.Add(tenant.Profile{Name: "energy-buyer", Industries: []string{"energy"}})
	if err != nil {
		t.Fatal(err)
	}
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{Tenants: reg, KB: k}, deliver)
	subRetail, err := m.Subscriptions().Add(Subscription{
		Tenant: retail.ID, WebhookURL: "http://crm.example.com/retail",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Subscriptions().Add(Subscription{
		Tenant: energy.ID, WebhookURL: "http://crm.example.com/energy",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Subscriptions().Add(Subscription{
		Tenant: "tenant-999", WebhookURL: "http://crm.example.com/ghost",
	}); err != nil {
		t.Fatal(err)
	}
	// The stub pipeline attributes the event to Acme — a retail company
	// in the KB — so only the retail tenant's subscription fires.
	if err := m.Enqueue(Document{URL: "http://news.example.com/t1", Text: "Acme announced a merger today."}); err != nil {
		t.Fatal(err)
	}
	flush(t, m)
	got := deliver.deliveredAlerts()
	if len(got) != 1 || got[0].Subscription != subRetail.ID {
		t.Fatalf("delivered %+v, want exactly one alert for %s", got, subRetail.ID)
	}
}

// TestTenantICPUpdateAppliesImmediately checks there is no stale-ICP
// window: the profile is resolved at dispatch time, so an update that
// excludes the event's industry suppresses the very next delivery.
func TestTenantICPUpdateAppliesImmediately(t *testing.T) {
	k := testKB(t)
	reg := testTenants(t)
	p, err := reg.Add(tenant.Profile{Industries: []string{"retail"}})
	if err != nil {
		t.Fatal(err)
	}
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{Tenants: reg, KB: k}, deliver)
	if _, err := m.Subscriptions().Add(Subscription{
		Tenant: p.ID, WebhookURL: "http://crm.example.com/hook",
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Enqueue(Document{URL: "http://news.example.com/u1", Text: "Acme announced a merger today."}); err != nil {
		t.Fatal(err)
	}
	flush(t, m)
	if n := len(deliver.deliveredAlerts()); n != 1 {
		t.Fatalf("delivered %d alerts before the update, want 1", n)
	}
	// Retarget the ICP away from retail; the next Acme event must not
	// be delivered.
	if _, err := reg.Update(p.ID, tenant.Profile{Industries: []string{"energy"}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Enqueue(Document{URL: "http://news.example.com/u2", Text: "Acme merger expands with a second deal."}); err != nil {
		t.Fatal(err)
	}
	flush(t, m)
	if n := len(deliver.deliveredAlerts()); n != 1 {
		t.Fatalf("delivered %d alerts after the ICP update, want still 1 (stale ICP delivery)", n)
	}
}

// TestTenantScopedWithoutRegistryFailsClosed checks a tenant-scoped
// subscription on a manager with no tenant registry delivers nothing.
func TestTenantScopedWithoutRegistryFailsClosed(t *testing.T) {
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	if _, err := m.Subscriptions().Add(Subscription{
		Tenant: "tenant-1", WebhookURL: "http://crm.example.com/hook",
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Enqueue(Document{URL: "http://news.example.com/f1", Text: "Acme announced a merger today."}); err != nil {
		t.Fatal(err)
	}
	flush(t, m)
	if n := len(deliver.deliveredAlerts()); n != 0 {
		t.Fatalf("delivered %d alerts with no tenant registry, want 0", n)
	}
}
