package alert

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"etap/internal/obs"
)

func newTestBroadcaster(buffer int) (*Broadcaster, *metrics) {
	met := newMetrics(obs.NewRegistry())
	return newBroadcaster(buffer, met), met
}

func TestBroadcastDeliversToEveryClient(t *testing.T) {
	b, _ := newTestBroadcaster(4)
	ch1, cancel1 := b.Subscribe()
	ch2, cancel2 := b.Subscribe()
	defer cancel1()
	defer cancel2()
	b.Broadcast([]byte("frame"))
	for i, ch := range []<-chan []byte{ch1, ch2} {
		select {
		case f := <-ch:
			if string(f) != "frame" {
				t.Fatalf("client %d got %q", i, f)
			}
		case <-time.After(time.Second):
			t.Fatalf("client %d never got the frame", i)
		}
	}
}

func TestSlowConsumerDropsFramesNotPipeline(t *testing.T) {
	b, met := newTestBroadcaster(2)
	slow, cancelSlow := b.Subscribe()
	fast, cancelFast := b.Subscribe()
	defer cancelSlow()
	defer cancelFast()

	// The slow client never reads; its 2-slot buffer fills, then drops.
	done := make(chan struct{})
	var got int
	go func() {
		defer close(done)
		for range 5 {
			select {
			case <-fast:
				got++
			case <-time.After(time.Second):
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		b.Broadcast([]byte(fmt.Sprintf("f%d", i)))
		// Give the fast reader a beat so its buffer never fills.
		time.Sleep(time.Millisecond)
	}
	<-done
	if got != 5 {
		t.Fatalf("fast client got %d frames, want 5", got)
	}
	if len(slow) != 2 {
		t.Fatalf("slow client buffered %d frames, want its full 2", len(slow))
	}
	if drops := met.sseDropped.Value(); drops != 3 {
		t.Fatalf("dropped counter = %d, want 3", drops)
	}
}

func TestCancelIsIdempotentAndCleansUp(t *testing.T) {
	b, met := newTestBroadcaster(2)
	ch, cancel := b.Subscribe()
	if b.Clients() != 1 || met.sseClients.Value() != 1 {
		t.Fatalf("clients = %d gauge = %d, want 1/1", b.Clients(), met.sseClients.Value())
	}
	cancel()
	cancel() // second cancel must not double-close or double-decrement
	if b.Clients() != 0 {
		t.Fatalf("clients = %d after cancel, want 0", b.Clients())
	}
	if met.sseClients.Value() != 0 {
		t.Fatalf("gauge = %d after double cancel, want 0", met.sseClients.Value())
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after cancel")
	}
	// Broadcasting after cancel must not panic (send on closed channel).
	b.Broadcast([]byte("late"))
}

func TestCancelRacesBroadcastWithoutLeaks(t *testing.T) {
	b, _ := newTestBroadcaster(1)
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		ch, cancel := b.Subscribe()
		wg.Add(2)
		go func() {
			defer wg.Done()
			for range ch { // drain until cancel closes it
			}
		}()
		go func() {
			defer wg.Done()
			b.Broadcast([]byte("x"))
			cancel()
		}()
	}
	wg.Wait()
	if b.Clients() != 0 {
		t.Fatalf("clients = %d after all cancels, want 0", b.Clients())
	}
	// Drained readers must all have exited; allow scheduler slack.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d -> %d: reader leak", before, after)
	}
}

func TestSSEFrameCarriesTraceID(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 1, Seed: 5, Registry: obs.NewRegistry()})
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{Tracer: tracer}, deliver)
	ch, cancel := m.Broadcaster().Subscribe()
	defer cancel()

	id, err := m.EnqueueTraced(Document{URL: "https://n.example/a", Text: "a merger closed"})
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("EnqueueTraced returned no trace ID with a tracer configured")
	}
	flush(t, m)
	select {
	case frame := <-ch:
		if !bytes.Contains(frame, []byte(`"trace_id":"`+id+`"`)) {
			t.Fatalf("SSE frame missing trace_id %s: %s", id, frame)
		}
	case <-time.After(time.Second):
		t.Fatal("no SSE frame after flush")
	}
}

func TestEnqueueWithoutTracerReturnsEmptyID(t *testing.T) {
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	id, err := m.EnqueueTraced(Document{URL: "https://n.example/a", Text: "a merger closed"})
	if err != nil {
		t.Fatal(err)
	}
	if id != "" {
		t.Fatalf("trace ID %q without a tracer, want empty", id)
	}
	flush(t, m)
	// Alerts must not carry a bogus trace field.
	for _, a := range deliver.deliveredAlerts() {
		if a.TraceID != "" {
			t.Fatalf("untraced alert carries TraceID %q", a.TraceID)
		}
	}
}

func TestSSEFramesAreValidEventStream(t *testing.T) {
	// A frame with a newline would break SSE framing; JSON marshaling
	// guarantees none, pinned here.
	deliver := newScriptDeliverer()
	m, _ := newTestManager(t, Config{}, deliver)
	ch, cancel := m.Broadcaster().Subscribe()
	defer cancel()
	if err := m.Enqueue(Document{URL: "https://n.example/b", Text: "big merger news"}); err != nil {
		t.Fatal(err)
	}
	flush(t, m)
	select {
	case frame := <-ch:
		if strings.ContainsAny(string(frame), "\n\r") {
			t.Fatalf("frame contains newline: %q", frame)
		}
	case <-time.After(time.Second):
		t.Fatal("no frame")
	}
}
