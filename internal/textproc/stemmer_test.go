package textproc

import (
	"testing"
	"testing/quick"
)

// Reference pairs from Porter's original paper and vocabulary.
func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemBusinessVocabulary(t *testing.T) {
	// The stems that matter for trigger-event classification: different
	// inflections of the same driver verb must collapse together.
	groups := [][]string{
		{"acquired", "acquires", "acquire"},
		{"merged", "merges", "merge"},
		{"appointed", "appoints", "appoint"},
		{"announced", "announces", "announce"},
		{"growing", "grows"},
	}
	for _, g := range groups {
		first := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != first {
				t.Errorf("Stem(%q) = %q, want %q (same as %q)", w, got, first, g[0])
			}
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"a", "is", "be", "go"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonAlphabetic(t *testing.T) {
	for _, w := range []string{"3.5", "q4", "don't", "2004"} {
		got := Stem(w)
		if got == "" {
			t.Errorf("Stem(%q) = empty", w)
		}
	}
}

func TestStemLowercases(t *testing.T) {
	if Stem("Acquired") != Stem("acquired") {
		t.Error("stemming is case-sensitive")
	}
}

// Property: stemming is idempotent for plain lowercase words — stemming a
// stem returns the stem — for the suffix families we rely on.
func TestStemIdempotentOnVocabulary(t *testing.T) {
	words := []string{
		"acquisitions", "acquired", "management", "revenues", "growing",
		"appointed", "executives", "companies", "announcement", "profits",
		"declining", "operations", "strategic", "integration", "quarterly",
	}
	for _, w := range words {
		s1 := Stem(w)
		s2 := Stem(s1)
		if s1 != s2 {
			t.Errorf("Stem(Stem(%q)) = %q, Stem(%q) = %q — not idempotent", w, s2, w, s1)
		}
	}
}

// Property: stems are never longer (in runes) than the input, except for
// the 'e' step1b can re-append.
func TestStemPropertyNeverLonger(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 40 {
			s = s[:40]
		}
		return len([]rune(Stem(s))) <= len([]rune(s))+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2, "orrery": 2,
	}
	for in, want := range cases {
		if got := measure([]byte(in)); got != want {
			t.Errorf("measure(%q) = %d, want %d", in, got, want)
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"acquisitions", "management", "revenues", "growing", "appointed"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
