package textproc

import (
	"strings"
	"testing"
	"testing/quick"
)

func sentenceTexts(ss []Sentence) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Text
	}
	return out
}

func TestSplitSentencesBasic(t *testing.T) {
	got := sentenceTexts(SplitSentences("Acme acquired Widget. The deal closed Friday."))
	want := []string{"Acme acquired Widget.", "The deal closed Friday."}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestSplitSentencesAbbreviation(t *testing.T) {
	got := SplitSentences("Mr. Andersen was the CEO of XYZ Inc. from 1980 to 1985.")
	if len(got) != 1 {
		t.Fatalf("abbreviations split the sentence: %q", sentenceTexts(got))
	}
}

func TestSplitSentencesCorporateSuffix(t *testing.T) {
	got := SplitSentences("Widget Corp. posted record profits. Shares rose sharply.")
	if len(got) != 2 {
		t.Fatalf("got %d sentences %q, want 2", len(got), sentenceTexts(got))
	}
	if !strings.HasPrefix(got[1].Text, "Shares") {
		t.Errorf("second sentence = %q", got[1].Text)
	}
}

func TestSplitSentencesDecimalNumbers(t *testing.T) {
	got := SplitSentences("Revenue grew 3.5 percent. Margins held steady.")
	if len(got) != 2 {
		t.Fatalf("decimal split the sentence: %q", sentenceTexts(got))
	}
}

func TestSplitSentencesInitials(t *testing.T) {
	got := SplitSentences("J. K. Smith joined the board. She was previously at Acme.")
	if len(got) != 2 {
		t.Fatalf("got %d sentences: %q", len(got), sentenceTexts(got))
	}
	if !strings.HasPrefix(got[0].Text, "J. K. Smith") {
		t.Errorf("first = %q", got[0].Text)
	}
}

func TestSplitSentencesQuestionExclamation(t *testing.T) {
	got := SplitSentences("Will the merger close? Analysts think so! The market agreed.")
	if len(got) != 3 {
		t.Fatalf("got %d sentences: %q", len(got), sentenceTexts(got))
	}
}

func TestSplitSentencesParagraphBreak(t *testing.T) {
	got := SplitSentences("Headline without period\n\nBody sentence follows here.")
	if len(got) != 2 {
		t.Fatalf("got %d sentences: %q", len(got), sentenceTexts(got))
	}
	if got[0].Text != "Headline without period" {
		t.Errorf("first = %q", got[0].Text)
	}
}

func TestSplitSentencesLowercaseContinuation(t *testing.T) {
	// Terminator followed by a lowercase letter should not split:
	// chunker demands an upper-case/digit/quote continuation.
	got := SplitSentences("The web site example.com announced results. Shares rose.")
	if len(got) != 2 {
		t.Fatalf("got %d sentences: %q", len(got), sentenceTexts(got))
	}
}

func TestSplitSentencesOffsets(t *testing.T) {
	src := "Acme acquired Widget. The deal closed Friday."
	for _, s := range SplitSentences(src) {
		if src[s.Start:s.End] != s.Text {
			t.Errorf("span [%d,%d) = %q, want %q", s.Start, s.End, src[s.Start:s.End], s.Text)
		}
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if got := SplitSentences(""); len(got) != 0 {
		t.Errorf("empty: got %d", len(got))
	}
	if got := SplitSentences("   \n\n  "); len(got) != 0 {
		t.Errorf("whitespace: got %d", len(got))
	}
}

func TestSplitSentencesTrailingNoTerminator(t *testing.T) {
	got := SplitSentences("First sentence ends. second part has no terminator")
	// "second" is lowercase, so no split; the text is one sentence per rules?
	// No: period followed by lowercase does not split, so single sentence.
	if len(got) != 1 {
		t.Fatalf("got %d sentences: %q", len(got), sentenceTexts(got))
	}
}

// Property: sentence spans are disjoint, ordered, within bounds, and the
// concatenation of spans covers every non-whitespace byte of the input.
func TestSplitSentencesPropertySpans(t *testing.T) {
	f := func(s string) bool {
		prev := 0
		for _, sent := range SplitSentences(s) {
			if sent.Start < prev || sent.End < sent.Start || sent.End > len(s) {
				return false
			}
			if strings.TrimSpace(s[sent.Start:sent.End]) != sent.Text {
				return false
			}
			prev = sent.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSplitSentences(b *testing.B) {
	src := strings.Repeat("Acme Corp announced record profits. Mr. Smith, the new CEO, was pleased. Revenue grew 3.5 percent in Q4. ", 30)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SplitSentences(src)
	}
}
