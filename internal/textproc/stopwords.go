package textproc

import "strings"

// stopwords is the standard English stop-word list used for feature
// selection pre-processing (Section 3.2.1). Closed-class function words
// only; content words are never stopped because the RIG analysis needs
// verbs, nouns, adjectives and adverbs as instance-valued features.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true,
	"and": true, "or": true, "but": true, "nor": true, "so": true,
	"yet": true, "both": true, "either": true, "neither": true,
	"of": true, "in": true, "on": true, "at": true, "to": true,
	"for": true, "from": true, "by": true, "with": true, "about": true,
	"against": true, "between": true, "into": true, "through": true,
	"during": true, "before": true, "after": true, "above": true,
	"below": true, "under": true, "over": true, "again": true,
	"further": true, "then": true, "once": true, "here": true,
	"there": true, "out": true, "off": true, "up": true, "down": true,
	"is": true, "am": true, "are": true, "was": true, "were": true,
	"be": true, "been": true, "being": true,
	"have": true, "has": true, "had": true, "having": true,
	"do": true, "does": true, "did": true, "doing": true,
	"will": true, "would": true, "shall": true, "should": true,
	"can": true, "could": true, "may": true, "might": true, "must": true,
	"i": true, "me": true, "my": true, "myself": true,
	"we": true, "our": true, "ours": true, "ourselves": true,
	"you": true, "your": true, "yours": true, "yourself": true,
	"he": true, "him": true, "his": true, "himself": true,
	"she": true, "her": true, "hers": true, "herself": true,
	"it": true, "its": true, "itself": true,
	"they": true, "them": true, "their": true, "theirs": true,
	"themselves": true,
	"this":       true, "that": true, "these": true, "those": true,
	"what": true, "which": true, "who": true, "whom": true, "whose": true,
	"when": true, "where": true, "why": true, "how": true,
	"all": true, "any": true, "each": true, "few": true, "more": true,
	"most": true, "other": true, "some": true, "such": true, "only": true,
	"own": true, "same": true, "than": true, "too": true, "very": true,
	"not": true, "no": true, "just": true, "now": true,
	"as": true, "if": true, "because": true, "while": true, "until": true,
	"although": true, "though": true, "since": true, "unless": true,
	"whether": true, "also": true,
	"s": true, "t": true, "d": true, "ll": true, "m": true, "re": true, "ve": true,
}

// IsStopword reports whether the lower-cased form of w is a stop word.
func IsStopword(w string) bool { return stopwords[strings.ToLower(w)] }

// RemoveStopwords filters stop words out of a token slice in place order,
// returning a new slice of the surviving words.
func RemoveStopwords(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if !IsStopword(w) {
			out = append(out, w)
		}
	}
	return out
}

// NormalizeWords applies the paper's standard preprocessing to a word
// list: lower-casing, stop-word elimination and Porter stemming.
func NormalizeWords(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		lw := strings.ToLower(w)
		if stopwords[lw] {
			continue
		}
		out = append(out, Stem(lw))
	}
	return out
}
