package textproc

import (
	"strings"
	"testing"
)

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "The", "THE", "and", "of", "is"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"acquire", "ceo", "revenue", "merger", "growth"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestRemoveStopwords(t *testing.T) {
	in := []string{"the", "company", "announced", "a", "merger"}
	got := RemoveStopwords(in)
	want := []string{"company", "announced", "merger"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRemoveStopwordsEmpty(t *testing.T) {
	if got := RemoveStopwords(nil); len(got) != 0 {
		t.Errorf("nil input: got %v", got)
	}
	if got := RemoveStopwords([]string{"the", "a"}); len(got) != 0 {
		t.Errorf("all-stopword input: got %v", got)
	}
}

func TestNormalizeWords(t *testing.T) {
	in := []string{"The", "Companies", "Announced", "a", "Merger"}
	got := NormalizeWords(in)
	// lowercased, stopped, stemmed
	want := []string{"compani", "announc", "merger"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestNormalizeWordsPreservesContentWords(t *testing.T) {
	// Driver-discriminative verbs must survive normalization.
	got := NormalizeWords([]string{"acquired", "appointed", "grew"})
	if len(got) != 3 {
		t.Fatalf("content verbs were stopped: %v", got)
	}
}
