package textproc

import (
	"testing"
	"unicode"
)

// FuzzTokenize asserts tokenizer totality and span integrity on
// arbitrary input.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{
		"", "plain words", "$5.2 billion, up 10%!", "a.b.c...d",
		"Ünïcödé tèxt — em-dash", "don't stop-the presses",
		"1,2,3 4.5.6", "\x00\x01 control", "trailing space ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		prev := 0
		for _, tok := range toks {
			if tok.Start < prev || tok.End <= tok.Start || tok.End > len(s) {
				t.Fatalf("bad span %+v for input %q", tok, s)
			}
			if s[tok.Start:tok.End] != tok.Text {
				t.Fatalf("span text mismatch: %+v", tok)
			}
			prev = tok.End
		}
	})
}

// FuzzSplitSentences asserts chunker totality: ordered, in-bounds spans
// whose text is the trimmed span content.
func FuzzSplitSentences(f *testing.F) {
	for _, s := range []string{
		"", "One. Two.", "Mr. X met Dr. Y. They spoke.", "No terminator",
		"Multi\n\nparagraph\n\ntext.", "Ellipsis... and more? Yes!",
		"\"Quoted.\" Next.", "3.5 is not a boundary. 4 is the end.",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		prev := 0
		for _, sent := range SplitSentences(s) {
			if sent.Start < prev || sent.End < sent.Start || sent.End > len(s) {
				t.Fatalf("bad span %+v for %q", sent, s)
			}
			if sent.Text == "" {
				t.Fatalf("empty sentence for %q", s)
			}
			prev = sent.End
		}
	})
}

// FuzzStem asserts the stemmer never panics and output stays lower-case
// alphabetic when the input is.
func FuzzStem(f *testing.F) {
	for _, s := range []string{"", "running", "ACQUIRED", "a", "ties", "agreed", "sky"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := Stem(s)
		if len(s) > 0 && len(out) == 0 {
			alpha := true
			for _, r := range s {
				if !unicode.IsLetter(r) {
					alpha = false
				}
			}
			if alpha {
				t.Fatalf("stem emptied %q", s)
			}
		}
	})
}
