package textproc

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeSimpleSentence(t *testing.T) {
	toks := Tokenize("Acme Corp acquired Widget Inc.")
	got := texts(toks)
	want := []string{"Acme", "Corp", "acquired", "Widget", "Inc", "."}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeNumberWithCommasAndDecimal(t *testing.T) {
	toks := Tokenize("revenue of 1,200.50 dollars")
	var nums []string
	for _, tok := range toks {
		if tok.Kind == KindNumber {
			nums = append(nums, tok.Text)
		}
	}
	if len(nums) != 1 || nums[0] != "1,200.50" {
		t.Fatalf("numbers = %v, want [1,200.50]", nums)
	}
}

func TestTokenizeCurrencyAndPercent(t *testing.T) {
	toks := Tokenize("$5 billion, up 10%")
	var syms []string
	for _, tok := range toks {
		if tok.Kind == KindSymbol {
			syms = append(syms, tok.Text)
		}
	}
	if len(syms) != 2 || syms[0] != "$" || syms[1] != "%" {
		t.Fatalf("symbols = %v, want [$ %%]", syms)
	}
}

func TestTokenizeHyphenAndApostrophe(t *testing.T) {
	toks := Tokenize("third-quarter results didn't disappoint")
	got := texts(toks)
	want := []string{"third-quarter", "results", "didn't", "disappoint"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeOffsetsRoundTrip(t *testing.T) {
	src := "IBM acquired Daksh in 2004 for $160 million."
	for _, tok := range Tokenize(src) {
		if got := src[tok.Start:tok.End]; got != tok.Text {
			t.Errorf("span [%d,%d) = %q, want %q", tok.Start, tok.End, got, tok.Text)
		}
	}
}

func TestTokenizeUnicodeOffsets(t *testing.T) {
	src := "Köln GmbH raised €5 million"
	for _, tok := range Tokenize(src) {
		if got := src[tok.Start:tok.End]; got != tok.Text {
			t.Errorf("span [%d,%d) = %q, want %q", tok.Start, tok.End, got, tok.Text)
		}
	}
}

func TestTokenizeEmptyAndWhitespace(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("empty input: got %d tokens", len(toks))
	}
	if toks := Tokenize("   \n\t  "); len(toks) != 0 {
		t.Errorf("whitespace input: got %d tokens", len(toks))
	}
}

func TestTokenizeKinds(t *testing.T) {
	toks := Tokenize("Profit rose 10% to $2,000!")
	wantKinds := []TokenKind{KindWord, KindWord, KindNumber, KindSymbol,
		KindWord, KindSymbol, KindNumber, KindPunct}
	gotKinds := kinds(toks)
	if len(gotKinds) != len(wantKinds) {
		t.Fatalf("tokens %v: got %d kinds, want %d", texts(toks), len(gotKinds), len(wantKinds))
	}
	for i := range wantKinds {
		if gotKinds[i] != wantKinds[i] {
			t.Errorf("kind %d (%q): got %d, want %d", i, toks[i].Text, gotKinds[i], wantKinds[i])
		}
	}
}

func TestWordsLowercasesAndFilters(t *testing.T) {
	got := Words("IBM Acquired Daksh, 2004!")
	want := []string{"ibm", "acquired", "daksh"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// Property: token spans never overlap, are sorted, and each non-space rune
// of the input is covered by exactly one token.
func TestTokenizePropertySpans(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prev := 0
		for _, tok := range toks {
			if tok.Start < prev || tok.End <= tok.Start || tok.End > len(s) {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			// gap between prev and tok.Start must be all whitespace
			for _, r := range s[prev:tok.Start] {
				if !unicode.IsSpace(r) {
					return false
				}
			}
			prev = tok.End
		}
		for _, r := range s[prev:] {
			if !unicode.IsSpace(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenization is idempotent on word tokens — re-tokenizing a
// word token yields that single token back.
func TestTokenizePropertyWordStability(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Kind != KindWord {
				continue
			}
			again := Tokenize(tok.Text)
			if len(again) != 1 || again[0].Text != tok.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	src := strings.Repeat("Acme Corp announced a 10% revenue growth to $5.2 billion in Q4. ", 50)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tokenize(src)
	}
}
