// Package textproc provides the low-level text processing substrate used
// throughout ETAP: tokenization, rule-based sentence boundary detection,
// Porter stemming, stop-word filtering and normalization.
//
// The pipeline mirrors the pre-processing described in Section 3.2.1 of the
// paper: "simple operations such as changing all text to lower case,
// stemming, and stop-word elimination".
package textproc

import (
	"strings"
	"unicode"
)

// TokenKind classifies a surface token.
type TokenKind uint8

const (
	// KindWord is an alphabetic token, possibly with internal
	// apostrophes or hyphens ("company", "don't", "third-quarter").
	KindWord TokenKind = iota
	// KindNumber is a numeric token, possibly with internal commas,
	// periods or a leading sign ("5", "1,200", "3.5").
	KindNumber
	// KindPunct is a single punctuation rune.
	KindPunct
	// KindSymbol is a currency or other symbol ("$", "%", "€").
	KindSymbol
)

// Token is a surface token with its span in the original text.
type Token struct {
	Text  string    // surface form, unmodified
	Kind  TokenKind // coarse lexical class
	Start int       // byte offset of the first byte in the source
	End   int       // byte offset one past the last byte
}

// IsWord reports whether the token is alphabetic.
func (t Token) IsWord() bool { return t.Kind == KindWord }

// IsNumber reports whether the token is numeric.
func (t Token) IsNumber() bool { return t.Kind == KindNumber }

// Lower returns the lower-cased surface form.
func (t Token) Lower() string { return strings.ToLower(t.Text) }

// Tokenize splits text into word, number, punctuation and symbol tokens.
// Words keep internal apostrophes and hyphens; numbers keep internal commas
// and decimal points ("1,200.50" is one token). All offsets are byte
// offsets into the input.
func Tokenize(text string) []Token {
	tokens := make([]Token, 0, len(text)/5)
	// byteAt[i] is the byte offset of runes[i]; byteAt[len] == len(text).
	// Offsets come from ranging over the string, which stays correct
	// even for invalid UTF-8 (each bad byte decodes to U+FFFD but
	// advances by its true source width).
	runes := make([]rune, 0, len(text))
	byteAt := make([]int, 0, len(text)+1)
	for i, r := range text {
		byteAt = append(byteAt, i)
		runes = append(runes, r)
	}
	byteAt = append(byteAt, len(text))

	i := 0
	n := len(runes)
	for i < n {
		r := runes[i]
		// Token text is sliced from the source by byte offsets, so
		// invalid bytes round-trip exactly.
		src := func(from, to int) string { return text[byteAt[from]:byteAt[to]] }
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r):
			j := i + 1
			for j < n {
				rj := runes[j]
				if unicode.IsLetter(rj) || unicode.IsDigit(rj) {
					j++
					continue
				}
				// Keep internal apostrophes/hyphens/periods when
				// followed by a letter: "don't", "vice-president",
				// "U.S.A" (trailing period handled by sentence rules).
				if (rj == '\'' || rj == '-' || rj == '.' || rj == '&') &&
					j+1 < n && unicode.IsLetter(runes[j+1]) {
					j += 2
					continue
				}
				break
			}
			tokens = append(tokens, Token{
				Text:  src(i, j),
				Kind:  KindWord,
				Start: byteAt[i],
				End:   byteAt[j],
			})
			i = j
		case unicode.IsDigit(r):
			j := i + 1
			for j < n {
				rj := runes[j]
				if unicode.IsDigit(rj) {
					j++
					continue
				}
				if (rj == ',' || rj == '.') && j+1 < n && unicode.IsDigit(runes[j+1]) {
					j += 2
					continue
				}
				break
			}
			tokens = append(tokens, Token{
				Text:  src(i, j),
				Kind:  KindNumber,
				Start: byteAt[i],
				End:   byteAt[j],
			})
			i = j
		case isSymbolRune(r):
			tokens = append(tokens, Token{
				Text:  src(i, i+1),
				Kind:  KindSymbol,
				Start: byteAt[i],
				End:   byteAt[i+1],
			})
			i++
		default:
			tokens = append(tokens, Token{
				Text:  src(i, i+1),
				Kind:  KindPunct,
				Start: byteAt[i],
				End:   byteAt[i+1],
			})
			i++
		}
	}
	return tokens
}

func isSymbolRune(r rune) bool {
	switch r {
	case '$', '%', '€', '£', '¥', '#', '+', '=', '<', '>', '@', '^', '~', '|':
		return true
	}
	return unicode.IsSymbol(r) && r != '\''
}

// Words returns the lower-cased word tokens of text, dropping punctuation,
// numbers and symbols. It is the convenience entry point used by callers
// that only need a bag of words.
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == KindWord {
			out = append(out, strings.ToLower(t.Text))
		}
	}
	return out
}
