package textproc

import (
	"strings"
	"unicode"
)

// Sentence is a contiguous span of the source document recognized as a
// single sentence by the rule-based chunker.
type Sentence struct {
	Text  string // trimmed sentence text
	Start int    // byte offset of the first byte in the source
	End   int    // byte offset one past the last byte
}

// abbreviations that do not end a sentence even when followed by a period.
// The set mirrors what a business-news sentence chunker needs: honorifics,
// corporate suffixes, and common truncations.
var abbreviations = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"sr": true, "jr": true, "st": true, "rev": true, "gen": true,
	"rep": true, "sen": true, "gov": true, "capt": true, "lt": true,
	"col": true, "sgt": true, "hon": true,
	"inc": true, "corp": true, "co": true, "ltd": true, "llc": true,
	"plc": true, "llp": true, "bros": true, "assn": true, "dept": true,
	"div": true, "mfg": true, "intl": true, "natl": true,
	"jan": true, "feb": true, "mar": true, "apr": true, "jun": true,
	"jul": true, "aug": true, "sep": true, "sept": true, "oct": true,
	"nov": true, "dec": true,
	"vs": true, "etc": true, "eg": true, "ie": true, "cf": true,
	"approx": true, "est": true, "fig": true, "no": true, "nos": true,
	"vol": true, "pp": true, "ed": true, "eds": true,
	"u.s": true, "u.k": true, "u.s.a": true, "e.u": true,
	"a.m": true, "p.m": true, "i.e": true, "e.g": true,
}

// SplitSentences performs rule-based sentence boundary detection.
//
// Rules (Section 3.1: "We have built a sentence chunker based on rules for
// sentence boundary detection"):
//
//  1. '.', '!' and '?' are candidate terminators.
//  2. A period does not terminate when the preceding token is a known
//     abbreviation, a single capital letter (middle initial), or when it
//     sits inside a number ("3.5").
//  3. A candidate only terminates when followed by whitespace and either
//     end-of-text, an upper-case letter, a digit, or an opening quote.
//  4. Newlines that separate paragraphs (two or more in a row) always
//     terminate the current sentence.
func SplitSentences(text string) []Sentence {
	var sentences []Sentence
	// Offsets come from ranging over the string so invalid UTF-8 keeps
	// correct byte positions (see Tokenize).
	runes := make([]rune, 0, len(text))
	byteAt := make([]int, 0, len(text)+1)
	for i, r := range text {
		byteAt = append(byteAt, i)
		runes = append(runes, r)
	}
	byteAt = append(byteAt, len(text))
	n := len(runes)

	flush := func(startRune, endRune int) {
		if startRune >= endRune {
			return
		}
		raw := text[byteAt[startRune]:byteAt[endRune]]
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" {
			return
		}
		lead := len(raw) - len(strings.TrimLeft(raw, " \t\r\n"))
		trail := len(raw) - len(strings.TrimRight(raw, " \t\r\n"))
		sentences = append(sentences, Sentence{
			Text:  trimmed,
			Start: byteAt[startRune] + lead,
			End:   byteAt[endRune] - trail,
		})
	}

	start := 0
	i := 0
	for i < n {
		r := runes[i]

		// Paragraph break: two or more consecutive newlines.
		if r == '\n' {
			j := i
			nl := 0
			for j < n && (runes[j] == '\n' || runes[j] == '\r' || runes[j] == ' ' || runes[j] == '\t') {
				if runes[j] == '\n' {
					nl++
				}
				j++
			}
			if nl >= 2 {
				flush(start, i)
				start = j
				i = j
				continue
			}
			i++
			continue
		}

		if r != '.' && r != '!' && r != '?' {
			i++
			continue
		}

		if r == '.' {
			// Period inside a number: "3.5 billion".
			if i > 0 && i+1 < n && unicode.IsDigit(runes[i-1]) && unicode.IsDigit(runes[i+1]) {
				i++
				continue
			}
			// Abbreviation or initial before the period.
			word := precedingWord(runes, i)
			lw := strings.ToLower(word)
			if abbreviations[lw] || isInitial(word) {
				i++
				continue
			}
		}

		// Absorb any run of terminators and closing quotes/brackets.
		j := i + 1
		for j < n && (runes[j] == '.' || runes[j] == '!' || runes[j] == '?' ||
			runes[j] == '"' || runes[j] == '\'' || runes[j] == ')' || runes[j] == ']' ||
			runes[j] == '”' || runes[j] == '’') {
			j++
		}

		// Must be followed by whitespace (or end of text).
		if j < n && !unicode.IsSpace(runes[j]) {
			i = j
			continue
		}
		// Skip whitespace and check the next visible rune.
		k := j
		for k < n && unicode.IsSpace(runes[k]) {
			k++
		}
		if k < n {
			next := runes[k]
			if !unicode.IsUpper(next) && !unicode.IsDigit(next) &&
				next != '"' && next != '“' && next != '(' && next != '‘' && next != '\'' {
				i = j
				continue
			}
		}

		flush(start, j)
		start = k
		i = k
	}
	flush(start, n)
	return sentences
}

// precedingWord returns the maximal letter-or-period run that ends
// immediately before runes[end] (a period position).
func precedingWord(runes []rune, end int) string {
	j := end
	for j > 0 {
		r := runes[j-1]
		if unicode.IsLetter(r) || (r == '.' && j-1 > 0 && unicode.IsLetter(runes[j-2])) {
			j--
			continue
		}
		break
	}
	return string(runes[j:end])
}

// isInitial reports whether word looks like a person's initial ("J",
// "J.K") — a single capital letter or dotted capitals.
func isInitial(word string) bool {
	if word == "" {
		return false
	}
	letters := 0
	for _, r := range word {
		if r == '.' {
			continue
		}
		if !unicode.IsUpper(r) {
			return false
		}
		letters++
	}
	return letters >= 1 && letters <= 2 && len([]rune(word)) <= 3
}
