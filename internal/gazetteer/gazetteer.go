// Package gazetteer holds the shared name inventories used by both the
// named-entity recognizer (internal/ner) and the synthetic corpus
// generator (internal/corpus).
//
// Sharing one inventory is deliberate: the paper's NER [11] was trained on
// the same business-news domain it annotated. Keeping generator and
// recognizer on a common (but not identical — see the Unknown* lists)
// vocabulary reproduces a realistic accuracy profile: most entities are
// recognized, some are missed, giving the classifier the same partially
// abstracted input ETAP saw.
package gazetteer

// CompanyCores are single-token company core names. The corpus generator
// composes them with suffixes; the NER recognizes core+suffix and, for a
// subset, the bare core.
var CompanyCores = []string{
	"Averon", "Bluepeak", "Cindral", "Dataforge", "Eastbrook",
	"Fernwave", "Gridlock", "Halcyon", "Ironwood", "Jetstream",
	"Kestrel", "Lumina", "Meridian", "Northgate", "Oakline",
	"Pinnacle", "Quartzite", "Riverton", "Silverlake", "Truenorth",
	"Umbra", "Vantage", "Westfield", "Xylos", "Yellowstone", "Zephyr",
	"Acrofin", "Boldware", "Centriq", "Deltacore", "Everhart",
	"Fluxion", "Glasswing", "Hexatech", "Innovara", "Junipero",
	"Korvex", "Lakeshore", "Marbelite", "Nimbusoft", "Optiline",
	"Parallax", "Quillon", "Rockharbor", "Stellarc", "Tidewater",
	"Ultraviolet", "Vistamar", "Wolfpine", "Xenora", "Zenith",
	"Arcfield", "Brightstone", "Copperleaf", "Dunmore", "Elmcrest",
	"Foxglove", "Goldbridge", "Hartwell", "Ivygate", "Jadefall",
	"Kingfisher", "Longview", "Mistral", "Nightingale", "Overlook",
	"Palisade", "Quicksilver", "Redwood", "Summitview", "Thornbury",
	"Unity", "Vermillion", "Whitewater", "Yarrow", "Zelkova",
}

// CompanySuffixes are the corporate suffixes composed with CompanyCores.
var CompanySuffixes = []string{
	"Inc", "Corp", "Ltd", "LLC", "Group", "Holdings", "Systems",
	"Technologies", "Industries", "Partners", "Solutions", "Networks",
	"Capital", "Labs", "Software", "Enterprises",
}

// KnownOrgs are fully-formed organization names the NER recognizes without
// a suffix (well-known companies, in the paper's world IBM, Daksh, Coors,
// Molson, Monster, JobsAhead, etc.).
var KnownOrgs = []string{
	"IBM", "Daksh", "Coors", "Molson", "Monster", "JobsAhead",
	"Microsoft", "Oracle", "Google", "Intel", "Cisco", "Dell",
	"Accenture", "Infosys", "Wipro", "Siebel", "PeopleSoft", "SAP",
	"Lenovo", "Gateway", "Compaq", "Lucent", "Nortel", "Alcatel",
}

// FirstNames are person first names.
var FirstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer",
	"Michael", "Linda", "David", "Elizabeth", "William", "Barbara",
	"Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah",
	"Charles", "Karen", "Christopher", "Nancy", "Daniel", "Lisa",
	"Matthew", "Margaret", "Anthony", "Betty", "Mark", "Sandra",
	"Donald", "Ashley", "Steven", "Dorothy", "Paul", "Kimberly",
	"Andrew", "Emily", "Joshua", "Donna", "Kenneth", "Michelle",
	"Kevin", "Carol", "Brian", "Amanda", "George", "Melissa",
	"Ganesh", "Sachindra", "Sumit", "Raghu", "Sreeram", "Priya",
	"Anil", "Deepa", "Rajiv", "Meena", "Arjun", "Kavita",
}

// LastNames are person surnames.
var LastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia",
	"Miller", "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez",
	"Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor", "Moore",
	"Jackson", "Martin", "Lee", "Perez", "Thompson", "White",
	"Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson",
	"Walker", "Young", "Allen", "King", "Wright", "Scott",
	"Torres", "Nguyen", "Hill", "Flores", "Green", "Adams",
	"Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Ramakrishnan", "Joshi", "Negi", "Krishnapuram", "Balakrishnan",
	"Mehta", "Sharma", "Iyer", "Patel", "Chandra", "Rao", "Andersen",
}

// Designations are job titles (the DESIG category). Multi-word titles are
// space-separated; the NER matches them longest-first.
var Designations = []string{
	"CEO", "CTO", "CFO", "COO", "CIO",
	"Chief Executive Officer", "Chief Technology Officer",
	"Chief Financial Officer", "Chief Operating Officer",
	"Chief Information Officer", "Chief Marketing Officer",
	"President", "Vice President", "Senior Vice President",
	"Executive Vice President", "Chairman", "Chairwoman",
	"Managing Director", "General Manager", "Director",
	"Board Member", "Manager", "Head of Sales", "Head of Research",
	"Treasurer", "Secretary", "Founder", "Co-Founder",
}

// Places are location names (the PLC category).
var Places = []string{
	"New York", "London", "Tokyo", "Bangalore", "Mumbai", "Delhi",
	"San Francisco", "Boston", "Chicago", "Seattle", "Austin",
	"Atlanta", "Dallas", "Denver", "Houston", "Toronto", "Paris",
	"Berlin", "Munich", "Zurich", "Geneva", "Singapore", "Sydney",
	"Melbourne", "Dublin", "Amsterdam", "Stockholm", "Helsinki",
	"Washington", "Philadelphia", "Phoenix", "Portland", "Detroit",
	"Shanghai", "Beijing", "Hong Kong", "Seoul", "Taipei",
	"New Zealand", "California", "Texas", "Virginia", "Ohio",
}

// Products are product names (the PROD category).
var Products = []string{
	"WebSphere", "ThinkCenter", "DataVault", "CloudBridge",
	"NetGuard", "StreamLine", "FlexServe", "PowerGrid",
	"SmartDesk", "RapidDeploy", "OmniStore", "SecureLink",
	"InsightPro", "FusionWare", "AgileBase", "PrimeStack",
}

// Objects are generic object names (the OBJ category): named deals,
// programs, funds and initiatives that are neither orgs nor products.
var Objects = []string{
	"Project Horizon", "Operation Bluebird", "Initiative NextGen",
	"Fund Alpha", "Program Catalyst", "Venture Northstar",
}

// LengthUnits are the non-currency measurement units (the LNGTH category).
var LengthUnits = []string{
	"miles", "kilometers", "meters", "feet", "acres", "hectares",
	"square feet", "square meters", "tons", "kilograms", "pounds",
	"gigabytes", "terabytes", "megawatts",
}

// Months recognized by the PERIOD rules.
var Months = []string{
	"January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December",
}

// Weekdays recognized by the PERIOD rules.
var Weekdays = []string{
	"Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
	"Saturday", "Sunday",
}

// Quarters recognized by the PERIOD rules.
var Quarters = []string{"Q1", "Q2", "Q3", "Q4"}

// UnknownOrgCores are company cores used by the corpus generator but
// deliberately absent from the NER gazetteer (when used without a
// corporate suffix). They model out-of-vocabulary entities — the paper
// notes "wrong annotation of company and person names leads to incorrect
// trigger events"; these produce exactly that failure mode.
var UnknownOrgCores = []string{
	"Brellvane", "Corvantis", "Dresmoor", "Skellig", "Tarvolen",
	"Vintrix", "Windermoor", "Ostrava", "Pellarin", "Quorvane",
}

// UnknownSurnames are surnames absent from the NER gazetteer.
var UnknownSurnames = []string{
	"Threlkeld", "Vancourt", "Osmanovic", "Brandywine", "Castellane",
	"Delacroix-Smith", "Eisenhart", "Fothergill",
}
