package gazetteer

import (
	"strings"
	"testing"
)

func noDuplicates(t *testing.T, name string, list []string) {
	t.Helper()
	seen := map[string]bool{}
	for _, v := range list {
		key := strings.ToLower(v)
		if seen[key] {
			t.Errorf("%s: duplicate entry %q", name, v)
		}
		seen[key] = true
	}
}

func TestInventoriesHaveNoDuplicates(t *testing.T) {
	noDuplicates(t, "CompanyCores", CompanyCores)
	noDuplicates(t, "CompanySuffixes", CompanySuffixes)
	noDuplicates(t, "KnownOrgs", KnownOrgs)
	noDuplicates(t, "FirstNames", FirstNames)
	noDuplicates(t, "LastNames", LastNames)
	noDuplicates(t, "Designations", Designations)
	noDuplicates(t, "Places", Places)
	noDuplicates(t, "Products", Products)
	noDuplicates(t, "UnknownOrgCores", UnknownOrgCores)
	noDuplicates(t, "UnknownSurnames", UnknownSurnames)
}

// The unknown lists must be disjoint from the known ones — their whole
// purpose is to be invisible to the NER.
func TestUnknownListsAreDisjoint(t *testing.T) {
	known := map[string]bool{}
	for _, c := range CompanyCores {
		known[strings.ToLower(c)] = true
	}
	for _, c := range KnownOrgs {
		known[strings.ToLower(c)] = true
	}
	for _, u := range UnknownOrgCores {
		if known[strings.ToLower(u)] {
			t.Errorf("UnknownOrgCores contains known org %q", u)
		}
	}
	knownSurnames := map[string]bool{}
	for _, s := range LastNames {
		knownSurnames[strings.ToLower(s)] = true
	}
	for _, u := range UnknownSurnames {
		if knownSurnames[strings.ToLower(u)] {
			t.Errorf("UnknownSurnames contains known surname %q", u)
		}
	}
}

// Company cores must not collide with suffixes, months, or designations:
// the NER's longest-match scan depends on these being distinguishable.
func TestCompanyCoresAvoidReservedWords(t *testing.T) {
	reserved := map[string]bool{}
	for _, s := range CompanySuffixes {
		reserved[strings.ToLower(s)] = true
	}
	for _, m := range Months {
		reserved[strings.ToLower(m)] = true
	}
	for _, d := range Designations {
		reserved[strings.ToLower(d)] = true
	}
	for _, c := range CompanyCores {
		if reserved[strings.ToLower(c)] {
			t.Errorf("CompanyCores entry %q collides with a reserved word", c)
		}
	}
}

func TestInventorySizes(t *testing.T) {
	// The generator's statistics depend on reasonably wide inventories.
	if len(CompanyCores) < 50 {
		t.Errorf("CompanyCores too small: %d", len(CompanyCores))
	}
	if len(FirstNames) < 40 || len(LastNames) < 40 {
		t.Errorf("name inventories too small: %d/%d", len(FirstNames), len(LastNames))
	}
	if len(Places) < 30 {
		t.Errorf("Places too small: %d", len(Places))
	}
	if len(Designations) < 20 {
		t.Errorf("Designations too small: %d", len(Designations))
	}
}

func TestMonthsAndWeekdays(t *testing.T) {
	if len(Months) != 12 {
		t.Errorf("Months = %d, want 12", len(Months))
	}
	if len(Weekdays) != 7 {
		t.Errorf("Weekdays = %d, want 7", len(Weekdays))
	}
	if len(Quarters) != 4 {
		t.Errorf("Quarters = %d, want 4", len(Quarters))
	}
}
