package snippet

import (
	"strings"
	"testing"
	"testing/quick"
)

const sixSentences = "One deal closed. Two mergers failed. Three firms grew. Four boards met. Five chiefs resigned. Six offers landed."

func TestSplitDefaultN(t *testing.T) {
	g := Generator{}
	got := g.Split("d1", sixSentences)
	if len(got) != 2 {
		t.Fatalf("got %d snippets, want 2: %+v", len(got), got)
	}
	if got[0].SentFrom != 0 || got[0].SentTo != 3 {
		t.Errorf("first window = [%d,%d), want [0,3)", got[0].SentFrom, got[0].SentTo)
	}
	if got[1].SentFrom != 3 || got[1].SentTo != 6 {
		t.Errorf("second window = [%d,%d), want [3,6)", got[1].SentFrom, got[1].SentTo)
	}
}

func TestSplitTrailingShortWindow(t *testing.T) {
	g := Generator{N: 4}
	got := g.Split("d1", sixSentences)
	if len(got) != 2 {
		t.Fatalf("got %d snippets, want 2", len(got))
	}
	if got[1].SentTo-got[1].SentFrom != 2 {
		t.Errorf("trailing window size = %d, want 2", got[1].SentTo-got[1].SentFrom)
	}
}

func TestSplitOverlapping(t *testing.T) {
	g := Generator{N: 3, Stride: 1}
	got := g.Split("d1", sixSentences)
	if len(got) != 4 {
		t.Fatalf("got %d snippets, want 4 (windows 0-3,1-4,2-5,3-6)", len(got))
	}
	for i, s := range got {
		if s.SentFrom != i {
			t.Errorf("window %d starts at %d", i, s.SentFrom)
		}
	}
}

func TestSplitIDsAndProvenance(t *testing.T) {
	g := Generator{}
	got := g.Split("doc-7", sixSentences)
	if got[0].ID != "doc-7#0" || got[1].ID != "doc-7#1" {
		t.Errorf("ids = %q, %q", got[0].ID, got[1].ID)
	}
	for _, s := range got {
		if s.DocID != "doc-7" {
			t.Errorf("DocID = %q", s.DocID)
		}
	}
}

func TestSplitByteOffsets(t *testing.T) {
	g := Generator{}
	for _, s := range g.Split("d", sixSentences) {
		sub := sixSentences[s.Start:s.End]
		if !strings.HasPrefix(sub, strings.SplitN(s.Text, " ", 2)[0]) {
			t.Errorf("span [%d,%d) = %q does not match %q", s.Start, s.End, sub, s.Text)
		}
	}
}

func TestSplitEmptyDocument(t *testing.T) {
	g := Generator{}
	if got := g.Split("d", ""); got != nil {
		t.Errorf("empty doc: got %+v", got)
	}
}

func TestSplitSingleSentence(t *testing.T) {
	g := Generator{}
	got := g.Split("d", "Only one sentence here.")
	if len(got) != 1 || got[0].Text != "Only one sentence here." {
		t.Fatalf("got %+v", got)
	}
}

// Property: every sentence index is covered, windows are in order, and no
// window exceeds N sentences.
func TestSplitPropertyCoverage(t *testing.T) {
	g := Generator{N: 3}
	f := func(raw string) bool {
		snips := g.Split("d", raw)
		last := 0
		for _, s := range snips {
			if s.SentFrom != last || s.SentTo <= s.SentFrom || s.SentTo-s.SentFrom > 3 {
				return false
			}
			last = s.SentTo
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSplit(b *testing.B) {
	g := Generator{}
	doc := strings.Repeat(sixSentences+" ", 20)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Split("d", doc)
	}
}
