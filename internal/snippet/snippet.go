// Package snippet implements ETAP's snippet generator (Section 3.1): each
// document is split into snippets, where a snippet is a group of n
// consecutive sentences. "The choice of operating at the snippet level was
// motivated by the observation that a snippet conveys a precise piece of
// information, in contrast with the entire document".
package snippet

import (
	"fmt"

	"etap/internal/textproc"
)

// DefaultN is the snippet size used throughout the paper ("We have used
// n = 3 in our system").
const DefaultN = 3

// Snippet is a group of consecutive sentences from one document.
type Snippet struct {
	ID       string // stable identifier: "<docID>#<index>"
	DocID    string // source document identifier
	Index    int    // zero-based snippet index within the document
	Text     string // the sentences joined with single spaces
	SentFrom int    // index of the first sentence in the document
	SentTo   int    // index one past the last sentence
	Start    int    // byte offset of the snippet in the document
	End      int    // byte offset one past the end
}

// Generator splits documents into fixed-size sentence windows.
type Generator struct {
	// N is the number of consecutive sentences per snippet; 0 means
	// DefaultN.
	N int
	// Stride is the number of sentences to advance between windows;
	// 0 means non-overlapping windows (stride == N).
	Stride int
}

// Split chunks the document text into snippets. A trailing window shorter
// than N sentences is still emitted (documents rarely divide evenly), so
// every sentence belongs to at least one snippet.
func (g Generator) Split(docID, text string) []Snippet {
	n := g.N
	if n <= 0 {
		n = DefaultN
	}
	stride := g.Stride
	if stride <= 0 {
		stride = n
	}

	sentences := textproc.SplitSentences(text)
	if len(sentences) == 0 {
		return nil
	}

	var out []Snippet
	index := 0
	for from := 0; from < len(sentences); from += stride {
		to := from + n
		if to > len(sentences) {
			to = len(sentences)
		}
		out = append(out, Snippet{
			ID:       fmt.Sprintf("%s#%d", docID, index),
			DocID:    docID,
			Index:    index,
			Text:     joinSentences(sentences[from:to]),
			SentFrom: from,
			SentTo:   to,
			Start:    sentences[from].Start,
			End:      sentences[to-1].End,
		})
		index++
		if to == len(sentences) {
			break
		}
	}
	return out
}

func joinSentences(ss []textproc.Sentence) string {
	if len(ss) == 1 {
		return ss[0].Text
	}
	n := 0
	for _, s := range ss {
		n += len(s.Text) + 1
	}
	b := make([]byte, 0, n)
	for i, s := range ss {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, s.Text...)
	}
	return string(b)
}
