package experiments

import (
	"testing"

	"etap/internal/corpus"
)

func TestRankingQuality(t *testing.T) {
	env := Build(smallSetup(61))
	for _, d := range []corpus.Driver{corpus.MergersAcquisitions, corpus.ChangeInManagement} {
		res := RankingQuality(env, d)
		t.Logf("%s", res)
		if res.Events == 0 || res.Positives == 0 {
			t.Fatalf("%s: empty result %+v", d, res)
		}
		// The ranked list must be strongly better than random: the
		// specialist reads the top, and the top must be dense in true
		// trigger events.
		if res.PAt10 < 0.6 {
			t.Errorf("%s: P@10 = %.2f, want >= 0.6", d, res.PAt10)
		}
		if res.AUC < 0.8 {
			t.Errorf("%s: AUC = %.3f, want >= 0.8", d, res.AUC)
		}
		base := float64(res.Positives) / float64(res.Events)
		if res.AvgPrec <= base {
			t.Errorf("%s: AP %.3f not above the random baseline %.3f", d, res.AvgPrec, base)
		}
	}
}

func TestRankingQualityCompanyValidity(t *testing.T) {
	env := Build(smallSetup(62))
	res := RankingQuality(env, corpus.MergersAcquisitions)
	if res.MRRTopValid < 0.5 {
		t.Errorf("top-10 companies valid = %.2f, want >= 0.5 (%s)", res.MRRTopValid, res)
	}
}
