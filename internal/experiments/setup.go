// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic web: Table 1 (P/R/F1 per
// driver), Figures 3-4 (relative information gain of PA vs IV per
// abstraction category), Figures 5-6 (positive snippets and noise in the
// results of the "new ceo" smart query), Figures 7-8 (ranked trigger
// events by classification score and by semantic orientation), plus the
// ablations DESIGN.md calls out.
package experiments

import (
	"fmt"

	"etap/internal/core"
	"etap/internal/corpus"
	"etap/internal/web"
)

// Setup fixes every size and seed of an experiment run. The defaults
// mirror Section 5.1 at reduced scale (the paper's 2M+ negative snippets
// are a size parameter, not a structural one).
type Setup struct {
	// Seed drives the whole run.
	Seed int64
	// World sizes.
	RelevantPerDriver     int // 0 -> 120
	BackgroundDocs        int // 0 -> 500
	HardNegativePerDriver int // 0 -> 40
	FamousEventDocs       int // 0 -> 8
	// Training sizes.
	TopK            int // docs per smart query; 0 -> 200 (paper: 200)
	TrainNegatives  int // 0 -> 3000
	PurePosTrain    int // pure positives used in training; 0 -> 40
	NoiseIterations int // 0 -> 2 (paper: "after two iterations")
	// Test sizes (paper: 72 M&A, 56 CiM, 2265 background).
	TestPositivesMA  int // 0 -> 72
	TestPositivesCIM int // 0 -> 56
	TestBackground   int // 0 -> 2265
	// MisleadingShare is the fraction of the background test set drawn
	// from near-miss snippets (biographies etc.); 0 -> 0.05.
	MisleadingShare float64
	// FeatureTopK is the classical feature-selection budget; 0 -> 80.
	FeatureTopK int
}

func (s Setup) withDefaults() Setup {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&s.RelevantPerDriver, 120)
	def(&s.BackgroundDocs, 500)
	def(&s.HardNegativePerDriver, 40)
	def(&s.FamousEventDocs, 8)
	def(&s.TopK, 200)
	def(&s.TrainNegatives, 3000)
	def(&s.PurePosTrain, 40)
	def(&s.NoiseIterations, 2)
	def(&s.TestPositivesMA, 72)
	def(&s.TestPositivesCIM, 56)
	def(&s.TestBackground, 2265)
	def(&s.FeatureTopK, 80)
	if s.MisleadingShare == 0 {
		s.MisleadingShare = 0.05
	}
	return s
}

// Env is a built experiment environment: the world, its web, and a
// generator reserved for emitting labeled evaluation data.
type Env struct {
	Setup Setup
	Docs  []corpus.Document
	Web   *web.Web
	// Gen continues the generation stream for pure positives and test
	// sets (held-out templates, same seed lineage).
	Gen *corpus.Generator
}

// Build constructs the environment for a setup.
func Build(s Setup) *Env {
	s = s.withDefaults()
	gen := corpus.NewGenerator(corpus.Config{
		Seed:                  s.Seed,
		RelevantPerDriver:     s.RelevantPerDriver,
		BackgroundDocs:        s.BackgroundDocs,
		HardNegativePerDriver: s.HardNegativePerDriver,
		FamousEventDocs:       s.FamousEventDocs,
	})
	docs := gen.World()
	return &Env{Setup: s, Docs: docs, Web: core.BuildWeb(docs), Gen: gen}
}

// System builds an ETAP system over the environment with the setup's
// training sizes and the given overrides applied.
func (e *Env) System(mutate func(*core.Config)) *core.System {
	cfg := core.Config{
		Seed:            e.Setup.Seed,
		TopK:            e.Setup.TopK,
		NegativeCount:   e.Setup.TrainNegatives,
		NoiseIterations: e.Setup.NoiseIterations,
		FeatureTopK:     e.Setup.FeatureTopK,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.New(e.Web, cfg)
}

// mustScore scores text under the driver's trained classifier,
// panicking on error like the rest of the harness: an unknown or
// untrained driver here is a bug in the experiment, not bad input.
func mustScore(sys *core.System, d corpus.Driver, text string) float64 {
	score, err := sys.Score(string(d), text)
	if err != nil {
		panic(fmt.Sprintf("experiments: score %s: %v", d, err))
	}
	return score
}

// driverSpec returns the built-in SalesDriver for d.
func driverSpec(d corpus.Driver) core.SalesDriver {
	for _, sd := range core.DefaultDrivers() {
		if sd.ID == string(d) {
			return sd
		}
	}
	panic("experiments: unknown driver " + d)
}
