package experiments

import (
	"fmt"
	"math"
	"strings"

	"etap/internal/annotate"
	"etap/internal/corpus"
	"etap/internal/feature"
	"etap/internal/rank"
	"etap/internal/snippet"
	"etap/internal/train"
	"etap/internal/web"
)

// FigureRIGResult is the data behind Figures 3 and 4: the PA-vs-IV
// relative information gains of every abstraction category, computed on
// the pure positive and negative classes of one driver.
type FigureRIGResult struct {
	Driver      corpus.Driver
	Comparisons []feature.RIGComparison
}

// FigureRIG computes the Figure 3 (mergers & acquisitions) or Figure 4
// (change in management) data: RIG for the PA and IV representations of
// each abstraction category over pure-positive vs negative snippets.
func FigureRIG(env *Env, d corpus.Driver) FigureRIGResult {
	ann := annotate.New(nil)
	var data []feature.Labeled
	for _, p := range env.Gen.PurePositives(d, 150) {
		data = append(data, feature.Labeled{Units: ann.Annotate(p.Text), Label: true})
	}
	for _, n := range env.Gen.BackgroundSnippets(300) {
		data = append(data, feature.Labeled{Units: ann.Annotate(n.Text), Label: false})
	}
	return FigureRIGResult{
		Driver:      d,
		Comparisons: feature.CompareRIG(data, feature.AllCategories()),
	}
}

// String renders the figure data as a table of log10 RIG values (the
// paper's Y axis "corresponds to the logarithm of the relative
// information gain"); categories that never occur print as "-".
func (r FigureRIGResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Abstraction category RIG (log10), %s:\n", r.Driver.Title())
	fmt.Fprintf(&b, "%-12s %12s %12s %10s\n", "category", "log10(PA)", "log10(IV)", "preferred")
	for _, c := range r.Comparisons {
		fmt.Fprintf(&b, "%-12s %12s %12s %10s\n",
			c.Category, logStr(c.PA), logStr(c.IV), c.Preferred())
	}
	return b.String()
}

func logStr(v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", math.Log10(v))
}

// QueryDemo is the data behind Figures 5 and 6: the top hit for the
// "new ceo" smart query, the valid trigger snippets on that page
// (Figure 5) and the page's noise snippets the filter rejects (Figure 6).
type QueryDemo struct {
	Query    string
	TopHit   *web.Page
	Positive []string // snippets passing the entity filter
	Noise    []string // snippets rejected by the filter
}

// Figures56 runs the paper's worked example: querying "new ceo" returns a
// page holding both trigger events and noise sentences.
func Figures56(env *Env) QueryDemo {
	const query = `"new ceo"`
	ann := annotate.New(nil)
	spec := train.DefaultSpecs()[corpus.ChangeInManagement]
	demo := QueryDemo{Query: query}

	hits := env.Web.Search(query, 10)
	if len(hits) == 0 {
		return demo
	}
	gen := snippet.Generator{N: snippet.DefaultN}
	split := func(p *web.Page) (pos, noise []string) {
		for _, sn := range gen.Split(p.URL, p.Text) {
			units := ann.Annotate(sn.Text)
			if spec.Filter(units) {
				pos = append(pos, sn.Text)
			} else {
				noise = append(noise, sn.Text)
			}
		}
		return pos, noise
	}
	// Prefer a highly-ranked page that illustrates both sides, like the
	// paper's Figures 5 and 6 (one page, triggers and noise together).
	for _, h := range hits {
		pos, noise := split(h)
		if demo.TopHit == nil || (len(pos) > 0 && len(noise) > 0 && (len(demo.Positive) == 0 || len(demo.Noise) == 0)) {
			demo.TopHit, demo.Positive, demo.Noise = h, pos, noise
		}
		if len(demo.Positive) > 0 && len(demo.Noise) > 0 {
			break
		}
	}
	return demo
}

// RankingDemo is the data behind Figures 7 and 8: a ranked list of
// trigger events.
type RankingDemo struct {
	Driver corpus.Driver
	Events []rank.Ranked
}

// Figure7 trains the change-in-management driver and ranks its extracted
// trigger events by classification score, as in the paper's screenshot.
func Figure7(env *Env, topK int) RankingDemo {
	return rankingDemo(env, corpus.ChangeInManagement, topK, false)
}

// Figure8 trains the revenue-growth driver and ranks its extracted
// trigger events by semantic-orientation score.
func Figure8(env *Env, topK int) RankingDemo {
	return rankingDemo(env, corpus.RevenueGrowth, topK, true)
}

func rankingDemo(env *Env, d corpus.Driver, topK int, byOrientation bool) RankingDemo {
	sys := env.System(nil)
	var pure []string
	for _, p := range env.Gen.PurePositives(d, env.Setup.withDefaults().PurePosTrain) {
		pure = append(pure, p.Text)
	}
	if _, err := sys.AddDriver(driverSpec(d), pure); err != nil {
		panic(fmt.Sprintf("experiments: figure demo %s: %v", d, err))
	}

	var pages []*web.Page
	for _, doc := range env.Docs {
		if p, ok := env.Web.Page(doc.URL); ok {
			pages = append(pages, p)
		}
	}
	events, err := sys.ExtractEvents(string(d), pages, 0.5)
	if err != nil {
		panic(err)
	}
	var ranked []rank.Ranked
	if byOrientation {
		ranked = rank.ByOrientation(events)
	} else {
		ranked = rank.ByScore(events)
	}
	if topK > 0 && len(ranked) > topK {
		ranked = ranked[:topK]
	}
	return RankingDemo{Driver: d, Events: ranked}
}

// String renders the ranking the way the ETAP screenshots do: rank,
// score, company, snippet.
func (r RankingDemo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ranked trigger events, %s:\n", r.Driver.Title())
	for _, e := range r.Events {
		text := e.Text
		if len(text) > 100 {
			text = text[:100] + "..."
		}
		fmt.Fprintf(&b, "%3d. [score %.3f, orient %+.1f] %-22s %s\n",
			e.Rank, e.Score, e.Orientation, e.Company, text)
	}
	return b.String()
}
