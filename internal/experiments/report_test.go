package experiments

import (
	"strings"
	"testing"
)

func TestReportContainsEverySection(t *testing.T) {
	env := Build(smallSetup(71))
	report := Report(env)
	for _, section := range []string{
		"## Table 1",
		"## Figure 3",
		"## Figure 4",
		"## Figures 5-6",
		"## Figure 7",
		"## Figure 8",
		"## Ranking quality",
		"## Threshold sweep",
		"## Ablations",
		"### feature abstraction",
		"### noise-elimination iterations",
		"### noise-handling strategy",
		"### classifier family",
		"### snippet size n",
		"### NER miss rate",
	} {
		if !strings.Contains(report, section) {
			t.Errorf("report missing section %q", section)
		}
	}
	// Paper reference numbers included for comparison.
	if !strings.Contains(report, "0.744") || !strings.Contains(report, "0.715") {
		t.Error("paper numbers absent from Table 1 section")
	}
	// Markdown tables are well formed (no stray empty header rows).
	if strings.Contains(report, "||") {
		t.Error("malformed markdown table")
	}
}
