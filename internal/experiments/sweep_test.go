package experiments

import (
	"testing"

	"etap/internal/classify"
	"etap/internal/corpus"
)

func TestThresholdSweep(t *testing.T) {
	env := Build(smallSetup(91))
	res := ThresholdSweep(env, corpus.ChangeInManagement)
	t.Logf("\n%s", res)
	if len(res.Curve) == 0 {
		t.Fatal("empty curve")
	}
	if res.BestF1 < res.At05.F1()-1e-9 {
		t.Errorf("best F1 (%.3f) below the 0.5 point (%.3f)", res.BestF1, res.At05.F1())
	}
	// High-precision operation must be available at moderate recall —
	// the sales-team use case of reading only the surest leads.
	if p := classify.InterpolatedPrecisionAt(res.Curve, 0.5); p < 0.6 {
		t.Errorf("interpolated P@R>=0.5 = %.3f, want >= 0.6", p)
	}
}

func TestThresholdSweepDeterministic(t *testing.T) {
	a := ThresholdSweep(Build(smallSetup(92)), corpus.MergersAcquisitions)
	b := ThresholdSweep(Build(smallSetup(92)), corpus.MergersAcquisitions)
	if a.BestF1 != b.BestF1 || a.At05 != b.At05 {
		t.Fatal("sweep not deterministic")
	}
}
