package experiments

import (
	"fmt"
	"strings"

	"etap/internal/classify"
	"etap/internal/core"
	"etap/internal/corpus"
	"etap/internal/feature"
	"etap/internal/rank"
	"etap/internal/web"
)

// AblationRow is one configuration's measured quality on the Table 1
// protocol.
type AblationRow struct {
	Name     string
	Driver   corpus.Driver
	Measured classify.Metrics
}

// AblationResult is a set of rows sharing one varied dimension.
type AblationResult struct {
	Dimension string
	Rows      []AblationRow
}

// String renders the ablation as a table.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", r.Dimension)
	fmt.Fprintf(&b, "%-28s %-24s %9s %9s %9s\n", "configuration", "driver", "P", "R", "F1")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %-24s %9.3f %9.3f %9.3f\n",
			row.Name, row.Driver.Title(),
			row.Measured.Precision(), row.Measured.Recall(), row.Measured.F1())
	}
	return b.String()
}

// evalProtocol runs the Table 1 train/evaluate protocol for one driver on
// a fresh system configured by mutate, reusing the environment's test
// pools. It returns the measured metrics.
func evalProtocol(env *Env, d corpus.Driver, nTestPos int, mutate func(*core.Config)) classify.Metrics {
	s := env.Setup
	sys := env.System(mutate)

	purePool := env.Gen.PurePositives(d, s.PurePosTrain+nTestPos)
	var pureTexts []string
	for _, p := range purePool[:s.PurePosTrain] {
		pureTexts = append(pureTexts, p.Text)
	}
	if _, err := sys.AddDriver(driverSpec(d), pureTexts); err != nil {
		panic(fmt.Sprintf("experiments: ablation %s: %v", d, err))
	}

	// Same composition as Table 1: the full misleading budget is split
	// across the two drivers there, so one driver's share is half.
	nMislead := int(float64(s.TestBackground)*s.MisleadingShare) / 2
	var negTest []corpus.LabeledSnippet
	negTest = append(negTest, env.Gen.MisleadingSnippets(d, nMislead)...)
	negTest = append(negTest, env.Gen.BackgroundSnippets(s.TestBackground-nMislead)...)

	var m classify.Metrics
	for _, p := range purePool[s.PurePosTrain:] {
		score := mustScore(sys, d, p.Text)
		m.Add(score >= 0.5, true)
	}
	for _, n := range negTest {
		score := mustScore(sys, d, n.Text)
		m.Add(score >= 0.5, false)
	}
	return m
}

// AblationAbstraction compares the paper's feature abstraction against a
// raw bag-of-words baseline and the RIG-derived automatic policy.
func AblationAbstraction(env *Env, d corpus.Driver) AblationResult {
	res := AblationResult{Dimension: "feature abstraction"}
	configs := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"abstraction (paper)", nil},
		{"bag-of-words (no abstr.)", func(c *core.Config) { c.Policy = feature.BagOfWordsPolicy() }},
		{"auto policy (RIG)", func(c *core.Config) { c.AutoPolicy = true }},
	}
	for _, cfg := range configs {
		m := evalProtocol(env, d, 56, cfg.mutate)
		res.Rows = append(res.Rows, AblationRow{Name: cfg.name, Driver: d, Measured: m})
	}
	return res
}

// AblationNoiseIterations varies the number of noise-elimination rounds
// (1 = train once on the raw noisy set; 2 = the paper's setting).
func AblationNoiseIterations(env *Env, d corpus.Driver) AblationResult {
	res := AblationResult{Dimension: "noise-elimination iterations"}
	for _, iters := range []int{1, 2, 4} {
		iters := iters
		m := evalProtocol(env, d, 56, func(c *core.Config) { c.NoiseIterations = iters })
		res.Rows = append(res.Rows, AblationRow{
			Name: fmt.Sprintf("%d iteration(s)", iters), Driver: d, Measured: m,
		})
	}
	return res
}

// AblationNoiseStrategy compares the two noise-handling strategies the
// paper mentions: the Brodley-style elimination loop [3] it uses, and
// the semi-supervised EM of Nigam et al. [10] with the noisy positives
// treated as unlabeled data.
func AblationNoiseStrategy(env *Env, d corpus.Driver) AblationResult {
	res := AblationResult{Dimension: "noise-handling strategy"}
	configs := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"Brodley elimination (paper)", nil},
		{"EM over unlabeled [10]", func(c *core.Config) { c.SemiSupervised = true }},
	}
	for _, cfg := range configs {
		m := evalProtocol(env, d, 56, cfg.mutate)
		res.Rows = append(res.Rows, AblationRow{Name: cfg.name, Driver: d, Measured: m})
	}
	return res
}

// AblationClassifiers compares the classifier families on identical data.
func AblationClassifiers(env *Env, d corpus.Driver) AblationResult {
	res := AblationResult{Dimension: "classifier family"}
	kinds := []struct {
		name string
		kind core.ClassifierKind
	}{
		{"naive Bayes (paper)", core.NaiveBayes},
		{"linear SVM (Pegasos)", core.LinearSVM},
		{"weighted logistic regression", core.WeightedLogReg},
	}
	for _, k := range kinds {
		kind := k.kind
		m := evalProtocol(env, d, 56, func(c *core.Config) { c.Classifier = kind })
		res.Rows = append(res.Rows, AblationRow{Name: k.name, Driver: d, Measured: m})
	}
	return res
}

// AblationSnippetSize varies the snippet window n (the paper uses 3).
func AblationSnippetSize(env *Env, d corpus.Driver) AblationResult {
	res := AblationResult{Dimension: "snippet size n"}
	for _, n := range []int{1, 3, 5} {
		n := n
		m := evalProtocol(env, d, 56, func(c *core.Config) { c.SnippetN = n })
		res.Rows = append(res.Rows, AblationRow{
			Name: fmt.Sprintf("n = %d", n), Driver: d, Measured: m,
		})
	}
	return res
}

// NERAblationRow measures one miss rate: classification quality and, more
// importantly, company-attribution quality of the extracted trigger
// events — the paper's conclusion is that "wrong annotation of company
// and person names leads to incorrect trigger events".
type NERAblationRow struct {
	Name string
	// Measured is the Table 1-protocol classification quality.
	Measured classify.Metrics
	// Events is the number of trigger events extracted from the
	// driver's relevant pages.
	Events int
	// Attributed is the fraction of extracted events carrying a company
	// that matches the ground truth for the snippet.
	Attributed float64
}

// NERAblationResult bundles the rows.
type NERAblationResult struct {
	Driver corpus.Driver
	Rows   []NERAblationRow
}

// String renders the ablation as a table.
func (r NERAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: NER miss rate, %s\n", r.Driver.Title())
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %8s %12s\n", "miss rate", "P", "R", "F1", "events", "attributed")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %9.3f %9.3f %9.3f %8d %11.1f%%\n",
			row.Name, row.Measured.Precision(), row.Measured.Recall(),
			row.Measured.F1(), row.Events, row.Attributed*100)
	}
	return b.String()
}

// AblationNERMissRate injects recognizer errors, quantifying the paper's
// conclusion that "the overall result of ETAP is heavily dependent on the
// accuracy of the named entity recognizer": as the miss rate grows,
// extracted trigger events increasingly lack a correct subject company,
// even where classification quality holds up.
func AblationNERMissRate(env *Env, d corpus.Driver) NERAblationResult {
	s := env.Setup
	res := NERAblationResult{Driver: d}

	byURL := map[string]*corpus.Document{}
	var pages []*web.Page
	for i := range env.Docs {
		doc := &env.Docs[i]
		byURL[doc.URL] = doc
		if doc.Kind == corpus.KindRelevant && doc.Driver == d {
			if p, ok := env.Web.Page(doc.URL); ok {
				pages = append(pages, p)
			}
		}
	}

	for _, rate := range []float64{0, 0.2, 0.4} {
		rate := rate
		sys := env.System(func(c *core.Config) { c.MissRate = rate })
		purePool := env.Gen.PurePositives(d, s.PurePosTrain+56)
		var pureTexts []string
		for _, p := range purePool[:s.PurePosTrain] {
			pureTexts = append(pureTexts, p.Text)
		}
		if _, err := sys.AddDriver(driverSpec(d), pureTexts); err != nil {
			panic(fmt.Sprintf("experiments: NER ablation %s: %v", d, err))
		}

		var m classify.Metrics
		for _, p := range purePool[s.PurePosTrain:] {
			score := mustScore(sys, d, p.Text)
			m.Add(score >= 0.5, true)
		}
		for _, n := range env.Gen.BackgroundSnippets(800) {
			score := mustScore(sys, d, n.Text)
			m.Add(score >= 0.5, false)
		}

		events, err := sys.ExtractEvents(string(d), pages, 0.5)
		if err != nil {
			panic(err)
		}
		attributed := 0
		for _, ev := range events {
			url := ev.SnippetID[:strings.LastIndexByte(ev.SnippetID, '#')]
			doc := byURL[url]
			if doc == nil || ev.Company == "" {
				continue
			}
			for _, truth := range doc.TriggerCompanies(ev.Text, d) {
				if rank.SameCompany(truth, ev.Company) {
					attributed++
					break
				}
			}
		}
		frac := 0.0
		if len(events) > 0 {
			frac = float64(attributed) / float64(len(events))
		}
		res.Rows = append(res.Rows, NERAblationRow{
			Name:       fmt.Sprintf("miss rate %.0f%%", rate*100),
			Measured:   m,
			Events:     len(events),
			Attributed: frac,
		})
	}
	return res
}
