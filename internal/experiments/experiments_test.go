package experiments

import (
	"strings"
	"testing"

	"etap/internal/corpus"
	"etap/internal/feature"
)

// smallSetup keeps unit tests fast; bench_test.go at the repo root runs
// the full-size configuration.
func smallSetup(seed int64) Setup {
	return Setup{
		Seed:                  seed,
		RelevantPerDriver:     60,
		BackgroundDocs:        200,
		HardNegativePerDriver: 20,
		FamousEventDocs:       6,
		TopK:                  80,
		TrainNegatives:        1000,
		PurePosTrain:          30,
		TestPositivesMA:       40,
		TestPositivesCIM:      40,
		TestBackground:        600,
	}
}

func TestTable1Shape(t *testing.T) {
	// Full-size setup: the paper's ordering (M&A over CiM) is a
	// full-scale property; small worlds are dominated by variance.
	env := Build(Setup{Seed: 7})
	res := Table1(env)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var ma, cim Table1Row
	for _, r := range res.Rows {
		switch r.Driver {
		case corpus.MergersAcquisitions:
			ma = r
		case corpus.ChangeInManagement:
			cim = r
		}
	}
	t.Logf("\n%s", res)

	// Shape assertions from the paper:
	// both drivers work substantially better than chance,
	if ma.Measured.F1() < 0.55 {
		t.Errorf("M&A F1 = %.3f, want >= 0.55", ma.Measured.F1())
	}
	if cim.Measured.F1() < 0.5 {
		t.Errorf("CiM F1 = %.3f, want >= 0.5", cim.Measured.F1())
	}
	// and M&A outperforms CiM (biography outliers).
	if ma.Measured.F1() <= cim.Measured.F1() {
		t.Errorf("M&A F1 (%.3f) should exceed CiM F1 (%.3f)",
			ma.Measured.F1(), cim.Measured.F1())
	}
}

func TestTable1Deterministic(t *testing.T) {
	a := Table1(Build(smallSetup(2)))
	b := Table1(Build(smallSetup(2)))
	for i := range a.Rows {
		if a.Rows[i].Measured != b.Rows[i].Measured {
			t.Fatalf("row %d differs: %v vs %v", i, a.Rows[i].Measured, b.Rows[i].Measured)
		}
	}
}

func TestFigureRIGShape(t *testing.T) {
	env := Build(smallSetup(3))
	for _, d := range []corpus.Driver{corpus.MergersAcquisitions, corpus.ChangeInManagement} {
		res := FigureRIG(env, d)
		if len(res.Comparisons) == 0 {
			t.Fatalf("%s: no comparisons", d)
		}
		byCat := map[string]feature.RIGComparison{}
		for _, c := range res.Comparisons {
			byCat[c.Category.String()] = c
		}
		// Paper observation 1: content POS (vb, nn, jj) keep IV.
		for _, cat := range []string{"vb", "nn"} {
			c := byCat[cat]
			if c.IV <= c.PA {
				t.Errorf("%s/%s: IV (%.4f) should beat PA (%.4f)", d, cat, c.IV, c.PA)
			}
		}
		// Paper observation 2: ORG should prefer PA.
		org := byCat["ORG"]
		if org.PA <= org.IV {
			t.Errorf("%s/ORG: PA (%.4f) should beat IV (%.4f)", d, org.PA, org.IV)
		}
		t.Logf("\n%s", res)
	}
}

func TestFigures56Demo(t *testing.T) {
	env := Build(smallSetup(4))
	demo := Figures56(env)
	if demo.TopHit == nil {
		t.Fatal("no top hit for \"new ceo\"")
	}
	if len(demo.Positive) == 0 {
		t.Error("no positive snippets on the top hit (Figure 5)")
	}
	if len(demo.Noise) == 0 {
		t.Error("no noise snippets on the top hit (Figure 6)")
	}
	if !strings.Contains(strings.ToLower(demo.TopHit.Text), "new") {
		t.Error("top hit does not mention the query")
	}
}

func TestFigure7Ranking(t *testing.T) {
	env := Build(smallSetup(5))
	demo := Figure7(env, 20)
	if len(demo.Events) == 0 {
		t.Fatal("no ranked events")
	}
	for i := 1; i < len(demo.Events); i++ {
		if demo.Events[i].Score > demo.Events[i-1].Score {
			t.Fatalf("ranking not by descending score at %d", i)
		}
		if demo.Events[i].Rank != i+1 {
			t.Fatalf("rank %d wrong", i)
		}
	}
}

func TestFigure8Ranking(t *testing.T) {
	env := Build(smallSetup(6))
	demo := Figure8(env, 20)
	if len(demo.Events) == 0 {
		t.Fatal("no ranked events")
	}
	nonZero := 0
	for i := 1; i < len(demo.Events); i++ {
		a := demo.Events[i-1].Orientation
		b := demo.Events[i].Orientation
		if absf(b) > absf(a) {
			t.Fatalf("ranking not by descending |orientation| at %d", i)
		}
		if demo.Events[i].Orientation != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Error("no orientation scores in the ranking")
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
