package experiments

import (
	"fmt"
	"strings"

	"etap/internal/classify"
	"etap/internal/corpus"
	"etap/internal/rank"
	"etap/internal/web"
)

// RankingQualityResult measures how good the ranked trigger-event list
// (the Figure 7 artifact) actually is against ground truth: the domain
// specialist reads it top-down, so precision at the top matters most.
type RankingQualityResult struct {
	Driver      corpus.Driver
	Events      int     // candidate snippets scored
	Positives   int     // snippets with a true trigger event
	PAt10       float64 // precision among the 10 highest ranked
	PAt25       float64
	AvgPrec     float64
	AUC         float64
	MRRTopValid float64 // fraction of top-10 companies (Eq. 2) with a true event
}

// RankingQuality trains driver d, scores every snippet of the world
// (threshold 0 — the full ranked list), labels each against ground
// truth, and computes ranked-retrieval measures plus the validity of the
// Equation 2 company ranking.
func RankingQuality(env *Env, d corpus.Driver) RankingQualityResult {
	s := env.Setup
	sys := env.System(nil)
	var pure []string
	for _, p := range env.Gen.PurePositives(d, s.PurePosTrain) {
		pure = append(pure, p.Text)
	}
	if _, err := sys.AddDriver(driverSpec(d), pure); err != nil {
		panic(fmt.Sprintf("experiments: ranking quality %s: %v", d, err))
	}

	byURL := map[string]*corpus.Document{}
	var pages []*web.Page
	for i := range env.Docs {
		doc := &env.Docs[i]
		byURL[doc.URL] = doc
		if p, ok := env.Web.Page(doc.URL); ok {
			pages = append(pages, p)
		}
	}

	// Threshold just above zero: keep the entire scored list.
	events, err := sys.ExtractEvents(string(d), pages, 1e-9)
	if err != nil {
		panic(err)
	}

	truth := func(ev rank.Event) bool {
		url := ev.SnippetID[:strings.LastIndexByte(ev.SnippetID, '#')]
		doc := byURL[url]
		return doc != nil && doc.ContainsTrigger(ev.Text, d)
	}

	items := make([]classify.ScoredLabel, len(events))
	positives := 0
	for i, ev := range events {
		label := truth(ev)
		if label {
			positives++
		}
		items[i] = classify.ScoredLabel{Score: ev.Score, Label: label}
	}

	// Company ranking validity: of the top-10 companies by MRR over the
	// thresholded (0.5) list, how many have at least one true event?
	companiesValid := 0.0
	strong := make([]rank.Event, 0, len(events))
	for _, ev := range events {
		if ev.Score >= 0.5 {
			strong = append(strong, ev)
		}
	}
	ranked := rank.ByScore(strong)
	trueCompanies := map[string]bool{}
	for _, ev := range ranked {
		if truth(ev.Event) {
			for _, c := range byURL[ev.SnippetID[:strings.LastIndexByte(ev.SnippetID, '#')]].TriggerCompanies(ev.Text, d) {
				trueCompanies[rank.Canonical(c)] = true
			}
		}
	}
	top := rank.CompanyMRR(ranked)
	if len(top) > 10 {
		top = top[:10]
	}
	if len(top) > 0 {
		valid := 0
		for _, c := range top {
			if trueCompanies[rank.Canonical(c.Company)] {
				valid++
			}
		}
		companiesValid = float64(valid) / float64(len(top))
	}

	return RankingQualityResult{
		Driver:      d,
		Events:      len(events),
		Positives:   positives,
		PAt10:       classify.PrecisionAtK(items, 10),
		PAt25:       classify.PrecisionAtK(items, 25),
		AvgPrec:     classify.AveragePrecision(items),
		AUC:         classify.AUC(items),
		MRRTopValid: companiesValid,
	}
}

// String renders the result.
func (r RankingQualityResult) String() string {
	return fmt.Sprintf(
		"Ranking quality, %s: %d snippets (%d true), P@10=%.2f P@25=%.2f AP=%.3f AUC=%.3f, top-10 companies valid=%.0f%%",
		r.Driver.Title(), r.Events, r.Positives, r.PAt10, r.PAt25,
		r.AvgPrec, r.AUC, r.MRRTopValid*100)
}
