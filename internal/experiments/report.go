package experiments

import (
	"fmt"
	"strings"

	"etap/internal/classify"
	"etap/internal/corpus"
)

// Report runs the complete evaluation — Table 1, Figures 3-8, ranking
// quality, and every ablation — and renders a self-contained markdown
// document. cmd/experiments -md writes it to disk, so the measured
// numbers behind EXPERIMENTS.md are regenerable from one command.
func Report(env *Env) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# ETAP evaluation report (seed %d)\n\n", env.Setup.Seed)
	fmt.Fprintf(&b, "World: %d documents; training: top-%d pages/query, %d train negatives, %d noise iterations, feature top-%d.\n\n",
		len(env.Docs), env.Setup.TopK, env.Setup.TrainNegatives,
		env.Setup.NoiseIterations, env.Setup.FeatureTopK)

	// Table 1.
	b.WriteString("## Table 1 — precision / recall / F1\n\n")
	b.WriteString("| Sales driver | P | R | F1 | paper P | paper R | paper F1 |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, row := range Table1(env).Rows {
		fmt.Fprintf(&b, "| %s | %.3f | %.3f | %.3f | %.3f | %.3f | %.3f |\n",
			row.Driver.Title(),
			row.Measured.Precision(), row.Measured.Recall(), row.Measured.F1(),
			row.PaperP, row.PaperR, row.PaperF1)
	}
	b.WriteString("\n")

	// Figures 3-4.
	for _, fig := range []struct {
		title  string
		driver corpus.Driver
	}{
		{"Figure 3 — RIG of PA vs IV (mergers & acquisitions)", corpus.MergersAcquisitions},
		{"Figure 4 — RIG of PA vs IV (change in management)", corpus.ChangeInManagement},
	} {
		fmt.Fprintf(&b, "## %s\n\n", fig.title)
		b.WriteString("| category | log10(PA) | log10(IV) | preferred |\n|---|---|---|---|\n")
		for _, c := range FigureRIG(env, fig.driver).Comparisons {
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n",
				c.Category, logStr(c.PA), logStr(c.IV), c.Preferred())
		}
		b.WriteString("\n")
	}

	// Figures 5-6.
	demo := Figures56(env)
	b.WriteString("## Figures 5-6 — the \"new ceo\" smart query\n\n")
	if demo.TopHit != nil {
		fmt.Fprintf(&b, "Top hit: %s (`%s`)\n\n", demo.TopHit.Title, demo.TopHit.URL)
	}
	b.WriteString("Positive snippets (Figure 5):\n\n")
	for _, s := range demo.Positive {
		fmt.Fprintf(&b, "- %s\n", s)
	}
	b.WriteString("\nNoise rejected by the filter (Figure 6):\n\n")
	for _, s := range demo.Noise {
		fmt.Fprintf(&b, "- %s\n", s)
	}
	b.WriteString("\n")

	// Figures 7-8.
	for _, fig := range []struct {
		title string
		demo  RankingDemo
	}{
		{"Figure 7 — ranked by classification score", Figure7(env, 10)},
		{"Figure 8 — ranked by semantic orientation", Figure8(env, 10)},
	} {
		fmt.Fprintf(&b, "## %s\n\n", fig.title)
		b.WriteString("| rank | score | orientation | company | snippet |\n|---|---|---|---|---|\n")
		for _, e := range fig.demo.Events {
			text := e.Text
			if len(text) > 90 {
				text = text[:90] + "..."
			}
			fmt.Fprintf(&b, "| %d | %.3f | %+.1f | %s | %s |\n",
				e.Rank, e.Score, e.Orientation, e.Company, text)
		}
		b.WriteString("\n")
	}

	// Ranking quality.
	b.WriteString("## Ranking quality\n\n")
	b.WriteString("| driver | snippets | true | P@10 | P@25 | AP | AUC | top-10 companies valid |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, d := range corpus.Drivers {
		r := RankingQuality(env, d)
		fmt.Fprintf(&b, "| %s | %d | %d | %.2f | %.2f | %.3f | %.3f | %.0f%% |\n",
			r.Driver.Title(), r.Events, r.Positives, r.PAt10, r.PAt25,
			r.AvgPrec, r.AUC, r.MRRTopValid*100)
	}
	b.WriteString("\n")

	// Threshold sweep.
	b.WriteString("## Threshold sweep\n\n")
	b.WriteString("| driver | P/R/F1 at 0.5 | best F1 point | interp. P@R>=0.7 |\n|---|---|---|---|\n")
	for _, d := range []corpus.Driver{corpus.MergersAcquisitions, corpus.ChangeInManagement} {
		sw := ThresholdSweep(env, d)
		fmt.Fprintf(&b, "| %s | %.3f/%.3f/%.3f | F1=%.3f @ t=%.2f | %.3f |\n",
			d.Title(), sw.At05.Precision(), sw.At05.Recall(), sw.At05.F1(),
			sw.BestF1, sw.Best.Threshold,
			classify.InterpolatedPrecisionAt(sw.Curve, 0.7))
	}
	b.WriteString("\n")

	// Ablations.
	b.WriteString("## Ablations\n\n")
	for _, abl := range []AblationResult{
		AblationAbstraction(env, corpus.ChangeInManagement),
		AblationNoiseIterations(env, corpus.MergersAcquisitions),
		AblationNoiseStrategy(env, corpus.ChangeInManagement),
		AblationClassifiers(env, corpus.ChangeInManagement),
		AblationSnippetSize(env, corpus.ChangeInManagement),
	} {
		fmt.Fprintf(&b, "### %s\n\n", abl.Dimension)
		b.WriteString("| configuration | P | R | F1 |\n|---|---|---|---|\n")
		for _, row := range abl.Rows {
			fmt.Fprintf(&b, "| %s | %.3f | %.3f | %.3f |\n",
				row.Name, row.Measured.Precision(), row.Measured.Recall(), row.Measured.F1())
		}
		b.WriteString("\n")
	}
	ner := AblationNERMissRate(env, corpus.ChangeInManagement)
	b.WriteString("### NER miss rate\n\n")
	b.WriteString("| miss rate | F1 | events | attributed |\n|---|---|---|---|\n")
	for _, row := range ner.Rows {
		fmt.Fprintf(&b, "| %s | %.3f | %d | %.1f%% |\n",
			row.Name, row.Measured.F1(), row.Events, row.Attributed*100)
	}
	b.WriteString("\n")
	return b.String()
}
