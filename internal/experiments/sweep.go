package experiments

import (
	"fmt"
	"strings"

	"etap/internal/classify"
	"etap/internal/corpus"
)

// SweepResult captures the precision/recall trade-off of one driver's
// classifier over the Table 1 test set, with notable operating points.
type SweepResult struct {
	Driver corpus.Driver
	Curve  []classify.PRPoint
	// At05 is the paper's operating point (threshold 0.5).
	At05 classify.Metrics
	// Best is the F1-optimal point along the curve.
	Best   classify.PRPoint
	BestF1 float64
}

// ThresholdSweep trains driver d with the standard protocol and sweeps
// the decision threshold, exposing the whole precision/recall trade-off
// rather than the single 0.5 point of Table 1.
func ThresholdSweep(env *Env, d corpus.Driver) SweepResult {
	s := env.Setup
	sys := env.System(nil)
	purePool := env.Gen.PurePositives(d, s.PurePosTrain+56)
	var pureTexts []string
	for _, p := range purePool[:s.PurePosTrain] {
		pureTexts = append(pureTexts, p.Text)
	}
	if _, err := sys.AddDriver(driverSpec(d), pureTexts); err != nil {
		panic(fmt.Sprintf("experiments: sweep %s: %v", d, err))
	}

	// Same per-driver composition as Table 1 (see evalProtocol).
	nMislead := int(float64(s.TestBackground)*s.MisleadingShare) / 2
	var neg []corpus.LabeledSnippet
	neg = append(neg, env.Gen.MisleadingSnippets(d, nMislead)...)
	neg = append(neg, env.Gen.BackgroundSnippets(s.TestBackground-nMislead)...)

	var items []classify.ScoredLabel
	var at05 classify.Metrics
	score := func(text string, label bool) {
		p := mustScore(sys, d, text)
		items = append(items, classify.ScoredLabel{Score: p, Label: label})
		at05.Add(p >= 0.5, label)
	}
	for _, p := range purePool[s.PurePosTrain:] {
		score(p.Text, true)
	}
	for _, n := range neg {
		score(n.Text, false)
	}

	curve := classify.PRCurve(items)
	best, bestF1 := classify.BestF1(curve)
	return SweepResult{Driver: d, Curve: curve, At05: at05, Best: best, BestF1: bestF1}
}

// String renders a compact view: the 0.5 point, the best-F1 point, and
// interpolated precision at standard recall levels.
func (r SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Threshold sweep, %s:\n", r.Driver.Title())
	fmt.Fprintf(&b, "  at 0.5:   P=%.3f R=%.3f F1=%.3f\n",
		r.At05.Precision(), r.At05.Recall(), r.At05.F1())
	fmt.Fprintf(&b, "  best F1:  P=%.3f R=%.3f F1=%.3f at threshold %.3f\n",
		r.Best.Precision, r.Best.Recall, r.BestF1, r.Best.Threshold)
	for _, rec := range []float64{0.5, 0.7, 0.9} {
		fmt.Fprintf(&b, "  interpolated P@R>=%.1f: %.3f\n",
			rec, classify.InterpolatedPrecisionAt(r.Curve, rec))
	}
	return b.String()
}
