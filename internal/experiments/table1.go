package experiments

import (
	"fmt"
	"strings"

	"etap/internal/classify"
	"etap/internal/core"
	"etap/internal/corpus"
)

// PaperTable1 records the numbers the paper reports (Table 1: "Results
// after two iterations, using naïve Bayes classifier for the two sales
// drivers").
var PaperTable1 = map[corpus.Driver]struct{ P, R, F1 float64 }{
	corpus.MergersAcquisitions: {P: 0.744, R: 0.806, F1: 0.773},
	corpus.ChangeInManagement:  {P: 0.656, R: 0.786, F1: 0.715},
}

// Table1Row is one measured row next to the paper's numbers.
type Table1Row struct {
	Driver   corpus.Driver
	Measured classify.Metrics
	PaperP   float64
	PaperR   float64
	PaperF1  float64
	Training core.TrainingStats
}

// Table1Result is the full reproduction of Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces the paper's headline experiment: for mergers &
// acquisitions and change in management, train with noisy positives
// (smart queries + filters), a pure-positive training portion, and shared
// negatives, run two noise-elimination iterations of naïve Bayes, then
// evaluate on a common test set of held-out pure positives plus
// background snippets (including the misleading near-misses that drag
// change in management down in the paper).
func Table1(env *Env) Table1Result {
	s := env.Setup
	sys := env.System(nil)

	testDrivers := []struct {
		d     corpus.Driver
		nTest int
	}{
		{corpus.MergersAcquisitions, s.TestPositivesMA},
		{corpus.ChangeInManagement, s.TestPositivesCIM},
	}

	// Common negative test pool: background plus misleading near-misses
	// for both drivers.
	nMislead := int(float64(s.TestBackground) * s.MisleadingShare)
	perDriver := nMislead / 2
	var negTest []corpus.LabeledSnippet
	negTest = append(negTest, env.Gen.MisleadingSnippets(corpus.MergersAcquisitions, perDriver)...)
	negTest = append(negTest, env.Gen.MisleadingSnippets(corpus.ChangeInManagement, nMislead-perDriver)...)
	negTest = append(negTest, env.Gen.BackgroundSnippets(s.TestBackground-nMislead)...)

	var out Table1Result
	for _, td := range testDrivers {
		purePool := env.Gen.PurePositives(td.d, s.PurePosTrain+td.nTest)
		pureTrain := purePool[:s.PurePosTrain]
		pureTest := purePool[s.PurePosTrain:]

		var pureTexts []string
		for _, p := range pureTrain {
			pureTexts = append(pureTexts, p.Text)
		}
		stats, err := sys.AddDriver(driverSpec(td.d), pureTexts)
		if err != nil {
			panic(fmt.Sprintf("experiments: table1 %s: %v", td.d, err))
		}

		var m classify.Metrics
		for _, p := range pureTest {
			score := mustScore(sys, td.d, p.Text)
			m.Add(score >= 0.5, true)
		}
		for _, n := range negTest {
			score := mustScore(sys, td.d, n.Text)
			m.Add(score >= 0.5, false)
		}
		paper := PaperTable1[td.d]
		out.Rows = append(out.Rows, Table1Row{
			Driver:   td.d,
			Measured: m,
			PaperP:   paper.P,
			PaperR:   paper.R,
			PaperF1:  paper.F1,
			Training: stats,
		})
	}
	return out
}

// String renders the result in the paper's table layout, with the paper's
// numbers alongside.
func (r Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %9s %9s %9s   %s\n", "Sales driver", "Precision", "Recall", "F1", "(paper: P/R/F1)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %9.3f %9.3f %9.3f   (%.3f/%.3f/%.3f)\n",
			row.Driver.Title(),
			row.Measured.Precision(), row.Measured.Recall(), row.Measured.F1(),
			row.PaperP, row.PaperR, row.PaperF1)
	}
	return b.String()
}
