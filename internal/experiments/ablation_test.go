package experiments

import (
	"testing"

	"etap/internal/corpus"
)

func TestAblationAbstraction(t *testing.T) {
	env := Build(smallSetup(21))
	res := AblationAbstraction(env, corpus.ChangeInManagement)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	t.Logf("\n%s", res)
	for _, r := range res.Rows {
		if r.Measured.F1() <= 0 {
			t.Errorf("%s produced zero F1", r.Name)
		}
	}
}

func TestAblationNoiseIterations(t *testing.T) {
	env := Build(smallSetup(22))
	res := AblationNoiseIterations(env, corpus.MergersAcquisitions)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	t.Logf("\n%s", res)
}

func TestAblationNoiseStrategy(t *testing.T) {
	env := Build(smallSetup(26))
	res := AblationNoiseStrategy(env, corpus.ChangeInManagement)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	t.Logf("\n%s", res)
	for _, r := range res.Rows {
		if r.Measured.F1() < 0.3 {
			t.Errorf("%s collapsed: %v", r.Name, r.Measured)
		}
	}
}

func TestAblationClassifiers(t *testing.T) {
	env := Build(smallSetup(23))
	res := AblationClassifiers(env, corpus.ChangeInManagement)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Measured.F1() < 0.2 {
			t.Errorf("%s collapsed: %v", r.Name, r.Measured)
		}
	}
	t.Logf("\n%s", res)
}

func TestAblationSnippetSize(t *testing.T) {
	env := Build(smallSetup(24))
	res := AblationSnippetSize(env, corpus.ChangeInManagement)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	t.Logf("\n%s", res)
}

func TestAblationNERMissRateDegradesAttribution(t *testing.T) {
	env := Build(smallSetup(25))
	res := AblationNERMissRate(env, corpus.ChangeInManagement)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	t.Logf("\n%s", res)
	// The paper's conclusion: "wrong annotation of company and person
	// names leads to incorrect trigger events". Attribution quality must
	// fall as the recognizer misses more entities.
	if res.Rows[2].Attributed >= res.Rows[0].Attributed {
		t.Errorf("40%% NER misses did not hurt attribution: %.3f vs %.3f",
			res.Rows[2].Attributed, res.Rows[0].Attributed)
	}
	if res.Rows[0].Events == 0 {
		t.Error("no events extracted at zero miss rate")
	}
}
