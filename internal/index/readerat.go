package index

import "io"

// segmentData is the read path under an open segment: a random-access
// view of the file's bytes plus a Close that releases it. On Unix the
// view is an mmap — postings pages fault in on demand and compete for
// page cache instead of heap, which is what lets the index grow past
// RAM — elsewhere it degrades to pread on a kept-open file handle.
// Either way segment readers only see io.ReaderAt, so the search path
// is identical across platforms.
type segmentData interface {
	io.ReaderAt
	// Close releases the mapping or file handle. The caller guarantees
	// no ReadAt is in flight or issued afterwards.
	Close() error
}
