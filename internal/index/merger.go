package index

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// The background merger keeps the segment count logarithmic in corpus
// size under the tiered policy: a segment of d documents belongs to
// tier floor(log_mergeFactor(max(d/flushDocs, 1))), and whenever any
// tier accumulates mergeFactor segments, the mergeFactor oldest of
// that tier are compacted into one segment of (roughly) the next tier.
// Lower tiers merge first — they are the cheapest merges and the ones
// query fan-out pays for most often. Merge commits use exactly the
// same write-tmp / fsync / rename / manifest-commit protocol as
// flushes; input segments are only retired after the merged segment is
// committed, and their files are only deleted once the last in-flight
// search releases them (STORAGE.md §6).

// mergeLoop runs until Close, compacting whenever a flush (or reopen)
// kicks it and the policy finds an overflowing tier.
func (si *SegmentIndex) mergeLoop() {
	defer close(si.mergeDone)
	for {
		select {
		case <-si.stopCh:
			return
		case <-si.kickCh:
			for si.mergeOnce() {
				select {
				case <-si.stopCh:
					return
				default:
				}
			}
		}
	}
}

// tierOf buckets a segment by document count: tier 0 holds fresh
// flushes up to flushDocs*mergeFactor docs, each higher tier covers
// the next mergeFactor multiple.
func (si *SegmentIndex) tierOf(docs int) int {
	tier := 0
	limit := si.flushDocs * si.mergeFactor
	for docs >= limit && tier < 62 {
		tier++
		limit *= si.mergeFactor
	}
	return tier
}

// pickMerge selects the next merge under the tiered policy: the
// mergeFactor oldest segments of the lowest overflowing tier. Called
// with si.mu held.
func (si *SegmentIndex) pickMerge() []*segment {
	tiers := make(map[int][]*segment)
	lowest := -1
	for _, s := range si.segs {
		t := si.tierOf(len(s.ids))
		tiers[t] = append(tiers[t], s)
		if len(tiers[t]) >= si.mergeFactor && (lowest < 0 || t < lowest) {
			lowest = t
		}
	}
	if lowest < 0 {
		return nil
	}
	// si.segs is ordered by commit, and IDs are monotonic, so the first
	// mergeFactor entries of the tier are the oldest.
	return tiers[lowest][:si.mergeFactor]
}

// mergeOnce runs a single merge if the policy demands one, reporting
// whether it did any work. A failed merge leaves the inputs live and
// untouched, records the error, and stops further attempts until the
// next kick.
func (si *SegmentIndex) mergeOnce() bool {
	si.mu.RLock()
	inputs := si.pickMerge()
	si.mu.RUnlock()
	if inputs == nil {
		return false
	}

	//etaplint:ignore determinism -- metrics-only timing: the timestamp feeds the merge-duration histogram, never a result
	start := time.Now()

	si.manifestMu.Lock()
	id := si.man.NextID
	file := segmentFileName(id)
	tmpPath := filepath.Join(si.dir, file+tmpSuffix)
	ws, err := writeMergedSegment(tmpPath, inputs)
	if err == nil {
		if err = os.Rename(tmpPath, filepath.Join(si.dir, file)); err == nil {
			err = syncDir(si.dir)
		}
	}
	if err != nil {
		si.manifestMu.Unlock()
		si.noteErr(err)
		mSegMergeFailures.Inc()
		return false
	}
	seg, err := installSegment(filepath.Join(si.dir, file), id, ws)
	if err != nil {
		si.manifestMu.Unlock()
		si.noteErr(err)
		mSegMergeFailures.Inc()
		return false
	}
	retire := make(map[uint64]bool, len(inputs))
	for _, in := range inputs {
		retire[in.id] = true
	}
	next := si.man
	next.NextID = id + 1
	next.Generation++
	next.Segments = make([]manifestSegment, 0, len(si.man.Segments)+1-len(inputs))
	for _, ent := range si.man.Segments {
		if !retire[ent.ID] {
			next.Segments = append(next.Segments, ent)
		}
	}
	next.Segments = append(next.Segments, manifestSegment{
		ID: id, File: file, Docs: ws.meta.docs, Bytes: ws.meta.bytes, CRC32: ws.meta.crc,
	})
	if err := commitManifest(si.dir, next); err != nil {
		si.manifestMu.Unlock()
		si.destroySegment(seg, false)
		si.noteErr(err)
		mSegMergeFailures.Inc()
		return false
	}
	si.man = next
	si.manifestMu.Unlock()

	// Swap the view: merged segment in, inputs out, atomically. Mark
	// inputs retired under the same lock — snapshots pin segments under
	// the read lock, so no new reader can acquire an input afterwards.
	si.mu.Lock()
	kept := si.segs[:0]
	for _, s := range si.segs {
		if !retire[s.id] {
			kept = append(kept, s)
		}
	}
	si.segs = append(kept, seg)
	for _, in := range inputs {
		in.retired.Store(true)
	}
	si.mu.Unlock()

	// Destroy inputs with no in-flight readers; the rest are destroyed
	// by their last reader's release (mmap keeps bytes readable even
	// after the unlink).
	for _, in := range inputs {
		if in.refs.Load() == 0 {
			si.destroySegment(in, true)
		}
	}

	mSegMerges.Inc()
	mSegMergeDur.ObserveSince(start)
	si.updateGauges()
	return true
}

// writeMergedSegment concatenates committed segments (ascending ID
// order = commit order) into one merged segment file. The merge never
// decodes postings: part-local doc IDs are dense and ascending, and no
// document spans segments, so each input's delta-encoded list shifted
// by the running doc base is already the correct tail of the merged
// list. Only two spots in the bytes change — the leading document
// count becomes the sum of the inputs' counts, and each portion's
// first doc delta is re-based against the previous portion's last
// document — so a merge is a byte copy with per-term patching, not a
// decode/re-encode (STORAGE.md §7). The output is byte-identical to
// encoding the concatenated postings from scratch, which keeps the
// deterministic-layout property across merges.
func writeMergedSegment(path string, inputs []*segment) (writtenSegment, error) {
	nDocs := 0
	totalLen := 0.0
	for _, in := range inputs {
		nDocs += len(in.ids)
		totalLen += in.totalLen
	}
	ids := make([]string, 0, nDocs)
	docLens := make([]float64, 0, nDocs)
	for _, in := range inputs {
		ids = append(ids, in.ids...)
		docLens = append(docLens, in.docLens...)
	}
	terms := mergedTerms(inputs)

	var raw []byte
	emit := func(t string, scratch []byte) ([]byte, int, error) {
		df := 0
		for _, in := range inputs {
			df += in.dict[t].df
		}
		scratch = binary.AppendUvarint(scratch, uint64(df))
		prevLast := int32(0) // last absolute doc ID written so far
		base := int32(0)
		for _, in := range inputs {
			e, ok := in.dict[t]
			if !ok || e.df == 0 {
				base += int32(len(in.ids))
				continue
			}
			var err error
			raw, err = in.rawPostings(e, raw)
			if err != nil {
				return nil, 0, fmt.Errorf("merge %s term %q: %w", in.path, t, err)
			}
			count, off, err := readUvarint(raw, 0)
			if err != nil {
				return nil, 0, fmt.Errorf("merge %s term %q count: %w", in.path, t, err)
			}
			if count != uint64(e.df) {
				return nil, 0, fmt.Errorf("merge %s term %q: postings count %d, dictionary df %d", in.path, t, count, e.df)
			}
			first, rest, err := readUvarint(raw, off)
			if err != nil {
				return nil, 0, fmt.Errorf("merge %s term %q first doc: %w", in.path, t, err)
			}
			last, err := postingsLastDoc(raw, off, count)
			if err != nil {
				return nil, 0, fmt.Errorf("merge %s term %q: %w", in.path, t, err)
			}
			scratch = binary.AppendUvarint(scratch, uint64(base+int32(first)-prevLast))
			scratch = append(scratch, raw[rest:]...)
			prevLast = base + last
			base += int32(len(in.ids))
		}
		return scratch, df, nil
	}
	return writeSegmentFrame(path, ids, docLens, totalLen, terms, emit)
}

// mergedTerms unions the inputs' sorted term lists into one sorted,
// duplicate-free list by k-way min selection (k = mergeFactor, small).
func mergedTerms(inputs []*segment) []string {
	total := 0
	for _, in := range inputs {
		total += len(in.terms)
	}
	out := make([]string, 0, total)
	idx := make([]int, len(inputs))
	for {
		best := ""
		found := false
		for i, in := range inputs {
			if idx[i] < len(in.terms) {
				if t := in.terms[idx[i]]; !found || t < best {
					best, found = t, true
				}
			}
		}
		if !found {
			return out
		}
		for i, in := range inputs {
			if idx[i] < len(in.terms) && in.terms[idx[i]] == best {
				idx[i]++
			}
		}
		out = append(out, best)
	}
}
