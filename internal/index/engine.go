package index

import (
	"sort"
	"sync"
	"time"
)

// Engine is the search surface shared by the in-RAM sharded index
// (Index) and the on-disk segment index (SegmentIndex). internal/web
// stores an Engine, so every consumer of the search substrate — smart
// queries, PMI-IR co-occurrence statistics, streaming ingest — works
// identically against either implementation; ranked results are
// bit-identical between the two (golden-tested).
type Engine interface {
	// Add indexes a document; it is safe for concurrent use. Adding
	// the same docID twice panics — use Has for idempotent callers.
	Add(docID, text string)
	// Has reports whether docID is already indexed.
	Has(docID string) bool
	// Search ranks documents matching the query string and returns the
	// top k (all matches when k <= 0).
	//etaplint:ignore context-plumbing -- in-memory and page-cache lookup: no cancellable I/O, and a ctx parameter would suggest otherwise
	Search(query string, k int) []Hit
	// SearchQuery is Search over a pre-parsed query.
	//etaplint:ignore context-plumbing -- in-memory and page-cache lookup: no cancellable I/O, and a ctx parameter would suggest otherwise
	SearchQuery(q Query, k int) []Hit
	// DocFreq returns the document frequency of one term.
	DocFreq(term string) int
	// CoDocFreq counts documents containing both terms.
	CoDocFreq(a, b string) int
	// CoNearFreq counts documents where the terms occur within window
	// positions of each other.
	CoNearFreq(a, b string, window int) int
	// Len returns the number of indexed documents.
	Len() int
	// IndexStats returns a point-in-time operational summary.
	IndexStats() Stats
}

// Both engines must satisfy the shared surface.
var (
	_ Engine = (*Index)(nil)
	_ Engine = (*SegmentIndex)(nil)
)

// part is one independently searchable slice of an engine: an in-RAM
// shard, an active or sealed memtable, or an immutable on-disk segment.
// A document lives entirely within one part, so conjunctive matching,
// phrase adjacency and per-document scoring are part-local; only
// corpus-wide statistics are aggregated across parts before scoring.
// Implementations synchronize internally (or are immutable).
type part interface {
	// snapshotStats returns the part's contribution to corpus-wide BM25
	// statistics: document count, summed document length, and document
	// frequency for each of the distinct query terms.
	snapshotStats(distinct []string) partStats
	// searchPart resolves a query against this part's documents using
	// caller-supplied global idf values and average document length.
	searchPart(allTerms []string, phrases [][]string, distinct []string, idf []float64, avgLen float64) []Hit
	// docFreq returns the part-local document frequency of one term.
	docFreq(t string) int
	// coDocFreq counts part-local documents containing both terms.
	coDocFreq(ta, tb string) int
	// coNearFreq counts part-local documents with the terms within
	// window positions.
	coNearFreq(ta, tb string, window int32) int
	// size reports document, term-entry and posting counts for Stats.
	size() (docs, terms, postings int)
}

// partStats is one part's contribution to the corpus-wide statistics
// BM25 needs before per-part scoring can run.
type partStats struct {
	docs     int
	totalLen float64
	df       []int // parallel to the distinct-terms slice passed in
}

// resolveParts answers a parsed-and-flattened query against a set of
// parts: phase 1 aggregates corpus-wide statistics (document count,
// total length, per-term document frequency), phase 2 matches and
// scores every part with those shared statistics, and the results merge
// through a bounded top-k heap. Because every per-document scoring
// input (tf, docLen, idf, avgLen) and the summation order (sorted
// distinct terms) are part-independent, ranked output — order and
// score — is identical for any partitioning of the same documents.
// With parallel set, phase 2 fans out across parts concurrently.
func resolveParts(parts []part, allTerms []string, phrases [][]string, k int, parallel bool) []Hit {
	// Distinct query tokens in sorted order — the shared scoring basis.
	seen := map[string]bool{}
	distinct := make([]string, 0, len(allTerms))
	for _, t := range allTerms {
		if !seen[t] {
			seen[t] = true
			distinct = append(distinct, t)
		}
	}
	sort.Strings(distinct)

	// Phase 1: aggregate corpus-wide statistics across parts.
	nDocs, totalLen := 0, 0.0
	df := make([]int, len(distinct))
	for _, p := range parts {
		st := p.snapshotStats(distinct)
		nDocs += st.docs
		totalLen += st.totalLen
		for i, d := range st.df {
			df[i] += d
		}
	}
	var scanned uint64
	for _, d := range df {
		if d == 0 {
			// Conjunctive semantics: a term absent from the whole corpus
			// empties the result.
			return nil
		}
		scanned += uint64(d)
	}
	mPostings.Add(scanned)

	idfs := make([]float64, len(distinct))
	for i, d := range df {
		idfs[i] = idf(nDocs, d)
	}
	avgLen := totalLen / maxf(1, float64(nDocs))

	// Phase 2: match + score each part with the shared statistics.
	perPart := make([][]Hit, len(parts))
	if !parallel || len(parts) == 1 {
		for i, p := range parts {
			perPart[i] = p.searchPart(allTerms, phrases, distinct, idfs, avgLen)
		}
	} else {
		//etaplint:ignore determinism -- metrics-only timing: the timestamp feeds the fan-out histogram, never a result
		start := time.Now()
		var wg sync.WaitGroup
		for i, p := range parts {
			wg.Add(1)
			go func(i int, p part) {
				defer wg.Done()
				perPart[i] = p.searchPart(allTerms, phrases, distinct, idfs, avgLen)
			}(i, p)
		}
		wg.Wait()
		mFanout.ObserveSince(start)
	}

	// Merge: bounded heap keeps only the k best across parts.
	merger := newTopK(k)
	for _, hs := range perPart {
		for _, h := range hs {
			merger.push(h)
		}
	}
	return merger.results()
}

// flattenQuery normalizes a parsed query for resolution: single-token
// phrases degrade to terms, and allTerms collects every token (terms
// plus phrase members) for conjunctive matching and scoring.
func flattenQuery(q Query) (allTerms []string, phrases [][]string) {
	allTerms = append([]string(nil), q.Terms...)
	for _, p := range q.Phrases {
		if len(p) == 1 {
			allTerms = append(allTerms, p[0])
		} else {
			phrases = append(phrases, p)
			allTerms = append(allTerms, p...)
		}
	}
	return allTerms, phrases
}

// maxf avoids importing math for one two-value max on the hot path.
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
