package index

import (
	"fmt"
	"testing"
)

// goldenRoutes pins shard assignments for RouteSeed 42 over 4 shards.
// Routing with a configured seed is a pure function of (docID, seed),
// so these values must hold in every process — a change here means
// shard placement stopped being reproducible across restarts.
var goldenRoutes = map[string]int{
	"u:a":                                 2,
	"u:b":                                 1,
	"u:c":                                 0,
	"doc-1":                               3,
	"doc-2":                               3,
	"doc-3":                               0,
	"doc-4":                               0,
	"https://news.example.com/ceo-change": 0,
	"https://biz.example.com/merger":      1,
	"":                                    1,
}

func TestRouteSeedStableAcrossRestarts(t *testing.T) {
	ix := NewWithOptions(Options{Shards: 4, RouteSeed: 42})
	for docID, want := range goldenRoutes {
		if got := int(ix.route(docID) % 4); got != want {
			t.Errorf("route(%q) -> shard %d, want %d", docID, got, want)
		}
	}
	// A second index built independently (a "restarted process" as far
	// as the routing function is concerned) must agree everywhere.
	ix2 := NewWithOptions(Options{Shards: 4, RouteSeed: 42})
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("doc-%d", i)
		if ix.route(id) != ix2.route(id) {
			t.Fatalf("route(%q) differs between two indexes with the same seed", id)
		}
	}
}

func TestRouteSeedSpreadsShards(t *testing.T) {
	ix := NewWithOptions(Options{Shards: 4, RouteSeed: 42})
	var counts [4]int
	const n = 10000
	for i := 0; i < n; i++ {
		counts[ix.route(fmt.Sprintf("doc-%d", i))%4]++
	}
	for s, c := range counts {
		// Each shard should hold roughly a quarter; allow wide slack —
		// this guards against degenerate routing (everything on one
		// shard), not statistical perfection.
		if c < n/8 || c > n/2 {
			t.Errorf("shard %d holds %d of %d docs; routing is badly skewed: %v", s, c, n, counts)
		}
	}
}

// TestRouteSeedSearchEquivalence checks that a seeded index ranks
// identically to the default randomly-routed index: shard placement
// must never reach the results.
func TestRouteSeedSearchEquivalence(t *testing.T) {
	build := func(o Options) *Index {
		ix := NewWithOptions(o)
		for i := 0; i < 200; i++ {
			ix.Add(fmt.Sprintf("doc-%d", i),
				fmt.Sprintf("company %d announced a merger with firm %d", i, i%7))
		}
		return ix
	}
	seeded := build(Options{Shards: 4, RouteSeed: 42})
	random := build(Options{Shards: 4})
	for _, q := range []string{"merger", "company announced", "firm"} {
		a := seeded.Search(q, 10)
		b := random.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d hits", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("query %q hit %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}
