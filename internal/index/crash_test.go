package index

import (
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The crash tests back the recovery matrix in STORAGE.md §6 with a
// real SIGKILL: a child test process ingests into an index directory
// with aggressive flush and merge settings, the parent kills it -9 at
// an arbitrary point mid-flush/mid-merge, and recovery must (a) open
// cleanly — proving the manifest never references a torn segment,
// since open CRC-verifies every referenced file — (b) leave no
// temporary or orphaned files behind, and (c) serve ranked results
// bit-identical to an in-RAM index built over exactly the recovered
// documents.

const (
	crashEnvDir   = "ETAP_INDEX_CRASH_DIR"
	crashCorpusN  = 6000
	crashSeed     = 77
	crashRouteSee = 0xc4a5
)

// crashOptions is the configuration both parent and child use: tiny
// flushes and a factor-2 merger keep the engine constantly inside
// flush and merge commit windows, which is where the kill lands.
func crashOptions(dir string) SegmentOptions {
	return SegmentOptions{Dir: dir, Writers: 2, FlushDocs: 25, MergeFactor: 2, RouteSeed: crashRouteSee, CacheSize: -1}
}

// TestCrashChildProcess is the re-exec helper, not a test: it only
// runs when the parent sets the crash-dir environment variable. It
// ingests the deterministic corpus (skipping documents already
// recovered from a previous kill) until the parent's SIGKILL lands.
func TestCrashChildProcess(t *testing.T) {
	dir := os.Getenv(crashEnvDir)
	if dir == "" {
		t.Skip("crash-test helper; runs only under TestCrashRecoverySIGKILL")
	}
	si, err := OpenSegmentIndex(crashOptions(dir))
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	for _, d := range syntheticCorpus(crashCorpusN, crashSeed) {
		if si.Has(d.id) {
			continue
		}
		si.Add(d.id, d.text)
	}
	// Corpus exhausted before the kill landed: make everything durable
	// so the parent's recovery assertions still hold.
	if err := si.Close(); err != nil {
		t.Fatalf("child close: %v", err)
	}
}

// TestCrashRecoverySIGKILL kills a live child -9 several times —
// landing mid-flush and mid-merge thanks to the aggressive settings —
// and fully verifies recovery after each kill. Each round's child
// resumes in the same directory, so the test also covers
// crash → recover → continue → crash again.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs child processes")
	}
	dir := t.TempDir()
	docs := syntheticCorpus(crashCorpusN, crashSeed)
	textOf := make(map[string]string, len(docs))
	for _, d := range docs {
		textOf[d.id] = d.text
	}
	rng := rand.New(rand.NewSource(crashSeed))

	for round := 0; round < 3; round++ {
		startGen := diskGeneration(t, dir)

		cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChildProcess$", "-test.count=1")
		cmd.Env = append(os.Environ(), crashEnvDir+"="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatalf("round %d: start child: %v", round, err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		// Let the child commit a few generations (flushes/merges), then
		// kill it at an arbitrary extra offset inside the commit churn.
		deadline := time.Now().Add(20 * time.Second)
		killed := false
		for !killed {
			select {
			case err := <-exited:
				// Finished the whole corpus before the kill: that run is
				// still a valid recovery input (it closed cleanly).
				if err != nil {
					t.Fatalf("round %d: child failed on its own: %v", round, err)
				}
				killed = true
			default:
				if diskGeneration(t, dir) >= startGen+3 {
					time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
					if err := cmd.Process.Kill(); err != nil {
						t.Fatalf("round %d: kill: %v", round, err)
					}
					<-exited // reaps; exit error "signal: killed" is the point
					killed = true
				} else if time.Now().After(deadline) {
					_ = cmd.Process.Kill()
					t.Fatalf("round %d: child never advanced the manifest", round)
				} else {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}

		verifyRecovery(t, dir, textOf, round)
	}
}

// diskGeneration reads the committed manifest generation straight off
// disk (0 when no manifest exists yet).
func diskGeneration(t *testing.T, dir string) uint64 {
	t.Helper()
	m, err := loadManifest(dir)
	if err != nil {
		t.Fatalf("manifest unreadable mid-run: %v", err)
	}
	return m.Generation
}

// verifyRecovery opens the possibly-just-killed index and asserts the
// full recovery contract.
func verifyRecovery(t *testing.T, dir string, textOf map[string]string, round int) {
	t.Helper()

	// (a) Open must succeed: every manifest-referenced segment is
	// CRC-verified, so success proves no committed segment is torn.
	si, err := OpenSegmentIndex(crashOptions(dir))
	if err != nil {
		t.Fatalf("round %d: recovery open failed (torn commit?): %v", round, err)
	}
	defer si.Close()

	// (b) The open swept orphans: no temporaries, and every segment
	// file on disk is referenced by the manifest.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			t.Fatalf("round %d: temporary file %s survived recovery", round, e.Name())
		}
		if strings.HasSuffix(e.Name(), segmentSuffix) {
			segFiles++
		}
	}
	st := si.SegmentStats()
	if segFiles != st.Segments {
		t.Fatalf("round %d: %d segment files on disk, manifest commits %d", round, segFiles, st.Segments)
	}

	// (c) Every recovered document is a real one, exactly once.
	recovered := si.DocIDs()
	if len(recovered) != si.Len() {
		t.Fatalf("round %d: DocIDs %d vs Len %d", round, len(recovered), si.Len())
	}
	for i, id := range recovered {
		if i > 0 && recovered[i-1] == id {
			t.Fatalf("round %d: document %q recovered twice", round, id)
		}
		if _, ok := textOf[id]; !ok {
			t.Fatalf("round %d: recovered unknown document %q", round, id)
		}
	}

	// (d) Ranked results over the recovered set are bit-identical to an
	// in-RAM index built from scratch over the same documents.
	base := NewWithOptions(Options{Shards: 1, CacheSize: -1})
	for _, id := range recovered {
		base.Add(id, textOf[id])
	}
	for _, q := range goldenQueries {
		want := base.Search(q, 20)
		got := si.Search(q, 20)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: query %q diverges on recovered corpus", round, q)
		}
	}
}

// TestOpenCleansOrphans backs the orphan rows of the crash matrix
// deterministically: a leftover temporary (killed mid-write) and an
// uncommitted segment file (killed between rename and manifest commit)
// must both be swept at open, while the committed index stays intact.
func TestOpenCleansOrphans(t *testing.T) {
	dir := t.TempDir()
	si, err := OpenSegmentIndex(SegmentOptions{Dir: dir, Writers: 1, FlushDocs: 10})
	if err != nil {
		t.Fatal(err)
	}
	docs := syntheticCorpus(40, 9)
	for _, d := range docs {
		si.Add(d.id, d.text)
	}
	if err := si.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the two interrupted-commit states.
	tmpOrphan := filepath.Join(dir, segmentFileName(900)+tmpSuffix)
	if err := os.WriteFile(tmpOrphan, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	segOrphan := filepath.Join(dir, segmentFileName(901))
	if err := os.WriteFile(segOrphan, []byte("renamed but never committed"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An unrelated file must be left alone.
	keep := filepath.Join(dir, "NOTES.txt")
	if err := os.WriteFile(keep, []byte("operator notes"), 0o644); err != nil {
		t.Fatal(err)
	}

	again, err := OpenSegmentIndex(SegmentOptions{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with orphans present: %v", err)
	}
	defer again.Close()
	if again.Len() != len(docs) {
		t.Fatalf("Len = %d after orphan sweep, want %d", again.Len(), len(docs))
	}
	for _, gone := range []string{tmpOrphan, segOrphan} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived open", gone)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("unrelated file was removed: %v", err)
	}
}
