package index

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// benchCorpusSize is the corpus the index benchmarks run against — big
// enough (>=50k docs) that per-query work dominates goroutine overhead.
const benchCorpusSize = 50000

var (
	benchDocsOnce sync.Once
	benchDocs     []corpusDoc
)

func benchCorpus() []corpusDoc {
	benchDocsOnce.Do(func() { benchDocs = syntheticCorpus(benchCorpusSize, 1234) })
	return benchDocs
}

// loadSequential replays the pre-PR single-threaded build: one shard,
// one goroutine.
func loadSequential(docs []corpusDoc) *Index {
	ix := NewWithOptions(Options{Shards: 1, CacheSize: -1})
	for _, d := range docs {
		ix.Add(d.id, d.text)
	}
	return ix
}

// loadSharded bulk-loads concurrently across GOMAXPROCS workers into a
// GOMAXPROCS-sharded index.
func loadSharded(docs []corpusDoc, cacheSize int) *Index {
	ix := NewWithOptions(Options{CacheSize: cacheSize})
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (len(docs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(docs) {
			hi = len(docs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []corpusDoc) {
			defer wg.Done()
			for _, d := range part {
				ix.Add(d.id, d.text)
			}
		}(docs[lo:hi])
	}
	wg.Wait()
	return ix
}

// BenchmarkIndexBulkAdd compares the pre-PR sequential build against
// the sharded concurrent bulk load on the same corpus.
func BenchmarkIndexBulkAdd(b *testing.B) {
	docs := benchCorpus()[:10000]
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loadSequential(docs)
		}
	})
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loadSharded(docs, -1)
		}
	})
}

// BenchmarkIndexSearch compares query throughput: single-shard
// (the pre-PR engine shape), sharded fan-out, and sharded with the
// query cache enabled.
func BenchmarkIndexSearch(b *testing.B) {
	docs := benchCorpus()
	single := loadSequential(docs)
	sharded := loadSharded(docs, -1)
	cached := loadSharded(docs, 0) // default cache

	run := func(ix *Index) func(*testing.B) {
		return func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Search(goldenQueries[i%len(goldenQueries)], 10)
			}
		}
	}
	b.Run("single-shard", run(single))
	b.Run("sharded", run(sharded))
	b.Run("sharded-cached", run(cached))
}

// benchReport is the schema of BENCH_index.json — the perf trajectory
// record for the search substrate, refreshed by `make bench-index`.
type benchReport struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Docs        int     `json:"docs"`
	Queries     int     `json:"queries"`
	Shards      int     `json:"shards"`
	BulkAdd     addRep  `json:"bulk_add"`
	Search      srchRep `json:"search"`
}

type addRep struct {
	SequentialDocsPerSec float64 `json:"sequential_docs_per_sec"`
	ShardedDocsPerSec    float64 `json:"sharded_docs_per_sec"`
	Speedup              float64 `json:"speedup"`
}

type srchRep struct {
	SingleShardQPS   float64 `json:"single_shard_qps"`
	ShardedQPS       float64 `json:"sharded_qps"`
	ShardedSpeedup   float64 `json:"sharded_speedup"`
	CachedQPS        float64 `json:"cached_qps"`
	CachedSpeedup    float64 `json:"cached_speedup"`
	ResultsIdentical bool    `json:"results_identical"`
}

// TestIndexBenchHarness measures sequential-vs-sharded bulk add and
// search throughput on the >=50k-doc corpus and writes BENCH_index.json
// to the path named by ETAP_BENCH_INDEX. Skipped unless that variable
// is set — run it via `make bench-index`.
func TestIndexBenchHarness(t *testing.T) {
	out := os.Getenv("ETAP_BENCH_INDEX")
	if out == "" {
		t.Skip("set ETAP_BENCH_INDEX=<output path> (or run `make bench-index`)")
	}
	docs := benchCorpus()

	t0 := time.Now()
	single := loadSequential(docs)
	seqLoad := time.Since(t0)

	t0 = time.Now()
	sharded := loadSharded(docs, -1)
	parLoad := time.Since(t0)

	const rounds = 40 // rounds × len(goldenQueries) searches per engine
	nq := rounds * len(goldenQueries)
	searchAll := func(ix *Index) time.Duration {
		start := time.Now()
		for i := 0; i < nq; i++ {
			ix.Search(goldenQueries[i%len(goldenQueries)], 10)
		}
		return time.Since(start)
	}

	singleDur := searchAll(single)
	shardedDur := searchAll(sharded)
	cached := loadSharded(docs, 0)
	cachedDur := searchAll(cached)

	identical := true
	for _, q := range goldenQueries {
		a := single.Search(q, 10)
		b := sharded.Search(q, 10)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			identical = false
			t.Errorf("query %q: sharded diverged from single-shard", q)
		}
	}

	qps := func(d time.Duration) float64 { return float64(nq) / d.Seconds() }
	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Docs:        len(docs),
		Queries:     nq,
		Shards:      sharded.Shards(),
		BulkAdd: addRep{
			SequentialDocsPerSec: float64(len(docs)) / seqLoad.Seconds(),
			ShardedDocsPerSec:    float64(len(docs)) / parLoad.Seconds(),
			Speedup:              seqLoad.Seconds() / parLoad.Seconds(),
		},
		Search: srchRep{
			SingleShardQPS:   qps(singleDur),
			ShardedQPS:       qps(shardedDur),
			ShardedSpeedup:   singleDur.Seconds() / shardedDur.Seconds(),
			CachedQPS:        qps(cachedDur),
			CachedSpeedup:    singleDur.Seconds() / cachedDur.Seconds(),
			ResultsIdentical: identical,
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("bulk add: sequential %.0f docs/s, sharded %.0f docs/s (%.2fx)",
		rep.BulkAdd.SequentialDocsPerSec, rep.BulkAdd.ShardedDocsPerSec, rep.BulkAdd.Speedup)
	t.Logf("search: single %.1f qps, sharded %.1f qps (%.2fx), cached %.1f qps (%.2fx)",
		rep.Search.SingleShardQPS, rep.Search.ShardedQPS, rep.Search.ShardedSpeedup,
		rep.Search.CachedQPS, rep.Search.CachedSpeedup)
}
