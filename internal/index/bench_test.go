package index

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// benchCorpusSize is the corpus the index benchmarks run against — big
// enough (>=50k docs) that per-query work dominates goroutine overhead.
const benchCorpusSize = 50000

var (
	benchDocsOnce sync.Once
	benchDocs     []corpusDoc
)

func benchCorpus() []corpusDoc {
	benchDocsOnce.Do(func() { benchDocs = syntheticCorpus(benchCorpusSize, 1234) })
	return benchDocs
}

// loadSequential replays the pre-segment single-threaded build: one
// in-RAM shard, one goroutine. This is the baseline every bulk-add
// speedup in BENCH_index.json is measured against.
func loadSequential(docs []corpusDoc) *Index {
	ix := NewWithOptions(Options{Shards: 1, CacheSize: -1})
	for _, d := range docs {
		ix.Add(d.id, d.text)
	}
	return ix
}

// loadSegments bulk-loads the persistent segment engine with `writers`
// concurrent goroutines striding the corpus, default flush/merge
// policy. The engine is returned with every document searchable
// (memtables count); durability of the tail batch comes with Close.
func loadSegments(tb testing.TB, dir string, docs []corpusDoc, writers int) *SegmentIndex {
	si, err := OpenSegmentIndex(SegmentOptions{Dir: dir, Writers: writers, CacheSize: -1})
	if err != nil {
		tb.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(docs); i += writers {
				si.Add(docs[i].id, docs[i].text)
			}
		}(g)
	}
	wg.Wait()
	return si
}

// BenchmarkIndexBulkAdd compares the sequential in-RAM build against
// the segment engine's concurrent bulk load on the same corpus.
func BenchmarkIndexBulkAdd(b *testing.B) {
	docs := benchCorpus()[:10000]
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loadSequential(docs)
		}
	})
	b.Run("segments", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			si := loadSegments(b, b.TempDir(), docs, runtime.GOMAXPROCS(0))
			if err := si.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexSearch compares query throughput: the in-RAM engine,
// the segment engine serving from committed on-disk segments, and the
// segment engine with its query cache enabled.
func BenchmarkIndexSearch(b *testing.B) {
	docs := benchCorpus()
	single := loadSequential(docs)

	dir := b.TempDir()
	if err := loadSegments(b, dir, docs, runtime.GOMAXPROCS(0)).Close(); err != nil {
		b.Fatal(err)
	}
	segs, err := OpenSegmentIndex(SegmentOptions{Dir: dir, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer segs.Close()
	cached, err := OpenSegmentIndex(SegmentOptions{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	defer cached.Close()

	run := func(ix Engine) func(*testing.B) {
		return func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Search(goldenQueries[i%len(goldenQueries)], 10)
			}
		}
	}
	b.Run("in-ram", run(single))
	b.Run("segments", run(segs))
	b.Run("segments-cached", run(cached))
}

// benchReport is the schema of BENCH_index.json — the perf trajectory
// record for the search substrate, refreshed by `make bench-index`.
type benchReport struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Docs        int     `json:"docs"`
	Queries     int     `json:"queries"`
	Engine      string  `json:"engine"`
	FlushDocs   int     `json:"flush_docs"`
	MergeFactor int     `json:"merge_factor"`
	BulkAdd     addRep  `json:"bulk_add"`
	ColdStart   coldRep `json:"cold_start"`
	Search      srchRep `json:"search"`
}

type addRep struct {
	SequentialDocsPerSec float64        `json:"sequential_docs_per_sec"`
	Writers              []writerAddRep `json:"writers"`
}

// writerAddRep records one concurrent bulk-add measurement; Speedup is
// against the sequential in-RAM baseline and is the regression gate —
// the harness fails if any entry drops below 1.0.
type writerAddRep struct {
	Writers    int     `json:"writers"`
	DocsPerSec float64 `json:"docs_per_sec"`
	Speedup    float64 `json:"speedup"`
}

type coldRep struct {
	Segments       int     `json:"segments"`
	ReopenSeconds  float64 `json:"reopen_seconds"`
	RebuildSeconds float64 `json:"rebuild_seconds"`
	Speedup        float64 `json:"speedup"`
}

type srchRep struct {
	InRAMQPS         float64 `json:"in_ram_qps"`
	SegmentQPS       float64 `json:"segment_qps"`
	SegmentSpeedup   float64 `json:"segment_speedup"`
	CachedQPS        float64 `json:"cached_qps"`
	CachedSpeedup    float64 `json:"cached_speedup"`
	ResultsIdentical bool    `json:"results_identical"`
}

// TestIndexBenchHarness measures the segment engine against the in-RAM
// baseline on the >=50k-doc corpus — concurrent bulk add at 1/2/4/8
// writers, cold start (manifest re-open vs corpus rebuild), and search
// throughput from mmap-backed segments — and writes BENCH_index.json
// to the path named by ETAP_BENCH_INDEX. Skipped unless that variable
// is set — run it via `make bench-index`. The harness is also the perf
// regression gate: it fails if concurrent bulk add loses to the
// sequential baseline at any writer count, or if segment-served
// rankings diverge from the in-RAM engine's.
func TestIndexBenchHarness(t *testing.T) {
	out := os.Getenv("ETAP_BENCH_INDEX")
	if out == "" {
		t.Skip("set ETAP_BENCH_INDEX=<output path> (or run `make bench-index`)")
	}
	docs := benchCorpus()

	runtime.GC()
	t0 := time.Now()
	single := loadSequential(docs)
	seqLoad := time.Since(t0)

	const rounds = 40 // rounds × len(goldenQueries) searches per engine
	nq := rounds * len(goldenQueries)
	searchAll := func(ix Engine) time.Duration {
		start := time.Now()
		for i := 0; i < nq; i++ {
			ix.Search(goldenQueries[i%len(goldenQueries)], 10)
		}
		return time.Since(start)
	}

	// Capture the baseline's golden rankings and search throughput, then
	// release it: keeping a second 50k-doc index live would inflate GC
	// mark work during the segment builds and skew the comparison.
	golden := make(map[string]string, len(goldenQueries))
	for _, q := range goldenQueries {
		golden[q] = fmt.Sprint(single.Search(q, 10))
	}
	inRAMDur := searchAll(single)
	single = nil

	// Concurrent bulk add into the segment engine at each writer count.
	// Timing stops when every document is searchable (the same guarantee
	// the in-RAM baseline offers at its finish line); flushes overlap
	// the adds, so committed durability rides inside the same window.
	writerCounts := []int{1, 2, 4, 8}
	adds := make([]writerAddRep, 0, len(writerCounts))
	var lastDir string
	for _, wn := range writerCounts {
		dir := t.TempDir()
		runtime.GC()
		t0 = time.Now()
		si := loadSegments(t, dir, docs, wn)
		dur := time.Since(t0)
		speedup := seqLoad.Seconds() / dur.Seconds()
		adds = append(adds, writerAddRep{
			Writers:    wn,
			DocsPerSec: float64(len(docs)) / dur.Seconds(),
			Speedup:    speedup,
		})
		if speedup < 1.0 {
			t.Errorf("bulk add with %d writers: %.3fx vs sequential — the concurrent path must not lose to the baseline", wn, speedup)
		}
		if err := si.Close(); err != nil {
			t.Fatalf("close %d-writer engine: %v", wn, err)
		}
		lastDir = dir
	}

	// Cold start: re-open the committed segments and compare with what a
	// rebuild from the corpus costs. The re-open must serve every
	// document from the manifest alone.
	t0 = time.Now()
	segs, err := OpenSegmentIndex(SegmentOptions{Dir: lastDir, CacheSize: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	reopenDur := time.Since(t0)
	st := segs.SegmentStats()
	if segs.Len() != len(docs) || st.MemtableDocs != 0 || st.Segments == 0 {
		t.Errorf("reopen state: Len=%d (want %d), memtable=%d, segments=%d — restart must serve from segments, not rebuild",
			segs.Len(), len(docs), st.MemtableDocs, st.Segments)
	}

	// Golden check: segment-served rankings must be bit-identical to the
	// in-RAM engine's for every benchmark query.
	identical := true
	for _, q := range goldenQueries {
		if got := fmt.Sprint(segs.Search(q, 10)); got != golden[q] {
			identical = false
			t.Errorf("query %q: segment results diverged from in-RAM", q)
		}
	}

	segDur := searchAll(segs) // postings fetched from mmap every query
	if err := segs.Close(); err != nil {
		t.Fatal(err)
	}
	cached, err := OpenSegmentIndex(SegmentOptions{Dir: lastDir})
	if err != nil {
		t.Fatal(err)
	}
	searchAll(cached) // warm the query cache
	cachedDur := searchAll(cached)
	if err := cached.Close(); err != nil {
		t.Fatal(err)
	}

	qps := func(d time.Duration) float64 { return float64(nq) / d.Seconds() }
	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Docs:        len(docs),
		Queries:     nq,
		Engine:      "segments",
		FlushDocs:   DefaultFlushDocs,
		MergeFactor: DefaultMergeFactor,
		BulkAdd: addRep{
			SequentialDocsPerSec: float64(len(docs)) / seqLoad.Seconds(),
			Writers:              adds,
		},
		ColdStart: coldRep{
			Segments:       st.Segments,
			ReopenSeconds:  reopenDur.Seconds(),
			RebuildSeconds: seqLoad.Seconds(),
			Speedup:        seqLoad.Seconds() / reopenDur.Seconds(),
		},
		Search: srchRep{
			InRAMQPS:         qps(inRAMDur),
			SegmentQPS:       qps(segDur),
			SegmentSpeedup:   inRAMDur.Seconds() / segDur.Seconds(),
			CachedQPS:        qps(cachedDur),
			CachedSpeedup:    inRAMDur.Seconds() / cachedDur.Seconds(),
			ResultsIdentical: identical,
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("bulk add: sequential %.0f docs/s", rep.BulkAdd.SequentialDocsPerSec)
	for _, a := range adds {
		t.Logf("bulk add: %d writers %.0f docs/s (%.2fx)", a.Writers, a.DocsPerSec, a.Speedup)
	}
	t.Logf("cold start: reopen %.0fms vs rebuild %.0fms (%.1fx) over %d segments",
		reopenDur.Seconds()*1e3, seqLoad.Seconds()*1e3, rep.ColdStart.Speedup, st.Segments)
	t.Logf("search: in-RAM %.1f qps, segments %.1f qps (%.2fx), cached %.1f qps (%.2fx)",
		rep.Search.InRAMQPS, rep.Search.SegmentQPS, rep.Search.SegmentSpeedup,
		rep.Search.CachedQPS, rep.Search.CachedSpeedup)
}
